"""Setuptools shim; all metadata lives in pyproject.toml.

Kept so `pip install -e .` works in offline environments whose pip/
setuptools cannot build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
