"""End-to-end tests for the `repro serve` query server.

The load-bearing contract: a served response body is byte-identical to
the corresponding row of a finalized ``run_sweep`` store.  Around it,
the error paths the ISSUE pins (400 malformed spec, 404 did-you-mean,
503 quarantine with tally), single-flight dedup, LRU eviction, and the
status/metrics documents.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.batch import SweepGrid, run_sweep
from repro.batch.registry import register_workload
from repro.serve import (
    SERVE_SCHEMA,
    QueryError,
    ServeConfig,
    build_cell,
    query_body,
    render_serve_status,
    run_load,
    running_server,
    serve_tallies,
)

# --- a gate workload the single-flight test can hold open ------------
_GATE_STARTED = threading.Event()
_GATE_RELEASE = threading.Event()


@register_workload("serve-gate")
def _gate_workload(graph, cell):
    """Test-only workload that blocks until the test releases it."""
    _GATE_STARTED.set()
    assert _GATE_RELEASE.wait(timeout=30), "gate never released"
    return {"rounds": 0, "gated": True}


def http(port, path, body=None, method=None, timeout=30):
    """One request; returns (status, body_bytes, headers)."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body,
        method=method or ("POST" if body is not None else "GET"),
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        with exc:
            return exc.code, exc.read(), dict(exc.headers)


@pytest.fixture()
def inline_server():
    config = ServeConfig(port=0, backend="inline", cache_size=4)
    with running_server(config) as server:
        yield server


class TestByteIdentity:
    def test_served_equals_direct_run_sweep_row(self, tmp_path):
        grid = SweepGrid(
            workload="kdom", specs=("tree:n=40",), seeds=(0,), ks=(2,)
        )
        store = tmp_path / "direct.jsonl"
        run_sweep(grid, store_path=str(store), backend="inline")
        row_line = store.read_bytes().splitlines(keepends=True)[-1]
        with running_server(
            ServeConfig(port=0, backend="inline", cache_size=4)
        ) as server:
            body = query_body("kdom", "tree:n=40", 0, 2)
            status, served, headers = http(server.port, "/query", body)
            assert status == 200
            assert served == row_line
            assert headers["X-Serve-Cache"] == "miss"
            # The hit path replays the same bytes.
            status, again, headers = http(server.port, "/query", body)
            assert status == 200
            assert again == row_line
            assert headers["X-Serve-Cache"] == "hit"


class TestErrorPaths:
    def test_malformed_spec_is_400_with_graphspec_message(
        self, inline_server
    ):
        body = query_body("kdom", "banana:n=8", 0, 2)
        status, payload, _ = http(inline_server.port, "/query", body)
        assert status == 400
        doc = json.loads(payload)
        assert doc["schema"] == SERVE_SCHEMA
        assert "GraphSpecError" in doc["error"]
        assert "banana" in doc["error"]

    def test_bad_spec_value_is_400(self, inline_server):
        body = query_body("kdom", "tree:n=banana", 0, 2)
        status, payload, _ = http(inline_server.port, "/query", body)
        assert status == 400
        assert "GraphSpecError" in json.loads(payload)["error"]

    def test_unknown_workload_is_404_with_did_you_mean(
        self, inline_server
    ):
        body = query_body("kdmo", "tree:n=8", 0, 2)
        status, payload, _ = http(inline_server.port, "/query", body)
        assert status == 404
        assert "did you mean 'kdom'?" in json.loads(payload)["error"]

    def test_bad_json_body_is_400(self, inline_server):
        status, payload, _ = http(
            inline_server.port, "/query", b"{not json"
        )
        assert status == 400
        assert "not valid JSON" in json.loads(payload)["error"]

    def test_missing_spec_is_400(self, inline_server):
        status, payload, _ = http(
            inline_server.port, "/query", b'{"workload": "kdom"}'
        )
        assert status == 400
        assert "'spec'" in json.loads(payload)["error"]

    def test_unknown_path_is_404(self, inline_server):
        status, payload, _ = http(inline_server.port, "/nope")
        assert status == 404
        assert "no such endpoint" in json.loads(payload)["error"]

    def test_method_not_allowed_is_405(self, inline_server):
        status, _, _ = http(
            inline_server.port, "/status", b"{}", method="POST"
        )
        assert status == 405


class TestQuarantine:
    class _AlwaysHang:
        """Chaos stub: every attempt of every task hangs."""

        def op_for(self, index, attempt):
            return ("hang",)

    def test_pool_deadline_is_503_with_tally(self):
        config = ServeConfig(
            port=0,
            backend="process",
            workers=1,
            cache_size=4,
            deadline_s=0.5,
            max_attempts=1,
            chaos=self._AlwaysHang(),
        )
        with running_server(config) as server:
            body = query_body("kdom", "tree:n=8", 0, 2)
            status, payload, _ = http(server.port, "/query", body)
            assert status == 503
            doc = json.loads(payload)
            assert "quarantined" in doc["error"]
            assert doc["quarantined"]["attempts"] == 1
            assert doc["quarantine_tally"] >= 1
            # The failure is not cached: the cell stays answerable.
            status_doc = json.loads(
                http(server.port, "/status")[1]
            )
            assert status_doc["cache"]["size"] == 0
            assert status_doc["tasks"]["quarantined"] == 1


class TestSingleFlight:
    def test_identical_concurrent_queries_run_once(self, inline_server):
        _GATE_STARTED.clear()
        _GATE_RELEASE.clear()
        port = inline_server.port
        body = query_body("serve-gate", "tree:n=8", 0, 2)
        results = []

        def issue():
            results.append(http(port, "/query", body))

        threads = [threading.Thread(target=issue) for _ in range(5)]
        threads[0].start()
        assert _GATE_STARTED.wait(timeout=10)
        for thread in threads[1:]:
            thread.start()
        # Every handler counts a cache miss before attaching to the
        # in-flight future — once misses reach 5, all five requests
        # are parked on the same future.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            doc = json.loads(http(port, "/status")[1])
            if doc["cache"]["misses"] >= 5:
                break
            time.sleep(0.01)
        else:
            pytest.fail("five concurrent queries never arrived")
        assert doc["inflight"] == 1
        _GATE_RELEASE.set()
        for thread in threads:
            thread.join(timeout=30)
        assert len(results) == 5
        bodies = {payload for _status, payload, _headers in results}
        assert {status for status, _p, _h in results} == {200}
        assert len(bodies) == 1  # identical bytes for every waiter
        doc = json.loads(http(port, "/status")[1])
        assert doc["tasks"]["ok"] == 1  # one pool task, not five
        assert doc["requests"]["miss"] == 1
        assert doc["requests"]["flight"] == 4


class TestLRUEviction:
    def test_cache_size_bounds_entries_end_to_end(self):
        config = ServeConfig(port=0, backend="inline", cache_size=2)
        with running_server(config) as server:
            port = server.port
            for seed in (0, 1, 2):
                status, _, headers = http(
                    port, "/query", query_body("kdom", "tree:n=8", seed, 2)
                )
                assert status == 200
                assert headers["X-Serve-Cache"] == "miss"
            doc = json.loads(http(port, "/status")[1])
            assert doc["cache"]["size"] == 2
            assert doc["cache"]["evictions"] == 1
            # seed=0 was evicted: querying it again is a miss...
            _, _, headers = http(
                port, "/query", query_body("kdom", "tree:n=8", 0, 2)
            )
            assert headers["X-Serve-Cache"] == "miss"
            # ...while seed=2 is still resident.
            _, _, headers = http(
                port, "/query", query_body("kdom", "tree:n=8", 2, 2)
            )
            assert headers["X-Serve-Cache"] == "hit"


class TestDocuments:
    def test_status_document_and_renderer(self, inline_server):
        port = inline_server.port
        http(port, "/query", query_body("kdom", "tree:n=8", 0, 2))
        http(port, "/query", query_body("kdom", "tree:n=8", 0, 2))
        doc = json.loads(http(port, "/status")[1])
        assert doc["schema"] == SERVE_SCHEMA
        assert doc["state"] == "running"
        assert doc["backend"] == "inline"
        assert doc["workers"] == 1
        assert doc["requests"]["hit"] == 1
        assert doc["requests"]["miss"] == 1
        assert "kdom" in doc["workloads"]
        lines = render_serve_status(doc)
        assert lines[0].startswith("serve: RUNNING backend=inline")
        assert "requests 2 (hit 1, miss 1" in lines[1]
        assert "cache 1/4 entries" in lines[2]

    def test_metrics_document_carries_serve_counters(self, inline_server):
        port = inline_server.port
        http(port, "/query", query_body("kdom", "tree:n=8", 0, 2))
        doc = json.loads(http(port, "/metrics")[1])
        assert doc["schema"] == SERVE_SCHEMA
        counters = doc["volatile"]["counters"]
        assert (
            counters["serve_requests{endpoint=query,outcome=miss}"] == 1
        )
        assert counters["serve_tasks{state=ok}"] == 1
        histograms = doc["volatile"]["histograms"]
        assert any(
            key.startswith("serve_request_seconds") for key in histograms
        )

    def test_workloads_endpoint(self, inline_server):
        doc = json.loads(http(inline_server.port, "/workloads")[1])
        assert "kdom" in doc["workloads"]
        assert "mst" in doc["workloads"]

    def test_get_query_with_querystring(self, inline_server):
        status, payload, _ = http(
            inline_server.port,
            "/query?workload=kdom&spec=tree:n=8&seed=0&k=2",
        )
        assert status == 200
        row = json.loads(payload)
        assert row["cell"] == {
            "workload": "kdom", "spec": "tree:n=8", "seed": 0, "k": 2
        }


class TestLoadClient:
    def test_run_load_reports_throughput(self, inline_server):
        bodies = [query_body("kdom", "tree:n=8", 0, 2)] * 50
        report = run_load(
            "127.0.0.1", inline_server.port, bodies, concurrency=8
        )
        assert report["requests"] == 50
        assert report["errors"] == 0
        assert report["qps"] > 0
        assert report["statuses"] == {"200": 50}
        assert report["latency_p95_ms"] is not None


class TestDrain:
    def test_drained_server_refuses_connections(self):
        config = ServeConfig(port=0, backend="inline", cache_size=4)
        with running_server(config) as server:
            port = server.port
            assert http(port, "/status")[0] == 200
        assert server.state == "stopped"
        with pytest.raises(urllib.error.URLError):
            http(port, "/status", timeout=2)


class TestBuildCell:
    def test_defaults(self):
        cell, provider = build_cell({"spec": "tree:n=8"})
        assert cell.workload == "kdom"
        assert (cell.seed, cell.k) == (0, 2)
        assert provider == "repro.batch.sweep"  # where kdom registers

    def test_string_integers_accepted(self):
        cell, _ = build_cell(
            {"spec": "tree:n=8", "seed": "3", "k": "4"}
        )
        assert (cell.seed, cell.k) == (3, 4)

    @pytest.mark.parametrize(
        "doc, match",
        [
            ({}, "'spec'"),
            ({"spec": 7}, "'spec'"),
            ({"spec": "tree:n=8", "seed": "x"}, "'seed'"),
            ({"spec": "tree:n=8", "k": True}, "'k'"),
            ({"spec": "tree:n=8", "workload": 3}, "'workload'"),
        ],
    )
    def test_malformed_fields_are_400(self, doc, match):
        with pytest.raises(QueryError, match=match) as excinfo:
            build_cell(doc)
        assert excinfo.value.status == 400

    def test_unknown_workload_is_404(self):
        with pytest.raises(QueryError) as excinfo:
            build_cell({"spec": "tree:n=8", "workload": "nope"})
        assert excinfo.value.status == 404


class TestServeTallies:
    def test_collapses_outcome_labels(self):
        tallies = serve_tallies(
            {
                "serve_requests{endpoint=query,outcome=hit}": 3,
                "serve_requests{endpoint=query,outcome=miss}": 2,
                "serve_requests{endpoint=query,outcome=flight}": 1,
                "serve_requests{endpoint=query,outcome=error}": 1,
                "serve_tasks{state=ok}": 99,  # unrelated: ignored
            }
        )
        assert tallies == {
            "hit": 3, "miss": 2, "flight": 1, "error": 1, "total": 7
        }
