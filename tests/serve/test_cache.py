"""ResultCache: bounded LRU over canonical response bytes."""

import pytest

from repro.serve import ResultCache


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(2)
        assert cache.get("a") is None
        cache.put("a", b"row-a\n")
        assert cache.get("a") == b"row-a\n"
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_is_lru(self):
        cache = ResultCache(2)
        cache.put("a", b"a")
        cache.put("b", b"b")
        cache.get("a")  # refresh a; b is now least-recent
        cache.put("c", b"c")
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = ResultCache(2)
        cache.put("a", b"a")
        cache.put("b", b"b")
        cache.put("a", b"a2")  # rewrite refreshes too
        cache.put("c", b"c")
        assert "b" not in cache
        assert cache.get("a") == b"a2"

    def test_len_and_stats(self):
        cache = ResultCache(3)
        for key in "abc":
            cache.put(key, key.encode())
        assert len(cache) == 3
        assert cache.stats() == {
            "size": 3,
            "capacity": 3,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
        }

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity must be >= 1"):
            ResultCache(0)
