"""Procedure SimpleMST (§4.1–4.4): the (k+1, n) forest of MST fragments."""

import pytest

from repro.core import simple_mst_forest, log2_phase_count
from repro.graphs import (
    assign_unique_weights,
    complete_graph,
    cycle_graph,
    grid_graph,
    random_connected_graph,
)
from repro.mst import kruskal_mst
from repro.verify import check_spanning_forest


def weighted(factory, seed):
    return assign_unique_weights(factory, seed=seed)


GRAPHS = [
    ("grid", weighted(grid_graph(7, 7), 1)),
    ("cycle", weighted(cycle_graph(45), 2)),
    ("dense", weighted(random_connected_graph(70, 0.15, seed=3), 4)),
    ("sparse", weighted(random_connected_graph(120, 0.02, seed=5), 6)),
    ("clique", weighted(complete_graph(14), 7)),
]


class TestLemma42Properties:
    @pytest.mark.parametrize("name,graph", GRAPHS)
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_fragment_sizes(self, name, graph, k):
        _parents, fragments, _net = simple_mst_forest(graph, k)
        report = check_spanning_forest(graph, fragments, sigma=k + 1)
        assert report, report.problems

    @pytest.mark.parametrize("name,graph", GRAPHS)
    def test_fragments_are_mst_subtrees(self, name, graph):
        parents, _fragments, _net = simple_mst_forest(graph, 3)
        mst = kruskal_mst(graph)
        for v, p in parents.items():
            if p is not None:
                assert (min(v, p), max(v, p)) in mst

    def test_fragment_count_bound(self):
        g = weighted(random_connected_graph(100, 0.05, seed=8), 9)
        for k in (1, 3, 7):
            _parents, fragments, _net = simple_mst_forest(g, k)
            assert len(fragments) <= max(1, 100 // (k + 1))


class TestLemma41Time:
    def test_rounds_linear_in_k(self):
        g = weighted(random_connected_graph(150, 0.04, seed=1), 2)
        rounds = {}
        for k in (3, 7, 15, 31):
            _p, _f, net = simple_mst_forest(g, k)
            rounds[k] = net.metrics.rounds
        # sum of 5*2^i+3 phases: roughly doubles per doubling of k.
        assert rounds[31] <= 3 * rounds[15]
        assert rounds[31] <= 12 * (31 + 1) + 40

    def test_rounds_independent_of_n(self):
        k = 7
        rounds = []
        for n, seed in ((100, 1), (800, 2)):
            g = weighted(random_connected_graph(n, 4.0 / n, seed=seed), seed)
            _p, _f, net = simple_mst_forest(g, k)
            rounds.append(net.metrics.rounds)
        assert rounds[0] == rounds[1]  # the schedule depends only on k


class TestStructure:
    def test_k_zero_singletons(self):
        g = weighted(cycle_graph(10), 1)
        parents, fragments, net = simple_mst_forest(g, 0)
        assert len(fragments) == 10
        assert net.metrics.rounds == 0

    def test_one_root_per_fragment(self):
        g = weighted(grid_graph(6, 6), 3)
        _parents, fragments, net = simple_mst_forest(g, 3)
        roots = {
            v
            for v in g.nodes
            if net.programs[v].output["is_root"]
        }
        for fragment in fragments:
            assert len(fragment & roots) == 1

    def test_phase_count(self):
        assert log2_phase_count(0) == 0
        assert log2_phase_count(1) == 1
        assert log2_phase_count(3) == 2
        assert log2_phase_count(4) == 3
        assert log2_phase_count(7) == 3

    def test_children_parent_symmetry(self):
        g = weighted(random_connected_graph(60, 0.06, seed=4), 5)
        parents, _fragments, net = simple_mst_forest(g, 3)
        for v in g.nodes:
            for c in net.programs[v].output["children"]:
                assert parents[c] == v

    def test_large_k_single_fragment_is_mst(self):
        g = weighted(random_connected_graph(40, 0.15, seed=6), 7)
        parents, fragments, _net = simple_mst_forest(g, 39)
        assert len(fragments) == 1
        edges = {
            (min(v, p), max(v, p))
            for v, p in parents.items()
            if p is not None
        }
        assert edges == kruskal_mst(g)


from hypothesis import given, settings
from hypothesis import strategies as st

from ..conftest import weighted_graphs


@settings(max_examples=15, deadline=None)
@given(weighted_graphs(min_nodes=4, max_nodes=30), st.integers(min_value=1, max_value=6))
def test_simplemst_property(graph, k):
    parents, fragments, _net = simple_mst_forest(graph, k)
    mst = kruskal_mst(graph)
    for v, p in parents.items():
        if p is not None:
            assert (min(v, p), max(v, p)) in mst
    report = check_spanning_forest(graph, fragments, sigma=min(k + 1, graph.num_nodes))
    assert report, report.problems


class TestFragmentIdentity:
    """§4.2's identity discussion: a node's believed fragment id may be
    outdated (it names an old root) but always names a member of the
    node's own fragment."""

    def test_believed_id_is_a_fragment_member(self):
        g = weighted(random_connected_graph(120, 0.04, seed=11), 12)
        _parents, fragments, net = simple_mst_forest(g, 7)
        owner = {}
        for fragment in fragments:
            for v in fragment:
                owner[v] = id(fragment)
        for fragment in fragments:
            for v in fragment:
                believed = net.programs[v].output["fragment_id"]
                assert owner[believed] == owner[v], (v, believed)

    def test_believed_ids_never_cross_fragments(self):
        # Even a stale id never names a node of a *different* fragment
        # ("its main useful property is that it is different from the id
        # of any other fragment", §4.2).  Roots themselves may hold a
        # stale id when they won rootship after the last identity
        # broadcast — faithful to the paper.
        g = weighted(grid_graph(8, 8), 13)
        _parents, fragments, net = simple_mst_forest(g, 3)
        owner = {}
        for index, fragment in enumerate(fragments):
            for v in fragment:
                owner[v] = index
        for v in g.nodes:
            believed = net.programs[v].output["fragment_id"]
            assert owner[believed] == owner[v]
