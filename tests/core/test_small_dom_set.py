"""Small-Dom-Set: the Lemma 3.2 contract, plus the balanced property."""

import math

import pytest
from hypothesis import given, settings

from repro.core import small_dom_set
from repro.graphs import Graph, RootedTree, random_tree, star_graph
from repro.verify import (
    every_dominator_has_outside_neighbor,
    is_dominating,
)

from ..conftest import pruefer_trees


def run_on(g, root=0):
    rt = RootedTree.from_graph(g, root)
    return small_dom_set(g, rt.parent)


class TestLemma32Contract:
    @pytest.mark.parametrize("n,seed", [(2, 0), (3, 1), (10, 2), (75, 3), (400, 4)])
    def test_dominating(self, n, seed):
        g = random_tree(n, seed=seed)
        dominators, _p, _net = run_on(g)
        assert is_dominating(g, dominators)

    @pytest.mark.parametrize("n,seed", [(2, 0), (9, 1), (64, 2), (333, 3)])
    def test_size_at_most_half(self, n, seed):
        g = random_tree(n, seed=seed)
        dominators, _p, _net = run_on(g)
        assert len(dominators) <= math.ceil(n / 2)

    @pytest.mark.parametrize("n,seed", [(4, 0), (31, 1), (100, 2)])
    def test_every_dominator_has_outside_neighbor(self, n, seed):
        g = random_tree(n, seed=seed)
        dominators, _p, _net = run_on(g)
        assert every_dominator_has_outside_neighbor(g, dominators)

    def test_rounds_olog_star(self):
        rounds = []
        for n in (32, 4096):
            g = random_tree(n, seed=7)
            _d, _p, net = run_on(g)
            rounds.append(net.metrics.rounds)
        assert rounds[1] - rounds[0] <= 4


class TestBalancedOutput:
    @pytest.mark.parametrize("n,seed", [(2, 0), (17, 1), (90, 2)])
    def test_clusters_are_stars_with_two_plus_nodes(self, n, seed):
        g = random_tree(n, seed=seed)
        dominators, partition, _net = run_on(g)
        for cluster in partition:
            assert cluster.size >= 2
            assert cluster.center in dominators
            for member in cluster.members:
                if member != cluster.center:
                    assert g.has_edge(member, cluster.center)
                    assert member not in dominators

    def test_one_dominator_per_cluster(self):
        g = random_tree(64, seed=3)
        dominators, partition, _net = run_on(g)
        assert len(dominators) == partition.num_clusters

    def test_star_graph_single_cluster(self):
        g = star_graph(12)
        dominators, partition, _net = run_on(g)
        assert partition.num_clusters == 1
        assert is_dominating(g, dominators)

    def test_isolated_node_flagged_singleton(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_node(5)
        dominators, partition, net = small_dom_set(
            g, {0: None, 1: 0, 5: None}
        )
        assert net.programs[5].output["singleton"] is True
        assert 5 in dominators


@settings(max_examples=25, deadline=None)
@given(pruefer_trees(max_nodes=40))
def test_small_dom_set_contract_property(tree):
    rt = RootedTree.from_graph(tree, 0)
    dominators, partition, _net = small_dom_set(tree, rt.parent)
    n = tree.num_nodes
    assert is_dominating(tree, dominators)
    assert len(dominators) <= math.ceil(n / 2)
    assert every_dominator_has_outside_neighbor(tree, dominators)
    assert partition.covers(tree.nodes)
    assert partition.min_cluster_size() >= 2


class TestForestInput:
    def test_two_tree_forest(self):
        """The partition algorithms feed forests; both trees resolve
        independently in the same run."""
        from repro.graphs import Graph, random_tree

        a = random_tree(12, seed=1)
        b = random_tree(9, seed=2).relabeled({i: 100 + i for i in range(9)})
        forest = Graph()
        for g in (a, b):
            for v in g.nodes:
                forest.add_node(v)
            for u, v, w in g.weighted_edges():
                forest.add_edge(u, v, w)
        parent = dict(RootedTree.from_graph(a, 0).parent)
        parent.update(RootedTree.from_graph(b, 100).parent)
        dominators, partition, _net = small_dom_set(forest, parent)
        assert is_dominating(forest, dominators)
        assert partition.covers(forest.nodes)
        # Clusters never straddle the two trees.
        for cluster in partition:
            sides = {member >= 100 for member in cluster.members}
            assert len(sides) == 1
