"""Distributed minimum k-domination DP and the nearest-dominator wave."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import minimum_kdominating_set, tree_kdominating_set
from repro.core.kdom_tree import NearestDominatorProgram
from repro.graphs import RootedTree, path_graph, random_tree, star_graph
from repro.primitives import build_bfs_tree
from repro.sim import Network
from repro.verify import is_k_dominating

from ..conftest import pruefer_trees


def run_on(g, k, root=0):
    rt = RootedTree.from_graph(g, root)
    return tree_kdominating_set(g, root, rt.parent, k), rt


class TestDistributedDP:
    @pytest.mark.parametrize(
        "n,k,seed", [(20, 1, 0), (50, 3, 1), (120, 7, 2), (6, 2, 3)]
    )
    def test_matches_sequential_minimum(self, n, k, seed):
        g = random_tree(n, seed=seed)
        (dominators, _partition, _staged), rt = run_on(g, k)
        assert len(dominators) == len(minimum_kdominating_set(rt, k))
        assert is_k_dominating(g, dominators, k)

    def test_partition_radius_bounded(self):
        g = random_tree(80, seed=4)
        (dominators, partition, _staged), _rt = run_on(g, 4)
        assert partition.covers(g.nodes)
        assert partition.max_radius_in_graph(g) <= 4

    def test_partition_centers_are_dominators(self):
        g = random_tree(60, seed=5)
        (dominators, partition, _staged), _rt = run_on(g, 3)
        assert set(partition.centers) <= dominators

    def test_rounds_linear_in_depth_plus_k(self):
        g = path_graph(120)
        (_d, _p, staged), rt = run_on(g, 5)
        assert staged.total_rounds <= rt.height + 2 * 5 + 6

    def test_k_zero_everyone_dominates(self):
        g = path_graph(6)
        (dominators, partition, _staged), _rt = run_on(g, 0)
        assert dominators == set(g.nodes)

    def test_star(self):
        g = star_graph(30)
        (dominators, _p, _s), _rt = run_on(g, 1)
        assert dominators == {0}


class TestNearestDominatorWave:
    def test_ties_break_to_smallest_id(self):
        g = path_graph(3)
        # node 1 equidistant from dominators 0 and 2.
        net = Network(g)
        net.run(lambda ctx: NearestDominatorProgram(ctx, ctx.node in {0, 2}, 1))
        assert net.programs[1].output["dominator"] == 0

    def test_distances_reported(self):
        g = path_graph(7)
        net = Network(g)
        net.run(lambda ctx: NearestDominatorProgram(ctx, ctx.node == 0, 6))
        for v in g.nodes:
            assert net.programs[v].output["dominator_distance"] == v

    def test_out_of_range_left_unassigned(self):
        g = path_graph(10)
        net = Network(g)
        net.run(lambda ctx: NearestDominatorProgram(ctx, ctx.node == 0, 3))
        assert net.programs[9].output["dominator"] is None

    def test_driver_rejects_non_dominating_input(self):
        g = path_graph(10)
        # force a broken 'dominating set' through the wave by calling
        # the driver with k too small for the DP to fail — instead test
        # the RuntimeError path via a direct wave with no dominators in
        # range, through tree_kdominating_set's internal check.
        from repro.core.kdom_tree import NearestDominatorProgram as NDP

        net = Network(g)
        net.run(lambda ctx: NDP(ctx, False, 2))
        assert all(
            net.programs[v].output["dominator"] is None for v in g.nodes
        )


@settings(max_examples=25, deadline=None)
@given(pruefer_trees(max_nodes=30), st.integers(min_value=1, max_value=4))
def test_distributed_dp_property(tree, k):
    parents, _depths, _net = build_bfs_tree(tree, 0)
    dominators, partition, _staged = tree_kdominating_set(tree, 0, parents, k)
    assert is_k_dominating(tree, dominators, k)
    n = tree.num_nodes
    if n >= k + 1:
        assert len(dominators) <= n // (k + 1)
    assert partition.covers(tree.nodes)
