"""The §3.2 partition ladder: DOM_Partition_1 / _2 / fast."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import dom_partition, dom_partition_1, dom_partition_2
from repro.graphs import (
    RootedTree,
    broom_tree,
    caterpillar_tree,
    path_graph,
    random_tree,
    spider_tree,
    star_graph,
)
from repro.verify import check_partition

from ..conftest import pruefer_trees

ALGOS = [
    ("partition-1", dom_partition_1),
    ("partition-2", dom_partition_2),
    ("partition-fast", dom_partition),
]

TREES = [
    ("path", lambda: path_graph(64)),
    ("star", lambda: star_graph(64)),
    ("random", lambda: random_tree(120, seed=3)),
    ("caterpillar", lambda: caterpillar_tree(20, 3)),
    ("broom", lambda: broom_tree(30, 30)),
    ("spider", lambda: spider_tree(5, 15)),
]


@pytest.mark.parametrize("alg_name,algorithm", ALGOS)
@pytest.mark.parametrize("tree_name,factory", TREES)
@pytest.mark.parametrize("k", [1, 3, 7])
def test_size_guarantee(alg_name, algorithm, tree_name, factory, k):
    g = factory()
    rt = RootedTree.from_graph(g, 0)
    partition, _staged = algorithm(g, 0, rt.parent, k)
    report = check_partition(g, partition, min_cluster_size=k + 1)
    assert report, report.problems


@pytest.mark.parametrize("tree_name,factory", TREES)
@pytest.mark.parametrize("k", [1, 3, 7, 15])
def test_radius_bounds(tree_name, factory, k):
    g = factory()
    if g.num_nodes < k + 1:
        pytest.skip("tree smaller than k+1")
    rt = RootedTree.from_graph(g, 0)
    p1, _s = dom_partition_1(g, 0, rt.parent, k)
    assert check_partition(g, p1, max_cluster_radius=4 * k * k or 1)
    p2, _s = dom_partition_2(g, 0, rt.parent, k)
    assert check_partition(g, p2, max_cluster_radius=5 * k + 2)
    pf, _s = dom_partition(g, 0, rt.parent, k)
    assert check_partition(g, pf, max_cluster_radius=5 * k + 2)


class TestEdgeCases:
    def test_too_small_tree_rejected(self):
        g = path_graph(3)
        rt = RootedTree.from_graph(g, 0)
        for algorithm in (dom_partition_1, dom_partition_2, dom_partition):
            with pytest.raises(ValueError):
                algorithm(g, 0, rt.parent, 5)

    def test_exact_size_k_plus_1(self):
        g = path_graph(8)
        rt = RootedTree.from_graph(g, 0)
        partition, _s = dom_partition(g, 0, rt.parent, 7)
        assert partition.num_clusters == 1
        assert partition.clusters[0].size == 8

    def test_k_zero_singletons(self):
        g = path_graph(5)
        rt = RootedTree.from_graph(g, 0)
        partition, staged = dom_partition(g, 0, rt.parent, 0)
        assert partition.num_clusters == 5
        assert staged.total_rounds == 0

    def test_nontrivial_root(self):
        g = random_tree(60, seed=8)
        root = 17
        rt = RootedTree.from_graph(g, root)
        partition, _s = dom_partition(g, root, rt.parent, 3)
        assert check_partition(g, partition, min_cluster_size=4)


class TestRoundScaling:
    def test_fast_variant_linear_in_k(self):
        g = path_graph(2000)
        rt = RootedTree.from_graph(g, 0)
        rounds = {}
        for k in (3, 7, 15, 31):
            _p, staged = dom_partition(g, 0, rt.parent, k)
            rounds[k] = staged.total_rounds
        # Doubling k should not much more than double the rounds.
        assert rounds[31] <= 16 * rounds[3]
        assert rounds[31] / rounds[3] >= 2  # and it genuinely grows

    def test_rounds_flat_in_n_for_fixed_k(self):
        k = 7
        rounds = []
        for n in (256, 2048):
            g = random_tree(n, seed=5)
            rt = RootedTree.from_graph(g, 0)
            _p, staged = dom_partition(g, 0, rt.parent, k)
            rounds.append(staged.total_rounds)
        # O(k log* n): 8x the nodes adds at most ~35% rounds.
        assert rounds[1] <= rounds[0] * 1.35 + 10


@settings(max_examples=15, deadline=None)
@given(pruefer_trees(min_nodes=8, max_nodes=40), st.integers(min_value=1, max_value=4))
def test_fast_partition_property(tree, k):
    if tree.num_nodes < k + 1:
        return
    rt = RootedTree.from_graph(tree, 0)
    partition, _staged = dom_partition(tree, 0, rt.parent, k)
    report = check_partition(
        tree, partition, min_cluster_size=k + 1, max_cluster_radius=5 * k + 2
    )
    assert report, report.problems
