"""BalancedDOM and the Fig. 4 singleton-repair steps."""

import pytest

from repro.core import balanced_dom, repair_singletons
from repro.graphs import Graph, RootedTree, path_graph, random_tree
from repro.verify import is_dominating


class TestBalancedDom:
    @pytest.mark.parametrize("n,seed", [(2, 0), (25, 1), (128, 2)])
    def test_definition_31(self, n, seed):
        g = random_tree(n, seed=seed)
        rt = RootedTree.from_graph(g, 0)
        dominators, partition, _net = balanced_dom(g, rt.parent)
        assert len(dominators) <= n // 2  # (a)
        assert is_dominating(g, dominators)  # (b)
        assert partition.min_cluster_size() >= 2  # (c)
        assert partition.covers(g.nodes)


class TestRepairSingletons:
    def test_fig4_steps_on_singleton_input(self):
        # Path 0-1-2-3 with D = {0, 2}: cluster {0} is a singleton.
        g = path_graph(4)
        d, centers = repair_singletons(g, {0, 2}, {0: 0, 1: 2, 2: 2, 3: 2})
        assert is_dominating(g, d)
        sizes = {}
        for v, c in centers.items():
            sizes[c] = sizes.get(c, 0) + 1
        assert all(s >= 2 for s in sizes.values())
        assert len(d) <= 2

    def test_step2_picks_non_dominator_neighbor(self):
        # Path 1-0-2-3 with D = {1, 2}: cluster {1} is a singleton and
        # 1's only neighbour 0 is outside D (contract satisfied).
        g = Graph()
        g.add_edge(1, 0)
        g.add_edge(0, 2)
        g.add_edge(2, 3)
        d, centers = repair_singletons(g, {1, 2}, {1: 1, 0: 2, 2: 2, 3: 2})
        assert is_dominating(g, d)
        assert 1 not in d  # the singleton quit D
        assert 0 in d  # its chosen neighbour became a dominator
        sizes = {}
        for _v, c in centers.items():
            sizes[c] = sizes.get(c, 0) + 1
        assert all(s >= 2 for s in sizes.values())

    def test_contract_violation_raises(self):
        # D = whole graph: dominator 0 has no neighbour outside D, so a
        # singleton cluster at 0 cannot be repaired.
        g = path_graph(2)
        with pytest.raises(ValueError):
            repair_singletons(g, {0, 1}, {0: 0, 1: 1})

    def test_no_singletons_is_identity(self):
        g = path_graph(4)
        d0 = {1, 3}
        centers0 = {0: 1, 1: 1, 2: 3, 3: 3}
        d, centers = repair_singletons(g, d0, centers0)
        assert d == d0 and centers == centers0

    def test_isolated_node_kept(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_node(9)
        d, centers = repair_singletons(g, {0, 9}, {0: 0, 1: 0, 9: 9})
        assert 9 in d and centers[9] == 9

    def test_step4_dominator_rejoins_leaver(self):
        # Path 2-0-1 with D = {2, 1}, clusters {2} and {1, 0}.  Step 2:
        # singleton {2} quits D and picks 0; step 3: 0 becomes a
        # dominator and pulls out of 1's cluster, leaving {1} a
        # singleton; step 4: dominator 1 quits D and rejoins leaver 0.
        g = Graph()
        g.add_edge(2, 0)
        g.add_edge(0, 1)
        d, centers = repair_singletons(g, {2, 1}, {2: 2, 0: 1, 1: 1})
        assert is_dominating(g, d)
        assert d == {0}
        counts = {}
        for _v, c in centers.items():
            counts[c] = counts.get(c, 0) + 1
        assert all(s >= 2 for s in counts.values())
