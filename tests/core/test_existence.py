"""Lemma 2.1 constructions — including the R1 reproduction finding."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    greedy_kdominating_set,
    is_k_dominating_in_tree,
    level_class_construction,
    level_classes,
    minimum_kdominating_set,
)
from repro.graphs import Graph, RootedTree, path_graph, random_tree, star_graph

from ..conftest import pruefer_trees


def rooted(g, root=0):
    return RootedTree.from_graph(g, root)


class TestLevelClasses:
    def test_classes_partition_nodes(self):
        rt = rooted(random_tree(50, seed=1))
        classes = level_classes(rt, 3)
        assert sum(len(c) for c in classes) == 50
        assert len(classes) == 4

    def test_smallest_class_meets_bound(self):
        for n, k, seed in [(30, 2, 1), (100, 4, 2), (17, 3, 3)]:
            rt = rooted(random_tree(n, seed=seed))
            d, _l = level_class_construction(rt, k)
            assert len(d) <= max(1, n // (k + 1))

    def test_shallow_tree_returns_root(self):
        rt = rooted(star_graph(10))
        d, _l = level_class_construction(rt, 5)
        assert d == {0}

    def test_path_classes_all_dominate(self):
        # On an end-rooted path there is no shallow leaf, so the paper's
        # claim holds for every class (the R1 gap needs a shallow leaf).
        rt = rooted(path_graph(30))
        for k in (1, 2, 4):
            for cls in level_classes(rt, k):
                assert is_k_dominating_in_tree(rt, cls, k)

    def test_lemma21_domination_gap(self):
        """R1: the paper's 'clearly every D_i is a k-dominating set' is
        false — a shallow leaf cannot reach class l > its depth."""
        g = Graph()
        g.add_edge(0, 1)  # shallow leaf x = 1
        previous = 0
        for i in range(2, 12):  # deep path 0-2-3-...-11
            g.add_edge(previous, i)
            previous = i
        rt = rooted(g)
        k = 2
        # class 2 is the smallest, and it does NOT dominate.
        chosen, level = level_class_construction(rt, k)
        assert level == 2
        assert not is_k_dominating_in_tree(rt, chosen, k)
        # while the minimum-DP construction does, within the same bound.
        repaired = minimum_kdominating_set(rt, k)
        assert is_k_dominating_in_tree(rt, repaired, k)
        assert len(repaired) <= max(1, g.num_nodes // (k + 1))


class TestGreedy:
    @pytest.mark.parametrize("n,k,seed", [(25, 1, 0), (60, 3, 1), (90, 6, 2)])
    def test_dominates(self, n, k, seed):
        rt = rooted(random_tree(n, seed=seed))
        d = greedy_kdominating_set(rt, k)
        assert is_k_dominating_in_tree(rt, d, k)

    def test_k_zero_takes_everyone(self):
        rt = rooted(path_graph(5))
        assert greedy_kdominating_set(rt, 0) == set(range(5))

    def test_negative_k_rejected(self):
        rt = rooted(path_graph(3))
        with pytest.raises(ValueError):
            greedy_kdominating_set(rt, -1)


class TestMinimumDP:
    @pytest.mark.parametrize(
        "n,k,seed", [(20, 1, 0), (40, 2, 1), (80, 5, 2), (7, 3, 3)]
    )
    def test_dominates_and_meets_bound(self, n, k, seed):
        rt = rooted(random_tree(n, seed=seed))
        d = minimum_kdominating_set(rt, k)
        assert is_k_dominating_in_tree(rt, d, k)
        if n >= k + 1:
            assert len(d) <= n // (k + 1)  # Meir–Moon

    def test_exact_minimum_small_trees(self):
        for seed in range(6):
            g = random_tree(9, seed=seed)
            rt = rooted(g)
            for k in (1, 2):
                d = minimum_kdominating_set(rt, k)
                best = None
                nodes = list(g.nodes)
                for r in range(1, len(nodes) + 1):
                    if any(
                        is_k_dominating_in_tree(rt, set(c), k)
                        for c in itertools.combinations(nodes, r)
                    ):
                        best = r
                        break
                assert len(d) == best

    def test_path_exact_value(self):
        # gamma_k(P_n) = ceil(n / (2k + 1)).
        for n, k in [(10, 1), (21, 1), (21, 2), (30, 3)]:
            rt = rooted(path_graph(n))
            d = minimum_kdominating_set(rt, k)
            assert len(d) == -(-n // (2 * k + 1))

    def test_singleton_tree(self):
        g = Graph()
        g.add_node(0)
        rt = RootedTree({0: None}, 0)
        assert minimum_kdominating_set(rt, 4) == {0}


@settings(max_examples=30, deadline=None)
@given(pruefer_trees(max_nodes=30), st.integers(min_value=1, max_value=5))
def test_minimum_dp_properties(tree, k):
    rt = RootedTree.from_graph(tree, 0)
    d = minimum_kdominating_set(rt, k)
    assert is_k_dominating_in_tree(rt, d, k)
    n = tree.num_nodes
    if n >= k + 1:
        assert len(d) <= n // (k + 1)
