"""Algorithm DiamDOM (§2.2): census counts, pipelining, Lemma 2.3 timing."""

import pytest

from repro.core import diam_dom, level_classes
from repro.core.diam_dom import DiamDOMProgram
from repro.graphs import (
    RootedTree,
    diameter,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)


class TestCensusCorrectness:
    @pytest.mark.parametrize(
        "n,k,seed", [(30, 2, 1), (60, 4, 2), (100, 1, 3), (45, 6, 4)]
    )
    def test_counts_match_level_classes(self, n, k, seed):
        g = random_tree(n, seed=seed)
        dominating, level, counts, _net = diam_dom(g, 0, k)
        rt = RootedTree.from_graph(g, 0)
        classes = level_classes(rt, k)
        assert counts == {lvl: len(classes[lvl]) for lvl in range(k + 1)}
        assert dominating == classes[level]

    def test_chooses_minimum_class(self):
        g = random_tree(80, seed=5)
        _d, level, counts, _net = diam_dom(g, 0, 3)
        assert counts[level] == min(counts.values())

    def test_size_bound_always(self):
        for n, k, seed in [(30, 2, 1), (77, 3, 2), (120, 5, 6)]:
            g = random_tree(n, seed=seed)
            d, _l, _c, _net = diam_dom(g, 0, k)
            assert len(d) <= max(1, n // (k + 1))

    def test_star(self):
        g = star_graph(40)
        d, level, counts, _net = diam_dom(g, 0, 1)
        assert counts == {0: 1, 1: 39}
        assert level == 0 and d == {0}

    def test_works_on_general_graph_over_bfs_tree(self):
        g = grid_graph(6, 6)
        d, _l, counts, _net = diam_dom(g, 0, 2)
        assert sum(counts.values()) == 36


class TestLemma23Timing:
    @pytest.mark.parametrize(
        "graph_factory,label",
        [
            (lambda: path_graph(60), "path60"),
            (lambda: random_tree(100, seed=1), "tree100"),
            (lambda: star_graph(30), "star30"),
        ],
    )
    def test_decision_round_within_bound(self, graph_factory, label):
        g = graph_factory()
        k = 3
        _d, _l, _c, net = diam_dom(g, 0, k)
        decision = net.programs[0].output["decision_round"]
        assert decision <= 5 * diameter(g) + k + 5

    def test_census_messages_never_collide(self):
        """Lemma 2.3's 'crucial observation': the k+1 staggered censuses
        share tree edges without collision.  The simulator raises
        CongestionViolation on any collision, so completing the run IS
        the assertion; we additionally check the budget."""
        g = random_tree(150, seed=9)
        k = 8
        _d, _l, _c, net = diam_dom(g, 0, k)
        assert net.metrics.max_message_words <= 8

    def test_k_zero(self):
        g = path_graph(10)
        d, level, counts, _net = diam_dom(g, 0, 0)
        assert level == 0 and counts == {0: 10}
        assert d == set(g.nodes)


class TestLevelStaggeredRemark:
    """The remark after Lemma 2.3: staggering censuses by start level
    makes the decision round independent of k (5*Diam flat)."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: path_graph(60),
            lambda: random_tree(120, seed=4),
            lambda: star_graph(25),
        ],
    )
    def test_same_output_as_standard(self, factory):
        g = factory()
        for k in (1, 3, 8):
            d1, l1, c1, _n1 = diam_dom(g, 0, k)
            d2, l2, c2, _n2 = diam_dom(g, 0, k, staggered_by_level=True)
            assert d1 == d2 and l1 == l2
            rt = RootedTree.from_graph(g, 0)
            classes = level_classes(rt, k)
            for level, count in c2.items():
                assert count == len(classes[level])

    def test_decision_round_flat_in_k(self):
        g = random_tree(200, seed=5)
        decisions = set()
        for k in (1, 4, 16):
            _d, _l, _c, net = diam_dom(g, 0, k, staggered_by_level=True)
            decisions.add(net.programs[0].output["decision_round"])
        assert len(decisions) == 1

    def test_never_slower_than_standard(self):
        g = random_tree(90, seed=6)
        for k in (2, 7):
            _d1, _l1, _c1, n1 = diam_dom(g, 0, k)
            _d2, _l2, _c2, n2 = diam_dom(g, 0, k, staggered_by_level=True)
            assert (
                n2.programs[0].output["decision_round"]
                <= n1.programs[0].output["decision_round"]
            )


class TestCensusScheduleFidelity:
    """Fig. 2's exact timing: a depth-i node emits census l at round
    t1 + l + (M - i), verified via the send trace."""

    def test_send_rounds_match_schedule(self):
        from repro.sim import Network, TraceRecorder

        g = random_tree(60, seed=9)
        k = 3
        recorder = TraceRecorder()
        net = Network(g)
        net.attach_subscriber(recorder)
        net.run(lambda ctx: DiamDOMProgram(ctx, 0, k))

        t1 = net.programs[0].output["t1"] if "t1" in net.programs[0].output else None
        depths = net.output_field("depth")
        tree_depth = net.programs[0].output["tree_depth"]
        # Collect actual census sends from the trace.
        census_sends = {}
        for event in recorder.events:
            if event.kind == "send" and event.detail[1][0] == "CEN":
                level = event.detail[1][1]
                census_sends.setdefault((event.node, level), event.round)
        t1 = net.programs[0].output["t1"]
        for (node, level), round_sent in census_sends.items():
            expected = t1 + level + (tree_depth - depths[node])
            assert round_sent == expected, (node, level, round_sent, expected)

    def test_every_nonroot_sends_every_census(self):
        from repro.sim import Network, TraceRecorder

        g = random_tree(40, seed=10)
        k = 2
        recorder = TraceRecorder()
        net = Network(g)
        net.attach_subscriber(recorder)
        net.run(lambda ctx: DiamDOMProgram(ctx, 0, k))
        counts = {}
        for event in recorder.events:
            if event.kind == "send" and event.detail[1][0] == "CEN":
                counts[event.node] = counts.get(event.node, 0) + 1
        for v in g.nodes:
            if v != 0:
                assert counts.get(v, 0) == k + 1, v
