"""FastDOM_T (Theorem 3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fastdom_tree
from repro.graphs import (
    RootedTree,
    broom_tree,
    path_graph,
    random_tree,
    star_graph,
)
from repro.verify import is_k_dominating, meets_size_bound

from ..conftest import pruefer_trees


def run_on(g, k, method="kdom-dp", root=0):
    rt = RootedTree.from_graph(g, root)
    return fastdom_tree(g, root, rt.parent, k, method=method)


class TestTheorem32:
    @pytest.mark.parametrize(
        "factory,label",
        [
            (lambda: path_graph(150), "path"),
            (lambda: star_graph(80), "star"),
            (lambda: random_tree(200, seed=1), "random"),
            (lambda: broom_tree(40, 40), "broom"),
        ],
    )
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_size_and_domination(self, factory, label, k):
        g = factory()
        dominators, partition, _staged = run_on(g, k)
        assert meets_size_bound(g.num_nodes, k, len(dominators))
        assert is_k_dominating(g, dominators, k)
        assert partition.covers(g.nodes)
        assert partition.max_radius_in_graph(g) <= k

    def test_k_zero(self):
        g = path_graph(5)
        dominators, partition, staged = run_on(g, 0)
        assert dominators == set(g.nodes)
        assert staged.total_rounds == 0

    def test_invalid_method(self):
        g = path_graph(10)
        rt = RootedTree.from_graph(g, 0)
        with pytest.raises(ValueError):
            fastdom_tree(g, 0, rt.parent, 2, method="nope")

    def test_diamdom_method_on_paths(self):
        # On a path the level classes always dominate (no shallow
        # leaves inside clusters anchored at their tops), so the
        # faithful census method works end to end.
        g = path_graph(100)
        dominators, partition, _staged = run_on(g, 3, method="diamdom")
        assert is_k_dominating(g, dominators, 3)
        assert meets_size_bound(100, 3, len(dominators))

    def test_rounds_scale_with_k_not_n(self):
        k = 5
        rounds = []
        for n in (200, 1600):
            g = random_tree(n, seed=2)
            _d, _p, staged = run_on(g, k)
            rounds.append(staged.total_rounds)
        assert rounds[1] <= rounds[0] * 1.4 + 10

    def test_dominators_inside_own_cluster(self):
        g = random_tree(90, seed=3)
        dominators, partition, _staged = run_on(g, 3)
        for cluster_center in partition.centers:
            assert cluster_center in dominators


@settings(max_examples=15, deadline=None)
@given(pruefer_trees(min_nodes=6, max_nodes=35), st.integers(min_value=1, max_value=4))
def test_fastdom_tree_property(tree, k):
    if tree.num_nodes < k + 1:
        return
    rt = RootedTree.from_graph(tree, 0)
    dominators, partition, _staged = fastdom_tree(tree, 0, rt.parent, k)
    assert is_k_dominating(tree, dominators, k)
    assert meets_size_bound(tree.num_nodes, k, len(dominators))
