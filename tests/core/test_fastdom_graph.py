"""FastDOM_G (Theorem 4.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fastdom_graph
from repro.graphs import (
    assign_unique_weights,
    complete_graph,
    cycle_graph,
    grid_graph,
    random_connected_graph,
    torus_graph,
)
from repro.verify import is_k_dominating, meets_size_bound

from ..conftest import weighted_graphs

GRAPHS = [
    ("grid", assign_unique_weights(grid_graph(8, 8), 1)),
    ("torus", assign_unique_weights(torus_graph(6, 6), 2)),
    ("cycle", assign_unique_weights(cycle_graph(50), 3)),
    ("dense", assign_unique_weights(random_connected_graph(80, 0.1, 4), 5)),
    ("clique", assign_unique_weights(complete_graph(20), 6)),
]


class TestTheorem44:
    @pytest.mark.parametrize("name,graph", GRAPHS)
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_size_and_domination(self, name, graph, k):
        dominators, partition, _staged = fastdom_graph(graph, k)
        assert meets_size_bound(graph.num_nodes, k, len(dominators))
        assert is_k_dominating(graph, dominators, k)
        assert partition.covers(graph.nodes)

    def test_tiny_graph_single_dominator(self):
        g = assign_unique_weights(cycle_graph(4), 1)
        dominators, partition, _staged = fastdom_graph(g, 10)
        assert len(dominators) == 1
        assert is_k_dominating(g, dominators, 10)

    def test_empty_graph(self):
        from repro.graphs import Graph

        dominators, partition, _staged = fastdom_graph(Graph(), 3)
        assert dominators == set()

    def test_stage_breakdown_reported(self):
        g = assign_unique_weights(grid_graph(6, 6), 2)
        _d, _p, staged = fastdom_graph(g, 3)
        assert "simple-mst" in staged.breakdown()
        assert "fastdom-per-fragment" in staged.breakdown()

    def test_rounds_scale_with_k_not_n(self):
        k = 4
        rounds = []
        for n, seed in ((100, 1), (700, 2)):
            g = assign_unique_weights(
                random_connected_graph(n, 4.0 / n, seed=seed), seed
            )
            _d, _p, staged = fastdom_graph(g, k)
            rounds.append(staged.total_rounds)
        assert rounds[1] <= rounds[0] * 1.4 + 20

    def test_diamdom_method_flagged_failures_possible(self):
        """method='diamdom' either succeeds or raises the documented R1
        error; it must never silently return a non-dominating set."""
        g = assign_unique_weights(random_connected_graph(60, 0.05, 3), 4)
        try:
            dominators, _p, _s = fastdom_graph(g, 3, method="diamdom")
        except RuntimeError as exc:
            assert "R1" in str(exc) or "dominator" in str(exc)
        else:
            assert is_k_dominating(g, dominators, 3)


@settings(max_examples=15, deadline=None)
@given(weighted_graphs(min_nodes=5, max_nodes=40), st.integers(min_value=1, max_value=4))
def test_fastdom_graph_property(graph, k):
    dominators, partition, _staged = fastdom_graph(graph, k)
    assert is_k_dominating(graph, dominators, k)
    assert meets_size_bound(graph.num_nodes, k, len(dominators))
    assert partition.covers(graph.nodes)


class TestInputValidation:
    def test_disconnected_rejected(self):
        from repro.graphs import Graph

        g = Graph()
        g.add_edge(0, 1, 1)
        g.add_edge(2, 3, 2)
        with pytest.raises(ValueError):
            fastdom_graph(g, 1)
