"""Dense backend ≡ reference engine on the k-domination drivers.

The property the whole backend stands on (ISSUE 7 acceptance): for any
tree and any k, ``backend="dense"`` yields the *same* dominating set,
the *same* nearest-dominator partition, and the *same* per-stage round
breakdown as the reference event engine — the arrays are a faster
execution of the identical algorithm, never a different algorithm."""

import pytest

from repro.core import dom_partition, fastdom_tree, tree_kdominating_set
from repro.graphs import (
    RootedTree,
    broom_tree,
    caterpillar_tree,
    path_graph,
    random_tree,
    star_graph,
)

pytest.importorskip("numpy")

FAMILIES = [
    ("path", lambda: path_graph(65)),
    ("star", lambda: star_graph(48)),
    ("broom", lambda: broom_tree(25, 25)),
    ("caterpillar", lambda: caterpillar_tree(16, 3)),
    ("random-0", lambda: random_tree(90, seed=0)),
    ("random-1", lambda: random_tree(90, seed=1)),
]

KS = [2, 4, 8]


def rooted(g):
    rt = RootedTree.from_graph(g, 0)
    return rt.parent


def assert_same_staged(ref, dense):
    assert dense.breakdown() == ref.breakdown()
    assert dense.total_rounds == ref.total_rounds
    assert dense.total_messages == ref.total_messages


class TestKdomTree:
    @pytest.mark.parametrize("label,factory", FAMILIES)
    @pytest.mark.parametrize("k", KS)
    def test_identical(self, label, factory, k):
        g = factory()
        parent = rooted(g)
        ref_d, ref_p, ref_s = tree_kdominating_set(g, 0, parent, k)
        den_d, den_p, den_s = tree_kdominating_set(
            g, 0, parent, k, backend="dense"
        )
        assert den_d == ref_d
        assert den_p.center_of == ref_p.center_of
        assert_same_staged(ref_s, den_s)


class TestFastdomTree:
    @pytest.mark.parametrize("label,factory", FAMILIES)
    @pytest.mark.parametrize("k", KS)
    def test_identical(self, label, factory, k):
        g = factory()
        parent = rooted(g)
        ref_d, ref_p, ref_s = fastdom_tree(g, 0, parent, k)
        den_d, den_p, den_s = fastdom_tree(g, 0, parent, k, backend="dense")
        assert den_d == ref_d
        assert den_p.center_of == ref_p.center_of
        assert_same_staged(ref_s, den_s)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_trees_sweep(self, seed):
        # The seeds loop: a dozen random trees per k, both backends.
        g = random_tree(60 + 5 * seed, seed=seed)
        parent = rooted(g)
        for k in KS:
            ref_d, ref_p, ref_s = fastdom_tree(g, 0, parent, k)
            den_d, den_p, den_s = fastdom_tree(
                g, 0, parent, k, backend="dense"
            )
            assert den_d == ref_d, (seed, k)
            assert den_p.center_of == ref_p.center_of, (seed, k)
            assert_same_staged(ref_s, den_s)


class TestDomPartition:
    @pytest.mark.parametrize("label,factory", FAMILIES)
    @pytest.mark.parametrize("k", KS)
    def test_identical(self, label, factory, k):
        g = factory()
        parent = rooted(g)
        ref_p, ref_s = dom_partition(g, 0, parent, k)
        den_p, den_s = dom_partition(g, 0, parent, k, backend="dense")
        assert den_p.center_of == ref_p.center_of
        assert_same_staged(ref_s, den_s)

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("k", KS)
    def test_random_trees_sweep(self, seed, k):
        g = random_tree(70 + 3 * seed, seed=100 + seed)
        parent = rooted(g)
        ref_p, ref_s = dom_partition(g, 0, parent, k)
        den_p, den_s = dom_partition(g, 0, parent, k, backend="dense")
        assert den_p.center_of == ref_p.center_of, (seed, k)
        assert_same_staged(ref_s, den_s)

    def test_unknown_backend_rejected(self):
        g = path_graph(10)
        with pytest.raises(ValueError, match="unknown backend"):
            dom_partition(g, 0, rooted(g), 2, backend="sparse")
