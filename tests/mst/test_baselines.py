"""GHS and flood-collect baselines."""

import pytest

from repro.graphs import (
    Graph,
    assign_unique_weights,
    cycle_graph,
    grid_graph,
    random_connected_graph,
)
from repro.mst import flood_collect_mst, ghs_mst, kruskal_mst, pipeline_only_mst


class TestGHS:
    @pytest.mark.parametrize("seed", range(3))
    def test_exact_mst(self, seed):
        g = assign_unique_weights(
            random_connected_graph(60, 0.08, seed=seed), seed + 5
        )
        edges, _metrics = ghs_mst(g)
        assert edges == kruskal_mst(g)

    def test_rounds_grow_with_n_even_on_small_diameter(self):
        rounds = {}
        for n, seed in ((40, 1), (160, 2)):
            g = assign_unique_weights(
                random_connected_graph(n, 8.0 / n, seed=seed), seed
            )
            _e, metrics = ghs_mst(g)
            rounds[n] = metrics.rounds
        # GHS pays O(n): 4x nodes => ~4x rounds.
        assert rounds[160] >= 2.5 * rounds[40]

    def test_disconnected_raises(self):
        g = Graph()
        g.add_edge(0, 1, 1)
        g.add_edge(2, 3, 2)
        with pytest.raises(ValueError):
            ghs_mst(g)


class TestFloodBaselines:
    def test_pipeline_only_correct(self):
        g = assign_unique_weights(grid_graph(6, 6), 1)
        edges, _staged = pipeline_only_mst(g)
        assert edges == kruskal_mst(g)

    def test_flood_collect_correct(self):
        g = assign_unique_weights(cycle_graph(30), 2)
        edges, _staged = flood_collect_mst(g)
        assert edges == kruskal_mst(g)

    def test_flood_collect_pays_for_m(self):
        dense = assign_unique_weights(random_connected_graph(50, 0.5, 3), 4)
        _e1, staged_pipe = pipeline_only_mst(dense)
        _e2, staged_flood = flood_collect_mst(dense)
        assert staged_flood.total_rounds > 1.5 * staged_pipe.total_rounds
