"""Union-find structure."""

from repro.mst import UnionFind


class TestUnionFind:
    def test_initial_components(self):
        uf = UnionFind(range(5))
        assert uf.component_count == 5

    def test_union_merges(self):
        uf = UnionFind(range(4))
        assert uf.union(0, 1) is True
        assert uf.union(0, 1) is False
        assert uf.connected(0, 1)
        assert uf.component_count == 3

    def test_transitive(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")
        assert not uf.connected("a", "d")

    def test_lazy_creation(self):
        uf = UnionFind()
        assert "x" not in uf
        uf.find("x")
        assert "x" in uf

    def test_groups(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(2, 3)
        groups = sorted(sorted(g) for g in uf.groups().values())
        assert groups == [[0, 1], [2, 3], [4]]

    def test_long_chain_path_compression(self):
        uf = UnionFind()
        for i in range(1000):
            uf.union(i, i + 1)
        assert uf.connected(0, 1000)
        assert uf.component_count == 1
