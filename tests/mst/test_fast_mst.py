"""Algorithm Fast-MST (Theorem 5.6)."""

import math

import pytest
from hypothesis import given, settings

from repro.graphs import (
    assign_unique_weights,
    complete_graph,
    cycle_graph,
    grid_graph,
    lollipop_graph,
    random_connected_graph,
    torus_graph,
)
from repro.mst import default_k, fast_mst, kruskal_mst

from ..conftest import weighted_graphs

GRAPHS = [
    ("grid", lambda: grid_graph(8, 8), 1),
    ("torus", lambda: torus_graph(7, 7), 2),
    ("cycle", lambda: cycle_graph(60), 3),
    ("dense", lambda: random_connected_graph(90, 0.1, seed=4), 5),
    ("clique", lambda: complete_graph(18), 6),
    ("lollipop", lambda: lollipop_graph(15, 25), 7),
]


class TestCorrectness:
    @pytest.mark.parametrize("name,factory,seed", GRAPHS)
    def test_exact_mst(self, name, factory, seed):
        g = assign_unique_weights(factory(), seed=seed)
        edges, _staged, diag = fast_mst(g)
        assert edges == kruskal_mst(g)
        assert diag["pipelining_violations"] == 0
        assert diag["order_violations"] == 0

    @pytest.mark.parametrize("k", [1, 2, 4, 16])
    def test_any_k_correct(self, k):
        g = assign_unique_weights(random_connected_graph(70, 0.08, 1), 2)
        edges, _staged, _diag = fast_mst(g, k=k)
        assert edges == kruskal_mst(g)

    def test_single_node(self):
        from repro.graphs import Graph

        g = Graph()
        g.add_node(0)
        edges, _staged, _diag = fast_mst(g)
        assert edges == set()

    def test_two_nodes(self):
        from repro.graphs import Graph

        g = Graph()
        g.add_edge(0, 1, 3)
        edges, _staged, _diag = fast_mst(g)
        assert edges == {(0, 1)}


class TestComplexityShape:
    def test_default_k_is_sqrt(self):
        assert default_k(100) == 10
        assert default_k(101) == 11
        assert default_k(1) == 1

    def test_cluster_count_near_sqrt(self):
        g = assign_unique_weights(random_connected_graph(200, 0.03, 5), 6)
        _edges, _staged, diag = fast_mst(g)
        assert diag["clusters"] <= math.ceil(200 / (diag["k"] + 1)) + 1

    def test_rounds_sublinear_on_low_diameter_graphs(self):
        rounds = {}
        for n, seed in ((64, 1), (256, 2)):
            g = assign_unique_weights(
                random_connected_graph(n, 8.0 / n, seed=seed), seed
            )
            _e, staged, _d = fast_mst(g)
            rounds[n] = staged.total_rounds
        # sqrt scaling: 4x nodes should grow rounds well below 4x.
        assert rounds[256] <= rounds[64] * 3

    def test_stage_breakdown_present(self):
        g = assign_unique_weights(grid_graph(6, 6), 3)
        _e, staged, _d = fast_mst(g)
        for stage in ("simple-mst", "dom-partition", "pipeline"):
            assert stage in staged.breakdown()


@settings(max_examples=12, deadline=None)
@given(weighted_graphs(min_nodes=4, max_nodes=30))
def test_fast_mst_property(graph):
    edges, _staged, diag = fast_mst(graph)
    assert edges == kruskal_mst(graph)
    assert diag["pipelining_violations"] == 0


class TestWeightAssumptions:
    def test_duplicate_weights_after_perturbation(self):
        """The model's distinct-weight assumption can be discharged by
        lexicographic perturbation (repro.graphs.perturb_to_unique); the
        perturbed instance has a unique MST that fast_mst finds."""
        from repro.graphs import Graph, perturb_to_unique

        g = Graph()
        # A 4-cycle with all-equal weights plus a chord.
        g.add_edge(0, 1, 5)
        g.add_edge(1, 2, 5)
        g.add_edge(2, 3, 5)
        g.add_edge(3, 0, 5)
        g.add_edge(0, 2, 5)
        perturb_to_unique(g)
        edges, _staged, _diag = fast_mst(g)
        assert edges == kruskal_mst(g)
        assert len(edges) == 3

    def test_float_weights_supported(self):
        from repro.graphs import Graph

        g = Graph()
        g.add_edge(0, 1, 0.5)
        g.add_edge(1, 2, 0.25)
        g.add_edge(2, 0, 0.75)
        edges, _staged, _diag = fast_mst(g)
        assert edges == {(0, 1), (1, 2)}

    def test_regular_graph_workload(self):
        from repro.graphs import assign_unique_weights, random_regular_graph

        g = assign_unique_weights(random_regular_graph(64, 4, seed=2), seed=3)
        edges, _staged, diag = fast_mst(g)
        assert edges == kruskal_mst(g)
        assert diag["pipelining_violations"] == 0
