"""Message-size discipline: every protocol fits the O(log n) budget.

These tests pin down the *exact* word footprint of each protocol's
largest message, so a future change that silently fattens a message
(breaking the CONGEST assumption) fails loudly.
"""

import pytest

from repro.core import diam_dom, fastdom_graph, simple_mst_forest
from repro.graphs import (
    RootedTree,
    assign_unique_weights,
    grid_graph,
    random_connected_graph,
    random_tree,
)
from repro.mst import run_pipeline
from repro.sim import MessageTooLarge, Network
from repro.symmetry import ThreeColoringProgram


class TestWordBudgets:
    def test_pipeline_edges_are_six_words(self):
        g = assign_unique_weights(random_connected_graph(40, 0.1, 1), 2)
        frag = {v: v for v in g.nodes}
        _sel, _staged, net = run_pipeline(g, frag, word_limit=6)
        assert net.metrics.max_message_words <= 6

    def test_pipeline_rejects_five_word_limit(self):
        g = assign_unique_weights(random_connected_graph(30, 0.1, 3), 4)
        frag = {v: v for v in g.nodes}
        with pytest.raises(MessageTooLarge):
            run_pipeline(g, frag, word_limit=5)

    def test_simplemst_fits_three_words(self):
        g = assign_unique_weights(grid_graph(6, 6), 5)
        _p, _f, net = simple_mst_forest(g, 7, word_limit=3)
        assert net.metrics.max_message_words <= 3

    def test_coloring_fits_two_words(self):
        g = random_tree(100, seed=6)
        rt = RootedTree.from_graph(g, 0)
        net = Network(g, word_limit=2)
        net.run(lambda ctx: ThreeColoringProgram(ctx, rt.parent))
        assert net.metrics.max_message_words <= 2

    def test_diamdom_fits_three_words(self):
        g = random_tree(80, seed=7)
        _d, _l, _c, net = diam_dom(g, 0, 5, word_limit=3)
        assert net.metrics.max_message_words <= 3

    def test_fastdom_default_budget(self):
        g = assign_unique_weights(grid_graph(6, 6), 8)
        # The whole composition runs inside the default 8-word budget;
        # a violation anywhere would raise.
        fastdom_graph(g, 3)


class TestDeterminism:
    def test_fastdom_reproducible(self):
        a = assign_unique_weights(random_connected_graph(60, 0.08, 9), 10)
        b = assign_unique_weights(random_connected_graph(60, 0.08, 9), 10)
        da, pa, sa = fastdom_graph(a, 3)
        db, pb, sb = fastdom_graph(b, 3)
        assert da == db
        assert pa.center_of == pb.center_of
        assert sa.total_rounds == sb.total_rounds

    def test_pipeline_reproducible(self):
        g1 = assign_unique_weights(random_connected_graph(40, 0.1, 11), 12)
        g2 = assign_unique_weights(random_connected_graph(40, 0.1, 11), 12)
        s1, r1, _n1 = run_pipeline(g1, {v: v for v in g1.nodes})
        s2, r2, _n2 = run_pipeline(g2, {v: v for v in g2.nodes})
        assert s1 == s2 and r1.total_rounds == r2.total_rounds
