"""Sequential references, cross-checked against each other and networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.graphs import (
    Graph,
    assign_unique_weights,
    complete_graph,
    random_connected_graph,
)
from repro.mst import kruskal_mst, mst_weight, prim_mst

from ..conftest import weighted_graphs


def to_nx(g) -> nx.Graph:
    out = nx.Graph()
    for u, v, w in g.weighted_edges():
        out.add_edge(u, v, weight=w)
    return out


class TestReferences:
    @pytest.mark.parametrize("seed", range(4))
    def test_kruskal_matches_networkx(self, seed):
        g = assign_unique_weights(
            random_connected_graph(40, 0.1, seed=seed), seed=seed + 10
        )
        ours = kruskal_mst(g)
        theirs = {
            tuple(sorted(e)) for e in nx.minimum_spanning_edges(to_nx(g), data=False)
        }
        assert ours == theirs

    def test_prim_matches_kruskal(self):
        for seed in range(4):
            g = assign_unique_weights(complete_graph(12), seed=seed)
            assert prim_mst(g) == kruskal_mst(g)

    def test_weight(self):
        g = Graph()
        g.add_edge(0, 1, 1)
        g.add_edge(1, 2, 2)
        g.add_edge(0, 2, 10)
        assert mst_weight(g) == 3

    def test_disconnected_raises(self):
        g = Graph()
        g.add_edge(0, 1, 1)
        g.add_node(2)
        with pytest.raises(ValueError):
            kruskal_mst(g)
        with pytest.raises(ValueError):
            prim_mst(g)

    def test_unweighted_rejected(self):
        g = Graph()
        g.add_edge(0, 1)
        with pytest.raises(ValueError):
            kruskal_mst(g)

    def test_single_node(self):
        g = Graph()
        g.add_node(0)
        assert kruskal_mst(g) == set()
        assert prim_mst(g) == set()


@settings(max_examples=25, deadline=None)
@given(weighted_graphs(max_nodes=25))
def test_prim_kruskal_agree_property(graph):
    assert prim_mst(graph) == kruskal_mst(graph)
