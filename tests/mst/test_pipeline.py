"""Procedure Pipeline (§5.1): correctness, pipelining, baselines."""

import pytest

from repro.core import simple_mst_forest
from repro.graphs import (
    assign_unique_weights,
    cycle_graph,
    diameter,
    grid_graph,
    path_graph,
    random_connected_graph,
)
from repro.mst import kruskal_mst, run_pipeline


def fragments_for(graph, k):
    parents, fragments, _net = simple_mst_forest(graph, k)
    fragment_of = {}
    for fragment in fragments:
        root = min(fragment, key=str)
        for v in fragment:
            fragment_of[v] = root
    tree_edges = {
        (min(v, p), max(v, p)) for v, p in parents.items() if p is not None
    }
    return fragment_of, tree_edges, len(fragments)


class TestCorrectness:
    @pytest.mark.parametrize(
        "factory,seed",
        [
            (lambda: grid_graph(7, 7), 1),
            (lambda: cycle_graph(40), 2),
            (lambda: random_connected_graph(80, 0.08, seed=3), 4),
        ],
    )
    def test_selected_edges_complete_the_mst(self, factory, seed):
        g = assign_unique_weights(factory(), seed=seed)
        fragment_of, tree_edges, _n = fragments_for(g, 3)
        selected, _staged, _net = run_pipeline(g, fragment_of)
        combined = tree_edges | {
            (min(a, b), max(a, b)) for a, b in selected
        }
        assert combined == kruskal_mst(g)

    def test_singleton_fragments_full_mst(self):
        g = assign_unique_weights(random_connected_graph(50, 0.1, 5), 6)
        selected, _staged, _net = run_pipeline(g, {v: v for v in g.nodes})
        assert {
            (min(a, b), max(a, b)) for a, b in selected
        } == kruskal_mst(g)

    def test_single_fragment_selects_nothing(self):
        g = assign_unique_weights(grid_graph(4, 4), 1)
        selected, _staged, _net = run_pipeline(g, {v: 0 for v in g.nodes})
        assert selected == []


class TestPipeliningClaims:
    def test_no_violations_recorded(self):
        g = assign_unique_weights(random_connected_graph(100, 0.05, 7), 8)
        fragment_of, _edges, _n = fragments_for(g, 3)
        _sel, _staged, net = run_pipeline(g, fragment_of)
        for v, out in net.outputs().items():
            assert out["pipelining_violations"] == 0, v
            assert out["order_violations"] == 0, v

    def test_upcasts_form_forest_sizes(self):
        """Lemma 5.1: each node upcasts at most N - 1 edges."""
        g = assign_unique_weights(random_connected_graph(90, 0.1, 9), 10)
        fragment_of, _edges, n_fragments = fragments_for(g, 3)
        _sel, _staged, net = run_pipeline(g, fragment_of)
        for out in net.outputs().values():
            assert out["upcast_count"] <= max(n_fragments - 1, 0)

    def test_rounds_linear_in_n_plus_diam(self):
        """Lemma 5.5 shape on singleton fragments: O(n + Diam)."""
        g = assign_unique_weights(cycle_graph(120), 2)
        selected, staged, _net = run_pipeline(g, {v: v for v in g.nodes})
        n, d = 120, diameter(g)
        assert staged.total_rounds <= 6 * (n + d)

    def test_start_rounds_follow_level_function(self):
        """Lemma 5.2: L(leaf) = 0; L(v) = 1 + max L(children)."""
        g = assign_unique_weights(path_graph(30), 3)
        fragment_of = {v: v for v in g.nodes}
        _sel, _staged, net = run_pipeline(g, fragment_of, root=0)
        starts = {
            v: out.get("start_round")
            for v, out in net.outputs().items()
        }
        # On a root-anchored path the unique leaf is node 29; each node
        # closer to the root starts exactly one round later.
        base = starts[29]
        for v in range(1, 30):
            assert starts[v] == base + (29 - v)


class TestCollectAllBaseline:
    def test_collect_all_still_correct(self):
        g = assign_unique_weights(random_connected_graph(40, 0.15, 1), 2)
        selected, _staged, _net = run_pipeline(
            g, {v: v for v in g.nodes}, eliminate_cycles=False
        )
        assert {
            (min(a, b), max(a, b)) for a, b in selected
        } == kruskal_mst(g)

    def test_collect_all_hauls_more_traffic(self):
        g = assign_unique_weights(random_connected_graph(60, 0.3, 3), 4)
        frag = {v: v for v in g.nodes}
        _s1, staged_red, _n1 = run_pipeline(g, frag)
        _s2, staged_all, _n2 = run_pipeline(g, frag, eliminate_cycles=False)
        assert staged_all.total_rounds > staged_red.total_rounds


from hypothesis import given, settings

from ..conftest import weighted_graphs


@settings(max_examples=15, deadline=None)
@given(weighted_graphs(min_nodes=4, max_nodes=25))
def test_pipeline_property_random_fragments(graph):
    """Pipeline over SimpleMST fragments (random k) always completes the
    exact MST with zero pipelining/ordering violations."""
    k = max(1, graph.num_nodes // 5)
    fragment_of, tree_edges, _n = fragments_for(graph, k)
    selected, _staged, net = run_pipeline(graph, fragment_of)
    combined = tree_edges | {(min(a, b), max(a, b)) for a, b in selected}
    assert combined == kruskal_mst(graph)
    for out in net.outputs().values():
        assert out["pipelining_violations"] == 0
        assert out["order_violations"] == 0


class TestInputValidation:
    def test_disconnected_rejected(self):
        from repro.graphs import Graph

        g = Graph()
        g.add_edge(0, 1, 1)
        g.add_edge(2, 3, 2)
        with pytest.raises(ValueError):
            run_pipeline(g, {v: v for v in g.nodes})
