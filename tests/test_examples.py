"""The example scripts are part of the public surface: run them."""

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "server_placement.py",
    "sparse_routing.py",
    "asynchronous_alpha.py",
    "mst_construction.py",
    "census_pipelining.py",
    "faulty_run.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, capsys):
    path = os.path.join(EXAMPLES_DIR, script)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
    assert "Traceback" not in out
