"""Query layer: grammar, reductions, and the byte-identity contract."""

import pytest

from repro.batch import SweepStore, fast_grid, run_sweep
from repro.batch.store import SCHEMA, merge_stores
from repro.warehouse import (
    QueryError,
    Warehouse,
    bench_query_doc,
    bench_samples_from_entries,
    extract_metric,
    load_store_rows,
    parse_aggs,
    parse_group_by,
    parse_where,
    quantile,
    query_json,
    reduce_values,
    render_query_table,
    results_query_doc,
)


def row(seed, k=2, spec="tree:n=8", workload="kdom", payload=None):
    return {
        "cell": {"workload": workload, "spec": spec, "seed": seed, "k": k},
        "result": (
            payload
            if payload is not None
            else {"dominators": 3 + seed + k, "rounds": 5 * (seed + 1),
                  "metrics": {"messages": 100 * (seed + 1)}}
        ),
    }


class TestParsing:
    def test_default_aggs(self):
        assert parse_aggs(None) == (
            "count", "min", "max", "mean", "p50", "p90",
        )

    def test_quantile_names(self):
        assert parse_aggs("count,p25,p99") == ("count", "p25", "p99")

    def test_unknown_agg_rejected(self):
        with pytest.raises(QueryError):
            parse_aggs("median")
        with pytest.raises(QueryError):
            parse_aggs("p101")

    def test_where_membership_and_merge(self):
        where = parse_where(
            ["k=2,3", "k=4", "family=tree"],
            ("workload", "spec", "family", "seed", "k"),
        )
        assert where == {"k": ["2", "3", "4"], "family": ["tree"]}

    def test_where_rejects_unknown_field(self):
        with pytest.raises(QueryError):
            parse_where(["color=red"], ("workload", "k"))
        with pytest.raises(QueryError):
            parse_where(["no-equals"], ("workload", "k"))

    def test_group_by_validates(self):
        assert parse_group_by("family,k", ("family", "k")) == ("family", "k")
        with pytest.raises(QueryError):
            parse_group_by("family,family", ("family", "k"))
        with pytest.raises(QueryError):
            parse_group_by("bogus", ("family", "k"))


class TestReduction:
    def test_nearest_rank_quantiles(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert quantile(values, 0) == 1
        assert quantile(values, 50) == 5
        assert quantile(values, 90) == 9
        assert quantile(values, 100) == 10
        assert quantile([7], 50) == 7
        assert quantile([], 50) is None

    def test_order_insensitive(self):
        aggs = ("count", "min", "max", "sum", "mean", "p50", "p90")
        a = reduce_values([3.1, 1.7, 2.9, 0.4], aggs)
        b = reduce_values([0.4, 2.9, 1.7, 3.1], aggs)
        assert a == b

    def test_mean_rounded(self):
        assert reduce_values([1, 2], ("mean",)) == {"mean": 1.5}
        assert reduce_values([1, 1, 1], ("mean",))["mean"] == 1.0

    def test_empty_group_aggs_are_none(self):
        out = reduce_values([], ("count", "min", "mean", "p50"))
        assert out == {"count": 0, "min": None, "mean": None, "p50": None}

    def test_extract_metric_nested_and_alias(self):
        r = row(0)
        assert extract_metric(r, "dominators") == 5
        assert extract_metric(r, "messages") == 100
        quarantined = {"cell": r["cell"], "error": {"type": "Boom"}}
        assert extract_metric(quarantined, "dominators") is None
        boolish = row(0, payload={"ok": True})
        assert extract_metric(boolish, "ok") is None


class TestResultsDoc:
    ROWS = [row(s, k, spec=spec)
            for spec in ("tree:n=8", "random:n=9,p=0.3")
            for s in (0, 1, 2)
            for k in (2, 3)]

    def test_group_and_filter(self):
        where = {"family": ["tree"], "k": ["2"]}
        doc = results_query_doc(
            self.ROWS, "dominators", where, ("seed",), ("count", "max"),
        )
        assert doc["schema"] == "repro-query/1"
        assert doc["rows_matched"] == 3
        assert [g["key"] for g in doc["groups"]] == [
            {"seed": 0}, {"seed": 1}, {"seed": 2},
        ]

    def test_rows_without_metric_counted_skipped(self):
        rows = [row(0), {"cell": row(1)["cell"], "error": {"type": "X"}}]
        doc = results_query_doc(rows, "dominators", {}, (), ("count",))
        assert doc["rows_matched"] == 2
        assert doc["rows_skipped"] == 1
        assert doc["groups"][0]["count"] == 1

    def test_table_renders_deterministically(self):
        doc = results_query_doc(
            self.ROWS, "dominators", {"family": ["tree"]}, ("k",),
            ("count", "mean"),
        )
        lines = render_query_table(doc)
        assert lines[0].startswith("query dominators [results]: 6 row")
        assert lines == render_query_table(doc)

    def test_empty_match_renders(self):
        doc = results_query_doc(self.ROWS, "dominators",
                                {"workload": ["nope"]}, (), ("count",))
        assert doc["rows_matched"] == 0
        assert "(no matching rows)" in render_query_table(doc)


class TestByteIdentity:
    """The acceptance-criteria contract, exercised store-to-warehouse."""

    @pytest.fixture(scope="class")
    def fabric(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("fabric")
        shard0 = str(root / "shard0.jsonl")
        shard1 = str(root / "shard1.jsonl")
        merged = str(root / "merged.jsonl")
        grid = fast_grid()
        run_sweep(grid, store_path=shard0, backend="inline",
                  shard=(0, 2), telemetry=False)
        run_sweep(grid, store_path=shard1, backend="inline",
                  shard=(1, 2), telemetry=False)
        merge_stores([shard0, shard1], merged)
        db = str(root / "wh.sqlite")
        with Warehouse(db) as wh:
            for path in (shard0, shard1, merged):
                wh.ingest_store(path)
        return {"db": db, "stores": [shard0, shard1, merged],
                "merged": merged}

    @pytest.mark.parametrize(
        "metric,where_items,group_text,agg_text",
        [
            ("dominators", ["workload=kdom"], "family,k", None),
            ("dominators", ["family=tree"], "seed", "count,mean,p50"),
            ("rounds", ["k=2,3"], "family", "count,min,max,sum,p90"),
            ("messages", [], "", "count,p25,p75"),
            ("dominators", ["seed=1"], "k", "mean"),
        ],
    )
    def test_warehouse_equals_raw_reduction(
        self, fabric, metric, where_items, group_text, agg_text
    ):
        fields = ("workload", "spec", "family", "seed", "k")
        where = parse_where(where_items, fields)
        group_by = parse_group_by(group_text, fields)
        aggs = parse_aggs(agg_text)
        with Warehouse(fabric["db"]) as wh:
            wh_doc = results_query_doc(
                wh.fetch_rows(where), metric, where, group_by, aggs,
            )
        raw_doc = results_query_doc(
            load_store_rows([fabric["merged"]]), metric, where, group_by,
            aggs,
        )
        assert query_json(wh_doc) == query_json(raw_doc)

    def test_union_of_shards_equals_merged(self, fabric):
        # the raw path itself is source-insensitive: shards vs merged
        a = load_store_rows(fabric["stores"][:2])
        b = load_store_rows([fabric["merged"]])
        assert a == b

    def test_conflicting_duplicate_cells_rejected(self, tmp_path):
        meta = {"schema": SCHEMA, "workload": "kdom", "cells": 1}
        a = SweepStore(str(tmp_path / "a.jsonl"))
        a.finalize(meta, [row(0)])
        b = SweepStore(str(tmp_path / "b.jsonl"))
        b.finalize(meta, [row(0, payload={"dominators": 777})])
        with pytest.raises(QueryError):
            load_store_rows([a.path, b.path])


class TestBenchDoc:
    ENTRIES = [
        {"schema": "repro-perf-history/1", "mode": "fast",
         "recorded_unix": 1.0,
         "workloads": {"bfs_path": 0.5, "fast_mst": 2.0},
         "dense_speedup": None, "serve_qps": None},
        {"schema": "repro-perf-history/1", "mode": "fast",
         "recorded_unix": 2.0,
         "workloads": {"bfs_path": 0.4},
         "dense_speedup": None, "serve_qps": None},
    ]

    def test_samples_flatten(self):
        samples = bench_samples_from_entries(self.ENTRIES)
        assert len(samples) == 3
        assert samples[0] == {
            "workload": "bfs_path", "mode": "fast", "best_seconds": 0.5,
        }

    def test_bench_doc_matches_warehouse(self, tmp_path):
        raw = bench_query_doc(
            bench_samples_from_entries(self.ENTRIES),
            {"workload": ["bfs_path"]}, ("mode",), ("count", "min", "max"),
        )
        with Warehouse(str(tmp_path / "wh.sqlite")) as wh:
            wh.ingest_history(self.ENTRIES)
            stored = bench_query_doc(
                wh.fetch_bench_samples(),
                {"workload": ["bfs_path"]}, ("mode",),
                ("count", "min", "max"),
            )
        assert query_json(raw) == query_json(stored)
        assert stored["groups"][0]["count"] == 2
