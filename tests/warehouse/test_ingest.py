"""Warehouse ingest: idempotency, lineage, partial stores, corruption."""

import json

import pytest

from repro.batch import SweepStore, canonical_line, cell_key
from repro.batch.store import SCHEMA, StoreCorruption
from repro.warehouse import (
    IncompleteStoreError,
    Warehouse,
    WarehouseConflict,
    WarehouseError,
)


def meta(seeds=(0, 1), shard=None):
    doc = {
        "schema": SCHEMA,
        "workload": "kdom",
        "specs": ["tree:n=8"],
        "seeds": list(seeds),
        "ks": [2],
        "verify": False,
        "cells": len(seeds),
    }
    if shard is not None:
        doc["shard"] = shard
    return doc


def row(seed, payload=None, spec="tree:n=8"):
    return {
        "cell": {"workload": "kdom", "spec": spec, "seed": seed, "k": 2},
        "result": payload or {"dominators": 3 + seed, "rounds": 5},
    }


def write_store(path, meta_doc, rows):
    store = SweepStore(str(path))
    store.finalize(meta_doc, rows)
    return str(path)


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "wh.sqlite")


class TestIdempotency:
    def test_fresh_ingest_adds_rows(self, tmp_path, db_path):
        path = write_store(tmp_path / "s.jsonl", meta(), [row(0), row(1)])
        with Warehouse(db_path) as wh:
            report = wh.ingest_store(path)
            assert (report.noop, report.added, report.confirmed) == (
                False, 2, 0,
            )
            assert wh.row_count() == 2

    def test_reingest_same_bytes_is_noop(self, tmp_path, db_path):
        path = write_store(tmp_path / "s.jsonl", meta(), [row(0), row(1)])
        with Warehouse(db_path) as wh:
            wh.ingest_store(path)
            before = wh.row_count()
            report = wh.ingest_store(path)
            assert report.noop
            assert report.added == 0
            assert wh.row_count() == before
            # exactly one ledger entry: the no-op never re-registered it
            assert len(wh.stores()) == 1

    def test_same_bytes_different_path_is_noop(self, tmp_path, db_path):
        path = write_store(tmp_path / "s.jsonl", meta(), [row(0), row(1)])
        copy = str(tmp_path / "copy.jsonl")
        with open(path, "rb") as src, open(copy, "wb") as dst:
            dst.write(src.read())
        with Warehouse(db_path) as wh:
            wh.ingest_store(path)
            assert wh.ingest_store(copy).noop

    def test_overlapping_identical_cells_confirm(self, tmp_path, db_path):
        shard = write_store(
            tmp_path / "shard.jsonl", meta(seeds=(0,)), [row(0)]
        )
        merged = write_store(
            tmp_path / "merged.jsonl", meta(), [row(0), row(1)]
        )
        with Warehouse(db_path) as wh:
            wh.ingest_store(shard)
            report = wh.ingest_store(merged)
            assert (report.added, report.confirmed) == (1, 1)
            assert wh.row_count() == 2

    def test_conflicting_cell_bytes_roll_back(self, tmp_path, db_path):
        a = write_store(tmp_path / "a.jsonl", meta(seeds=(0,)), [row(0)])
        b = write_store(
            tmp_path / "b.jsonl",
            meta(seeds=(0,)),
            [row(0, {"dominators": 99, "rounds": 1})],
        )
        with Warehouse(db_path) as wh:
            wh.ingest_store(a)
            with pytest.raises(WarehouseConflict):
                wh.ingest_store(b)
            # the whole conflicting store rolled back: no ledger entry,
            # no lineage, original row intact
            assert wh.row_count() == 1
            assert len(wh.stores()) == 1
            key = cell_key(row(0)["cell"])
            assert wh.fetch_rows()[0] == row(0)
            assert len(wh.fetch_lineage(key)) == 1


class TestPartialStores:
    def test_incomplete_store_refused_by_default(self, tmp_path, db_path):
        path = write_store(tmp_path / "s.jsonl", meta(), [row(0)])
        with Warehouse(db_path) as wh:
            with pytest.raises(IncompleteStoreError):
                wh.ingest_store(path)
            assert wh.row_count() == 0

    def test_allow_partial_records_holes_in_lineage(self, tmp_path, db_path):
        path = write_store(tmp_path / "s.jsonl", meta(), [row(0)])
        with Warehouse(db_path) as wh:
            report = wh.ingest_store(path, allow_partial=True)
            missing = cell_key(row(1)["cell"])
            assert report.holes == [missing]
            assert wh.row_count() == 1
            assert wh.fetch_lineage(missing) == [(path, "hole")]
            assert wh.fetch_lineage(cell_key(row(0)["cell"])) == [
                (path, "row")
            ]

    def test_holes_manifest_contributes_missing_cells(
        self, tmp_path, db_path
    ):
        # A partial merge writes <out>.holes.json; its missing_cells
        # must land as lineage holes even when the checkpoint meta
        # alone would not predict them (e.g. foreign workload metas).
        path = write_store(tmp_path / "m.jsonl", meta(), [row(0)])
        ghost = "kdom|tree:n=8|seed=7|k=2"
        with open(path + ".holes.json", "w") as handle:
            json.dump(
                {
                    "store": path,
                    "schema": SCHEMA,
                    "missing_cells": [ghost],
                },
                handle,
            )
        with Warehouse(db_path) as wh:
            report = wh.ingest_store(path, allow_partial=True)
            assert ghost in report.holes
            assert wh.fetch_lineage(ghost) == [(path, "hole")]

    def test_shard_meta_expects_only_its_slice(self, tmp_path, db_path):
        # shard 0/2 of a 2-cell grid owns only seed 0 — a complete
        # shard store ingests cleanly without --allow-partial.
        path = write_store(
            tmp_path / "shard0.jsonl", meta(shard="0/2"), [row(0)]
        )
        with Warehouse(db_path) as wh:
            report = wh.ingest_store(path)
            assert report.holes == []
            assert report.added == 1

    def test_resumed_partial_store_fills_previous_holes(
        self, tmp_path, db_path
    ):
        partial = write_store(tmp_path / "s.jsonl", meta(), [row(0)])
        with Warehouse(db_path) as wh:
            wh.ingest_store(partial, allow_partial=True)
            write_store(tmp_path / "s.jsonl", meta(), [row(0), row(1)])
            report = wh.ingest_store(partial)
            assert (report.added, report.confirmed) == (1, 1)
            key = cell_key(row(1)["cell"])
            # lineage keeps both the hole and the later fill
            assert wh.fetch_lineage(key) == [
                (partial, "hole"), (partial, "row"),
            ]


class TestCorruption:
    def test_midfile_garbage_surfaces_not_swallowed(self, tmp_path, db_path):
        path = str(tmp_path / "s.jsonl")
        store = SweepStore(path)
        store.begin(meta(), fresh=True)
        store.append(row(0))
        with open(path, "a") as handle:
            handle.write("{not json at all\n")
        store.append(row(1))
        with Warehouse(db_path) as wh:
            with pytest.raises(StoreCorruption):
                wh.ingest_store(path)
            # allow_partial forgives missing data, never damaged data
            with pytest.raises(StoreCorruption):
                wh.ingest_store(path, allow_partial=True)
            assert wh.row_count() == 0

    def test_missing_store_errors(self, db_path, tmp_path):
        with Warehouse(db_path) as wh:
            with pytest.raises(WarehouseError):
                wh.ingest_store(str(tmp_path / "nope.jsonl"))

    def test_unreadable_holes_manifest_errors(self, tmp_path, db_path):
        path = write_store(tmp_path / "s.jsonl", meta(), [row(0), row(1)])
        with open(path + ".holes.json", "w") as handle:
            handle.write("{broken")
        with Warehouse(db_path) as wh:
            with pytest.raises(WarehouseError):
                wh.ingest_store(path)

    def test_foreign_schema_file_rejected_on_open(self, tmp_path):
        db = str(tmp_path / "wh.sqlite")
        with Warehouse(db) as wh:
            wh._db.execute(
                "UPDATE warehouse_meta SET value = 'other/9' "
                "WHERE key = 'schema'"
            )
            wh._db.commit()
        with pytest.raises(WarehouseError):
            Warehouse(db)


class TestVerdictAndHistory:
    def test_verdict_sidecar_auto_ingested(self, tmp_path, db_path):
        path = write_store(tmp_path / "p.jsonl", meta(), [row(0), row(1)])
        verdict = {
            "schema": "repro-portfolio/1",
            "workload": "kdom",
            "spec": "tree:n=8",
            "k": 2,
            "reduce": "smallest",
            "best_seed": 0,
            "best_value": 3,
            "attempts": 2,
            "quarantined": 0,
        }
        with open(path + ".verdict.json", "w") as handle:
            handle.write(canonical_line(verdict) + "\n")
        with Warehouse(db_path) as wh:
            report = wh.ingest_store(path)
            assert report.verdict_added
            # hash-keyed: same verdict again is a no-op
            assert wh.ingest_verdict(verdict) is False

    def test_history_ingest_adds_only_new_tail(self, db_path):
        entry = {
            "schema": "repro-perf-history/1",
            "mode": "fast",
            "recorded_unix": 1000.0,
            "workloads": {"bfs_path": 0.5, "fast_mst": 1.25},
            "dense_speedup": 12.0,
            "serve_qps": None,
        }
        later = dict(entry, recorded_unix=2000.0)
        with Warehouse(db_path) as wh:
            assert wh.ingest_history([entry]) == (1, 0)
            assert wh.ingest_history([entry, later]) == (1, 1)
            samples = wh.fetch_bench_samples()
            assert len(samples) == 4
            assert {s["workload"] for s in samples} == {
                "bfs_path", "fast_mst",
            }
