"""Reliable ack/retransmit channels over a faulty network."""

import pytest

from repro.graphs import Graph, path_graph, random_connected_graph
from repro.primitives.bfs import BFSTreeProgram
from repro.primitives.flooding import FloodProgram
from repro.sim import (
    DEFAULT_WORD_LIMIT,
    RELIABLE_HEADER_WORDS,
    FaultConfig,
    FaultInjector,
    Network,
    NodeProgram,
    make_reliable,
)


def reliable_network(graph, faults=None):
    return Network(
        graph,
        word_limit=DEFAULT_WORD_LIMIT + RELIABLE_HEADER_WORDS,
        faults=faults,
    )


class TestFaultFree:
    def test_flood_result_unchanged(self):
        g = random_connected_graph(20, 0.2, seed=5)
        source = min(g.nodes, key=str)
        factory = lambda ctx: FloodProgram(ctx, source, value=42)  # noqa: E731

        plain = Network(g)
        plain.run(factory)
        wrapped = reliable_network(g)
        metrics = wrapped.run(make_reliable(factory))

        assert metrics.all_halted
        assert wrapped.output_field("value") == plain.output_field("value")
        assert wrapped.output_field("hops") == plain.output_field("hops")
        # A clean channel never retransmits.
        retrans = wrapped.output_field("reliable_retransmissions")
        assert set(retrans.values()) == {0}

    def test_timeout_validation(self):
        g = path_graph(2)
        net = reliable_network(g)
        with pytest.raises(ValueError):
            net.run(make_reliable(lambda ctx: FloodProgram(ctx, 0), timeout=2))


class TestLossy:
    def test_bfs_completes_under_loss(self):
        g = random_connected_graph(24, 0.15, seed=7)
        root = min(g.nodes, key=str)
        factory = lambda ctx: BFSTreeProgram(ctx, root)  # noqa: E731

        baseline = Network(g)
        baseline.run(factory)
        expected = baseline.output_field("dist")

        net = reliable_network(
            g, faults=FaultInjector(FaultConfig(drop_rate=0.15, seed=2))
        )
        report = net.run(make_reliable(factory), max_rounds=20000)

        assert report.completed
        assert report.metrics.dropped_messages > 0
        assert net.output_field("dist") == expected
        total_retrans = sum(
            net.output_field("reliable_retransmissions").values()
        )
        assert total_retrans > 0

    def test_duplicates_filtered(self):
        # The adversary duplicates heavily; the inner program must still
        # see each message exactly once (flood hops stay correct).
        g = path_graph(6)
        net = reliable_network(
            g,
            faults=FaultInjector(
                FaultConfig(duplicate_rate=0.5, seed=4)
            ),
        )
        report = net.run(
            make_reliable(lambda ctx: FloodProgram(ctx, 0, value=9)),
            max_rounds=5000,
        )
        assert report.completed
        assert net.output_field("hops") == {v: v for v in range(6)}


class TestGiveUp:
    def test_crashed_peer_is_detected(self):
        # 0 -- 1 -- 2; node 2 crashes before receiving anything, so node
        # 1's frame toward it can never be acked: bounded retry turns an
        # undetectable hang into a local "gave up" verdict.
        g = path_graph(3)
        net = reliable_network(
            g, faults=FaultInjector(FaultConfig(crashes={2: 1}))
        )
        report = net.run(
            make_reliable(
                lambda ctx: FloodProgram(ctx, 0, value=1),
                timeout=3,
                max_retries=2,
            ),
            max_rounds=500,
        )
        assert report.completed
        assert report.node_states[2] == "crashed"
        assert net.programs[1].output["reliable_gave_up"] == (2,)
        assert net.programs[0].output["reliable_gave_up"] == ()


class ChattyPair(NodeProgram):
    """Node 0 fires a burst of messages at node 1 in one round —
    illegal on a raw CONGEST channel, legal behind the wrapper, which
    queues and serialises them."""

    BURST = 5

    def on_start(self):
        if self.node == 0:
            for i in range(self.BURST):
                self.send(1, "ITEM", i)
            self.halt()
        else:
            self.output["got"] = []

    def on_round(self, inbox):
        for e in inbox:
            self.output["got"].append(e.payload[1])
        if len(self.output["got"]) == self.BURST:
            self.halt()


class TestSerialisation:
    def test_burst_is_queued_in_order(self):
        g = Graph()
        g.add_edge(0, 1)
        net = reliable_network(g)
        metrics = net.run(make_reliable(lambda ctx: ChattyPair(ctx)))
        assert metrics.all_halted
        assert net.programs[1].output["got"] == [0, 1, 2, 3, 4]

    def test_burst_survives_loss(self):
        g = Graph()
        g.add_edge(0, 1)
        net = reliable_network(
            g, faults=FaultInjector(FaultConfig(drop_rate=0.3, seed=6))
        )
        report = net.run(
            make_reliable(lambda ctx: ChattyPair(ctx)), max_rounds=5000
        )
        assert report.completed
        assert net.programs[1].output["got"] == [0, 1, 2, 3, 4]
