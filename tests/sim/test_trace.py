"""Trace recorder and stall detection.

The recorder rides the engine's native event stream, so "activity" here
means model-visible activity (send / deliver / wakeup / halt) — the
definition that is identical under ``scheduling="full"`` and
``scheduling="active"``.  The old invocation-counting recorder reported
different ``rounds_active()`` per mode, which is exactly the bug this
suite now pins the absence of.
"""

import pytest

from repro.graphs import Graph
from repro.sim import Network, NodeProgram, TraceRecorder, traced


def pair() -> Graph:
    g = Graph()
    g.add_edge(0, 1)
    return g


class Bursty(NodeProgram):
    """Node 0 sends in rounds 0, 1 and 3 (a stall at round 2)."""

    def on_start(self):
        if self.node == 0:
            self.send(1, "A")

    def on_round(self, inbox):
        if self.node == 0:
            if self.round == 1:
                self.send(1, "B")
            elif self.round == 3:
                self.send(1, "C")
                self.halt()
        elif self.round >= 4:
            self.halt()


def traced_run(factory, recorder, graph=None):
    net = Network(graph if graph is not None else pair())
    with pytest.deprecated_call():
        net.run(traced(factory, recorder))
    return net


class TestTrace:
    def test_sends_recorded(self):
        recorder = TraceRecorder()
        traced_run(Bursty, recorder)
        assert recorder.sends_by_node()[0] == [0, 1, 3]

    def test_stall_detected(self):
        recorder = TraceRecorder()
        traced_run(Bursty, recorder)
        assert recorder.stalls(0) == [2]

    def test_no_stall_for_single_send(self):
        recorder = TraceRecorder()

        class Once(NodeProgram):
            def on_start(self):
                if self.node == 0:
                    self.send(1, "X")
                self.halt()

            def on_round(self, inbox):  # pragma: no cover
                pass

        traced_run(Once, recorder)
        assert recorder.stalls(0) == []

    def test_halt_recorded(self):
        recorder = TraceRecorder()
        traced_run(Bursty, recorder)
        kinds = {e.kind for e in recorder.events}
        assert "halt" in kinds and "deliver" in kinds

    def test_send_detail_shape(self):
        # Compatibility contract: send detail is (receiver, payload).
        recorder = TraceRecorder()
        traced_run(Bursty, recorder)
        first = [e for e in recorder.events if e.kind == "send"][0]
        assert first.detail == (1, ("A",))

    def test_rounds_active_is_model_visible(self):
        # Node 0 acts in rounds 0, 1 and 3; round 2 is a genuine stall
        # and must NOT be reported as active (the old invocation-based
        # recorder listed it under scheduling="full").
        recorder = TraceRecorder()
        traced_run(Bursty, recorder)
        assert recorder.rounds_active(0) == [0, 1, 3]

    def test_rounds_active_same_in_both_modes(self):
        per_mode = {}
        for mode in ("full", "active"):
            recorder = TraceRecorder()
            net = Network(pair(), scheduling=mode)
            with pytest.deprecated_call():
                net.run(traced(Bursty, recorder))
            per_mode[mode] = {
                node: recorder.rounds_active(node) for node in (0, 1)
            }
        assert per_mode["full"] == per_mode["active"]

    def test_attach_subscriber_replaces_traced(self):
        # The non-deprecated spelling records the identical stream.
        recorder = TraceRecorder()
        net = Network(pair())
        net.attach_subscriber(recorder)
        net.run(Bursty)
        assert recorder.sends_by_node()[0] == [0, 1, 3]
        assert recorder.stalls(0) == [2]
