"""Trace recorder and stall detection."""

from repro.graphs import Graph
from repro.sim import Network, NodeProgram, TraceRecorder, traced


def pair() -> Graph:
    g = Graph()
    g.add_edge(0, 1)
    return g


class Bursty(NodeProgram):
    """Node 0 sends in rounds 0, 1 and 3 (a stall at round 2)."""

    def on_start(self):
        if self.node == 0:
            self.send(1, "A")

    def on_round(self, inbox):
        if self.node == 0:
            if self.round == 1:
                self.send(1, "B")
            elif self.round == 3:
                self.send(1, "C")
                self.halt()
        elif self.round >= 4:
            self.halt()


class TestTrace:
    def test_sends_recorded(self):
        recorder = TraceRecorder()
        net = Network(pair())
        net.run(traced(Bursty, recorder))
        assert recorder.sends_by_node()[0] == [0, 1, 3]

    def test_stall_detected(self):
        recorder = TraceRecorder()
        net = Network(pair())
        net.run(traced(Bursty, recorder))
        assert recorder.stalls(0) == [2]

    def test_no_stall_for_single_send(self):
        recorder = TraceRecorder()
        net = Network(pair())

        class Once(NodeProgram):
            def on_start(self):
                if self.node == 0:
                    self.send(1, "X")
                self.halt()

            def on_round(self, inbox):  # pragma: no cover
                pass

        net.run(traced(Once, recorder))
        assert recorder.stalls(0) == []

    def test_halt_recorded(self):
        recorder = TraceRecorder()
        net = Network(pair())
        net.run(traced(Bursty, recorder))
        kinds = {e.kind for e in recorder.events}
        assert "halt" in kinds and "round" in kinds

    def test_rounds_active(self):
        recorder = TraceRecorder()
        net = Network(pair())
        net.run(traced(Bursty, recorder))
        assert recorder.rounds_active(0) == [1, 2, 3]
