"""Integration: the paper's algorithms run unchanged under synchroniser
α on an asynchronous network (the §1.2 WLOG claim, end to end)."""


from repro.core.diam_dom import DiamDOMProgram
from repro.core.small_dom_set import SmallDomSetProgram
from repro.graphs import RootedTree, random_tree, star_graph
from repro.sim import Network, run_synchronized
from repro.verify import is_dominating


class TestDiamDomUnderAlpha:
    def test_same_dominating_set(self):
        g = random_tree(40, seed=3)
        k = 2

        sync_net = Network(g)
        sync_net.run(lambda ctx: DiamDOMProgram(ctx, 0, k))
        sync_flags = sync_net.output_field("in_dominating_set")

        async_net, _time = run_synchronized(
            g, lambda ctx: DiamDOMProgram(ctx, 0, k), seed=6
        )
        alpha_flags = {
            v: p.output["in_dominating_set"]
            for v, p in async_net.programs.items()
        }
        assert alpha_flags == sync_flags

    def test_census_counts_identical(self):
        g = star_graph(15)
        sync_net = Network(g)
        sync_net.run(lambda ctx: DiamDOMProgram(ctx, 0, 2))
        async_net, _time = run_synchronized(
            g, lambda ctx: DiamDOMProgram(ctx, 0, 2), seed=1
        )
        assert (
            async_net.programs[0].output["level_counts"]
            == sync_net.programs[0].output["level_counts"]
        )


class TestSmallDomSetUnderAlpha:
    def test_same_output(self):
        g = random_tree(30, seed=4)
        rt = RootedTree.from_graph(g, 0)

        sync_net = Network(g)
        sync_net.run(lambda ctx: SmallDomSetProgram(ctx, rt.parent))
        sync_doms = {
            v
            for v, f in sync_net.output_field("in_dominating_set").items()
            if f
        }

        async_net, _time = run_synchronized(
            g, lambda ctx: SmallDomSetProgram(ctx, rt.parent), seed=2
        )
        alpha_doms = {
            v
            for v, p in async_net.programs.items()
            if p.output["in_dominating_set"]
        }
        assert alpha_doms == sync_doms
        assert is_dominating(g, alpha_doms)
