"""Fault injection: semantics, determinism, replay, zero overhead."""

import pytest

from repro.graphs import Graph, path_graph, star_graph
from repro.primitives.flooding import FloodProgram
from repro.sim import (
    FaultConfig,
    FaultConfigError,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    Network,
    NodeProgram,
    RunMetrics,
    RunReport,
    TraceRecorder,
)


def two_nodes() -> Graph:
    g = Graph()
    g.add_edge(0, 1)
    return g


class Echoer(NodeProgram):
    def on_start(self):
        if self.node == 0:
            self.send(1, "PING")

    def on_round(self, inbox):
        for e in inbox:
            if e.tag() == "PING":
                self.output["got_ping_round"] = self.round
                self.send(e.sender, "PONG")
                self.halt()
            elif e.tag() == "PONG":
                self.output["got_pong_round"] = self.round
                self.halt()


class InboxCounter(NodeProgram):
    """Node 0 sends once; node 1 counts copies, then both idle-halt."""

    def on_start(self):
        if self.node == 0:
            self.send(1, "X")
            self.halt()

    def on_round(self, inbox):
        self.output["copies"] = len(inbox)
        self.halt()


class TestConfigValidation:
    def test_rate_out_of_range(self):
        with pytest.raises(FaultConfigError):
            FaultConfig(drop_rate=1.5)

    def test_rates_sum_over_one(self):
        with pytest.raises(FaultConfigError):
            FaultConfig(drop_rate=0.6, duplicate_rate=0.6)

    def test_bad_max_delay(self):
        with pytest.raises(FaultConfigError):
            FaultConfig(max_delay=0)

    def test_crash_in_round_zero(self):
        with pytest.raises(FaultConfigError):
            FaultConfig(crashes={3: 0})

    def test_double_crash(self):
        with pytest.raises(FaultConfigError):
            FaultConfig(crashes=[(3, 1), (3, 2)])

    def test_crash_pairs_normalized(self):
        config = FaultConfig(crashes=[(3, 2), (5, 4)])
        assert config.crashes == {3: 2, 5: 4}


class TestDrop:
    def test_certain_drop_loses_message(self):
        net = Network(two_nodes(), faults=FaultInjector(FaultConfig(drop_rate=1.0)))
        report = net.run(Echoer, max_rounds=30)
        assert isinstance(report, RunReport)
        assert not report.completed and report.error
        assert report.metrics.dropped_messages == 1
        assert "got_ping_round" not in net.programs[1].output
        assert report.plan.count("drop") == 1

    def test_zero_rates_change_nothing(self):
        baseline = Network(two_nodes()).run(Echoer)
        net = Network(two_nodes(), faults=FaultInjector(FaultConfig()))
        report = net.run(Echoer)
        assert report.completed
        assert report.metrics.rounds == baseline.rounds
        assert report.metrics.messages == baseline.messages
        assert len(report.plan.events) == 0


class TestDuplicate:
    def test_certain_duplicate_delivers_two_copies(self):
        net = Network(
            two_nodes(),
            faults=FaultInjector(FaultConfig(duplicate_rate=1.0)),
        )
        report = net.run(InboxCounter)
        assert report.completed
        assert net.programs[1].output["copies"] == 2
        assert report.metrics.duplicated_messages == 1
        # Adversary copies are not message traffic the sender paid for.
        assert report.metrics.messages == 1


class TestDelay:
    def test_certain_delay_postpones_delivery(self):
        net = Network(
            two_nodes(),
            faults=FaultInjector(
                FaultConfig(delay_rate=1.0, max_delay=1)
            ),
        )
        report = net.run(Echoer, max_rounds=50)
        assert report.completed
        # Normal delivery round is 1; a 1-round delay makes it 2.
        assert net.programs[1].output["got_ping_round"] == 2
        assert net.programs[0].output["got_pong_round"] == 4
        assert report.metrics.delayed_messages == 2

    def test_pending_delays_block_quiescence(self):
        class SendOnce(NodeProgram):
            def on_start(self):
                if self.node == 0:
                    self.send(1, "X")

            def on_round(self, inbox):
                if inbox:
                    self.output["got"] = self.round

        net = Network(
            two_nodes(),
            faults=FaultInjector(FaultConfig(delay_rate=1.0, max_delay=3)),
        )
        net.run(SendOnce, stop_when_quiet=True, max_rounds=50)
        # Without has_pending() the run would stop before delivery.
        delay = net.faults.plan.by_kind("delay")[0].detail
        assert net.programs[1].output["got"] == 1 + delay


class TestCrash:
    def test_crashed_node_stops_participating(self):
        g = star_graph(5)  # centre 0, leaves 1..4

        class Chatter(NodeProgram):
            def on_start(self):
                self.output["seen"] = 0

            def on_round(self, inbox):
                self.output["seen"] += len(inbox)
                if self.node != 0 and self.round <= 3:
                    self.send(0, "HI")
                if self.round >= 5:
                    self.halt()

        net = Network(
            g, faults=FaultInjector(FaultConfig(crashes={2: 2}))
        )
        report = net.run(Chatter, max_rounds=50)
        assert report.completed
        assert report.node_states[2] == "crashed"
        assert report.crashed() == (2,)
        assert set(report.survivors()) == {0, 1, 3, 4}
        assert report.metrics.crashed_nodes == 1
        # Leaves send in rounds 1..3.  Node 2 crash-stops at the start
        # of round 2, so its round-1 message (already in flight) still
        # arrives but nothing after: the centre hears 4 + 3 + 3.
        assert net.programs[0].output["seen"] == 4 + 3 + 3

    def test_messages_to_crashed_node_vanish(self):
        class PingTwo(NodeProgram):
            def on_start(self):
                if self.node == 0:
                    self.send(1, "A")

            def on_round(self, inbox):
                if self.node == 0 and self.round <= 3:
                    self.send(1, "B")
                if self.round >= 4:
                    self.halt()

        net = Network(
            two_nodes(), faults=FaultInjector(FaultConfig(crashes={1: 1}))
        )
        report = net.run(PingTwo, max_rounds=50)
        assert report.completed
        assert report.node_states == {0: "halted", 1: "crashed"}


def _traced_run(config):
    recorder = TraceRecorder()
    net = Network(
        path_graph(8), faults=FaultInjector(config)
    )
    net.attach_subscriber(recorder)
    report = net.run(
        lambda ctx: FloodProgram(ctx, 0, value=7),
        max_rounds=200,
    )
    return report, recorder.events


class TestDeterminismAndReplay:
    CONFIG = dict(
        drop_rate=0.2, duplicate_rate=0.1, delay_rate=0.2, max_delay=2,
        crashes={5: 4}, seed=9,
    )

    def test_same_seed_same_run(self):
        report_a, events_a = _traced_run(FaultConfig(**self.CONFIG))
        report_b, events_b = _traced_run(FaultConfig(**self.CONFIG))
        assert report_a.plan == report_b.plan
        assert report_a == report_b
        assert events_a == events_b

    def test_different_seed_different_plan(self):
        config = dict(self.CONFIG)
        config["seed"] = 10
        report_a, _ = _traced_run(FaultConfig(**self.CONFIG))
        report_b, _ = _traced_run(FaultConfig(**config))
        assert report_a.plan != report_b.plan

    def test_replay_reproduces_run(self):
        report, events = _traced_run(FaultConfig(**self.CONFIG))
        recorder = TraceRecorder()
        net = Network(path_graph(8), faults=FaultInjector.replay(report.plan))
        net.attach_subscriber(recorder)
        replayed = net.run(
            lambda ctx: FloodProgram(ctx, 0, value=7),
            max_rounds=200,
        )
        assert replayed == report
        assert recorder.events == events

    def test_replay_mismatch_detected(self):
        # A plan recorded against a different send schedule must not be
        # silently mis-applied: endpoints are checked per event.
        plan = FaultPlan(seed=0, events=[FaultEvent(1, "drop", 5, 4, 0)])
        net = Network(two_nodes(), faults=FaultInjector.replay(plan))
        with pytest.raises(FaultConfigError):
            net.run(Echoer, max_rounds=30)


class TestZeroOverheadPath:
    def test_no_injector_returns_plain_metrics(self):
        metrics = Network(two_nodes()).run(Echoer)
        assert isinstance(metrics, RunMetrics)
        assert not isinstance(metrics, RunReport)

    def test_faultless_counts_match_exactly(self):
        baseline = Network(path_graph(6)).run(
            lambda ctx: FloodProgram(ctx, 0, value=1)
        )
        net = Network(
            path_graph(6),
            faults=FaultInjector(FaultConfig(seed=123)),
        )
        report = net.run(lambda ctx: FloodProgram(ctx, 0, value=1))
        assert report.metrics.rounds == baseline.rounds
        assert report.metrics.messages == baseline.messages
        assert report.metrics.total_words == baseline.total_words
        assert report.metrics.traffic.per_round == baseline.traffic.per_round
