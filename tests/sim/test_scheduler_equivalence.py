"""Active-set scheduling is an implementation optimisation, not a model
change: every protocol must produce byte-identical results whether the
engine sweeps all nodes each round (``scheduling="full"``) or invokes
only nodes with traffic, matured wakeups, or ``TICK_EVERY_ROUND``
(``scheduling="active"``).

This suite pins that contract for every flagged program in the
repository — the primitives, the converted scripted programs
(``SimpleMST``, the nearest-dominator wave), a composite driver
(``FastDOM_T``), and runs under fault injection.
"""

import pytest

from repro.core.fastdom_tree import fastdom_tree
from repro.core.kdom_tree import NearestDominatorProgram, TreeKDomProgram
from repro.core.spanning_forest import SimpleMSTProgram, simple_mst_forest
from repro.graphs import (
    RootedTree,
    assign_unique_weights,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_tree,
)
from repro.primitives.bfs import BFSTreeProgram
from repro.primitives.convergecast import ConvergecastProgram, sum_combiner
from repro.primitives.echo import HopLimitedEchoProgram
from repro.primitives.flooding import FloodProgram
from repro.sim import FaultConfig, FaultInjector, Network


def run_both(graph, factory, faults_config=None, **run_kwargs):
    """Run ``factory`` under full-sweep and active scheduling; return
    the two (network, metrics-or-report) pairs."""
    results = []
    for scheduling in ("full", "active"):
        faults = (
            FaultInjector(faults_config) if faults_config is not None else None
        )
        network = Network(graph, faults=faults, scheduling=scheduling)
        metrics = network.run(factory, **run_kwargs)
        results.append((network, metrics))
    return results


def assert_equivalent(graph, factory, faults_config=None, **run_kwargs):
    (full_net, full_m), (active_net, active_m) = run_both(
        graph, factory, faults_config, **run_kwargs
    )
    # Fault runs return a RunReport; unwrap to the metrics either way.
    full_m = getattr(full_m, "metrics", full_m)
    active_m = getattr(active_m, "metrics", active_m)
    assert active_net.outputs() == full_net.outputs()
    assert active_m.rounds == full_m.rounds
    assert active_m.traffic.messages == full_m.traffic.messages
    assert active_m.traffic.total_words == full_m.traffic.total_words
    assert active_m.traffic.per_round == full_m.traffic.per_round
    halted_full = {v for v, p in full_net.programs.items() if p.halted}
    halted_active = {v for v, p in active_net.programs.items() if p.halted}
    assert halted_active == halted_full
    return full_net, active_net


def rooted(n, seed):
    tree = random_tree(n, seed=seed)
    return tree, RootedTree.from_graph(tree, 0).parent


class TestPrimitivesEquivalent:
    def test_flooding(self):
        graph = random_connected_graph(40, 0.1, seed=7)
        assert_equivalent(graph, lambda ctx: FloodProgram(ctx, 0, "payload"))

    def test_flooding_on_grid(self):
        assert_equivalent(
            grid_graph(9, 9), lambda ctx: FloodProgram(ctx, 0, 17)
        )

    def test_bfs_tree(self):
        graph = random_connected_graph(60, 0.08, seed=11)
        full_net, active_net = assert_equivalent(
            graph, lambda ctx: BFSTreeProgram(ctx, 0)
        )
        assert active_net.output_field("parent") == full_net.output_field(
            "parent"
        )

    def test_bfs_on_path(self):
        assert_equivalent(
            path_graph(80), lambda ctx: BFSTreeProgram(ctx, 0)
        )

    def test_convergecast(self):
        tree, parent = rooted(50, seed=3)
        assert_equivalent(
            tree,
            lambda ctx: ConvergecastProgram(
                ctx, 0, parent, 1, sum_combiner
            ),
        )

    def test_hop_limited_echo(self):
        tree, parent = rooted(40, seed=5)
        assert_equivalent(
            tree,
            lambda ctx: HopLimitedEchoProgram(ctx, 0, parent, 4),
            until=lambda net: net.programs[0].halted,
        )


class TestScriptedProgramsEquivalent:
    def test_tree_kdom_dp(self):
        tree, parent = rooted(45, seed=9)
        assert_equivalent(
            tree, lambda ctx: TreeKDomProgram(ctx, 0, parent, 3)
        )

    def test_nearest_dominator_wave(self):
        tree, _parent = rooted(45, seed=9)
        dominators = {v for v in tree.nodes if v % 5 == 0}
        assert_equivalent(
            tree,
            lambda ctx: NearestDominatorProgram(
                ctx, ctx.node in dominators, 6
            ),
        )

    def test_simple_mst(self):
        graph = assign_unique_weights(
            random_connected_graph(48, 0.12, seed=13), seed=14
        )
        assert_equivalent(graph, lambda ctx: SimpleMSTProgram(ctx, 6))

    def test_simple_mst_forest_driver(self, monkeypatch):
        graph = assign_unique_weights(
            random_connected_graph(40, 0.1, seed=21), seed=22
        )
        runs = {}
        for scheduling in ("full", "active"):
            monkeypatch.setattr(Network, "default_scheduling", scheduling)
            parents, fragments, network = simple_mst_forest(graph, 5)
            runs[scheduling] = (
                parents,
                sorted(tuple(sorted(f, key=str)) for f in fragments),
                network.metrics.rounds,
                network.metrics.traffic.messages,
            )
        assert runs["active"] == runs["full"]


class TestCompositeDriverEquivalent:
    def test_fastdom_tree(self, monkeypatch):
        tree, parent = rooted(70, seed=2)
        runs = {}
        for scheduling in ("full", "active"):
            monkeypatch.setattr(Network, "default_scheduling", scheduling)
            dominators, partition, staged = fastdom_tree(tree, 0, parent, 3)
            runs[scheduling] = (
                sorted(dominators, key=str),
                sorted(
                    tuple(sorted(c.members, key=str))
                    for c in partition
                ),
                staged.total_rounds,
                staged.total_messages,
            )
        assert runs["active"] == runs["full"]


class TestEquivalenceUnderFaults:
    CONFIG = dict(
        drop_rate=0.08, duplicate_rate=0.08, delay_rate=0.1, max_delay=3
    )

    def test_flooding_with_message_faults(self):
        graph = random_connected_graph(30, 0.12, seed=17)
        assert_equivalent(
            graph,
            lambda ctx: FloodProgram(ctx, 0, "x"),
            faults_config=FaultConfig(seed=5, **self.CONFIG),
            max_rounds=80,
        )

    def test_bfs_with_drops(self):
        # Drop-only: BFS is not duplicate-safe (a redelivered offer can
        # make a node send twice over one edge, a CongestionViolation in
        # either scheduling mode), so only loss is injected here.
        graph = random_connected_graph(30, 0.12, seed=19)
        assert_equivalent(
            graph,
            lambda ctx: BFSTreeProgram(ctx, 0),
            faults_config=FaultConfig(seed=6, drop_rate=0.1),
            max_rounds=120,
        )

    def test_flooding_with_crashes(self):
        graph = random_connected_graph(30, 0.12, seed=23)
        assert_equivalent(
            graph,
            lambda ctx: FloodProgram(ctx, 0, "x"),
            faults_config=FaultConfig(crashes={3: 2, 11: 4}),
            max_rounds=80,
        )

    def test_fault_reports_match(self):
        graph = random_connected_graph(24, 0.15, seed=29)
        (_, full_report), (_, active_report) = run_both(
            graph,
            lambda ctx: FloodProgram(ctx, 0, "x"),
            FaultConfig(seed=8, drop_rate=0.15),
            max_rounds=60,
        )
        assert active_report.metrics.dropped_messages == (
            full_report.metrics.dropped_messages
        )
        assert [e.kind for e in active_report.plan.events] == [
            e.kind for e in full_report.plan.events
        ]


class TestWakeupScheduling:
    def test_wakeup_invokes_at_requested_round(self):
        from repro.sim.program import NodeProgram

        invocations = {}

        class Probe(NodeProgram):
            TICK_EVERY_ROUND = False

            def on_start(self):
                invocations[self.node] = []
                if self.node == 0:
                    self.request_wakeup(3)

            def on_round(self, inbox):
                invocations[self.node].append(self.round)
                self.halt()

        network = Network(path_graph(3), scheduling="active")
        network.run(Probe, max_rounds=10, stop_when_quiet=True)
        assert invocations[0] == [3]
        assert invocations[1] == []
        assert invocations[2] == []

    def test_wakeup_delay_must_be_positive(self):
        from repro.sim.program import NodeProgram

        class Eager(NodeProgram):
            def on_start(self):
                self.request_wakeup(0)

        with pytest.raises(ValueError):
            Network(path_graph(2)).setup(Eager)

    def test_idle_program_not_invoked_without_traffic(self):
        from repro.sim.program import NodeProgram

        invoked = []

        class Quiet(NodeProgram):
            TICK_EVERY_ROUND = False

            def on_start(self):
                if self.node == 0:
                    self.send(self.neighbors[0], "PING")

            def on_round(self, inbox):
                invoked.append((self.node, self.round))
                self.halt()

        network = Network(path_graph(4), scheduling="active")
        network.run(Quiet, max_rounds=10, stop_when_quiet=True)
        # Only node 1 (the receiver) is ever invoked.
        assert invoked == [(1, 1)]
