"""Orchestrator: sequential stage composition."""

from repro.graphs import path_graph, random_tree
from repro.primitives.bfs import BFSTreeProgram
from repro.primitives.convergecast import ConvergecastProgram, sum_combiner
from repro.sim import Network, Orchestrator


class TestOrchestrator:
    def test_two_stage_count(self):
        g = random_tree(40, seed=2)
        orch = Orchestrator()

        orch.run_stage("bfs", g, lambda state: (
            lambda ctx: BFSTreeProgram(ctx, 0)
        ))

        def census_factory(state):
            parents = {v: out["parent"] for v, out in state["bfs"].items()}
            return lambda ctx: ConvergecastProgram(
                ctx, 0, parents, 1, sum_combiner
            )

        net = orch.run_stage("census", g, census_factory)
        assert net.programs[0].output["aggregate"] == 40
        assert orch.total_rounds == sum(orch.breakdown().values())
        assert list(orch.breakdown()) == ["bfs", "census"]

    def test_local_stage_and_charge(self):
        orch = Orchestrator()
        result = orch.run_local_stage("prep", lambda state: {"x": 1})
        assert result == {"x": 1}
        assert orch.state["prep"] == {"x": 1}
        orch.charge("wave", 17)
        assert orch.total_rounds == 17

    def test_parallel_stage(self):
        from repro.sim import NodeProgram

        class Sleep(NodeProgram):
            def __init__(self, ctx, rounds):
                super().__init__(ctx)
                self.remaining = rounds

            def on_start(self):
                pass

            def on_round(self, inbox):
                self.remaining -= 1
                if self.remaining <= 0:
                    self.halt()

        orch = Orchestrator()
        runs = [
            (Network(path_graph(2)), lambda ctx: Sleep(ctx, 2)),
            (Network(path_graph(2)), lambda ctx: Sleep(ctx, 9)),
        ]
        orch.run_parallel_stage("sleepers", runs)
        assert orch.breakdown()["sleepers"] == 9

    def test_log(self):
        orch = Orchestrator()
        orch.charge("x", 3)
        assert any("x" in line for line in orch.log())
