"""Asynchronous engine and synchroniser α (experiment E13 substrate)."""


from repro.graphs import path_graph, random_tree, star_graph
from repro.primitives.bfs import BFSTreeProgram
from repro.sim import (
    AsyncNetwork,
    AsyncNodeProgram,
    Network,
    run_synchronized,
)
from repro.graphs import bfs_distances


class AsyncFlood(AsyncNodeProgram):
    """Event-driven flood from node 0."""

    def on_start(self):
        if self.node == 0:
            self.output["value"] = 1
            for nb in self.neighbors:
                self.send(nb, "F", 1)
            self.halt()

    def on_message(self, sender, payload):
        if payload[0] == "F" and "value" not in self.output:
            self.output["value"] = payload[1]
            for nb in self.neighbors:
                if nb != sender:
                    self.send(nb, "F", payload[1])
            self.halt()


class TestAsyncNetwork:
    def test_flood_reaches_everyone(self):
        g = random_tree(30, seed=5)
        net = AsyncNetwork(g, seed=1)
        net.run(AsyncFlood)
        assert set(net.outputs()) == set(g.nodes)
        assert all(o.get("value") == 1 for o in net.outputs().values())

    def test_deterministic_given_seed(self):
        g = random_tree(20, seed=3)
        t1 = AsyncNetwork(g, seed=9).run(AsyncFlood)
        t2 = AsyncNetwork(g, seed=9).run(AsyncFlood)
        assert t1 == t2

    def test_completion_time_bounded_by_hops(self):
        g = path_graph(10)
        net = AsyncNetwork(g, seed=2, max_delay=1.0)
        time = net.run(AsyncFlood)
        # One unit bounds each hop's delay; 9 hops end to end.
        assert time <= 9.0


class TestSynchronizerAlpha:
    def test_bfs_under_alpha_matches_sync(self):
        g = random_tree(25, seed=8)
        sync_net = Network(g)
        sync_net.run(lambda ctx: BFSTreeProgram(ctx, 0))
        sync_depths = sync_net.output_field("depth")

        async_net, _time = run_synchronized(
            g, lambda ctx: BFSTreeProgram(ctx, 0), seed=4
        )
        alpha_depths = {
            v: p.output["depth"] for v, p in async_net.programs.items()
        }
        assert alpha_depths == sync_depths == bfs_distances(g, 0)

    def test_pulse_counts_close_to_sync_rounds(self):
        g = star_graph(10)
        sync_net = Network(g)
        sync_metrics = sync_net.run(lambda ctx: BFSTreeProgram(ctx, 0))

        async_net, _time = run_synchronized(
            g, lambda ctx: BFSTreeProgram(ctx, 0), seed=4
        )
        pulses = max(
            p.pulses_at_halt
            for p in async_net.programs.values()
            if p.pulses_at_halt is not None
        )
        assert pulses <= sync_metrics.rounds + 2

    def test_alpha_message_overhead_constant_per_edge_per_pulse(self):
        g = path_graph(8)
        async_net, _time = run_synchronized(
            g, lambda ctx: BFSTreeProgram(ctx, 0), seed=1
        )
        pulses = max(p.pulses_completed for p in async_net.programs.values())
        # alpha costs O(1) messages per edge per pulse (payload + ack +
        # safe in each direction: <= 6).
        assert async_net.message_count <= 6 * g.num_edges * (pulses + 2)
