"""Parallel composition and staged-run accounting."""

from repro.graphs import path_graph
from repro.sim import Network, NodeProgram, RunMetrics, StagedRun, run_in_parallel


class Countdown(NodeProgram):
    def __init__(self, ctx, rounds):
        super().__init__(ctx)
        self.remaining = rounds

    def on_start(self):
        pass

    def on_round(self, inbox):
        self.remaining -= 1
        if self.remaining <= 0:
            self.halt()


class TestRunInParallel:
    def test_rounds_are_max(self):
        runs = [
            (Network(path_graph(2)), lambda ctx: Countdown(ctx, 3)),
            (Network(path_graph(2)), lambda ctx: Countdown(ctx, 7)),
        ]
        _nets, combined = run_in_parallel(runs)
        assert combined.rounds == 7

    def test_traffic_is_summed(self):
        class OneShot(NodeProgram):
            def on_start(self):
                if self.node == 0:
                    self.send(1, "X")

            def on_round(self, inbox):
                self.halt()

        runs = [
            (Network(path_graph(2)), OneShot),
            (Network(path_graph(2)), OneShot),
        ]
        _nets, combined = run_in_parallel(runs)
        assert combined.traffic.messages == 2

    def test_empty(self):
        _nets, combined = run_in_parallel([])
        assert combined.rounds == 0


class TestStagedRun:
    def test_rounds_accumulate(self):
        staged = StagedRun()
        staged.add_rounds("a", 5)
        staged.add_rounds("b", 3)
        staged.add_rounds("a", 2)
        assert staged.total_rounds == 10
        assert staged.breakdown() == {"a": 7, "b": 3}

    def test_record_metrics(self):
        staged = StagedRun()
        metrics = RunMetrics()
        metrics.rounds = 4
        metrics.traffic.messages = 9
        staged.record("stage", metrics)
        assert staged.total_rounds == 4
        assert staged.total_messages == 9

    def test_order_preserved(self):
        staged = StagedRun()
        for name in ("z", "a", "m"):
            staged.add_rounds(name, 1)
        assert list(staged.breakdown()) == ["z", "a", "m"]


class TestMetricsMerge:
    def test_halt_accounting_is_combined(self):
        # One sub-network halts everywhere; in the other a crash leaves
        # a node un-halted.  The parallel composition must expose both
        # the summed halt count and the conjunction of all_halted.
        from repro.sim import FaultConfig, FaultInjector

        runs = [
            (Network(path_graph(2)), lambda ctx: Countdown(ctx, 3)),
            (
                Network(
                    path_graph(2),
                    faults=FaultInjector(FaultConfig(crashes={1: 1})),
                ),
                lambda ctx: Countdown(ctx, 3),
            ),
        ]
        _nets, combined = run_in_parallel(runs)
        assert combined.halted_nodes == 3  # 2 + 1 (the crashed node never halts)
        assert combined.all_halted is False
        assert combined.crashed_nodes == 1
        assert combined.rounds == 3

    def test_merge_classmethod_semantics(self):
        a = RunMetrics()
        a.rounds, a.all_halted, a.halted_nodes = 5, True, 4
        a.traffic.messages, a.traffic.total_words = 10, 30
        a.traffic.max_words = 3
        a.traffic.per_round = {1: 6, 2: 4}
        a.dropped_messages = 2
        b = RunMetrics()
        b.rounds, b.all_halted, b.halted_nodes = 8, True, 6
        b.traffic.messages, b.traffic.total_words = 1, 2
        b.traffic.max_words = 2
        b.traffic.per_round = {2: 1}
        b.delayed_messages = 1

        merged = RunMetrics.merge([a, b])
        assert merged.rounds == 8  # parallel: max, not sum
        assert merged.halted_nodes == 10
        assert merged.all_halted is True
        assert merged.traffic.messages == 11
        assert merged.traffic.total_words == 32
        assert merged.traffic.max_words == 3
        assert merged.traffic.per_round == {1: 6, 2: 5}
        assert merged.dropped_messages == 2
        assert merged.delayed_messages == 1

    def test_merge_differs_from_sequential(self):
        a = RunMetrics()
        a.rounds, a.all_halted = 5, True
        b = RunMetrics()
        b.rounds, b.all_halted = 8, True
        assert RunMetrics.merge([a, b]).rounds == 8
        assert a.merged_with(b).rounds == 13
