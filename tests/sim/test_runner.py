"""Parallel composition and staged-run accounting."""

from repro.graphs import path_graph
from repro.sim import Network, NodeProgram, RunMetrics, StagedRun, run_in_parallel


class Countdown(NodeProgram):
    def __init__(self, ctx, rounds):
        super().__init__(ctx)
        self.remaining = rounds

    def on_start(self):
        pass

    def on_round(self, inbox):
        self.remaining -= 1
        if self.remaining <= 0:
            self.halt()


class TestRunInParallel:
    def test_rounds_are_max(self):
        runs = [
            (Network(path_graph(2)), lambda ctx: Countdown(ctx, 3)),
            (Network(path_graph(2)), lambda ctx: Countdown(ctx, 7)),
        ]
        _nets, combined = run_in_parallel(runs)
        assert combined.rounds == 7

    def test_traffic_is_summed(self):
        class OneShot(NodeProgram):
            def on_start(self):
                if self.node == 0:
                    self.send(1, "X")

            def on_round(self, inbox):
                self.halt()

        runs = [
            (Network(path_graph(2)), OneShot),
            (Network(path_graph(2)), OneShot),
        ]
        _nets, combined = run_in_parallel(runs)
        assert combined.traffic.messages == 2

    def test_empty(self):
        _nets, combined = run_in_parallel([])
        assert combined.rounds == 0


class TestStagedRun:
    def test_rounds_accumulate(self):
        staged = StagedRun()
        staged.add_rounds("a", 5)
        staged.add_rounds("b", 3)
        staged.add_rounds("a", 2)
        assert staged.total_rounds == 10
        assert staged.breakdown() == {"a": 7, "b": 3}

    def test_record_metrics(self):
        staged = StagedRun()
        metrics = RunMetrics()
        metrics.rounds = 4
        metrics.traffic.messages = 9
        staged.record("stage", metrics)
        assert staged.total_rounds == 4
        assert staged.total_messages == 9

    def test_order_preserved(self):
        staged = StagedRun()
        for name in ("z", "a", "m"):
            staged.add_rounds(name, 1)
        assert list(staged.breakdown()) == ["z", "a", "m"]
