"""Parallel composition and staged-run accounting."""

import pytest

from repro.graphs import path_graph
from repro.sim import (
    Network,
    NodeProgram,
    ParallelRunError,
    RunMetrics,
    StagedRun,
    run_in_parallel,
)


class Countdown(NodeProgram):
    def __init__(self, ctx, rounds):
        super().__init__(ctx)
        self.remaining = rounds

    def on_start(self):
        pass

    def on_round(self, inbox):
        self.remaining -= 1
        if self.remaining <= 0:
            self.halt()


class PingAndTell(NodeProgram):
    """Module-level (hence picklable) program for the process backend:
    node 0 pings its neighbour, everyone records an output."""

    def on_start(self):
        if self.node == 0:
            self.send(1, "PING")

    def on_round(self, inbox):
        self.output["got"] = sorted(e.tag() for e in inbox)
        self.output["node"] = self.node
        self.halt()


class CountdownFive(Countdown):
    """Picklable zero-arg-beyond-ctx factory for process-backend tests."""

    def __init__(self, ctx):
        super().__init__(ctx, 5)


class ExplodingFactory:
    """Factory that raises for the failing-run regression tests."""

    def __call__(self, ctx):
        raise RuntimeError("deliberately failing factory")


class TestRunInParallel:
    def test_rounds_are_max(self):
        runs = [
            (Network(path_graph(2)), lambda ctx: Countdown(ctx, 3)),
            (Network(path_graph(2)), lambda ctx: Countdown(ctx, 7)),
        ]
        _nets, combined = run_in_parallel(runs)
        assert combined.rounds == 7

    def test_traffic_is_summed(self):
        class OneShot(NodeProgram):
            def on_start(self):
                if self.node == 0:
                    self.send(1, "X")

            def on_round(self, inbox):
                self.halt()

        runs = [
            (Network(path_graph(2)), OneShot),
            (Network(path_graph(2)), OneShot),
        ]
        _nets, combined = run_in_parallel(runs)
        assert combined.traffic.messages == 2

    def test_empty(self):
        _nets, combined = run_in_parallel([])
        assert combined.rounds == 0


class TestStagedRun:
    def test_rounds_accumulate(self):
        staged = StagedRun()
        staged.add_rounds("a", 5)
        staged.add_rounds("b", 3)
        staged.add_rounds("a", 2)
        assert staged.total_rounds == 10
        assert staged.breakdown() == {"a": 7, "b": 3}

    def test_record_metrics(self):
        staged = StagedRun()
        metrics = RunMetrics()
        metrics.rounds = 4
        metrics.traffic.messages = 9
        staged.record("stage", metrics)
        assert staged.total_rounds == 4
        assert staged.total_messages == 9

    def test_order_preserved(self):
        staged = StagedRun()
        for name in ("z", "a", "m"):
            staged.add_rounds(name, 1)
        assert list(staged.breakdown()) == ["z", "a", "m"]


class TestMetricsMerge:
    def test_halt_accounting_is_combined(self):
        # One sub-network halts everywhere; in the other a crash leaves
        # a node un-halted.  The parallel composition must expose both
        # the summed halt count and the conjunction of all_halted.
        from repro.sim import FaultConfig, FaultInjector

        runs = [
            (Network(path_graph(2)), lambda ctx: Countdown(ctx, 3)),
            (
                Network(
                    path_graph(2),
                    faults=FaultInjector(FaultConfig(crashes={1: 1})),
                ),
                lambda ctx: Countdown(ctx, 3),
            ),
        ]
        _nets, combined = run_in_parallel(runs)
        assert combined.halted_nodes == 3  # 2 + 1 (the crashed node never halts)
        assert combined.all_halted is False
        assert combined.crashed_nodes == 1
        assert combined.rounds == 3

    def test_merge_classmethod_semantics(self):
        a = RunMetrics()
        a.rounds, a.all_halted, a.halted_nodes = 5, True, 4
        a.traffic.messages, a.traffic.total_words = 10, 30
        a.traffic.max_words = 3
        a.traffic.per_round = {1: 6, 2: 4}
        a.dropped_messages = 2
        b = RunMetrics()
        b.rounds, b.all_halted, b.halted_nodes = 8, True, 6
        b.traffic.messages, b.traffic.total_words = 1, 2
        b.traffic.max_words = 2
        b.traffic.per_round = {2: 1}
        b.delayed_messages = 1

        merged = RunMetrics.merge([a, b])
        assert merged.rounds == 8  # parallel: max, not sum
        assert merged.halted_nodes == 10
        assert merged.all_halted is True
        assert merged.traffic.messages == 11
        assert merged.traffic.total_words == 32
        assert merged.traffic.max_words == 3
        assert merged.traffic.per_round == {1: 6, 2: 5}
        assert merged.dropped_messages == 2
        assert merged.delayed_messages == 1

    def test_merge_differs_from_sequential(self):
        a = RunMetrics()
        a.rounds, a.all_halted = 5, True
        b = RunMetrics()
        b.rounds, b.all_halted = 8, True
        assert RunMetrics.merge([a, b]).rounds == 8
        assert a.merged_with(b).rounds == 13

    def test_merge_empty_is_not_all_halted(self):
        # Vacuous truth is wrong here: "every node of zero runs halted"
        # must not report a successful termination.
        merged = RunMetrics.merge([])
        assert merged.all_halted is False
        assert merged.rounds == 0
        assert merged.halted_nodes == 0

    def test_merged_with_accumulates_halted_nodes(self):
        a = RunMetrics()
        a.rounds, a.all_halted, a.halted_nodes = 5, True, 4
        b = RunMetrics()
        b.rounds, b.all_halted, b.halted_nodes = 3, True, 7
        merged = a.merged_with(b)
        # Sequential stages run on stage-local networks; the composed
        # run halted 4 nodes in stage 1 and 7 in stage 2.
        assert merged.halted_nodes == 11
        assert merged.all_halted is True
        assert merged.rounds == 8

    def test_staged_composition_halt_counts(self):
        # Three stages recorded through StagedRun must accumulate halt
        # counts instead of keeping only the last stage's.
        staged = StagedRun()
        for name, halted in (("a", 2), ("b", 3), ("c", 5)):
            m = RunMetrics()
            m.rounds, m.all_halted, m.halted_nodes = 1, True, halted
            staged.record(name, m)
        assert staged.combined.halted_nodes == 10
        assert staged.combined.rounds == 3

    def test_roundtrip_dict(self):
        a = RunMetrics()
        a.rounds, a.all_halted, a.halted_nodes = 5, True, 4
        a.traffic.messages, a.traffic.total_words = 10, 30
        a.traffic.max_words = 3
        a.traffic.per_round = {1: 6, 2: 4}
        back = RunMetrics.from_dict(a.to_dict())
        assert back.rounds == a.rounds
        assert back.all_halted is a.all_halted
        assert back.halted_nodes == a.halted_nodes
        assert back.traffic.per_round == {1: 6, 2: 4}


class TestParallelFailure:
    def test_partial_results_preserved_inline(self):
        runs = [
            (Network(path_graph(2)), lambda ctx: Countdown(ctx, 3)),
            (Network(path_graph(2)), lambda ctx: Countdown(ctx, 7)),
            (Network(path_graph(2)), ExplodingFactory()),
        ]
        with pytest.raises(ParallelRunError) as excinfo:
            run_in_parallel(runs)
        err = excinfo.value
        assert err.index == 2
        assert isinstance(err.__cause__, RuntimeError)
        # The two completed runs are preserved with their metrics.
        assert len(err.networks) == 2
        assert err.metrics.rounds == 7
        assert all(net.metrics.all_halted for net in err.networks)

    def test_partial_results_preserved_process(self):
        runs = [
            (Network(path_graph(2)), CountdownFive),
            (Network(path_graph(2)), ExplodingFactory()),
            (Network(path_graph(2)), CountdownFive),
        ]
        with pytest.raises(ParallelRunError) as excinfo:
            run_in_parallel(runs, backend="process", workers=2)
        err = excinfo.value
        assert err.index == 1
        # Completed runs (whichever finished before the error surfaced)
        # still carry adopted metrics.
        for net in err.networks:
            assert net.metrics.all_halted


class TestProcessBackend:
    def test_matches_inline(self):
        def build():
            return [
                (Network(path_graph(3)), PingAndTell),
                (Network(path_graph(2)), CountdownFive),
                (Network(path_graph(4)), PingAndTell),
            ]

        inline_nets, inline_metrics = run_in_parallel(build())
        proc_nets, proc_metrics = run_in_parallel(
            build(), backend="process", workers=2
        )
        assert proc_metrics.rounds == inline_metrics.rounds
        assert proc_metrics.traffic.messages == inline_metrics.traffic.messages
        assert proc_metrics.halted_nodes == inline_metrics.halted_nodes
        assert proc_metrics.all_halted is inline_metrics.all_halted
        for a, b in zip(inline_nets, proc_nets):
            assert a.outputs() == b.outputs()
            assert a.metrics.rounds == b.metrics.rounds

    def test_caller_networks_adopt_results(self):
        net = Network(path_graph(2))
        nets, _metrics = run_in_parallel(
            [(net, PingAndTell), (Network(path_graph(2)), PingAndTell)],
            backend="process",
            workers=2,
        )
        # The same Network objects come back, mutated in place.
        assert nets[0] is net
        assert net.outputs()[1]["got"] == ["PING"]
        assert net.metrics.all_halted

    def test_single_run_stays_inline(self):
        # One run gains nothing from a pool; factories need not pickle.
        nets, metrics = run_in_parallel(
            [(Network(path_graph(2)), lambda ctx: Countdown(ctx, 2))],
            backend="process",
        )
        assert metrics.rounds == 2
        assert nets[0].metrics.all_halted

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_in_parallel(
                [(Network(path_graph(2)), CountdownFive)], backend="threads"
            )
