"""Network semantics: delivery timing, model enforcement, termination."""

import pytest

from repro.graphs import Graph, path_graph, star_graph
from repro.sim import (
    CongestionViolation,
    HaltedNodeActed,
    MessageTooLarge,
    Network,
    NodeProgram,
    NotANeighbor,
    RoundLimitExceeded,
)


def two_nodes() -> Graph:
    g = Graph()
    g.add_edge(0, 1)
    return g


class Echoer(NodeProgram):
    """Node 0 pings; node 1 echoes; both record rounds."""

    def on_start(self):
        if self.node == 0:
            self.send(1, "PING")

    def on_round(self, inbox):
        for e in inbox:
            if e.tag() == "PING":
                self.output["got_ping_round"] = self.round
                self.send(e.sender, "PONG")
                self.halt()
            elif e.tag() == "PONG":
                self.output["got_pong_round"] = self.round
                self.halt()


class TestDelivery:
    def test_one_round_latency(self):
        net = Network(two_nodes())
        net.run(Echoer)
        assert net.programs[1].output["got_ping_round"] == 1
        assert net.programs[0].output["got_pong_round"] == 2

    def test_rounds_counted(self):
        net = Network(two_nodes())
        metrics = net.run(Echoer)
        assert metrics.rounds == 2
        assert metrics.messages == 2
        assert metrics.all_halted

    def test_inbox_sorted_deterministically(self):
        g = star_graph(6)

        class LeafPing(NodeProgram):
            def on_start(self):
                if self.node != 0:
                    self.send(0, "HI", self.node)
                    self.halt()

            def on_round(self, inbox):
                self.output["order"] = [e.sender for e in inbox]
                self.halt()

        net = Network(g)
        net.run(LeafPing)
        order = net.programs[0].output["order"]
        assert order == sorted(order, key=str)


class TestEnforcement:
    def test_congestion_raises(self):
        class DoubleSend(NodeProgram):
            def on_start(self):
                if self.node == 0:
                    self.send(1, "A")
                    self.send(1, "B")

            def on_round(self, inbox):
                self.halt()

        with pytest.raises(CongestionViolation):
            Network(two_nodes()).run(DoubleSend)

    def test_both_directions_allowed(self):
        class CrossSend(NodeProgram):
            def on_start(self):
                other = 1 - self.node
                self.send(other, "X")

            def on_round(self, inbox):
                assert len(inbox) == 1
                self.halt()

        Network(two_nodes()).run(CrossSend)

    def test_oversized_message_raises(self):
        class BigSend(NodeProgram):
            def on_start(self):
                if self.node == 0:
                    self.send(1, *range(20))

            def on_round(self, inbox):
                self.halt()

        with pytest.raises(MessageTooLarge):
            Network(two_nodes()).run(BigSend)

    def test_non_neighbor_raises(self):
        class FarSend(NodeProgram):
            def on_start(self):
                if self.node == 0:
                    self.send(2, "X")

            def on_round(self, inbox):
                self.halt()

        with pytest.raises(NotANeighbor):
            Network(path_graph(3)).run(FarSend)

    def test_halted_node_cannot_send(self):
        class ZombieSend(NodeProgram):
            def on_start(self):
                self.halt()
                if self.node == 0:
                    self.send(1, "X")

            def on_round(self, inbox):  # pragma: no cover
                pass

        with pytest.raises(HaltedNodeActed):
            Network(two_nodes()).run(ZombieSend)

    def test_round_limit(self):
        class Forever(NodeProgram):
            def on_start(self):
                if self.node == 0:
                    self.send(1, "T")

            def on_round(self, inbox):
                for e in inbox:
                    self.send(e.sender, "T")

        with pytest.raises(RoundLimitExceeded):
            Network(two_nodes()).run(Forever, max_rounds=50)

    def test_word_limit_configurable(self):
        class SixWords(NodeProgram):
            def on_start(self):
                if self.node == 0:
                    self.send(1, 1, 2, 3, 4, 5, 6)

            def on_round(self, inbox):
                self.halt()

        with pytest.raises(MessageTooLarge):
            Network(two_nodes(), word_limit=4).run(SixWords)
        Network(two_nodes(), word_limit=6).run(SixWords)


class TestTermination:
    def test_stop_when_quiet(self):
        class Quiet(NodeProgram):
            def on_start(self):
                if self.node == 0:
                    self.send(1, "X")

            def on_round(self, inbox):
                pass  # never halts, never sends again

        net = Network(two_nodes())
        metrics = net.run(Quiet, stop_when_quiet=True)
        assert not metrics.all_halted
        assert metrics.rounds <= 3

    def test_until_predicate(self):
        class Counter(NodeProgram):
            def on_start(self):
                self.count = 0

            def on_round(self, inbox):
                self.count += 1

        net = Network(two_nodes())
        net.run(Counter, until=lambda n: n.current_round >= 5)
        assert net.current_round == 5

    def test_outputs_collection(self):
        class Out(NodeProgram):
            def on_start(self):
                self.output["id"] = self.node
                if self.node == 0:
                    self.output["extra"] = True
                self.halt()

            def on_round(self, inbox):  # pragma: no cover
                pass

        net = Network(two_nodes())
        net.run(Out)
        assert net.output_field("id") == {0: 0, 1: 1}
        assert net.output_field("extra") == {0: True}

    def test_context_exposes_weights(self):
        g = Graph()
        g.add_edge(0, 1, 7.5)

        class W(NodeProgram):
            def on_start(self):
                other = 1 - self.node
                self.output["w"] = self.ctx.weight(other)
                self.halt()

            def on_round(self, inbox):  # pragma: no cover
                pass

        net = Network(g)
        net.run(W)
        assert net.output_field("w") == {0: 7.5, 1: 7.5}

    def test_n_exposed(self):
        class N(NodeProgram):
            def on_start(self):
                self.output["n"] = self.n
                self.halt()

            def on_round(self, inbox):  # pragma: no cover
                pass

        net = Network(path_graph(5))
        net.run(N)
        assert set(net.output_field("n").values()) == {5}


class TestPayloadValidation:
    def test_unserializable_payload_raises(self):
        from repro.sim import UnserializablePayload

        class BadSend(NodeProgram):
            def on_start(self):
                if self.node == 0:
                    self.send(1, {"a": 1})

            def on_round(self, inbox):
                self.halt()

        with pytest.raises(UnserializablePayload):
            Network(two_nodes()).run(BadSend)

    def test_long_string_payload_raises(self):
        from repro.sim import UnserializablePayload

        class LongTag(NodeProgram):
            def on_start(self):
                if self.node == 0:
                    self.send(1, "x" * 200)

            def on_round(self, inbox):
                self.halt()

        with pytest.raises(UnserializablePayload):
            Network(two_nodes()).run(LongTag)


class TestDeterministicTraces:
    """Property-style: same seed in, same execution out.

    The simulator promises a deterministic schedule — inbox ordering by
    ``(str(sender), str(payload))``, nodes processed in sorted order —
    so two runs built from identical seeds must produce identical
    per-node traces, message for message.
    """

    class GossipRecorder(NodeProgram):
        """Every node broadcasts a value derived from its id each round
        and records the exact inbox it observed."""

        ROUNDS = 4

        def on_start(self):
            self.output["trace"] = []
            for u in self.neighbors:
                self.send(u, "GOSSIP", self.node, 0)

        def on_round(self, inbox):
            self.output["trace"].append(
                [(e.sender, e.payload) for e in inbox]
            )
            if self.round >= self.ROUNDS:
                self.halt()
                return
            for u in self.neighbors:
                self.send(u, "GOSSIP", self.node, self.round)

    @staticmethod
    def _run(seed: int):
        from repro.graphs import random_connected_graph

        # 12 nodes guarantees ids 2 and 10 exist, where numeric order
        # (2 < 10) and the string order the simulator uses ("10" < "2")
        # disagree — the regression this test guards.
        g = random_connected_graph(12, 0.3, seed=seed)
        net = Network(g)
        metrics = net.run(TestDeterministicTraces.GossipRecorder)
        return metrics, {v: p.output["trace"] for v, p in net.programs.items()}

    def test_identical_seeds_identical_traces(self):
        for seed in (0, 1, 7):
            metrics_a, traces_a = self._run(seed)
            metrics_b, traces_b = self._run(seed)
            assert metrics_a == metrics_b
            assert traces_a == traces_b

    def test_inbox_order_is_string_order(self):
        _metrics, traces = self._run(3)
        saw_inversion = False
        for trace in traces.values():
            for inbox in trace:
                senders = [sender for sender, _payload in inbox]
                assert senders == sorted(senders, key=str)
                if senders != sorted(senders):  # numeric != string order
                    saw_inversion = True
        assert saw_inversion, "test graph never exercised 2-vs-10 ordering"
