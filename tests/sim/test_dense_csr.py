"""CSR adjacency (repro.sim.dense.csr): structure, string ranks, the
provenance cache, and the graceful no-numpy / bad-ids error paths."""

import pytest

from repro.graphs import (
    grid_graph,
    path_graph,
    random_connected_graph,
    random_tree,
)
from repro.graphs.graph import Graph
from repro.sim.dense import DenseUnavailable, require_numpy
from repro.sim.dense import core as dense_core

np = pytest.importorskip("numpy")

from repro.sim.dense import (  # noqa: E402 - needs numpy present
    build_csr,
    cache_clear,
    cache_info,
    csr_adjacency,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    cache_clear()
    yield
    cache_clear()


class TestStructure:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(7),
            grid_graph(4, 5),
            random_connected_graph(40, 0.15, seed=3),
        ],
    )
    def test_rows_match_graph(self, graph):
        csr = build_csr(graph)
        assert csr.nodes == sorted(graph.nodes)
        assert csr.n == graph.num_nodes
        assert csr.num_edges == graph.num_edges
        for row, v in enumerate(csr.nodes):
            neigh = csr.neighbors_of(row)
            # Ascending within the row, matching natural node order.
            assert list(neigh) == sorted(neigh.tolist())
            assert {csr.nodes[r] for r in neigh} == set(graph.neighbors(v))

    def test_degrees_from_indptr(self):
        g = random_connected_graph(30, 0.2, seed=1)
        csr = build_csr(g)
        for row, v in enumerate(csr.nodes):
            assert int(csr.degrees[row]) == len(list(g.neighbors(v)))

    def test_gather_edges(self):
        g = grid_graph(3, 4)
        csr = build_csr(g)
        rows = np.asarray([0, 5, 11], dtype=np.int64)
        sources, targets = csr.gather_edges(rows)
        flat = list(zip(sources.tolist(), targets.tolist()))
        expected = [
            (int(r), int(t)) for r in rows for t in csr.neighbors_of(int(r))
        ]
        assert flat == expected

    def test_gather_edges_empty(self):
        csr = build_csr(path_graph(4))
        sources, targets = csr.gather_edges(np.empty(0, dtype=np.int64))
        assert sources.shape == (0,) and targets.shape == (0,)

    def test_weights_aligned(self):
        from repro.graphs import assign_unique_weights

        g = assign_unique_weights(random_connected_graph(25, 0.2, 2), 7)
        csr = build_csr(g, with_weights=True)
        for row, v in enumerate(csr.nodes):
            lo, hi = int(csr.indptr[row]), int(csr.indptr[row + 1])
            for slot in range(lo, hi):
                u = csr.nodes[int(csr.indices[slot])]
                assert csr.weights[slot] == g.weight(v, u)


class TestStringRank:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(25),  # "15" < "8": mixed digit widths
            grid_graph(11, 11),  # ids up to 120
            random_tree(200, seed=9),
        ],
    )
    def test_matches_python_str_sort(self, graph):
        csr = build_csr(graph)
        by_str = sorted(range(csr.n), key=lambda row: str(csr.nodes[row]))
        expected = np.empty(csr.n, dtype=np.int64)
        expected[np.asarray(by_str)] = np.arange(csr.n)
        assert np.array_equal(csr.str_rank, expected)
        # rank_to_row is the inverse permutation.
        assert np.array_equal(csr.rank_to_row[csr.str_rank], np.arange(csr.n))

    def test_huge_ids_fall_back_to_string_sort(self):
        g = Graph()
        wide = [0, 10**18, 5, 10**18 + 3, 99]
        for u, v in zip(wide, wide[1:]):
            g.add_edge(u, v)
        csr = build_csr(g)
        by_str = sorted(range(csr.n), key=lambda row: str(csr.nodes[row]))
        assert [int(csr.rank_to_row[r]) for r in range(csr.n)] == by_str


class TestProvenanceCache:
    def test_generated_graphs_share_adjacency(self):
        a = csr_adjacency(random_tree(40, seed=5))
        b = csr_adjacency(random_tree(40, seed=5))
        assert a is b
        assert cache_info()["entries"] == 1

    def test_different_seeds_miss(self):
        a = csr_adjacency(random_tree(40, seed=5))
        b = csr_adjacency(random_tree(40, seed=6))
        assert a is not b
        assert cache_info()["entries"] == 2

    def test_weighted_and_unweighted_are_distinct_entries(self):
        g = random_tree(20, seed=1)
        a = csr_adjacency(g)
        b = csr_adjacency(g, with_weights=True)
        assert a is not b

    def test_hand_built_graph_is_never_cached(self):
        g = Graph()
        for u, v in [(0, 1), (1, 2)]:
            g.add_edge(u, v)
        assert csr_adjacency(g) is not csr_adjacency(g)
        assert cache_info()["entries"] == 0

    def test_capacity_is_bounded(self):
        for seed in range(cache_info()["capacity"] + 3):
            csr_adjacency(random_tree(10, seed=seed))
        assert cache_info()["entries"] == cache_info()["capacity"]


class TestUnavailable:
    def test_non_integer_ids(self):
        g = Graph()
        g.add_edge("a", "b")
        with pytest.raises(DenseUnavailable, match="non-negative int"):
            build_csr(g)

    def test_negative_ids(self):
        g = Graph()
        g.add_edge(-1, 0)
        with pytest.raises(DenseUnavailable, match="non-negative int"):
            build_csr(g)

    def test_mixed_incomparable_ids(self):
        g = Graph()
        g.add_edge(0, "x")
        with pytest.raises(DenseUnavailable):
            build_csr(g)

    def test_without_numpy_backend_raises_with_guidance(self, monkeypatch):
        monkeypatch.setattr(dense_core, "np", None)
        with pytest.raises(DenseUnavailable, match="pip install numpy"):
            require_numpy()

    def test_without_numpy_primitive_entry_points_raise(self, monkeypatch):
        from repro.primitives.bfs import build_bfs_tree
        from repro.primitives.flooding import flood

        monkeypatch.setattr(dense_core, "np", None)
        g = path_graph(5)
        with pytest.raises(DenseUnavailable):
            flood(g, 0, 7, backend="dense")
        with pytest.raises(DenseUnavailable):
            build_bfs_tree(g, 0, backend="dense")
        # The reference engine stays available on the same interpreter.
        values, _net = flood(g, 0, 7, backend="reference")
        assert set(values.values()) == {7}
