"""Message model: word measurement, envelopes, traffic stats."""

import pytest

from repro.sim import Envelope, MessageStats, UnserializablePayload, measure_words


class TestMeasureWords:
    def test_single_int(self):
        assert measure_words((42,)) == 1

    def test_flat_tuple(self):
        assert measure_words(("BFS", 3, 2.5, None)) == 4

    def test_bool_counts_one(self):
        assert measure_words((True, False)) == 2

    def test_nested_tuple(self):
        assert measure_words(("E", (1, 2), 3)) == 4

    def test_empty(self):
        assert measure_words(()) == 0

    def test_long_string_rejected(self):
        with pytest.raises(UnserializablePayload):
            measure_words(("x" * 100,))

    def test_deep_nesting_rejected(self):
        with pytest.raises(UnserializablePayload):
            measure_words((((1, (2,)),),))

    def test_object_rejected(self):
        with pytest.raises(UnserializablePayload):
            measure_words((object(),))

    def test_list_rejected(self):
        with pytest.raises(UnserializablePayload):
            measure_words(([1, 2],))

    def test_tag_boundary_length(self):
        assert measure_words(("a" * 24,)) == 1


class TestEnvelope:
    def test_fields(self):
        e = Envelope(1, 2, ("T", 5), 3)
        assert (e.sender, e.receiver, e.sent_round) == (1, 2, 3)
        assert e.tag() == "T"
        assert e.words == 2

    def test_empty_payload_tag(self):
        assert Envelope(0, 1, (), 0).tag() is None

    def test_frozen(self):
        e = Envelope(1, 2, ("T",), 0)
        with pytest.raises(AttributeError):
            e.sender = 9


class TestMessageStats:
    def test_record_accumulates(self):
        stats = MessageStats()
        stats.record(Envelope(0, 1, ("A", 1), 0))
        stats.record(Envelope(1, 0, ("B", 1, 2), 0))
        assert stats.messages == 2
        assert stats.total_words == 5
        assert stats.max_words == 3

    def test_busiest_round(self):
        stats = MessageStats()
        for r in (0, 1, 1, 2):
            stats.record(Envelope(0, 1, ("A",), r))
        assert stats.busiest_round() == 1

    def test_busiest_round_empty(self):
        assert MessageStats().busiest_round() == 0
