"""RunMetrics composition and PhaseBreakdown."""

from repro.sim import PhaseBreakdown, RunMetrics
from repro.sim.model import Envelope


def metrics_with(rounds, messages, max_words=2):
    m = RunMetrics()
    m.rounds = rounds
    for i in range(messages):
        m.traffic.record(Envelope(0, 1, tuple(range(max_words)), i))
    return m


class TestRunMetrics:
    def test_merged_with_adds_rounds_and_traffic(self):
        a = metrics_with(5, 3)
        b = metrics_with(7, 4, max_words=3)
        merged = a.merged_with(b)
        assert merged.rounds == 12
        assert merged.messages == 7
        assert merged.max_message_words == 3

    def test_properties(self):
        m = metrics_with(1, 2, max_words=4)
        assert m.messages == 2
        assert m.total_words == 8
        assert m.max_message_words == 4


class TestPhaseBreakdown:
    def test_accumulates(self):
        pb = PhaseBreakdown()
        pb.add("a", 3)
        pb.add("b", 6)
        pb.add("a", 2)
        assert pb.total_rounds == 11
        assert pb.dominant_phase() == "b"

    def test_empty(self):
        pb = PhaseBreakdown()
        assert pb.total_rounds == 0
        assert pb.dominant_phase() is None

    def test_as_table(self):
        pb = PhaseBreakdown()
        pb.add("stage", 4)
        text = pb.as_table()
        assert "stage" in text and "TOTAL" in text
