"""RunMetrics composition and PhaseBreakdown."""

from repro.sim import PhaseBreakdown, RunMetrics
from repro.sim.model import Envelope


def metrics_with(rounds, messages, max_words=2):
    m = RunMetrics()
    m.rounds = rounds
    for i in range(messages):
        m.traffic.record(Envelope(0, 1, tuple(range(max_words)), i))
    return m


class TestRunMetrics:
    def test_merged_with_adds_rounds_and_traffic(self):
        a = metrics_with(5, 3)
        b = metrics_with(7, 4, max_words=3)
        merged = a.merged_with(b)
        assert merged.rounds == 12
        assert merged.messages == 7
        assert merged.max_message_words == 3

    def test_merged_with_shifts_per_round(self):
        # The second run's per-round counts land after the first run's
        # rounds in the combined timeline (they used to be dropped).
        a = metrics_with(5, 3)  # messages in rounds 0, 1, 2
        b = metrics_with(7, 4)  # messages in rounds 0..3
        merged = a.merged_with(b)
        assert merged.traffic.per_round == {
            0: 1, 1: 1, 2: 1,       # from a
            5: 1, 6: 1, 7: 1, 8: 1  # from b, shifted by a.rounds == 5
        }
        assert sum(merged.traffic.per_round.values()) == merged.messages

    def test_merged_with_overlapping_shifted_rounds(self):
        a = metrics_with(0, 2)  # zero-round run: b's counts merge in place
        b = metrics_with(3, 1)
        merged = a.merged_with(b)
        assert merged.traffic.per_round == {0: 2, 1: 1}

    def test_properties(self):
        m = metrics_with(1, 2, max_words=4)
        assert m.messages == 2
        assert m.total_words == 8
        assert m.max_message_words == 4


class TestPhaseBreakdown:
    def test_accumulates(self):
        pb = PhaseBreakdown()
        pb.add("a", 3)
        pb.add("b", 6)
        pb.add("a", 2)
        assert pb.total_rounds == 11
        assert pb.dominant_phase() == "b"

    def test_empty(self):
        pb = PhaseBreakdown()
        assert pb.total_rounds == 0
        assert pb.dominant_phase() is None

    def test_as_table(self):
        pb = PhaseBreakdown()
        pb.add("stage", 4)
        text = pb.as_table()
        assert "stage" in text and "TOTAL" in text
