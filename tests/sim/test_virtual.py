"""Contracted graphs and virtual-round accounting."""

import pytest

from repro.graphs import path_graph
from repro.sim import ContractedGraph, IdleProgram, VirtualNetwork


class TestContractedGraph:
    def test_basic_contraction(self):
        g = path_graph(6)
        clusters = {0: {0, 1}, 2: {2, 3}, 4: {4, 5}}
        cg = ContractedGraph(g, clusters)
        assert cg.nodes == [0, 2, 4]
        assert cg.neighbors(2) == [0, 4]
        assert cg.neighbors(0) == [2]

    def test_rejects_overlap(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            ContractedGraph(g, {0: {0, 1}, 1: {1, 2, 3}})

    def test_rejects_partial_cover(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            ContractedGraph(g, {0: {0, 1}})

    def test_radius_of_cluster(self):
        g = path_graph(7)
        clusters = {3: {1, 2, 3, 4, 5}, 0: {0}, 6: {6}}
        cg = ContractedGraph(g, clusters)
        assert cg.radius_of(3) == 2
        assert cg.radius_of(0) == 0
        assert cg.max_radius() == 2

    def test_disconnected_cluster_rejected(self):
        g = path_graph(5)
        clusters = {0: {0, 4}, 1: {1, 2, 3}}
        cg = ContractedGraph(g, clusters)
        with pytest.raises(ValueError):
            cg.radius_of(0)

    def test_tree_edges_only(self):
        g = path_graph(4)
        g.add_edge(0, 3)  # chord
        clusters = {0: {0, 1}, 2: {2, 3}}
        cg_all = ContractedGraph(g, clusters)
        cg_tree = ContractedGraph(g, clusters, tree_edges_only=[(1, 2)])
        assert cg_all.neighbors(0) == [2]
        assert cg_tree.neighbors(0) == [2]


class TestVirtualNetwork:
    def test_round_cost_scales_with_radius(self):
        g = path_graph(10)
        clusters = {0: {0, 1, 2, 3, 4}, 5: {5, 6, 7, 8, 9}}
        virtual = VirtualNetwork(ContractedGraph(g, clusters))
        # top-anchored clusters of radius 4.
        assert virtual.round_cost == 2 * 4 + 1

    def test_physical_rounds(self):
        g = path_graph(4)
        clusters = {0: {0, 1}, 2: {2, 3}}
        virtual = VirtualNetwork(ContractedGraph(g, clusters))
        virtual.run(IdleProgram)
        assert virtual.virtual_rounds == 0
        assert virtual.physical_rounds == 0

    def test_singleton_clusters_cost_one(self):
        g = path_graph(3)
        clusters = {v: {v} for v in g.nodes}
        virtual = VirtualNetwork(ContractedGraph(g, clusters))
        assert virtual.round_cost == 1
