"""Program API: scripted programs, broadcast, tag splitting."""

from repro.graphs import Graph, star_graph
from repro.sim import Envelope, Network, NodeProgram, ScriptedProgram, split_by_tag


def pair() -> Graph:
    g = Graph()
    g.add_edge(0, 1)
    return g


class TestScriptedProgram:
    def test_yields_align_with_rounds(self):
        class Script(ScriptedProgram):
            def script(self):
                self.output["rounds_seen"] = []
                for _ in range(3):
                    yield
                    self.output["rounds_seen"].append(self.round)

        net = Network(pair())
        net.run(Script)
        assert net.programs[0].output["rounds_seen"] == [1, 2, 3]

    def test_halts_when_script_ends(self):
        class Short(ScriptedProgram):
            def script(self):
                yield

        net = Network(pair())
        metrics = net.run(Short)
        assert metrics.all_halted
        # The single yield is consumed in round 1 and the generator
        # finishes in the same on_round call, halting immediately.
        assert metrics.rounds == 1

    def test_empty_script_halts_immediately(self):
        class Empty(ScriptedProgram):
            def script(self):
                return
                yield  # pragma: no cover

        net = Network(pair())
        metrics = net.run(Empty)
        assert metrics.all_halted

    def test_messages_flow_between_scripts(self):
        class PingPong(ScriptedProgram):
            def script(self):
                if self.node == 0:
                    self.send(1, "PING")
                inbox = yield
                if self.node == 1:
                    assert inbox and inbox[0].tag() == "PING"
                    self.send(0, "PONG")
                inbox = yield
                if self.node == 0:
                    self.output["pong"] = bool(
                        inbox and inbox[0].tag() == "PONG"
                    )

        net = Network(pair())
        net.run(PingPong)
        assert net.programs[0].output["pong"] is True

    def test_wait_rounds(self):
        class Waiter(ScriptedProgram):
            def script(self):
                yield from self.wait_rounds(4)
                self.output["done_at"] = self.round

        net = Network(pair())
        net.run(Waiter)
        assert net.programs[0].output["done_at"] == 4


class TestBroadcast:
    def test_broadcast_reaches_all_neighbors(self):
        class Center(NodeProgram):
            def on_start(self):
                if self.node == 0:
                    self.broadcast("HI")
                    self.halt()

            def on_round(self, inbox):
                self.output["heard"] = len(inbox)
                self.halt()

        net = Network(star_graph(5))
        net.run(Center)
        for leaf in range(1, 5):
            assert net.programs[leaf].output["heard"] == 1


class TestSplitByTag:
    def test_groups(self):
        inbox = [
            Envelope(1, 0, ("A", 1), 0),
            Envelope(2, 0, ("B",), 0),
            Envelope(3, 0, ("A", 2), 0),
        ]
        groups = split_by_tag(inbox)
        assert {e.sender for e in groups["A"]} == {1, 3}
        assert len(groups["B"]) == 1

    def test_empty_inbox(self):
        assert split_by_tag([]) == {}
