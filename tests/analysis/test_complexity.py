"""Complexity-fitting helpers used by the benchmark harness."""

import math

import pytest

from repro.analysis import (
    bound_ratios,
    crossover_estimate,
    fit_exponent,
    log_star,
    ratios_are_bounded,
)


class TestFitExponent:
    def test_linear(self):
        points = [(10, 30), (100, 300), (1000, 3000)]
        assert fit_exponent(points) == pytest.approx(1.0)

    def test_sqrt(self):
        points = [(n, 5 * math.sqrt(n)) for n in (16, 64, 256, 1024)]
        assert fit_exponent(points) == pytest.approx(0.5)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_exponent([(10, 5)])

    def test_rejects_equal_x(self):
        with pytest.raises(ValueError):
            fit_exponent([(10, 5), (10, 7)])


class TestBoundRatios:
    def test_flat_for_matching_bound(self):
        points = [(n, 7 * n) for n in (10, 100, 1000)]
        ratios = bound_ratios(points, lambda n: n)
        assert all(r == pytest.approx(7.0) for r in ratios)

    def test_ratios_are_bounded_accepts_flat(self):
        points = [(n, 2 * n + 5) for n in (10, 100, 1000)]
        assert ratios_are_bounded(points, lambda n: n)

    def test_ratios_are_bounded_rejects_growth(self):
        points = [(n, n * n) for n in (10, 100, 1000)]
        assert not ratios_are_bounded(points, lambda n: n)


class TestCrossover:
    def test_sqrt_beats_linear_eventually(self):
        sqrt_series = [(n, 50 * math.sqrt(n)) for n in (16, 64, 256)]
        linear_series = [(n, 2 * n) for n in (16, 64, 256)]
        x = crossover_estimate(sqrt_series, linear_series)
        assert x == pytest.approx(625, rel=0.01)

    def test_parallel_fits_never_cross(self):
        a = [(10, 10), (100, 100)]
        b = [(10, 20), (100, 200)]
        assert crossover_estimate(a, b) == math.inf


class TestLogStar:
    def test_values(self):
        assert log_star(2) == 1
        assert log_star(16) == 3
        assert log_star(65536) == 4
