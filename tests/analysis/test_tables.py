"""Table rendering."""

from repro.analysis import banner, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456789]])
        assert "1.23" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and len(text.splitlines()) == 2


class TestBanner:
    def test_contains_title(self):
        assert "E1" in banner("E1")
