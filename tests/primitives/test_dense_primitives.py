"""Dense ports of the wave primitives agree with the event engine.

Every comparison checks the full observable surface the drivers read:
outputs, round count, and traffic metrics — the dense backend's
contract is *exact* equivalence, not approximation (see
docs/performance.md, fallback rules)."""

import pytest

from repro.graphs import (
    RootedTree,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_tree,
    star_graph,
)
from repro.primitives import build_bfs_tree, flood
from repro.primitives.convergecast import (
    max_combiner,
    min_combiner,
    sum_combiner,
    tree_convergecast,
)
from repro.sim import FaultConfig, FaultInjector, Network

pytest.importorskip("numpy")

GRAPHS = [
    ("path", path_graph(40)),
    ("star", star_graph(30)),
    ("grid", grid_graph(6, 7)),
    ("tree", random_tree(120, seed=4)),
    ("sparse", random_connected_graph(80, 0.05, seed=2)),
]


def same_run(ref_net, dense_run):
    assert dense_run.metrics.rounds == ref_net.metrics.rounds
    assert (
        dense_run.metrics.traffic.messages == ref_net.metrics.traffic.messages
    )
    assert (
        dense_run.metrics.traffic.per_round == ref_net.metrics.traffic.per_round
    )
    assert dense_run.all_halted() and ref_net.metrics.all_halted


class TestFlood:
    @pytest.mark.parametrize("label,graph", GRAPHS)
    def test_matches_reference(self, label, graph):
        ref_values, ref_net = flood(graph, 0, 42, backend="reference")
        dense_values, dense_run = flood(graph, 0, 42, backend="dense")
        assert dense_values == ref_values
        same_run(ref_net, dense_run)

    def test_oversized_payload_falls_back_and_still_raises(self):
        # The plan refuses payloads beyond the word limit so the
        # reference engine can raise its own error.
        g = path_graph(5)
        with pytest.raises(Exception) as ref_err:
            flood(g, 0, tuple(range(50)), backend="reference")
        with pytest.raises(Exception) as dense_err:
            flood(g, 0, tuple(range(50)), backend="dense")
        assert type(dense_err.value) is type(ref_err.value)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            flood(path_graph(3), 0, 1, backend="sparse")


class TestConvergecast:
    @pytest.mark.parametrize("label,graph", GRAPHS)
    @pytest.mark.parametrize(
        "combiner", [sum_combiner, max_combiner, min_combiner]
    )
    def test_matches_reference(self, label, graph, combiner):
        rooted = RootedTree.from_graph(
            random_tree(graph.num_nodes, seed=11), 0
        )
        tree = random_tree(graph.num_nodes, seed=11)
        values = {v: (v * 7) % 23 for v in tree.nodes}
        ref_agg, ref_net = tree_convergecast(
            tree, 0, rooted.parent, values, combiner, backend="reference"
        )
        dense_agg, dense_run = tree_convergecast(
            tree, 0, rooted.parent, values, combiner, backend="dense"
        )
        assert dense_agg == ref_agg
        same_run(ref_net, dense_run)

    def test_custom_combiner_falls_back(self):
        tree = random_tree(30, seed=3)
        rooted = RootedTree.from_graph(tree, 0)
        values = {v: v for v in tree.nodes}

        def product(own, children):
            out = own
            for c in children:
                out = (out * max(c, 1)) % 10007
            return out

        agg, net = tree_convergecast(
            tree, 0, rooted.parent, values, product, backend="dense"
        )
        # Fallback runs the reference engine — a real Network.
        assert isinstance(net, Network)
        ref_agg, _ = tree_convergecast(
            tree, 0, rooted.parent, values, product, backend="reference"
        )
        assert agg == ref_agg


class TestBFS:
    @pytest.mark.parametrize("label,graph", GRAPHS)
    def test_matches_reference(self, label, graph):
        ref_parents, ref_depths, ref_net = build_bfs_tree(
            graph, 0, backend="reference"
        )
        d_parents, d_depths, d_run = build_bfs_tree(graph, 0, backend="dense")
        assert d_parents == ref_parents
        assert d_depths == ref_depths
        same_run(ref_net, d_run)

    def test_faulted_run_falls_back_to_reference(self):
        # A fault plan is outside the dense contract: the dense entry
        # point must hand the run to the event engine, faults included.
        g = grid_graph(5, 5)
        config = FaultConfig(drop_rate=0.1, seed=13)
        d_parents, d_depths, d_net = build_bfs_tree(
            g, 0, backend="dense", faults=FaultInjector(config)
        )
        assert isinstance(d_net, Network)
        r_parents, r_depths, r_net = build_bfs_tree(
            g, 0, backend="reference", faults=FaultInjector(config)
        )
        assert d_parents == r_parents
        assert d_depths == r_depths
        assert d_net.metrics.rounds == r_net.metrics.rounds
