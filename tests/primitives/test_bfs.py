"""Distributed BFS (Procedure Initialize's engine)."""

import pytest

from repro.graphs import (
    Graph,
    bfs_distances,
    diameter,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_tree,
    star_graph,
)
from repro.primitives import build_bfs_tree


CASES = [
    ("path", path_graph(25)),
    ("star", star_graph(25)),
    ("tree", random_tree(60, seed=1)),
    ("grid", grid_graph(6, 7)),
    ("dense", random_connected_graph(50, 0.2, seed=2)),
]


class TestBFSTree:
    @pytest.mark.parametrize("name,graph", CASES)
    def test_depths_exact(self, name, graph):
        parents, depths, _net = build_bfs_tree(graph, 0)
        assert depths == bfs_distances(graph, 0)

    @pytest.mark.parametrize("name,graph", CASES)
    def test_parents_form_bfs_tree(self, name, graph):
        parents, depths, _net = build_bfs_tree(graph, 0)
        for v, p in parents.items():
            if v == 0:
                assert p is None
            else:
                assert graph.has_edge(v, p)
                assert depths[p] == depths[v] - 1

    @pytest.mark.parametrize("name,graph", CASES)
    def test_tree_depth_and_t1_agree_globally(self, name, graph):
        _parents, depths, net = build_bfs_tree(graph, 0)
        m_values = set(net.output_field("tree_depth").values())
        t1_values = set(net.output_field("t1").values())
        assert m_values == {max(depths.values())}
        assert len(t1_values) == 1

    def test_rounds_linear_in_depth(self):
        g = path_graph(100)
        _p, _d, net = build_bfs_tree(g, 0)
        # wave + echo + M broadcast: about 3 tree depths.
        assert net.metrics.rounds <= 4 * diameter(g) + 5

    def test_single_node(self):
        g = Graph()
        g.add_node(0)
        parents, depths, net = build_bfs_tree(g, 0)
        assert parents == {0: None} and depths == {0: 0}

    def test_children_outputs_consistent(self):
        g = grid_graph(5, 5)
        parents, _depths, net = build_bfs_tree(g, 0)
        for v in g.nodes:
            for c in net.programs[v].output["children"]:
                assert parents[c] == v

    def test_nontrivial_root(self):
        g = grid_graph(4, 6)
        root = 13
        _parents, depths, _net = build_bfs_tree(g, root)
        assert depths == bfs_distances(g, root)
