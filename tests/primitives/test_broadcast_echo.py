"""Tree broadcast, convergecast, hop-limited echo."""

import pytest

from repro.graphs import RootedTree, balanced_tree, path_graph, random_tree
from repro.primitives import (
    hop_limited_echo,
    max_combiner,
    min_combiner,
    sum_combiner,
    tree_broadcast,
    tree_convergecast,
)


@pytest.fixture
def tree_and_parents():
    g = random_tree(50, seed=3)
    rt = RootedTree.from_graph(g, 0)
    return g, rt


class TestBroadcast:
    def test_value_everywhere(self, tree_and_parents):
        g, rt = tree_and_parents
        values, _net = tree_broadcast(g, 0, rt.parent, "token")
        assert set(values.values()) == {"token"}
        assert set(values) == set(g.nodes)

    def test_rounds_equal_height(self, tree_and_parents):
        g, rt = tree_and_parents
        _values, net = tree_broadcast(g, 0, rt.parent, 1)
        assert net.metrics.rounds == rt.height


class TestConvergecast:
    def test_sum(self, tree_and_parents):
        g, rt = tree_and_parents
        total, _net = tree_convergecast(
            g, 0, rt.parent, {v: 2 for v in g.nodes}
        )
        assert total == 2 * g.num_nodes

    def test_max(self, tree_and_parents):
        g, rt = tree_and_parents
        best, _net = tree_convergecast(
            g, 0, rt.parent, {v: v for v in g.nodes}, combiner=max_combiner
        )
        assert best == max(g.nodes)

    def test_min(self, tree_and_parents):
        g, rt = tree_and_parents
        best, _net = tree_convergecast(
            g, 0, rt.parent, {v: v + 5 for v in g.nodes}, combiner=min_combiner
        )
        assert best == 5

    def test_subtree_aggregates(self):
        g = balanced_tree(2, 3)
        rt = RootedTree.from_graph(g, 0)
        from repro.sim import Network
        from repro.primitives import ConvergecastProgram

        net = Network(g)
        net.run(
            lambda ctx: ConvergecastProgram(ctx, 0, rt.parent, 1, sum_combiner)
        )
        for v in g.nodes:
            assert net.programs[v].output["aggregate"] == len(
                rt.subtree_nodes(v)
            )


class TestHopLimitedEcho:
    def test_depth_detection(self):
        g = path_graph(10)
        rt = RootedTree.from_graph(g, 0)
        for limit in (3, 8, 9, 12):
            _agg, too_deep, _net = hop_limited_echo(g, 0, rt.parent, limit)
            assert too_deep == (rt.height > limit)

    def test_aggregate_counts_explored_region(self):
        g = path_graph(10)
        rt = RootedTree.from_graph(g, 0)
        agg, too_deep, _net = hop_limited_echo(g, 0, rt.parent, 4)
        assert too_deep
        # nodes 0..4 explored before hitting the horizon
        assert agg == 5

    def test_full_exploration_counts_everything(self):
        g = random_tree(40, seed=2)
        rt = RootedTree.from_graph(g, 0)
        agg, too_deep, _net = hop_limited_echo(g, 0, rt.parent, rt.height)
        assert not too_deep and agg == 40

    def test_rounds_bounded_by_limit(self):
        g = path_graph(200)
        rt = RootedTree.from_graph(g, 0)
        _agg, _deep, net = hop_limited_echo(g, 0, rt.parent, 5)
        assert net.metrics.rounds <= 2 * 5 + 4
