"""Flooding primitive."""

from repro.graphs import bfs_distances, grid_graph, random_connected_graph
from repro.primitives import flood


class TestFlood:
    def test_everyone_receives(self):
        g = random_connected_graph(60, 0.05, seed=1)
        values, _net = flood(g, 0, "v")
        assert set(values) == set(g.nodes)
        assert set(values.values()) == {"v"}

    def test_hops_equal_bfs_distance(self):
        g = grid_graph(6, 6)
        _values, net = flood(g, 0, 1)
        dist = bfs_distances(g, 0)
        for v in g.nodes:
            assert net.programs[v].output["hops"] == dist[v]

    def test_rounds_equal_eccentricity(self):
        g = grid_graph(5, 8)
        _values, net = flood(g, 0, 1)
        assert net.metrics.rounds == max(bfs_distances(g, 0).values())
