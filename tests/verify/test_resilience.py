"""Resilience checkers: paper claims restricted to crash survivors."""

from repro.core.kdom_tree import TreeKDomProgram
from repro.graphs import path_graph
from repro.graphs.distances import bfs_tree
from repro.sim import FaultConfig, FaultInjector, Network
from repro.verify import (
    check_run_report,
    nontermination_detectors,
    surviving_kdomination,
    surviving_partition,
)

K = 2


def run_kdom(crashes=None):
    """Tree k-dom DP on path(10) rooted at 0; returns (report, D)."""
    tree = path_graph(10)
    _dist, parent_of = bfs_tree(tree, 0)
    faults = FaultInjector(FaultConfig(crashes=crashes or {}))
    net = Network(tree, faults=faults)
    report = net.run(
        lambda ctx: TreeKDomProgram(ctx, 0, parent_of, K), max_rounds=500
    )
    flags = net.output_field("in_dominating_set")
    return report, {v for v, flag in flags.items() if flag}


class TestSurvivingKDomination:
    def test_fault_free_output_passes(self):
        report, dominators = run_kdom()
        assert dominators == {2, 7}
        resilience = surviving_kdomination(path_graph(10), dominators, K)
        assert resilience.ok
        assert check_run_report(report).ok

    def test_crashed_dominator_breaks_coverage(self):
        # Crashing dominator 7 after it halts splits the guarantee: the
        # surviving component {8, 9} has no dominator, and 5, 6 are now
        # farther than k from 2.  The checker must flag it.
        report, dominators = run_kdom(crashes={7: 4})
        assert dominators == {2, 7}
        resilience = surviving_kdomination(
            path_graph(10), dominators, K, crashed=report.crashed()
        )
        assert not resilience.ok
        text = resilience.summary()
        assert "VIOLATIONS" in text
        assert "no surviving dominator" in text

    def test_crashed_nondominator_is_tolerated(self):
        # Losing a mid-path non-dominator only splits the line where a
        # dominator survives on each side: both components stay covered.
        dominators = {2, 7}
        resilience = surviving_kdomination(
            path_graph(10), dominators, K, crashed=[4]
        )
        assert resilience.ok

    def test_size_bound_checked_against_survivors(self):
        # Five dominators on a 6-node path: floor(6/3) = 2 is exceeded.
        resilience = surviving_kdomination(
            path_graph(6), {0, 1, 2, 3, 4}, K
        )
        assert not resilience.ok
        assert any("|D|" in f for f in resilience.failures)
        # The bound check can be disabled for coverage-only questions.
        assert surviving_kdomination(
            path_graph(6), {0, 1, 2, 3, 4}, K, check_size_bound=False
        ).ok

    def test_no_survivors_is_vacuous(self):
        resilience = surviving_kdomination(
            path_graph(3), {1}, K, crashed=[0, 1, 2]
        )
        assert resilience.ok


class TestSurvivingPartition:
    CENTER_OF = {0: 2, 1: 2, 2: 2, 3: 2, 4: 2, 5: 7, 6: 7, 7: 7, 8: 7, 9: 7}

    def test_intact_partition_passes(self):
        resilience = surviving_partition(path_graph(10), self.CENTER_OF, K)
        assert resilience.ok

    def test_crashed_center_orphans_members(self):
        resilience = surviving_partition(
            path_graph(10), self.CENTER_OF, K, crashed=[7]
        )
        assert not resilience.ok
        assert any("crashed centres" in f for f in resilience.failures)

    def test_unassigned_survivor_flagged(self):
        center_of = dict(self.CENTER_OF)
        del center_of[9]
        resilience = surviving_partition(path_graph(10), center_of, K)
        assert not resilience.ok
        assert any("no cluster centre" in f for f in resilience.failures)

    def test_cut_cluster_flagged(self):
        # Crashing 3 leaves member 4 unable to reach its centre 2
        # through survivors, even though both endpoints survive.
        resilience = surviving_partition(
            path_graph(10), self.CENTER_OF, K, crashed=[3]
        )
        assert not resilience.ok
        assert any("farther than" in f for f in resilience.failures)


class TestCheckRunReport:
    def test_wedged_faulty_run_is_reported_not_failed(self):
        # A lossy run that wedges is a *detected* outcome: completed is
        # False and the checker records it as such.
        net = Network(
            path_graph(4),
            faults=FaultInjector(FaultConfig(drop_rate=1.0, seed=0)),
        )
        from repro.primitives.flooding import FloodProgram

        report = net.run(
            lambda ctx: FloodProgram(ctx, 0, value=1), max_rounds=50
        )
        assert not report.completed
        health = check_run_report(report)
        assert health.ok
        assert any("non-termination detected" in c for c in health.checks)

    def test_inconsistent_completion_claim_fails(self):
        from repro.sim import FaultEvent

        report, _ = run_kdom()
        # Forge a report that claims completion with a stuck node.
        report.node_states[3] = "running"
        report.plan.record(FaultEvent(1, "drop", 0, 1, 0))
        health = check_run_report(report)
        assert not health.ok

    def test_fault_free_wedge_fails(self):
        report, _ = run_kdom()
        report.node_states[3] = "running"  # empty plan, yet a stuck node
        assert not check_run_report(report).ok


class TestNonterminationDetectors:
    def test_detectors_extracted_from_outputs(self):
        outputs = {
            0: {"reliable_gave_up": ()},
            1: {"reliable_gave_up": (2,)},
            2: {},
        }
        assert nontermination_detectors(outputs) == {1}
