"""The verification layer itself: positive and negative cases."""


from repro.graphs import (
    Cluster,
    Partition,
    cycle_graph,
    assign_unique_weights,
    grid_graph,
    path_graph,
)
from repro.mst import kruskal_mst
from repro.verify import (
    check_coloring,
    check_matching,
    check_mis,
    check_mst,
    check_mst_fragments,
    check_partition,
    check_spanning_forest,
    domination_radius,
    every_dominator_has_outside_neighbor,
    is_k_dominating,
    meets_size_bound,
)


class TestDominating:
    def test_radius(self):
        g = path_graph(7)
        assert domination_radius(g, {3}) == 3
        assert domination_radius(g, {0, 6}) == 3
        assert domination_radius(g, set()) is None

    def test_is_k_dominating(self):
        g = path_graph(7)
        assert is_k_dominating(g, {3}, 3)
        assert not is_k_dominating(g, {3}, 2)

    def test_size_bound(self):
        assert meets_size_bound(10, 4, 2)
        assert not meets_size_bound(10, 4, 3)
        assert meets_size_bound(3, 9, 1)  # max(1, ...) case

    def test_outside_neighbor(self):
        g = path_graph(4)
        # D = V: no dominator has a neighbour outside D.
        assert every_dominator_has_outside_neighbor(g, {0, 1, 2, 3}) is False
        assert every_dominator_has_outside_neighbor(g, {1, 3})


class TestPartitionChecker:
    def test_valid(self):
        g = path_graph(6)
        p = Partition([Cluster(1, {0, 1, 2}), Cluster(4, {3, 4, 5})])
        report = check_partition(g, p, min_cluster_size=3, max_cluster_radius=1)
        assert report and report.min_size == 3 and report.max_radius == 1

    def test_uncovered_detected(self):
        g = path_graph(4)
        p = Partition([Cluster(0, {0, 1})])
        report = check_partition(g, p)
        assert not report and "uncovered" in report.problems[0]

    def test_radius_violation_detected(self):
        g = path_graph(6)
        p = Partition([Cluster(0, set(range(6)))])
        report = check_partition(g, p, max_cluster_radius=2)
        assert not report

    def test_disconnected_cluster_detected(self):
        g = path_graph(5)
        p = Partition([Cluster(0, {0, 4}), Cluster(2, {1, 2, 3})])
        report = check_partition(g, p)
        assert not report


class TestForestChecker:
    def test_valid_forest(self):
        g = path_graph(6)
        report = check_spanning_forest(
            g, [{0, 1, 2}, {3, 4, 5}], sigma=3, rho=2
        )
        assert report, report.problems

    def test_small_fragment_detected(self):
        g = path_graph(6)
        report = check_spanning_forest(g, [{0, 1}, {2, 3, 4, 5}], sigma=3)
        assert not report

    def test_overlap_detected(self):
        g = path_graph(4)
        report = check_spanning_forest(g, [{0, 1, 2}, {2, 3}], sigma=1)
        assert not report


class TestMSTChecker:
    def test_valid(self):
        g = assign_unique_weights(grid_graph(4, 4), seed=1)
        assert check_mst(g, kruskal_mst(g))

    def test_spanning_but_not_minimum_detected(self):
        g = cycle_graph(4)
        g.set_weight(0, 1, 1)
        g.set_weight(1, 2, 2)
        g.set_weight(2, 3, 3)
        g.set_weight(3, 0, 4)
        # spanning tree that keeps the heaviest edge
        assert not check_mst(g, [(1, 2), (2, 3), (3, 0)])
        assert check_mst(g, [(0, 1), (1, 2), (2, 3)])

    def test_non_spanning_detected(self):
        g = assign_unique_weights(path_graph(4), seed=2)
        assert not check_mst(g, [(0, 1), (1, 2)])

    def test_fragments_subset(self):
        g = assign_unique_weights(grid_graph(3, 3), seed=3)
        mst = sorted(kruskal_mst(g))
        assert check_mst_fragments(g, [mst[:3], mst[3:5]])
        non_mst_edge = next(
            e for e in g.edges() if (min(e), max(e)) not in kruskal_mst(g)
        )
        assert not check_mst_fragments(g, [[non_mst_edge]])


class TestSymmetryCheckers:
    def test_coloring(self):
        g = path_graph(4)
        assert check_coloring(g, {0: 0, 1: 1, 2: 0, 3: 1}, palette_size=2)
        assert not check_coloring(g, {0: 0, 1: 0, 2: 1, 3: 0})
        assert not check_coloring(g, {0: 0, 1: 5, 2: 0, 3: 1}, palette_size=3)
        assert not check_coloring(g, {0: 0, 1: 1, 2: 0})  # missing node

    def test_mis(self):
        g = path_graph(5)
        assert check_mis(g, {0, 2, 4})
        assert not check_mis(g, {0, 1})  # dependent
        assert not check_mis(g, {0})  # not maximal

    def test_matching(self):
        g = path_graph(4)
        assert check_matching(g, {0: 1, 1: 0, 2: 3, 3: 2})
        assert not check_matching(g, {0: 1, 1: 0, 2: None, 3: None})
        assert not check_matching(g, {0: 2, 2: 0, 1: None, 3: None})
        assert not check_matching(g, {0: 1, 1: 2, 2: 1, 3: None})
