"""ASCII views: deterministic, golden-file-stable renderings."""

from repro.graphs import path_graph
from repro.obs import (
    Trace,
    TraceBuffer,
    ascii_timeline,
    channel_heatmap,
    observe,
    phase_table,
    summary_lines,
)
from repro.primitives.flooding import FloodProgram
from repro.sim import Network


def flood_buffer(n=6):
    buffer = TraceBuffer()
    with observe(buffer) as obs:
        Network(path_graph(n)).run(lambda ctx: FloodProgram(ctx, 0, value=1))
        obs.record_phase("flood", 0, n - 1)
    return buffer


class TestTimeline:
    def test_renders_one_row_per_run(self):
        buffer = TraceBuffer()
        with observe(buffer):
            for _ in range(2):
                Network(path_graph(4)).run(
                    lambda ctx: FloodProgram(ctx, 0, value=1)
                )
        text = ascii_timeline(buffer)
        assert "run  0 |" in text and "run  1 |" in text

    def test_includes_phase_table_when_present(self):
        text = ascii_timeline(flood_buffer())
        assert "sends per round" in text
        assert "phase" in text and "flood" in text

    def test_empty_trace(self):
        assert "(no send events)" in ascii_timeline(TraceBuffer())

    def test_deterministic(self):
        assert ascii_timeline(flood_buffer()) == ascii_timeline(flood_buffer())


class TestPhaseTable:
    def test_shares_sum_to_total(self):
        trace = Trace(
            {"schema": "repro-trace/1"}, [],
            [
                {"phase": "a", "start": 0, "end": 4, "rounds": 4},
                {"phase": "b", "start": 4, "end": 10, "rounds": 6},
            ],
            [],
        )
        text = phase_table(trace)
        assert "a" in text and "b" in text
        assert text.splitlines()[-1].split()[-1] == "10"

    def test_no_phases(self):
        assert phase_table(TraceBuffer()) == "(no phase records)"


class TestHeatmap:
    def test_rows_are_busiest_channels(self):
        text = channel_heatmap(flood_buffer(), channels=3)
        lines = text.splitlines()
        assert "channel congestion" in lines[0]
        # 3 channel rows plus the header and the "not shown" footer.
        assert len([line for line in lines if "|" in line]) == 3
        assert "more channel(s) not shown" in lines[-1]

    def test_all_channels_shown_when_few(self):
        text = channel_heatmap(flood_buffer(3), channels=50)
        assert "not shown" not in text

    def test_empty_trace(self):
        assert channel_heatmap(TraceBuffer()) == "(no send events)"


class TestSummaryLines:
    def test_headline_counts(self):
        buffer = flood_buffer()
        lines = summary_lines(buffer)
        assert lines[0] == f"events: {len(buffer.events)}"
        assert any(line.startswith("by kind:") for line in lines)
        assert any(line.startswith("run 0:") for line in lines)

    def test_collector_adds_busiest_channel(self):
        from repro.obs import MetricsCollector

        collector = MetricsCollector()
        with observe(collector):
            Network(path_graph(5)).run(
                lambda ctx: FloodProgram(ctx, 0, value=1)
            )
        lines = summary_lines(TraceBuffer(), collector)
        assert any("busiest channel" in line for line in lines)
