"""MetricsCollector: per-node / per-channel accounting, sent vs delivered."""

from repro.graphs import Graph, path_graph
from repro.obs import MetricsCollector, observe
from repro.primitives.flooding import FloodProgram
from repro.sim import FaultConfig, FaultInjector, Network, NodeProgram


def two_nodes():
    g = Graph()
    g.add_edge(0, 1)
    return g


class SendOnce(NodeProgram):
    def on_start(self):
        if self.node == 0:
            self.send(1, "X")
            self.halt()

    def on_round(self, inbox):
        if inbox:
            self.output["got"] = self.round
            self.halt()


class Bursty(NodeProgram):
    """Node 0 sends in rounds 0, 1 and 3 — a stall at round 2."""

    def on_start(self):
        if self.node == 0:
            self.send(1, "A")

    def on_round(self, inbox):
        if self.node == 0:
            if self.round == 1:
                self.send(1, "B")
            elif self.round == 3:
                self.send(1, "C")
                self.halt()
        elif self.round >= 4:
            self.halt()


def collect(graph, factory, **net_kwargs):
    collector = MetricsCollector()
    with observe(collector):
        net = Network(graph, **net_kwargs)
        net.run(factory, max_rounds=100)
    return collector, net


class TestNodeMetrics:
    def test_flood_traffic_totals(self):
        collector, net = collect(
            path_graph(5), lambda ctx: FloodProgram(ctx, 0, value=1)
        )
        assert collector.messages == net.metrics.traffic.messages
        assert collector.total_words == net.metrics.traffic.total_words
        sent = sum(n.sent_messages for n in collector.nodes.values())
        recv = sum(n.recv_messages for n in collector.nodes.values())
        assert sent == collector.messages
        # No faults: everything sent is delivered.
        assert recv == collector.messages

    def test_halt_round_recorded(self):
        collector, net = collect(
            path_graph(4), lambda ctx: FloodProgram(ctx, 0, value=1)
        )
        for node in range(4):
            assert collector.node(node).halt_round is not None

    def test_stall_intervals(self):
        collector, _net = collect(two_nodes(), Bursty)
        node = collector.node(0)
        assert sorted(node.send_rounds) == [0, 1, 3]
        assert node.stall_intervals() == [(2, 2)]
        assert node.stalls() == [2]
        assert collector.node(1).stall_intervals() == []


class TestChannelMetrics:
    def test_per_round_sent_and_delivered(self):
        collector, _net = collect(two_nodes(), SendOnce)
        channel = collector.channel(0, 1)
        assert channel.messages == 1
        assert channel.per_round_sent == {0: 1}
        # Synchronous delivery: sent in round t arrives in round t + 1.
        assert channel.per_round_delivered == {1: 1}
        assert channel.first_sent == channel.last_sent == 0
        assert channel.utilization() == 1.0

    def test_delay_books_delivery_later_than_send(self):
        # MessageStats.per_round books only the sent round; the
        # collector records both sides, so a fault delay is visible.
        injector = FaultInjector(FaultConfig(delay_rate=1.0, max_delay=1))
        collector = MetricsCollector()
        with observe(collector):
            net = Network(two_nodes(), faults=injector)
            net.run(SendOnce, max_rounds=50)
        channel = collector.channel(0, 1)
        assert channel.per_round_sent == {0: 1}
        # delay_rate=1, max_delay=1: delivery slips from round 1 to 2.
        assert channel.per_round_delivered == {2: 1}
        assert channel.delayed == 1
        assert net.programs[1].output["got"] == 2
        # The engine's own books still only know the sent round.
        assert net.metrics.traffic.per_round == {0: 1}

    def test_drop_counts_on_channel(self):
        injector = FaultInjector(FaultConfig(drop_rate=1.0))
        collector = MetricsCollector()
        with observe(collector):
            net = Network(two_nodes(), faults=injector)
            net.run(SendOnce, max_rounds=10)
        channel = collector.channel(0, 1)
        assert channel.dropped == 1
        assert channel.delivered == 0
        assert channel.per_round_delivered == {}

    def test_crash_round_recorded(self):
        injector = FaultInjector(FaultConfig(crashes={1: 1}))
        collector = MetricsCollector()
        with observe(collector):
            net = Network(two_nodes(), faults=injector)
            net.run(SendOnce, max_rounds=10)
        assert collector.node(1).crash_round == 1


class TestDrillDown:
    def test_top_channels_ordering(self):
        collector, _net = collect(
            path_graph(6), lambda ctx: FloodProgram(ctx, 0, value=1)
        )
        top = collector.top_channels(3)
        counts = [c.messages for c in top]
        assert counts == sorted(counts, reverse=True)

    def test_unknown_node_and_channel_are_zero(self):
        collector = MetricsCollector()
        assert collector.node(99).sent_messages == 0
        assert collector.channel(98, 99).messages == 0
        assert collector.busiest_round_sent() == 0
        assert collector.busiest_round_delivered() == 0

    def test_busiest_rounds(self):
        collector, _net = collect(
            path_graph(5), lambda ctx: FloodProgram(ctx, 0, value=1)
        )
        busiest = collector.busiest_round_sent()
        assert collector.per_round_sent[busiest] == max(
            collector.per_round_sent.values()
        )
