"""Golden-file tests: the exported JSONL and the ASCII views are
byte-stable for a seeded run.

Regenerate after an intentional schema or rendering change::

    PYTHONPATH=src python tests/obs/test_golden.py

(running the module as a script rewrites both golden files).
"""

import io
import os

from repro.graphs import path_graph
from repro.obs import (
    JsonlTraceWriter,
    ascii_timeline,
    channel_heatmap,
    observe,
    read_trace,
    summary_lines,
    validate_trace,
)
from repro.primitives.flooding import FloodProgram
from repro.sim import Network

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_JSONL = os.path.join(GOLDEN_DIR, "flood_path8.jsonl")
GOLDEN_VIEWS = os.path.join(GOLDEN_DIR, "flood_path8_views.txt")


def render_trace() -> str:
    sink = io.StringIO()
    writer = JsonlTraceWriter(
        sink, meta={"algo": "flood", "spec": "path:8", "seed": 0}
    )
    with observe(writer) as obs:
        Network(path_graph(8)).run(lambda ctx: FloodProgram(ctx, 0, value=1))
        obs.record_phase("flood", 0, 8)
    return sink.getvalue()


def render_views(jsonl_text: str) -> str:
    trace = read_trace(io.StringIO(jsonl_text))
    return (
        "\n".join(summary_lines(trace))
        + "\n\n"
        + ascii_timeline(trace, width=40)
        + "\n\n"
        + channel_heatmap(trace, channels=6, width=40)
        + "\n"
    )


def test_jsonl_matches_golden():
    with open(GOLDEN_JSONL) as handle:
        assert render_trace() == handle.read()


def test_views_match_golden():
    with open(GOLDEN_JSONL) as handle:
        jsonl_text = handle.read()
    with open(GOLDEN_VIEWS) as handle:
        assert render_views(jsonl_text) == handle.read()


def test_golden_trace_is_schema_valid():
    assert validate_trace(GOLDEN_JSONL) == []


if __name__ == "__main__":
    jsonl_text = render_trace()
    with open(GOLDEN_JSONL, "w") as handle:
        handle.write(jsonl_text)
    with open(GOLDEN_VIEWS, "w") as handle:
        handle.write(render_views(jsonl_text))
    print(f"rewrote {GOLDEN_JSONL} and {GOLDEN_VIEWS}")
