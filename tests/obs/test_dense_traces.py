"""Byte-identical traces from the dense backend.

Two distinct guarantees are pinned:

1. Kernels with replay emitters (the TreeKDom DP + wave) genuinely
   replay the event stream — an observed dense run exports the *same
   bytes* as the reference engine, not merely the same outputs.
2. Kernels without replay (FastDOM's balanced partition; any faulted
   run) defer to the reference engine whenever an observation session
   is active, so trace consumers never see a divergent stream.  That
   includes at least one *faulted* run (ISSUE 7 acceptance)."""

import io

import pytest

from repro.core import fastdom_tree, tree_kdominating_set
from repro.graphs import RootedTree, caterpillar_tree, random_tree
from repro.obs import JsonlTraceWriter, observe
from repro.primitives import build_bfs_tree
from repro.sim import FaultConfig, FaultInjector

pytest.importorskip("numpy")


def traced(fn):
    """Run ``fn`` under a JSONL observation; return the exported text."""
    sink = io.StringIO()
    writer = JsonlTraceWriter(sink, meta={"suite": "dense-traces"})
    with observe(writer):
        fn()
    return sink.getvalue()


class TestGenuineReplay:
    @pytest.mark.parametrize("k", [2, 4])
    def test_kdom_tree_trace_bytes(self, k):
        g = random_tree(48, seed=7)
        parent = RootedTree.from_graph(g, 0).parent
        ref = traced(lambda: tree_kdominating_set(g, 0, parent, k))
        dense = traced(
            lambda: tree_kdominating_set(g, 0, parent, k, backend="dense")
        )
        assert dense == ref
        assert '"kind"' in ref  # events actually flowed

    def test_kdom_tree_trace_bytes_caterpillar(self):
        g = caterpillar_tree(10, 2)
        parent = RootedTree.from_graph(g, 0).parent
        ref = traced(lambda: tree_kdominating_set(g, 0, parent, 3))
        dense = traced(
            lambda: tree_kdominating_set(g, 0, parent, 3, backend="dense")
        )
        assert dense == ref


class TestObservedFallback:
    def test_fastdom_under_observation_matches_reference_bytes(self):
        # FastDOM's balanced-partition stage has no replay emitter, so
        # an observed dense run must execute on the reference engine —
        # the traces are byte-identical because it *is* the same run.
        g = random_tree(40, seed=3)
        parent = RootedTree.from_graph(g, 0).parent
        ref = traced(lambda: fastdom_tree(g, 0, parent, 4))
        dense = traced(
            lambda: fastdom_tree(g, 0, parent, 4, backend="dense")
        )
        assert dense == ref

    def test_faulted_bfs_falls_back_byte_identical(self):
        # A fault plan is outside the dense contract: backend="dense"
        # with faults installed must route through the event engine and
        # leave an identical faulted trace.
        from repro.graphs import grid_graph

        g = grid_graph(5, 5)

        def run(backend):
            return traced(
                lambda: build_bfs_tree(
                    g,
                    0,
                    backend=backend,
                    faults=FaultInjector(
                        FaultConfig(drop_rate=0.15, delay_rate=0.1,
                                    max_delay=2, seed=11)
                    ),
                )
            )

        ref = run("reference")
        dense = run("dense")
        assert dense == ref
        # The identity is not vacuous: faults actually fired.
        assert '"kind":"drop"' in ref or '"kind":"delay"' in ref

    def test_clean_observed_bfs_matches_reference_bytes(self):
        g = random_tree(30, seed=5)
        ref = traced(lambda: build_bfs_tree(g, 0, backend="reference"))
        dense = traced(lambda: build_bfs_tree(g, 0, backend="dense"))
        assert dense == ref
