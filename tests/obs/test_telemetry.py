"""Fabric telemetry: registry determinism, sessions, spans.

The load-bearing property is order-invariance: snapshots merged in any
order, over any partition of the work, must collapse to byte-identical
state — that is what makes the sweep-store telemetry summary
independent of worker count (tests/batch/test_telemetry_sweep.py pins
the end-to-end version of the same contract).
"""

import io
import itertools
import json

import pytest

from repro.obs import (
    JsonlTraceWriter,
    MetricsRegistry,
    TelemetrySession,
    current_telemetry,
    emit_phase_spans,
    observe,
    read_trace,
    span,
    telemetry_session,
    validate_trace,
)
from repro.obs.telemetry import (
    current_span,
    histogram_quantile,
    series_key,
)


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("cells") == "cells"

    def test_labels_sorted(self):
        assert (
            series_key("tasks", {"state": "ok", "backend": "process"})
            == "tasks{backend=process,state=ok}"
        )


class TestRegistry:
    def test_counter_inc_and_labels(self):
        reg = MetricsRegistry()
        cells = reg.counter("cells")
        cells.inc(workload="kdom")
        cells.inc(3, workload="kdom")
        cells.inc(workload="mst")
        snap = reg.snapshot()
        assert snap["counters"] == {
            "cells{workload=kdom}": 4,
            "cells{workload=mst}": 1,
        }

    def test_gauge_max_is_high_water(self):
        reg = MetricsRegistry()
        peak = reg.gauge("peak")
        peak.max(4)
        peak.max(2)
        assert reg.snapshot()["gauges"] == {"peak": 4}

    def test_histogram_buckets_are_power_of_two_labels(self):
        reg = MetricsRegistry()
        hist = reg.histogram("rounds")
        for value in (1, 3, 100):
            hist.observe(value)
        series = reg.snapshot()["histograms"]["rounds"]
        assert series["count"] == 3
        assert series["sum"] == 104
        assert series["buckets"] == {"1": 1, "128": 1, "4": 1}

    def test_deterministic_histogram_rejects_floats(self):
        reg = MetricsRegistry()
        with pytest.raises(TypeError):
            reg.histogram("rounds").observe(0.5)
        reg.histogram("latency", volatile=True).observe(0.5)  # fine

    def test_snapshot_omits_empty_volatile_plane(self):
        reg = MetricsRegistry()
        reg.counter("cells").inc()
        assert "volatile" not in reg.snapshot()
        reg.counter("tasks", volatile=True).inc()
        snap = reg.snapshot()
        assert snap["volatile"]["counters"] == {"tasks": 1}

    def test_snapshot_series_keys_sorted(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        for label in ("z", "a", "m"):
            counter.inc(x=label)
        assert list(reg.snapshot()["counters"]) == [
            "c{x=a}", "c{x=m}", "c{x=z}"
        ]

    def test_volatile_counters_live_view(self):
        reg = MetricsRegistry()
        reg.counter("tasks", volatile=True).inc(state="done")
        assert reg.volatile_counters == {"tasks{state=done}": 1}


def _sample_snapshots():
    snaps = []
    for i in range(4):
        reg = MetricsRegistry()
        reg.counter("cells").inc(i + 1, workload="kdom")
        reg.gauge("peak").max(10 * i)
        reg.histogram("rounds").observe(2**i)
        reg.counter("lat", volatile=True).inc(i)
        snaps.append(reg.snapshot())
    return snaps


class TestMergeOrderInvariance:
    def test_every_permutation_merges_identically(self):
        snaps = _sample_snapshots()
        reference = MetricsRegistry.merged(snaps)
        for order in itertools.permutations(snaps):
            assert MetricsRegistry.merged(order) == reference
        # Byte-level, the way a store meta would carry it:
        blobs = {
            json.dumps(MetricsRegistry.merged(order), sort_keys=True)
            for order in itertools.permutations(snaps)
        }
        assert len(blobs) == 1

    def test_any_partition_merges_identically(self):
        snaps = _sample_snapshots()
        reference = MetricsRegistry.merged(snaps)
        partial = MetricsRegistry.merged(snaps[:2])
        rest = MetricsRegistry.merged(snaps[2:])
        assert MetricsRegistry.merged([partial, rest]) == reference

    def test_merge_sums_counters_and_histograms_maxes_gauges(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").max(5)
        a.histogram("h").observe(1)
        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.gauge("g").max(4)
        b.histogram("h").observe(1)
        merged = MetricsRegistry.merged([a.snapshot(), b.snapshot()])
        assert merged["counters"]["c"] == 5
        assert merged["gauges"]["g"] == 5
        assert merged["histograms"]["h"]["count"] == 2


class TestSession:
    def test_no_session_by_default(self):
        assert current_telemetry() is None

    def test_session_is_ambient_and_nests(self):
        with telemetry_session() as outer:
            assert current_telemetry() is outer
            inner = TelemetrySession()
            with inner.activate():
                assert current_telemetry() is inner
            assert current_telemetry() is outer
        assert current_telemetry() is None

    def test_session_merge_folds_worker_snapshots(self):
        shipped = _sample_snapshots()
        with telemetry_session() as session:
            for snap in shipped:
                session.merge(snap)
            assert session.snapshot()["counters"]["cells{workload=kdom}"] == 10


class TestSpans:
    def test_span_without_observation_or_session_is_silent(self):
        with span("task", "cell-a") as span_id:
            assert span_id == "task:cell-a"
            assert current_span() == "task:cell-a"
        assert current_span() is None

    def test_span_records_volatile_duration(self):
        with telemetry_session() as session:
            with span("task", "cell-a"):
                pass
        snap = session.snapshot()
        series = snap["volatile"]["histograms"]["span_seconds{level=task}"]
        assert series["count"] == 1

    def test_span_events_ride_the_trace_with_deterministic_ids(self):
        buffer = io.StringIO()
        writer = JsonlTraceWriter(buffer)
        with observe(writer):
            with span("sweep", "kdom"):
                with span("task", "kdom|tree:n=8|seed=0|k=2"):
                    pass
        trace = read_trace(io.StringIO(buffer.getvalue()))
        assert validate_trace(trace) == []
        starts = trace.by_kind("span_start")
        ends = trace.by_kind("span_end")
        assert [e["span"] for e in starts] == [
            "sweep:kdom",
            "task:kdom|tree:n=8|seed=0|k=2",
        ]
        assert starts[0]["parent"] == ""
        assert starts[1]["parent"] == "sweep:kdom"
        assert all(e["round"] == -1 and e["run"] == -1 for e in starts + ends)
        # Inner span closes first (stack discipline).
        assert [e["span"] for e in ends] == [
            "task:kdom|tree:n=8|seed=0|k=2",
            "sweep:kdom",
        ]

    def test_emit_phase_spans_carries_rounds(self):
        buffer = io.StringIO()
        writer = JsonlTraceWriter(buffer)
        with observe(writer):
            emit_phase_spans("cell-a", {"mst": 12, "dp": 5})
        trace = read_trace(io.StringIO(buffer.getvalue()))
        assert validate_trace(trace) == []
        starts = trace.by_kind("span_start")
        ends = trace.by_kind("span_end")
        assert [e["span"] for e in starts] == [
            "phase:cell-a/mst", "phase:cell-a/dp"
        ]
        assert all(e["parent"] == "task:cell-a" for e in starts)
        assert [e["rounds"] for e in ends] == [12, 5]

    def test_phase_spans_without_observation_are_free(self):
        emit_phase_spans("cell-a", {"mst": 12})  # must not raise


class TestHistogramQuantile:
    def test_quantiles_hit_bucket_bounds(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", volatile=True)
        for value in (0.1, 0.1, 0.1, 0.9):
            hist.observe(value)
        series = reg.snapshot()["volatile"]["histograms"]["h"]
        assert histogram_quantile(series, 0.5) == 0.125
        assert histogram_quantile(series, 1.0) == 1.0

    def test_empty_series_is_zero(self):
        assert histogram_quantile({"count": 0, "buckets": {}}, 0.5) == 0.0
