"""Event stream basics: subscriber protocol, buffers, session plumbing."""

from repro.graphs import path_graph
from repro.obs import (
    EVENT_KINDS,
    FAULT_KINDS,
    CountingSubscriber,
    Subscriber,
    TraceBuffer,
    current_observation,
    observe,
)
from repro.primitives.flooding import FloodProgram
from repro.sim import Network


def flood(graph, **net_kwargs):
    net = Network(graph, **net_kwargs)
    net.run(lambda ctx: FloodProgram(ctx, 0, value=1))
    return net


class TestSubscriberProtocol:
    def test_base_class_hooks_are_noops(self):
        sub = Subscriber()
        sub.on_event({"kind": "send", "round": 0})
        sub.on_phase({"phase": "p", "start": 0, "end": 1, "rounds": 1})
        sub.on_close([])

    def test_fault_kinds_are_event_kinds(self):
        assert set(FAULT_KINDS) <= set(EVENT_KINDS)


class TestTraceBuffer:
    def test_collects_model_visible_events(self):
        buffer = TraceBuffer()
        with observe(buffer):
            flood(path_graph(5))
        kinds = {e["kind"] for e in buffer.events}
        assert "send" in kinds and "deliver" in kinds and "halt" in kinds
        assert kinds <= set(EVENT_KINDS)
        # Every node floods once and halts once.
        assert len(buffer.by_kind("halt")) == 5

    def test_events_carry_round_and_run(self):
        buffer = TraceBuffer()
        with observe(buffer):
            flood(path_graph(4))
        for event in buffer.events:
            assert event["round"] >= 0
            assert event["run"] == 0

    def test_run_ids_increment_per_network(self):
        buffer = TraceBuffer()
        with observe(buffer):
            flood(path_graph(3))
            flood(path_graph(3))
        assert {e["run"] for e in buffer.events} == {0, 1}
        assert [r["run"] for r in buffer.runs] == [0, 1]

    def test_run_records_summarise_each_network(self):
        buffer = TraceBuffer()
        with observe(buffer):
            net = flood(path_graph(6))
        (record,) = buffer.runs
        assert record["nodes"] == 6
        assert record["rounds"] == net.current_round
        assert record["messages"] == net.metrics.traffic.messages


class TestCountingSubscriber:
    def test_counts_match_buffer(self):
        buffer, counter = TraceBuffer(), CountingSubscriber()
        with observe(buffer, counter):
            flood(path_graph(5))
        assert counter.total == len(buffer.events)
        for kind, count in counter.counts.items():
            assert count == len(buffer.by_kind(kind))


class TestSessionScoping:
    def test_no_session_no_observation(self):
        assert current_observation() is None
        net = flood(path_graph(3))
        assert net._obs is None

    def test_network_outside_session_stays_silent(self):
        quiet = Network(path_graph(3))
        buffer = TraceBuffer()
        with observe(buffer):
            quiet.run(lambda ctx: FloodProgram(ctx, 0, value=1))
        # The network was constructed before the session began, so it
        # never registered a tap.
        assert buffer.events == []

    def test_nested_sessions_bind_innermost(self):
        outer, inner = TraceBuffer(), TraceBuffer()
        with observe(outer):
            with observe(inner):
                flood(path_graph(3))
        assert inner.events and not outer.events

    def test_attach_subscriber_without_session(self):
        buffer = TraceBuffer()
        net = Network(path_graph(4))
        net.attach_subscriber(buffer)
        net.run(lambda ctx: FloodProgram(ctx, 0, value=1))
        assert buffer.by_kind("send")
        assert all(e["run"] == 0 for e in buffer.events)
