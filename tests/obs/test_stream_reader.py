"""Streaming trace reading: iter_trace, TraceScan, and the --json report.

``repro report`` must work on traces too large to materialise, so the
lazy reader and the single-pass scan have to agree exactly — same
views, same counts, same validation problems in the same order — with
``read_trace`` + ``validate_trace`` on every trace the repo can
produce.
"""

import io
import json

import pytest

from repro.cli import main
from repro.graphs import path_graph
from repro.obs import (
    JsonlTraceWriter,
    TraceValidationError,
    ascii_timeline,
    channel_heatmap,
    iter_trace,
    observe,
    read_trace,
    scan_trace,
    summary_lines,
    validate_trace,
)
from repro.obs.telemetry import emit_phase_spans, span
from repro.primitives.flooding import FloodProgram
from repro.sim import Network


def flood_trace(with_spans=False):
    """A small real trace as raw JSONL text."""
    sink = io.StringIO()
    writer = JsonlTraceWriter(sink, meta={"algo": "flood"})
    with observe(writer):
        if with_spans:
            with span("task", "cell-a"):
                Network(path_graph(5)).run(
                    lambda ctx: FloodProgram(ctx, 0, value=1)
                )
            emit_phase_spans("cell-a", {"flood": 5})
        else:
            Network(path_graph(5)).run(
                lambda ctx: FloodProgram(ctx, 0, value=1)
            )
    return sink.getvalue()


class TestIterTrace:
    def test_yields_records_in_file_order(self):
        records = list(iter_trace(io.StringIO(flood_trace())))
        assert records[0]["record"] == "header"
        assert records[-1]["record"] == "summary"
        kinds = {r["record"] for r in records}
        assert kinds == {"header", "event", "run", "summary"}

    def test_is_lazy(self):
        """Consuming one record must not parse the rest of the file."""
        text = flood_trace()
        good_first_line = text.splitlines()[0]
        poisoned = good_first_line + "\nnot json at all\n"
        it = iter_trace(io.StringIO(poisoned))
        assert next(it)["record"] == "header"  # fine: line 2 untouched
        with pytest.raises(TraceValidationError):
            next(it)

    def test_path_input_owns_and_closes_handle(self, tmp_path):
        out = tmp_path / "t.jsonl"
        out.write_text(flood_trace())
        records = list(iter_trace(str(out)))
        assert records[0]["record"] == "header"

    def test_bad_json_names_the_line(self):
        text = flood_trace() + "{broken\n"
        with pytest.raises(TraceValidationError) as excinfo:
            list(iter_trace(io.StringIO(text)))
        assert "bad JSON" in excinfo.value.problems[0]

    def test_first_line_must_be_header(self):
        with pytest.raises(TraceValidationError):
            list(iter_trace(io.StringIO('{"record":"event"}\n')))

    def test_empty_file_rejected(self):
        with pytest.raises(TraceValidationError):
            list(iter_trace(io.StringIO("")))

    def test_unknown_record_type_rejected(self):
        text = flood_trace() + '{"record":"mystery"}\n'
        with pytest.raises(TraceValidationError):
            list(iter_trace(io.StringIO(text)))


class TestScanEquivalence:
    def equivalent(self, text):
        trace = read_trace(io.StringIO(text))
        scan = scan_trace(io.StringIO(text))
        assert scan.events_total == len(trace.events)
        by_kind = {}
        for event in trace.events:
            by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
        assert scan.by_kind == by_kind
        assert scan.phases == trace.phases
        assert scan.runs == trace.runs
        assert scan.summary == trace.summary
        assert scan.meta == trace.meta
        assert scan.total_rounds == trace.total_rounds
        assert scan.phase_breakdown() == trace.phase_breakdown()
        assert scan.problems() == validate_trace(trace)
        return trace, scan

    def test_counts_and_problems_match_on_a_valid_trace(self):
        _trace, scan = self.equivalent(flood_trace())
        assert scan.problems() == []

    def test_span_events_count_as_fabric(self):
        _trace, scan = self.equivalent(flood_trace(with_spans=True))
        assert scan.problems() == []
        assert scan.fabric_by_kind["span_start"] == 2
        assert scan.fabric_by_kind["span_end"] == 2

    def test_problems_match_on_an_invalid_trace(self):
        # Inject a malformed event and a stale summary count.
        lines = flood_trace().splitlines()
        lines.insert(1, json.dumps(
            {"record": "event", "kind": "send", "round": 0, "run": 0}
        ))
        text = "\n".join(lines) + "\n"
        trace, scan = self.equivalent(text)
        problems = scan.problems()
        assert problems  # missing node/peer/words/payload + summary drift
        assert problems == validate_trace(trace)

    def test_views_render_identically_from_scan_and_trace(self):
        for text in (flood_trace(), flood_trace(with_spans=True)):
            trace = read_trace(io.StringIO(text))
            scan = scan_trace(io.StringIO(text))
            assert ascii_timeline(scan) == ascii_timeline(trace)
            assert channel_heatmap(scan) == channel_heatmap(trace)
            assert summary_lines(scan) == summary_lines(trace)

    def test_fabric_events_render_off_the_round_axis(self):
        scan = scan_trace(io.StringIO(flood_trace(with_spans=True)))
        timeline = ascii_timeline(scan)
        assert "fabric: 4 event(s) off the round axis" in timeline
        assert "span_start=2" in timeline and "span_end=2" in timeline


class TestReportJson:
    def trace_path(self, tmp_path):
        out = tmp_path / "t.jsonl"
        out.write_text(flood_trace(with_spans=True))
        return str(out)

    def test_exact_schema(self, tmp_path, capsys):
        path = self.trace_path(tmp_path)
        assert main(["report", path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        scan = scan_trace(path)
        assert doc == {
            "schema": "repro-report/1",
            "trace": path,
            "trace_schema": "repro-trace/1",
            "meta": {"algo": "flood"},
            "events": scan.events_total,
            "by_kind": scan.by_kind,
            "fabric_events": {"span_start": 2, "span_end": 2},
            "runs": 1,
            "phases": 0,
            "phase_breakdown": {},
            "total_rounds": scan.total_rounds,
            "valid": True,
            "problems": [],
        }

    def test_invalid_trace_exits_one_with_problems(self, tmp_path, capsys):
        out = tmp_path / "bad.jsonl"
        lines = flood_trace().splitlines()
        lines.insert(1, json.dumps(
            {"record": "event", "kind": "send", "round": 0, "run": 0}
        ))
        out.write_text("\n".join(lines) + "\n")
        assert main(["report", str(out), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["valid"] is False
        assert doc["problems"]

    def test_unreadable_trace_still_emits_a_document(self, tmp_path, capsys):
        out = tmp_path / "broken.jsonl"
        out.write_text("{not json\n")
        assert main(["report", str(out), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-report/1"
        assert doc["valid"] is False
        assert doc["trace_schema"] is None
