"""Observational equivalence guarantees of the event stream.

Two properties are pinned here:

1. **Scheduling transparency** — every event kind is model-visible, so
   a seeded run exports a *byte-identical* JSONL trace under
   ``scheduling="full"`` and ``scheduling="active"``, clean or faulted.
2. **Observer transparency** — attaching subscribers must not change
   the run itself (rounds, traffic, outputs).
"""

import io

from repro.graphs import path_graph
from repro.obs import CountingSubscriber, JsonlTraceWriter, observe
from repro.primitives.flooding import FloodProgram
from repro.sim import FaultConfig, FaultInjector, Network


FAULTY = dict(
    drop_rate=0.2, duplicate_rate=0.1, delay_rate=0.2, max_delay=2,
    crashes={5: 4}, seed=9,
)


def flood_jsonl(scheduling, config=None):
    """Seeded flood on a path; return the exported trace text."""
    sink = io.StringIO()
    writer = JsonlTraceWriter(sink, meta={"scheduling": "elided"})
    with observe(writer):
        faults = FaultInjector(config) if config else None
        net = Network(path_graph(8), faults=faults, scheduling=scheduling)
        net.run(lambda ctx: FloodProgram(ctx, 0, value=7), max_rounds=200)
    return sink.getvalue()


class TestSchedulingByteIdentity:
    def test_clean_traces_byte_identical(self):
        assert flood_jsonl("full") == flood_jsonl("active")

    def test_faulted_traces_byte_identical(self):
        a = flood_jsonl("full", FaultConfig(**FAULTY))
        b = flood_jsonl("active", FaultConfig(**FAULTY))
        assert a == b
        # Faults actually fired — the identity is not vacuous.
        assert '"kind":"drop"' in a or '"kind":"delay"' in a

    def test_repeat_runs_byte_identical(self):
        config = FaultConfig(**FAULTY)
        assert flood_jsonl("active", config) == flood_jsonl(
            "active", FaultConfig(**FAULTY)
        )


def run_flood(subscribers=()):
    net = Network(path_graph(8))
    for sub in subscribers:
        net.attach_subscriber(sub)
    metrics = net.run(lambda ctx: FloodProgram(ctx, 0, value=7))
    return net, metrics


class TestObserverTransparency:
    def test_subscriber_does_not_change_run(self):
        bare_net, bare = run_flood()
        counter = CountingSubscriber()
        seen_net, seen = run_flood([counter])
        assert counter.total > 0
        assert seen.rounds == bare.rounds
        assert seen.messages == bare.messages
        assert seen.total_words == bare.total_words
        assert seen.traffic.per_round == bare.traffic.per_round
        assert seen_net.outputs() == bare_net.outputs()

    def test_faulted_run_unchanged_by_subscriber(self):
        def run(subscribed):
            net = Network(
                path_graph(8),
                faults=FaultInjector(FaultConfig(**FAULTY)),
            )
            if subscribed:
                net.attach_subscriber(CountingSubscriber())
            report = net.run(
                lambda ctx: FloodProgram(ctx, 0, value=7), max_rounds=200
            )
            return report, net.outputs()

        report_a, outputs_a = run(False)
        report_b, outputs_b = run(True)
        assert report_a == report_b
        assert outputs_a == outputs_b
