"""JSONL trace export: writer round-trip, reader, schema validation."""

import io
import json

import pytest

from repro.graphs import path_graph
from repro.obs import (
    TRACE_SCHEMA,
    JsonlTraceWriter,
    Trace,
    TraceBuffer,
    TraceValidationError,
    observe,
    read_trace,
    validate_trace,
)
from repro.primitives.flooding import FloodProgram
from repro.sim import Network


def flood_trace(meta=None):
    """Run a small flood under a JSONL writer; return the raw text."""
    sink = io.StringIO()
    writer = JsonlTraceWriter(sink, meta=meta)
    with observe(writer):
        Network(path_graph(5)).run(lambda ctx: FloodProgram(ctx, 0, value=1))
    return sink.getvalue()


class TestWriter:
    def test_header_first_summary_last(self):
        lines = flood_trace(meta={"algo": "flood"}).splitlines()
        first, last = json.loads(lines[0]), json.loads(lines[-1])
        assert first["record"] == "header"
        assert first["schema"] == TRACE_SCHEMA
        assert first["meta"] == {"algo": "flood"}
        assert last["record"] == "summary"

    def test_canonical_encoding(self):
        for line in flood_trace().splitlines():
            obj = json.loads(line)
            assert line == json.dumps(
                obj, sort_keys=True, separators=(",", ":"), default=str
            )

    def test_path_target_owns_handle(self, tmp_path):
        out = tmp_path / "t.jsonl"
        writer = JsonlTraceWriter(str(out))
        with observe(writer):
            Network(path_graph(3)).run(
                lambda ctx: FloodProgram(ctx, 0, value=1)
            )
        assert writer.closed
        assert out.exists()
        assert validate_trace(str(out)) == []

    def test_summary_counts_match(self):
        trace = read_trace(io.StringIO(flood_trace()))
        assert trace.summary["events"] == len(trace.events)


class TestRoundTrip:
    def test_read_back_equals_buffer(self):
        sink = io.StringIO()
        buffer = TraceBuffer()
        with observe(JsonlTraceWriter(sink), buffer):
            Network(path_graph(5)).run(
                lambda ctx: FloodProgram(ctx, 0, value=1)
            )
        trace = read_trace(io.StringIO(sink.getvalue()))
        # JSON round-trip turns payload tuples into lists, so compare
        # per-field rather than by dict equality.
        assert len(trace.events) == len(buffer.events)
        for parsed, emitted in zip(trace.events, buffer.events):
            assert parsed["kind"] == emitted["kind"]
            assert parsed["round"] == emitted["round"]
            assert parsed["run"] == emitted["run"]

    def test_validate_round_trip_is_clean(self):
        assert validate_trace(io.StringIO(flood_trace())) == []

    def test_from_buffer(self):
        buffer = TraceBuffer()
        with observe(buffer):
            Network(path_graph(4)).run(
                lambda ctx: FloodProgram(ctx, 0, value=1)
            )
        trace = Trace.from_buffer(buffer, meta={"src": "buffer"})
        assert trace.schema == TRACE_SCHEMA
        assert trace.meta == {"src": "buffer"}
        assert len(trace.events) == len(buffer.events)
        assert trace.total_rounds == buffer.runs[0]["rounds"]


class TestReaderErrors:
    def test_missing_header(self):
        with pytest.raises(TraceValidationError):
            read_trace(io.StringIO('{"record":"event","kind":"send"}\n'))

    def test_bad_json(self):
        with pytest.raises(TraceValidationError) as exc:
            read_trace(io.StringIO("not json\n"))
        assert "bad JSON" in exc.value.problems[0]

    def test_unknown_record(self):
        header = json.dumps({"record": "header", "schema": TRACE_SCHEMA})
        with pytest.raises(TraceValidationError):
            read_trace(io.StringIO(header + '\n{"record":"mystery"}\n'))

    def test_empty_input(self):
        with pytest.raises(TraceValidationError):
            read_trace(io.StringIO(""))


class TestValidator:
    def header(self):
        return {"record": "header", "schema": TRACE_SCHEMA, "meta": {}}

    def test_wrong_schema_flagged(self):
        trace = Trace({"schema": "bogus/9"}, [], [], [])
        assert any("unknown schema" in p for p in validate_trace(trace))

    def test_unknown_kind_flagged(self):
        trace = Trace(
            self.header(),
            [{"kind": "teleport", "round": 0, "run": 0}],
            [], [],
        )
        assert any("unknown kind" in p for p in validate_trace(trace))

    def test_missing_field_flagged(self):
        trace = Trace(
            self.header(),
            [{"kind": "send", "round": 0, "run": 0, "node": 1}],
            [], [],
        )
        problems = validate_trace(trace)
        assert any("missing 'peer'" in p for p in problems)
        assert any("missing 'payload'" in p for p in problems)

    def test_negative_round_flagged(self):
        trace = Trace(
            self.header(),
            [{"kind": "halt", "round": -1, "run": 0, "node": 1}],
            [], [],
        )
        assert any("non-negative" in p for p in validate_trace(trace))

    def test_inconsistent_phase_flagged(self):
        trace = Trace(
            self.header(), [],
            [{"phase": "p", "start": 0, "end": 5, "rounds": 3}], [],
        )
        assert any("end - start" in p for p in validate_trace(trace))

    def test_summary_mismatch_flagged(self):
        trace = Trace(
            self.header(), [], [], [],
            summary={"record": "summary", "events": 7, "by_kind": {}},
        )
        assert any("summary counts" in p for p in validate_trace(trace))

    def test_phase_breakdown_helper(self):
        trace = Trace(
            self.header(), [],
            [
                {"phase": "a", "start": 0, "end": 4, "rounds": 4},
                {"phase": "b", "start": 4, "end": 9, "rounds": 5},
                {"phase": "a", "start": 9, "end": 10, "rounds": 1},
            ],
            [],
        )
        assert trace.phase_breakdown() == {"a": 5, "b": 5}
        assert trace.total_rounds == 10
