"""Cross-family guarantee matrix.

One compact net over the workload registries: every named tree family ×
the tree pipeline, every named graph family × the graph pipeline, each
checked against the paper's guarantees through the independent
verifiers.  Catches family-specific regressions (deep paths, heavy
stars, mixed caterpillars, wrap-around tori) that single-workload tests
can miss.
"""

import pytest

from repro.core import fastdom_graph, fastdom_tree
from repro.graphs import (
    GRAPH_FAMILIES,
    TREE_FAMILIES,
    RootedTree,
    assign_unique_weights,
    is_tree,
)
from repro.mst import fast_mst, kruskal_mst
from repro.verify import (
    check_partition,
    is_k_dominating,
    meets_size_bound,
)

TREE_N = 64
GRAPH_N = 49  # grid/torus families round to a 7x7 side


@pytest.mark.parametrize("family", sorted(TREE_FAMILIES))
@pytest.mark.parametrize("k", [1, 3])
def test_tree_family_fastdom(family, k):
    tree = TREE_FAMILIES[family](TREE_N, seed=1)
    assert is_tree(tree)
    if tree.num_nodes < k + 1:
        pytest.skip("family instance smaller than k+1")
    rt = RootedTree.from_graph(tree, 0)
    dominators, partition, _staged = fastdom_tree(tree, 0, rt.parent, k)
    assert meets_size_bound(tree.num_nodes, k, len(dominators)), family
    assert is_k_dominating(tree, dominators, k), family
    report = check_partition(tree, partition, require_connected=False)
    assert report, (family, report.problems)


@pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
@pytest.mark.parametrize("k", [1, 3])
def test_graph_family_fastdom(family, k):
    graph = assign_unique_weights(GRAPH_FAMILIES[family](GRAPH_N, seed=2), seed=3)
    dominators, partition, _staged = fastdom_graph(graph, k)
    assert meets_size_bound(graph.num_nodes, k, len(dominators)), family
    assert is_k_dominating(graph, dominators, k), family
    assert partition.covers(graph.nodes), family


@pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
def test_graph_family_fast_mst(family):
    graph = assign_unique_weights(GRAPH_FAMILIES[family](GRAPH_N, seed=4), seed=5)
    edges, _staged, diag = fast_mst(graph)
    assert edges == kruskal_mst(graph), family
    assert diag["pipelining_violations"] == 0, family
    assert diag["order_violations"] == 0, family
