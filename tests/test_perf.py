"""Perf smoke harness mechanics (repro.perf): workload selection,
report comparison, gate rules, and the v2 schema contract.

The timing numbers themselves are exercised by CI's perf-smoke and
large-n-smoke jobs; here we pin the *logic* — filters, skip rules, and
the staleness behaviour of the schema gate — on synthetic reports."""

import json

import pytest

from repro import perf


class TestSelectWorkloads:
    def test_none_selects_everything_in_order(self):
        assert list(perf.select_workloads(None)) == list(perf.WORKLOADS)
        assert list(perf.select_workloads([])) == list(perf.WORKLOADS)

    def test_filter_preserves_suite_order(self):
        names = list(perf.WORKLOADS)
        picked = perf.select_workloads([names[2], names[0]])
        assert list(picked) == [names[0], names[2]]

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="unknown workload"):
            perf.select_workloads(["nope"])
        with pytest.raises(ValueError, match="bfs_path"):
            perf.select_workloads(["nope"])

    def test_dense_workloads_are_registered(self):
        # ISSUE 7: the large-n dense workloads live in the suite with a
        # per-workload backend tag.
        assert perf.WORKLOADS["fastdom_dense"][3] == "dense"
        assert perf.WORKLOADS["bfs_grid_dense"][3] == "dense"
        assert perf.WORKLOADS["bfs_path"][3] == "reference"
        # The fast-mode dense FastDOM workload is the n=10^5 acceptance
        # run; full mode is the million-node row.
        assert perf.WORKLOADS["fastdom_dense"][1]["n"] == 1_000_000
        assert perf.WORKLOADS["fastdom_dense"][2]["n"] == 100_000


def report(mode="fast", **workloads):
    return {
        "schema": perf.SCHEMA,
        "mode": mode,
        "workloads": {
            name: {"best_seconds": best, "backend": backend}
            for name, (best, backend) in workloads.items()
        },
    }


class TestCompareReports:
    def test_speedup_table(self):
        old = report(a=(2.0, "reference"), b=(1.0, "reference"))
        new = report(a=(1.0, "reference"), b=(2.0, "reference"))
        lines = perf.compare_reports(old, new)
        assert any("a" in ln and "2.00x" in ln for ln in lines)
        assert any("b" in ln and "0.50x" in ln for ln in lines)

    def test_one_sided_workloads_marked(self):
        old = report(gone_one=(1.0, "reference"))
        new = report(new_one=(1.0, "dense"))
        text = "\n".join(perf.compare_reports(old, new))
        assert "gone" in text and "new" in text

    def test_mode_mismatch_noted_first(self):
        lines = perf.compare_reports(report(mode="full"), report(mode="fast"))
        assert lines[0].startswith("note: comparing mode='full'")


class TestGates:
    def test_regression_detected(self):
        current = report(a=(3.0, "reference"))
        baseline = {"fast": {"a": {"best_seconds": 1.0}}}
        failures = perf.check_regressions(current, baseline)
        assert len(failures) == 1 and "a:" in failures[0]

    def test_workload_missing_from_baseline_is_skipped(self):
        # Adding a workload (the dense rows) must not retroactively
        # fail the gate before the baseline is re-recorded.
        current = report(brand_new=(99.0, "dense"))
        assert perf.check_regressions(current, {"fast": {}}) == []

    def test_obs_gate_skips_dense_workloads(self):
        current = report(d=(9.0, "dense"), r=(9.0, "reference"))
        baseline = {
            "fast": {
                "d": {"best_seconds": 1.0},
                "r": {"best_seconds": 1.0},
            }
        }
        failures = perf.check_obs_overhead(current, baseline)
        assert len(failures) == 1 and failures[0].startswith("r:")


class TestMainGateRules:
    def run_main(self, tmp_path, monkeypatch, baseline, **kwargs):
        monkeypatch.chdir(tmp_path)
        if baseline is not None:
            (tmp_path / "baseline.json").write_text(json.dumps(baseline))
        return perf.main(
            fast=True,
            reps=1,
            output=str(tmp_path / "out.json"),
            baseline_path=str(tmp_path / "baseline.json"),
            workload=["bfs_path"],
            **kwargs,
        )

    def test_unknown_workload_exits_2(self, capsys):
        assert perf.main(workload=["nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_stale_schema_skips_gate(self, tmp_path, monkeypatch, capsys):
        # The staleness fix: a baseline recorded under the v1 schema
        # (different workload arity/platform) must not produce bogus
        # regression failures — the gate asks for a re-record instead.
        stale = {"schema": "repro-perf-smoke/1", "fast": {}}
        assert self.run_main(tmp_path, monkeypatch, stale) == 0
        out = capsys.readouterr().out
        assert "gate skipped — re-record" in out

    def test_missing_baseline_skips_gate(self, tmp_path, monkeypatch, capsys):
        assert self.run_main(tmp_path, monkeypatch, None) == 0
        assert "gate skipped" in capsys.readouterr().out

    def test_report_carries_schema_and_backend(self, tmp_path, monkeypatch):
        self.run_main(tmp_path, monkeypatch, None)
        written = json.loads((tmp_path / "out.json").read_text())
        assert written["schema"] == perf.SCHEMA
        assert written["workloads"]["bfs_path"]["backend"] == "reference"

    def test_compare_prints_table(self, tmp_path, monkeypatch, capsys):
        old = report(bfs_path=(1.0, "reference"))
        (tmp_path / "old.json").write_text(json.dumps(old))
        self.run_main(
            tmp_path,
            monkeypatch,
            None,
            compare=str(tmp_path / "old.json"),
        )
        out = capsys.readouterr().out
        assert "workload" in out and "speedup" in out


class TestTelemetryGate:
    def current(self, off_seconds):
        doc = report(sweep_kdom=(1.0, "reference"))
        doc["telemetry"] = {"off_seconds": off_seconds, "on_seconds": 1.0}
        return doc

    def test_within_factor_passes(self):
        baseline = {"fast": {"sweep_kdom": {"best_seconds": 1.0}}}
        assert perf.check_telemetry_overhead(
            self.current(1.04), baseline
        ) == []

    def test_disabled_path_regression_fails(self):
        baseline = {"fast": {"sweep_kdom": {"best_seconds": 1.0}}}
        failures = perf.check_telemetry_overhead(self.current(1.2), baseline)
        assert len(failures) == 1
        assert "telemetry" in failures[0] and "1.05x" in failures[0]

    def test_no_section_or_baseline_skips(self):
        baseline = {"fast": {"sweep_kdom": {"best_seconds": 1.0}}}
        assert perf.check_telemetry_overhead(report(), baseline) == []
        assert perf.check_telemetry_overhead(self.current(9.0), {}) == []


class TestHistory:
    def test_append_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        doc = report(a=(2.0, "reference"))
        doc["dense_speedup"] = {"speedup": 10.0}
        perf.append_history(doc, path)
        perf.append_history(report(a=(1.0, "reference")), path)
        entries, problems = perf.load_history(path)
        assert problems == []
        assert [e["workloads"]["a"] for e in entries] == [2.0, 1.0]
        assert entries[0]["dense_speedup"] == 10.0
        assert entries[1]["dense_speedup"] is None
        assert all(e["schema"] == perf.HISTORY_SCHEMA for e in entries)

    def test_load_skips_bad_lines_with_problems(self, tmp_path):
        path = tmp_path / "history.jsonl"
        good = json.dumps(
            {"schema": perf.HISTORY_SCHEMA, "mode": "fast",
             "workloads": {"a": 1.0}}
        )
        path.write_text(good + "\n{broken\n" + '{"schema":"other/1"}\n')
        entries, problems = perf.load_history(str(path))
        assert len(entries) == 1
        assert len(problems) == 2
        assert "unparsable" in problems[0]

    def test_missing_file_is_empty(self, tmp_path):
        assert perf.load_history(str(tmp_path / "nope")) == ([], [])


class TestTrajectory:
    def entries(self, *bests, mode="fast"):
        return [
            {"schema": perf.HISTORY_SCHEMA, "mode": mode,
             "workloads": {"sweep_kdom": best}, "dense_speedup": None}
            for best in bests
        ]

    def test_trend_and_ramp(self):
        lines = perf.perf_trajectory(
            self.entries(2.0, 1.5, 1.0), source="BENCH_history.jsonl"
        )
        assert lines[0] == (
            "perf trajectory: 3 recorded run(s) from BENCH_history.jsonl"
        )
        assert any("mode fast: 3 run(s)" in line for line in lines)
        row = next(line for line in lines if "sweep_kdom" in line)
        assert "2.00x faster" in row
        assert row.rstrip().endswith("@+.")  # slowest first, fastest last

    def test_modes_render_separately(self):
        lines = perf.perf_trajectory(
            self.entries(1.0) + self.entries(5.0, mode="full")
        )
        assert any("mode fast: 1 run(s)" in line for line in lines)
        assert any("mode full: 1 run(s)" in line for line in lines)
