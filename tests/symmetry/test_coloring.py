"""Cole–Vishkin 6-colouring and shift-down 3-colouring."""

import pytest
from hypothesis import given, settings

from repro.graphs import RootedTree, path_graph, random_tree, star_graph
from repro.symmetry import (
    cv_iterations,
    cv_step,
    cv_step_root,
    six_color_forest,
    three_color_forest,
)
from repro.verify import check_coloring

from ..conftest import pruefer_trees


class TestCvStep:
    def test_reduces_and_stays_proper(self):
        child, parent = 0b101101, 0b101001
        new = cv_step(child, parent)
        # differs at bit 2, child bit is 1 -> 2*2+1
        assert new == 5

    def test_equal_colors_rejected(self):
        with pytest.raises(ValueError):
            cv_step(7, 7)

    def test_root_variant_no_collision_with_children(self):
        for root_color in range(64):
            for child_color in range(64):
                if child_color == root_color:
                    continue
                assert cv_step(child_color, root_color) != cv_step_root(
                    root_color
                )


class TestSixColoring:
    @pytest.mark.parametrize("n,seed", [(2, 0), (5, 1), (37, 2), (200, 3)])
    def test_proper_and_small(self, n, seed):
        g = random_tree(n, seed=seed)
        rt = RootedTree.from_graph(g, 0)
        colors, _net = six_color_forest(g, rt.parent)
        assert check_coloring(g, colors, palette_size=6)

    def test_rounds_follow_schedule(self):
        g = random_tree(500, seed=4)
        rt = RootedTree.from_graph(g, 0)
        _colors, net = six_color_forest(g, rt.parent)
        assert net.metrics.rounds <= cv_iterations(500) + 2

    def test_forest_input(self):
        g = random_tree(20, seed=5)
        g2 = random_tree(15, seed=6).relabeled({i: 20 + i for i in range(15)})
        forest = g.copy()
        for u, v, w in g2.weighted_edges():
            forest.add_edge(u, v, w)
        parent = dict(RootedTree.from_graph(g, 0).parent)
        parent.update(RootedTree.from_graph(g2, 20).parent)
        colors, _net = six_color_forest(forest, parent)
        assert check_coloring(forest, colors, palette_size=6)

    def test_requires_int_ids(self):
        from repro.graphs import Graph
        from repro.sim import Network
        from repro.symmetry import SixColoringProgram

        g = Graph()
        g.add_edge("a", "b")
        with pytest.raises(ValueError):
            Network(g).run(lambda ctx: SixColoringProgram(ctx, {"a": None, "b": "a"}))


class TestThreeColoring:
    @pytest.mark.parametrize("n,seed", [(2, 0), (9, 1), (64, 2), (300, 7)])
    def test_proper_three_colors(self, n, seed):
        g = random_tree(n, seed=seed)
        rt = RootedTree.from_graph(g, 0)
        colors, _net = three_color_forest(g, rt.parent)
        assert check_coloring(g, colors, palette_size=3)

    def test_path_and_star(self):
        for g in (path_graph(50), star_graph(50)):
            rt = RootedTree.from_graph(g, 0)
            colors, _net = three_color_forest(g, rt.parent)
            assert check_coloring(g, colors, palette_size=3)

    def test_rounds_flat_in_n(self):
        rounds = []
        for n in (32, 256, 2048):
            g = random_tree(n, seed=1)
            rt = RootedTree.from_graph(g, 0)
            _colors, net = three_color_forest(g, rt.parent)
            rounds.append(net.metrics.rounds)
        # O(log* n): growing n 64x adds at most a couple of rounds.
        assert rounds[-1] - rounds[0] <= 3


@settings(max_examples=25, deadline=None)
@given(pruefer_trees(max_nodes=35))
def test_three_coloring_property(tree):
    rt = RootedTree.from_graph(tree, 0)
    colors, _net = three_color_forest(tree, rt.parent)
    assert check_coloring(tree, colors, palette_size=3)
