"""Maximal matching on rooted trees (the Small-Dom-Set engine)."""

import pytest
from hypothesis import given, settings

from repro.graphs import RootedTree, path_graph, random_tree, star_graph
from repro.symmetry import tree_maximal_matching
from repro.verify import check_matching

from ..conftest import pruefer_trees


class TestMatching:
    @pytest.mark.parametrize("n,seed", [(2, 0), (9, 1), (60, 2), (350, 3)])
    def test_valid_maximal_matching(self, n, seed):
        g = random_tree(n, seed=seed)
        rt = RootedTree.from_graph(g, 0)
        partner, _net = tree_maximal_matching(g, rt.parent)
        assert check_matching(g, partner)

    def test_star_matches_exactly_one_pair(self):
        g = star_graph(10)
        rt = RootedTree.from_graph(g, 0)
        partner, _net = tree_maximal_matching(g, rt.parent)
        matched = {v for v, p in partner.items() if p is not None}
        assert len(matched) == 2 and 0 in matched

    def test_path_matching_large(self):
        g = path_graph(21)
        rt = RootedTree.from_graph(g, 0)
        partner, _net = tree_maximal_matching(g, rt.parent)
        assert check_matching(g, partner)
        matched = sum(1 for p in partner.values() if p is not None)
        assert matched >= 14  # maximal matching on P21 has >= 7 edges

    def test_two_nodes(self):
        g = path_graph(2)
        partner, _net = tree_maximal_matching(g, {0: None, 1: 0})
        assert partner == {0: 1, 1: 0}

    def test_rounds_flat_in_n(self):
        rounds = []
        for n in (32, 2048):
            g = random_tree(n, seed=4)
            rt = RootedTree.from_graph(g, 0)
            _p, net = tree_maximal_matching(g, rt.parent)
            rounds.append(net.metrics.rounds)
        assert rounds[1] - rounds[0] <= 3

    def test_contracted_id_space(self):
        """Ids above n are fine when id_bound is passed (the contracted
        tree case that broke an early version of the library)."""
        from repro.sim import Network
        from repro.symmetry import TreeMatchingProgram

        g = path_graph(4).relabeled({0: 10, 1: 20, 2: 40, 3: 80})
        parent = {10: None, 20: 10, 40: 20, 80: 40}
        net = Network(g)
        net.run(lambda ctx: TreeMatchingProgram(ctx, parent, id_bound=81))
        partner = net.output_field("partner")
        assert check_matching(g, partner)


@settings(max_examples=25, deadline=None)
@given(pruefer_trees(max_nodes=35))
def test_matching_property(tree):
    rt = RootedTree.from_graph(tree, 0)
    partner, _net = tree_maximal_matching(tree, rt.parent)
    assert check_matching(tree, partner)
