"""Tree MIS (the [GPS] black box of Lemma 3.2)."""

import pytest
from hypothesis import given, settings

from repro.graphs import RootedTree, path_graph, random_tree, star_graph
from repro.symmetry import tree_mis
from repro.verify import check_mis

from ..conftest import pruefer_trees


class TestTreeMIS:
    @pytest.mark.parametrize("n,seed", [(2, 0), (7, 1), (50, 2), (400, 3)])
    def test_valid_mis(self, n, seed):
        g = random_tree(n, seed=seed)
        rt = RootedTree.from_graph(g, 0)
        mis, _net = tree_mis(g, rt.parent)
        assert check_mis(g, mis)

    def test_star_center_or_leaves(self):
        g = star_graph(20)
        rt = RootedTree.from_graph(g, 0)
        mis, _net = tree_mis(g, rt.parent)
        assert check_mis(g, mis)
        assert mis == {0} or mis == set(range(1, 20))

    def test_path_alternation_size(self):
        g = path_graph(20)
        rt = RootedTree.from_graph(g, 0)
        mis, _net = tree_mis(g, rt.parent)
        assert check_mis(g, mis)
        assert len(mis) >= 7  # any maximal IS on P20 has >= ceil(20/3)

    def test_rounds_flat_in_n(self):
        rounds = []
        for n in (32, 2048):
            g = random_tree(n, seed=4)
            rt = RootedTree.from_graph(g, 0)
            _mis, net = tree_mis(g, rt.parent)
            rounds.append(net.metrics.rounds)
        assert rounds[1] - rounds[0] <= 3

    def test_single_node(self):
        from repro.graphs import Graph

        g = Graph()
        g.add_node(0)
        mis, _net = tree_mis(g, {0: None})
        assert mis == {0}


@settings(max_examples=25, deadline=None)
@given(pruefer_trees(max_nodes=35))
def test_mis_property(tree):
    rt = RootedTree.from_graph(tree, 0)
    mis, _net = tree_mis(tree, rt.parent)
    assert check_mis(tree, mis)
