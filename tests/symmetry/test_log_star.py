"""log* and Cole–Vishkin schedule arithmetic."""

import pytest

from repro.symmetry import (
    cv_color_bits_after_step,
    cv_iterations,
    log2_ceil,
    log_star,
)


class TestLogStar:
    def test_known_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2**65536 if False else 65537) == 5

    def test_monotone(self):
        values = [log_star(n) for n in range(1, 2000)]
        assert values == sorted(values)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            log_star(0)


class TestSchedule:
    def test_bits_shrink(self):
        assert cv_color_bits_after_step(10) == 5  # 2*10-1=19 -> 5 bits
        assert cv_color_bits_after_step(3) == 3  # fixed point

    def test_iterations_grow_slowly(self):
        assert cv_iterations(2) >= 1
        assert cv_iterations(10**6) <= 6
        assert cv_iterations(10**9) <= 7

    def test_iterations_monotone(self):
        values = [cv_iterations(n) for n in range(1, 5000)]
        assert values == sorted(values)

    def test_log2_ceil(self):
        assert log2_ceil(1) == 0
        assert log2_ceil(2) == 1
        assert log2_ceil(3) == 2
        assert log2_ceil(1024) == 10
