"""Cluster / Partition structure tests."""

import pytest

from repro.graphs import Cluster, Partition, path_graph


class TestCluster:
    def test_center_always_member(self):
        c = Cluster(3, {4, 5})
        assert 3 in c and c.size == 3

    def test_radius_in(self):
        g = path_graph(10)
        c = Cluster(4, {2, 3, 4, 5, 6})
        assert c.radius_in(g) == 2


class TestPartition:
    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            Partition([Cluster(0, {0, 1}), Cluster(2, {1, 2})])

    def test_from_center_map(self):
        p = Partition.from_center_map({0: 0, 1: 0, 2: 2, 3: 2})
        assert sorted(p.centers) == [0, 2]
        assert p.num_clusters == 2
        assert p.center_of[1] == 0

    def test_from_center_map_adds_center(self):
        # centres appear even if only referenced.
        p = Partition.from_center_map({1: 0})
        assert p.center_of[0] == 0

    def test_covers(self):
        g = path_graph(4)
        p = Partition.from_center_map({0: 0, 1: 0, 2: 3, 3: 3})
        assert p.covers(g.nodes)
        assert not p.covers(list(g.nodes) + [99])

    def test_min_cluster_size(self):
        p = Partition.from_center_map({0: 0, 1: 0, 2: 2})
        assert p.min_cluster_size() == 1

    def test_max_radius_in(self):
        g = path_graph(6)
        p = Partition.from_center_map({0: 1, 1: 1, 2: 1, 3: 4, 4: 4, 5: 4})
        assert p.max_radius_in(g) == 1

    def test_max_radius_in_graph(self):
        g = path_graph(6)
        # 5 assigned to centre 0: distance 5 through the graph.
        p = Partition.from_center_map({v: 0 for v in g.nodes})
        assert p.max_radius_in_graph(g) == 5

    def test_cluster_of(self):
        p = Partition.from_center_map({0: 0, 1: 0})
        assert p.cluster_of(1).center == 0
