"""RootedTree tests."""

import pytest

from repro.graphs import RootedTree, balanced_tree, path_graph, random_tree


class TestConstruction:
    def test_from_graph(self):
        rt = RootedTree.from_graph(path_graph(5), 0)
        assert rt.depth == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
        assert rt.parent[3] == 2

    def test_rejects_non_tree(self):
        g = path_graph(4)
        g.add_edge(0, 3)
        with pytest.raises(ValueError):
            RootedTree.from_graph(g, 0)

    def test_rejects_bad_root_parent(self):
        with pytest.raises(ValueError):
            RootedTree({0: 1, 1: 0}, 0)

    def test_rejects_disconnected_parent_map(self):
        with pytest.raises(ValueError):
            RootedTree({0: None, 1: None, 2: 1}, 0)


class TestQueries:
    @pytest.fixture
    def rt(self):
        return RootedTree.from_graph(balanced_tree(2, 3), 0)

    def test_height(self, rt):
        assert rt.height == 3

    def test_leaves(self, rt):
        assert len(rt.leaves()) == 8
        assert all(rt.is_leaf(v) for v in rt.leaves())

    def test_nodes_at_depth(self, rt):
        assert len(rt.nodes_at_depth(2)) == 4

    def test_subtree_nodes(self, rt):
        sub = rt.subtree_nodes(1)
        assert 1 in sub and len(sub) == 7

    def test_path_to_root(self, rt):
        leaf = rt.leaves()[0]
        path = rt.path_to_root(leaf)
        assert path[0] == leaf and path[-1] == 0
        assert len(path) == 4

    def test_postorder_children_first(self, rt):
        seen = set()
        for v in rt.postorder():
            for c in rt.children[v]:
                assert c in seen
            seen.add(v)
        assert len(seen) == rt.num_nodes

    def test_bfs_order_starts_at_root(self, rt):
        order = list(rt.bfs_order())
        assert order[0] == 0 and len(order) == rt.num_nodes

    def test_edges_count(self, rt):
        assert len(list(rt.edges())) == rt.num_nodes - 1

    def test_as_graph_roundtrip(self):
        g = random_tree(30, seed=9)
        rt = RootedTree.from_graph(g, 0)
        back = rt.as_graph()
        assert set(back.edges()) == set(g.edges())
