"""Edge-list serialisation round-trips."""

import io

import pytest

from repro.graphs import (
    Graph,
    assign_unique_weights,
    dump_edge_list,
    grid_graph,
    load_edge_list,
    read_edge_list,
    write_edge_list,
)


class TestRoundTrip:
    def test_weighted_roundtrip(self):
        g = assign_unique_weights(grid_graph(4, 4), seed=2)
        back = load_edge_list(dump_edge_list(g))
        assert sorted(back.weighted_edges()) == sorted(g.weighted_edges())

    def test_unweighted_roundtrip(self):
        g = grid_graph(3, 3)
        back = load_edge_list(dump_edge_list(g))
        assert sorted(back.edges()) == sorted(g.edges())

    def test_isolated_nodes_preserved(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_node(7)
        back = load_edge_list(dump_edge_list(g))
        assert 7 in back and back.num_nodes == 3

    def test_stream_api(self):
        g = grid_graph(2, 3)
        buf = io.StringIO()
        write_edge_list(g, buf)
        buf.seek(0)
        back = read_edge_list(buf)
        assert sorted(back.edges()) == sorted(g.edges())


class TestParsing:
    def test_comments_and_blanks_ignored(self):
        g = load_edge_list("# hello\n\n0 1\n")
        assert g.has_edge(0, 1)

    def test_float_weights(self):
        g = load_edge_list("0 1 2.5\n")
        assert g.weight(0, 1) == 2.5

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            load_edge_list("0 1 2 3\n")

    def test_string_nodes(self):
        g = load_edge_list("alpha beta 3\n")
        assert g.has_edge("alpha", "beta")
