"""GraphProvenance: stamping, replay exactness, mutation invalidation.

The spec-dispatch contract (repro.batch.dispatch) rests on one
property: replaying ``(spec, seed, weight_seed, members)`` through
``parse_graph_spec`` → ``assign_unique_weights`` → ``subgraph``
reproduces the graph bit for bit.  These tests pin that property and
the invalidation rules that protect it.
"""

import pytest

from repro.graphs import (
    GraphProvenance,
    assign_unique_weights,
    parse_graph_spec,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    random_connected_graph,
    random_tree,
    torus_graph,
)

GENERATED = [
    lambda: cycle_graph(12),
    lambda: complete_graph(6),
    lambda: random_tree(20, seed=5),
    lambda: grid_graph(3, 4),
    lambda: torus_graph(3, 4),
    lambda: random_connected_graph(18, 0.2, seed=9),
]


def replay(provenance: GraphProvenance):
    graph = parse_graph_spec(provenance.spec, seed=provenance.seed)
    if provenance.weight_seed is not None:
        assign_unique_weights(graph, seed=provenance.weight_seed)
    if provenance.members is not None:
        graph = graph.subgraph(provenance.members)
    return graph


def same_graph(a, b) -> bool:
    if set(a.nodes) != set(b.nodes):
        return False
    edges_a = {frozenset(e) for e in a.edges()}
    edges_b = {frozenset(e) for e in b.edges()}
    if edges_a != edges_b:
        return False
    return all(a.weight(u, v) == b.weight(u, v) for u, v in a.edges())


class TestStamping:
    @pytest.mark.parametrize("build", GENERATED)
    def test_generators_stamp_and_replay(self, build):
        graph = build()
        assert graph.provenance is not None
        assert same_graph(graph, replay(graph.provenance))

    def test_spec_parser_output_replays(self):
        graph = parse_graph_spec("random:n=24,p=0.15", seed=3)
        assert graph.provenance is not None
        assert same_graph(graph, replay(graph.provenance))

    def test_weighted_graph_replays_weights(self):
        graph = random_tree(24, seed=2)
        assign_unique_weights(graph, seed=7)
        assert graph.provenance.weight_seed == 7
        assert same_graph(graph, replay(graph.provenance))

    def test_subgraph_restricts_provenance(self):
        graph = random_tree(30, seed=4)
        assign_unique_weights(graph, seed=4)
        members = sorted(graph.nodes)[:12]
        sub = graph.subgraph(members)
        assert sub.provenance is not None
        assert sub.provenance.members == tuple(sorted(members, key=str))
        assert same_graph(sub, replay(sub.provenance))

    def test_copy_preserves_provenance(self):
        graph = random_tree(10, seed=1)
        assert graph.copy().provenance == graph.provenance


class TestInvalidation:
    def test_add_edge_clears(self):
        graph = cycle_graph(8)
        graph.add_edge(0, 4)
        assert graph.provenance is None

    def test_add_node_clears(self):
        graph = cycle_graph(8)
        graph.add_node("extra")
        assert graph.provenance is None

    def test_set_weight_clears(self):
        graph = cycle_graph(8)
        graph.set_weight(0, 1, 99)
        assert graph.provenance is None

    def test_remove_edge_clears(self):
        graph = cycle_graph(8)
        graph.remove_edge(0, 1)
        assert graph.provenance is None

    def test_capped_weights_clear(self):
        """max_weight changes the sample; the recipe cannot express it."""
        graph = random_tree(12, seed=3)
        assign_unique_weights(graph, seed=3, max_weight=10**6)
        assert graph.provenance is None

    def test_weighting_a_subgraph_clears(self):
        """Weights drawn on an induced subgraph differ from weights
        drawn on the base graph then restricted — the replay order the
        recipe encodes — so the provenance must not survive."""
        graph = random_tree(20, seed=6)
        sub = graph.subgraph(sorted(graph.nodes)[:10])
        assign_unique_weights(sub, seed=6)
        assert sub.provenance is None

    def test_mutated_subgraph_of_stamped_parent(self):
        graph = random_tree(15, seed=8)
        graph.add_edge(0, 14)  # parent mutated first
        assert graph.subgraph(sorted(graph.nodes)[:5]).provenance is None
