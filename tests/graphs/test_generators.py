"""Generator tests, cross-validated against networkx where useful."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    balanced_tree,
    broom_tree,
    caterpillar_tree,
    complete_graph,
    cycle_graph,
    grid_graph,
    is_connected,
    is_tree,
    lollipop_graph,
    path_graph,
    random_connected_graph,
    random_graph_with_m_edges,
    random_tree,
    spider_tree,
    star_graph,
    torus_graph,
    tree_from_pruefer,
)


def to_nx(g) -> nx.Graph:
    out = nx.Graph()
    out.add_nodes_from(g.nodes)
    out.add_edges_from(g.edges())
    return out


class TestBasicShapes:
    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4 and is_tree(g)
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.nodes)

    def test_cycle_minimum_size(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 6 and is_tree(g)

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15

    def test_balanced_tree(self):
        g = balanced_tree(2, 3)
        assert g.num_nodes == 15 and is_tree(g)

    def test_caterpillar(self):
        g = caterpillar_tree(5, 2)
        assert g.num_nodes == 15 and is_tree(g)

    def test_broom(self):
        g = broom_tree(4, 6)
        assert g.num_nodes == 10 and is_tree(g)

    def test_spider(self):
        g = spider_tree(3, 4)
        assert g.num_nodes == 13 and is_tree(g)
        assert g.degree(0) == 3

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # 17

    def test_torus_regular(self):
        g = torus_graph(4, 5)
        assert all(g.degree(v) == 4 for v in g.nodes)

    def test_lollipop(self):
        g = lollipop_graph(5, 6)
        assert g.num_nodes == 11 and is_connected(g)


class TestRandomFamilies:
    def test_random_tree_is_tree(self):
        for seed in range(5):
            assert is_tree(random_tree(50, seed=seed))

    def test_random_tree_deterministic(self):
        a = random_tree(30, seed=4)
        b = random_tree(30, seed=4)
        assert set(a.edges()) == set(b.edges())

    def test_random_tree_small(self):
        assert random_tree(1).num_nodes == 1
        assert random_tree(2).num_edges == 1

    def test_random_connected(self):
        g = random_connected_graph(60, 0.05, seed=1)
        assert is_connected(g)
        assert g.num_edges >= 59

    def test_random_with_m_edges(self):
        g = random_graph_with_m_edges(20, 30, seed=2)
        assert g.num_edges == 30 and is_connected(g)

    def test_random_with_m_edges_bounds(self):
        with pytest.raises(ValueError):
            random_graph_with_m_edges(5, 3)
        with pytest.raises(ValueError):
            random_graph_with_m_edges(5, 11)

    def test_pruefer_roundtrip_vs_networkx(self):
        seq = [3, 3, 3, 4]
        ours = tree_from_pruefer(seq)
        theirs = nx.from_prufer_sequence(seq)
        assert set(ours.edges()) == {tuple(sorted(e)) for e in theirs.edges()}


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=40).flatmap(
        lambda n: st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=max(n - 2, 0),
            max_size=max(n - 2, 0),
        )
    )
)
def test_pruefer_always_yields_tree(seq):
    g = tree_from_pruefer(seq)
    assert is_tree(g)
    assert g.num_nodes == len(seq) + 2


class TestRandomRegular:
    def test_degree_and_connectivity(self):
        from repro.graphs import random_regular_graph

        g = random_regular_graph(60, 4, seed=2)
        assert all(g.degree(v) == 4 for v in g.nodes)
        assert is_connected(g)
        assert g.num_edges == 120

    def test_odd_product_rejected(self):
        from repro.graphs import random_regular_graph

        with pytest.raises(ValueError):
            random_regular_graph(5, 3)

    def test_degree_bounds(self):
        from repro.graphs import random_regular_graph

        with pytest.raises(ValueError):
            random_regular_graph(10, 2)
        with pytest.raises(ValueError):
            random_regular_graph(6, 6)

    def test_deterministic(self):
        from repro.graphs import random_regular_graph

        a = random_regular_graph(30, 4, seed=9)
        b = random_regular_graph(30, 4, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_low_diameter(self):
        from repro.graphs import diameter, random_regular_graph

        g = random_regular_graph(128, 4, seed=3)
        assert diameter(g) <= 8  # O(log n) for expanders
