"""Weight-assignment tests (the model's distinct / polynomial demands)."""

import pytest

from repro.graphs import (
    Graph,
    assign_unique_weights,
    assign_weights_by_rank,
    complete_graph,
    grid_graph,
    has_unique_weights,
    perturb_to_unique,
    weights_are_polynomial,
)


class TestUniqueWeights:
    def test_distinct(self):
        g = assign_unique_weights(grid_graph(6, 6), seed=1)
        assert has_unique_weights(g)

    def test_polynomial_bound(self):
        g = assign_unique_weights(grid_graph(6, 6), seed=1)
        assert weights_are_polynomial(g)

    def test_deterministic(self):
        a = assign_unique_weights(grid_graph(4, 4), seed=7)
        b = assign_unique_weights(grid_graph(4, 4), seed=7)
        assert sorted(a.weighted_edges()) == sorted(b.weighted_edges())

    def test_too_small_range_rejected(self):
        with pytest.raises(ValueError):
            assign_unique_weights(complete_graph(10), seed=0, max_weight=10)


class TestRankWeights:
    def test_ranks_cover_1_to_m(self):
        g = assign_weights_by_rank(grid_graph(5, 5), seed=3)
        weights = sorted(w for _u, _v, w in g.weighted_edges())
        assert weights == list(range(1, g.num_edges + 1))


class TestPerturb:
    def test_duplicates_resolved(self):
        g = Graph()
        g.add_edge(0, 1, 5)
        g.add_edge(1, 2, 5)
        g.add_edge(2, 3, 5)
        perturb_to_unique(g)
        assert has_unique_weights(g)

    def test_order_respected(self):
        g = Graph()
        g.add_edge(0, 1, 100)
        g.add_edge(1, 2, 1)
        perturb_to_unique(g)
        assert g.weight(1, 2) < g.weight(0, 1)

    def test_unweighted_detected(self):
        g = Graph()
        g.add_edge(0, 1)
        assert not has_unique_weights(g)
