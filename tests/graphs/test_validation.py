"""Structural validation checks."""

from repro.graphs import (
    Graph,
    cycle_graph,
    edges_form_spanning_tree,
    is_connected,
    is_forest,
    is_tree,
    path_graph,
    random_tree,
)


class TestConnectivity:
    def test_connected(self):
        assert is_connected(path_graph(5))

    def test_disconnected(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_node(2)
        assert not is_connected(g)

    def test_empty_is_connected(self):
        assert is_connected(Graph())


class TestTreeForest:
    def test_tree(self):
        assert is_tree(random_tree(20, seed=1))

    def test_cycle_not_tree(self):
        assert not is_tree(cycle_graph(5))
        assert not is_forest(cycle_graph(5))

    def test_forest(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        assert is_forest(g) and not is_tree(g)

    def test_single_node(self):
        g = Graph()
        g.add_node(0)
        assert is_tree(g) and is_forest(g)


class TestSpanningTreeEdges:
    def test_valid_spanning_tree(self):
        g = cycle_graph(5)
        edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
        assert edges_form_spanning_tree(g, edges)

    def test_cycle_rejected(self):
        g = cycle_graph(4)
        assert not edges_form_spanning_tree(g, list(g.edges()))

    def test_nonspanning_rejected(self):
        g = path_graph(4)
        assert not edges_form_spanning_tree(g, [(0, 1), (1, 2)])

    def test_foreign_edge_rejected(self):
        g = path_graph(3)
        assert not edges_form_spanning_tree(g, [(0, 2), (1, 2)])
