"""The named workload-family registries used by benchmarks."""

from repro.graphs import GRAPH_FAMILIES, TREE_FAMILIES, is_connected, is_tree


class TestTreeFamilies:
    def test_all_families_yield_trees(self):
        for name, factory in TREE_FAMILIES.items():
            g = factory(50, seed=1)
            assert is_tree(g), name
            assert g.num_nodes >= 2, name

    def test_seeded_families_deterministic(self):
        a = TREE_FAMILIES["random"](40, seed=5)
        b = TREE_FAMILIES["random"](40, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())


class TestGraphFamilies:
    def test_all_families_connected(self):
        for name, factory in GRAPH_FAMILIES.items():
            g = factory(50, seed=1)
            assert is_connected(g), name
            assert g.num_nodes >= 3, name

    def test_ring_exact(self):
        g = GRAPH_FAMILIES["ring"](20)
        assert g.num_edges == 20
