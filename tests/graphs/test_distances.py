"""Distance utilities, cross-validated against networkx."""

import networkx as nx
import pytest

from repro.graphs import (
    bfs_distances,
    bfs_tree,
    connected_components,
    diameter,
    distance,
    eccentricity,
    grid_graph,
    path_graph,
    radius_and_center,
    radius_within,
    random_connected_graph,
    random_tree,
    shortest_path,
    star_graph,
    Graph,
)


def to_nx(g) -> nx.Graph:
    out = nx.Graph()
    out.add_nodes_from(g.nodes)
    out.add_edges_from(g.edges())
    return out


class TestBFS:
    def test_distances_match_networkx(self):
        g = random_connected_graph(50, 0.08, seed=2)
        ours = bfs_distances(g, 0)
        theirs = nx.single_source_shortest_path_length(to_nx(g), 0)
        assert ours == dict(theirs)

    def test_bfs_tree_parents_consistent(self):
        g = random_tree(40, seed=1)
        dist, parent = bfs_tree(g, 0)
        for v, p in parent.items():
            if v != 0:
                assert dist[p] == dist[v] - 1

    def test_distance(self):
        assert distance(path_graph(10), 0, 9) == 9

    def test_distance_unreachable(self):
        g = Graph()
        g.add_node(0)
        g.add_node(1)
        with pytest.raises(ValueError):
            distance(g, 0, 1)


class TestDiameterRadius:
    def test_path(self):
        assert diameter(path_graph(10)) == 9
        r, c = radius_and_center(path_graph(9))
        assert r == 4 and c == 4

    def test_star(self):
        assert diameter(star_graph(10)) == 2
        r, c = radius_and_center(star_graph(10))
        assert r == 1 and c == 0

    def test_grid_matches_networkx(self):
        g = grid_graph(4, 6)
        assert diameter(g) == nx.diameter(to_nx(g))

    def test_eccentricity_matches_networkx(self):
        g = random_connected_graph(40, 0.1, seed=3)
        h = to_nx(g)
        for v in list(g.nodes)[:10]:
            assert eccentricity(g, v) == nx.eccentricity(h, v)

    def test_disconnected_raises(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_node(2)
        with pytest.raises(ValueError):
            eccentricity(g, 0)


class TestRadiusWithin:
    def test_subset_radius(self):
        g = path_graph(10)
        assert radius_within(g, {2, 3, 4, 5}, 3) == 2

    def test_center_must_be_member(self):
        with pytest.raises(ValueError):
            radius_within(path_graph(5), {1, 2}, 4)

    def test_disconnected_members_raise(self):
        with pytest.raises(ValueError):
            radius_within(path_graph(10), {0, 1, 8, 9}, 0)


class TestComponentsAndPaths:
    def test_components(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        g.add_node(4)
        comps = sorted(sorted(c) for c in connected_components(g))
        assert comps == [[0, 1], [2, 3], [4]]

    def test_shortest_path_endpoints(self):
        g = grid_graph(5, 5)
        path = shortest_path(g, 0, 24)
        assert path[0] == 0 and path[-1] == 24
        assert len(path) - 1 == distance(g, 0, 24)
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)
