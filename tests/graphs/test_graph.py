"""Graph structure tests."""

import pytest

from repro.graphs import Graph


@pytest.fixture
def triangle() -> Graph:
    g = Graph()
    g.add_edge(0, 1, 5)
    g.add_edge(1, 2, 7)
    g.add_edge(0, 2, 9)
    return g


class TestConstruction:
    def test_counts(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_reweight_conflict_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_edge(0, 1, 99)

    def test_idempotent_same_weight(self, triangle):
        triangle.add_edge(0, 1, 5)
        assert triangle.num_edges == 3

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(3)
        g.add_node(3)
        assert g.num_nodes == 1

    def test_set_weight(self, triangle):
        triangle.set_weight(0, 1, 50)
        assert triangle.weight(0, 1) == 50
        assert triangle.weight(1, 0) == 50

    def test_set_weight_missing_edge(self, triangle):
        with pytest.raises(KeyError):
            triangle.set_weight(0, 5, 1)

    def test_remove_edge(self, triangle):
        triangle.remove_edge(0, 1)
        assert not triangle.has_edge(0, 1)
        assert triangle.num_edges == 2


class TestInspection:
    def test_neighbors_symmetric(self, triangle):
        assert set(triangle.neighbors(0)) == {1, 2}
        assert 0 in triangle.neighbors(1)

    def test_degree(self, triangle):
        assert triangle.degree(0) == 2

    def test_edges_once_each(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        assert all(u < v for u, v in edges)

    def test_total_weight(self, triangle):
        assert triangle.total_weight() == 21

    def test_contains(self, triangle):
        assert 0 in triangle and 9 not in triangle


class TestDerived:
    def test_copy_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge(0, 1)
        assert triangle.has_edge(0, 1)

    def test_subgraph(self, triangle):
        sub = triangle.subgraph([0, 1])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert sub.weight(0, 1) == 5

    def test_subgraph_missing_node(self, triangle):
        with pytest.raises(KeyError):
            triangle.subgraph([0, 42])

    def test_edge_subgraph_keeps_all_nodes(self, triangle):
        sub = triangle.edge_subgraph([(0, 1)])
        assert sub.num_nodes == 3
        assert sub.num_edges == 1

    def test_relabeled(self, triangle):
        out = triangle.relabeled({0: "a", 1: "b", 2: "c"})
        assert out.has_edge("a", "b")
        assert out.weight("a", "b") == 5

    def test_relabel_must_be_injective(self, triangle):
        with pytest.raises(ValueError):
            triangle.relabeled({0: "x", 1: "x", 2: "y"})
