"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    assign_unique_weights,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_tree,
    star_graph,
    tree_from_pruefer,
)


# ---------------------------------------------------------------------------
# Deterministic workload fixtures
# ---------------------------------------------------------------------------
@pytest.fixture
def small_tree() -> Graph:
    return random_tree(40, seed=7)


@pytest.fixture
def medium_tree() -> Graph:
    return random_tree(200, seed=11)


@pytest.fixture
def weighted_graph() -> Graph:
    return assign_unique_weights(random_connected_graph(80, 0.06, seed=3), seed=4)


@pytest.fixture
def weighted_grid() -> Graph:
    return assign_unique_weights(grid_graph(7, 8), seed=5)


TREE_CASES = [
    ("path", path_graph(30)),
    ("star", star_graph(30)),
    ("random-a", random_tree(60, seed=1)),
    ("random-b", random_tree(97, seed=2)),
]


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------
def pruefer_trees(min_nodes: int = 2, max_nodes: int = 40):
    """Random labelled trees via Prüfer sequences."""

    def build(seq):
        return tree_from_pruefer(seq)

    return st.integers(min_value=min_nodes, max_value=max_nodes).flatmap(
        lambda n: st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=max(n - 2, 0),
            max_size=max(n - 2, 0),
        ).map(lambda seq: _tree_of(n, seq))
    )


def _tree_of(n: int, seq):
    if n == 2:
        g = Graph()
        g.add_edge(0, 1)
        return g
    return tree_from_pruefer(seq)


def weighted_graphs(min_nodes: int = 3, max_nodes: int = 30):
    """Connected graphs with distinct integer weights."""
    return st.tuples(
        st.integers(min_value=min_nodes, max_value=max_nodes),
        st.integers(min_value=0, max_value=2**20),
        st.floats(min_value=0.0, max_value=0.3),
    ).map(
        lambda t: assign_unique_weights(
            random_connected_graph(t[0], t[2], seed=t[1]), seed=t[1] + 1
        )
    )
