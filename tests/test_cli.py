"""Command-line interface."""

import json

import pytest

from repro.cli import generate, main


class TestGenerate:
    def test_grid(self):
        g = generate("grid:3x4")
        assert g.num_nodes == 12

    def test_ring(self):
        assert generate("ring:9").num_edges == 9

    def test_tree_seeded(self):
        a = generate("tree:40", seed=3)
        b = generate("tree:40", seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_random(self):
        g = generate("random:30:0.1", seed=1)
        assert g.num_nodes == 30

    def test_complete(self):
        assert generate("complete:5").num_edges == 10

    def test_bad_kind(self):
        with pytest.raises(SystemExit):
            generate("mobius:9")

    def test_bad_spec(self):
        with pytest.raises(SystemExit):
            generate("grid:banana")

    def test_keyvalue_tree(self):
        a = generate("tree:n=40", seed=3)
        b = generate("tree:40", seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_keyvalue_grid(self):
        assert generate("grid:rows=3,cols=5").num_nodes == 15

    def test_keyvalue_random(self):
        g = generate("random:n=30,p=0.1", seed=1)
        assert g.num_nodes == 30
        assert sorted(g.edges()) == sorted(
            generate("random:30:0.1", seed=1).edges()
        )

    def test_keyvalue_ring(self):
        assert generate("ring:n=12").num_edges == 12

    def test_bad_keyvalue(self):
        with pytest.raises(SystemExit):
            generate("grid:rows=3")  # missing cols
        with pytest.raises(SystemExit):
            generate("tree:n=")


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--generate", "grid:4x4"]) == 0
        out = capsys.readouterr().out
        assert "nodes:    16" in out
        assert "leader (max id): 15" in out

    def test_kdom(self, capsys):
        assert main(["kdom", "--generate", "ring:24", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "|D| =" in out and "domination radius = 2" in out

    def test_kdom_verbose(self, capsys):
        assert main(
            ["kdom", "--generate", "ring:12", "--k", "1", "-v"]
        ) == 0
        assert "D = [" in capsys.readouterr().out

    def test_partition(self, capsys):
        assert main(["partition", "--generate", "tree:60", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "max radius" in out

    @pytest.mark.parametrize("algorithm", ["fast", "ghs", "pipeline"])
    def test_mst_exact(self, capsys, algorithm):
        code = main(
            ["mst", "--generate", "random:40:0.1", "--algorithm", algorithm]
        )
        assert code == 0
        assert "exact vs sequential Kruskal" in capsys.readouterr().out

    def test_graph_file(self, tmp_path, capsys):
        edge_file = tmp_path / "g.edges"
        edge_file.write_text("0 1 5\n1 2 3\n2 0 4\n")
        assert main(["info", "--graph", str(edge_file)]) == 0
        assert "nodes:    3" in capsys.readouterr().out

    def test_missing_source(self):
        with pytest.raises(SystemExit):
            main(["info"])


class TestFaultsCommand:
    def test_clean_run_is_healthy(self, capsys):
        assert main(["faults", "--generate", "ring:12", "--workload", "flood"]) == 0
        out = capsys.readouterr().out
        assert "completed: True" in out
        assert "resilience: OK" in out

    def test_crashed_dominator_fails_health_check(self, capsys):
        # Node 9 is in the DP's dominating set on ring:12's BFS spanning
        # tree; crashing it after the run strands a survivor component.
        code = main(
            [
                "faults", "--generate", "ring:12", "--workload", "kdom",
                "--k", "2", "--crash", "9@6",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATIONS" in out
        assert "no surviving dominator" in out

    def test_reliable_masks_loss(self, capsys):
        code = main(
            [
                "faults", "--generate", "ring:12", "--workload", "bfs",
                "--drop", "0.1", "--reliable", "--max-rounds", "5000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "completed: True" in out
        assert "reliable=yes" in out

    def test_verbose_prints_plan(self, capsys):
        assert main(
            [
                "faults", "--generate", "ring:8", "--workload", "flood",
                "--crash", "3@2", "-v",
            ]
        ) in (0, 1)
        assert "crash" in capsys.readouterr().out

    def test_bad_crash_spec(self):
        with pytest.raises(SystemExit):
            main(["faults", "--generate", "ring:8", "--crash", "3"])

    def test_bad_rates(self):
        with pytest.raises(SystemExit):
            main(["faults", "--generate", "ring:8", "--drop", "0.7",
                  "--duplicate", "0.7"])

    def test_bad_timeout(self):
        with pytest.raises(SystemExit):
            main(["faults", "--generate", "ring:8", "--reliable",
                  "--timeout", "2"])


class TestTraceCommand:
    def test_flood_trace_is_valid(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        code = main(
            ["trace", "--generate", "ring:8", "--algo", "flood",
             "--out", str(out)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "events" in text and "sends per round" in text
        from repro.obs import validate_trace

        assert validate_trace(str(out)) == []

    def test_graph_spec_fallback(self, tmp_path, capsys):
        # --graph accepts a generator spec when the value is not a file.
        out = tmp_path / "t.jsonl"
        code = main(
            ["trace", "--graph", "tree:n=16", "--algo", "bfs",
             "--out", str(out)]
        )
        assert code == 0
        assert out.exists()

    def test_fast_mst_phases_match_staged(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        code = main(
            ["trace", "--graph", "tree:n=16", "--algo", "fast-mst",
             "--out", str(out)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "phase totals match StagedRun breakdown: yes" in text

    def test_kdom_phases_match_staged(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        code = main(
            ["trace", "--generate", "tree:20", "--algo", "kdom",
             "--k", "2", "--out", str(out)]
        )
        assert code == 0
        assert "phase totals match StagedRun breakdown: yes" in (
            capsys.readouterr().out
        )

    def test_faulted_trace_records_fault_events(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        code = main(
            ["trace", "--generate", "ring:10", "--algo", "flood",
             "--drop", "0.3", "--fault-seed", "5", "--out", str(out)]
        )
        assert code == 0
        from repro.obs import read_trace

        trace = read_trace(str(out))
        assert trace.by_kind("drop")
        assert all("plan_index" in e for e in trace.by_kind("drop"))

    def test_fault_flags_rejected_for_composites(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["trace", "--generate", "tree:16", "--algo", "fast-mst",
                 "--drop", "0.5", "--out", str(tmp_path / "t.jsonl")]
            )

    def test_bad_graph_value(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["trace", "--graph", "nosuchfile", "--algo", "flood",
                 "--out", str(tmp_path / "t.jsonl")]
            )


class TestTraceDenseBackend:
    def trace(self, tmp_path, name, backend):
        pytest.importorskip("numpy")
        out = tmp_path / f"{name}.jsonl"
        code = main(
            ["trace", "--graph", "tree:n=32", "--algo", "kdom-tree",
             "--k", "2", "--backend", backend, "--out", str(out)]
        )
        assert code == 0
        return out.read_bytes()

    def test_kdom_tree_dense_trace_byte_identical(self, tmp_path, capsys):
        # The CI trace-smoke contract: the dense backend's replayed
        # event stream is the reference engine's stream, byte for byte.
        ref = self.trace(tmp_path, "ref", "reference")
        dense = self.trace(tmp_path, "dense", "dense")
        assert dense == ref

    def test_dense_rejected_for_unported_algos(self, tmp_path, capsys):
        code = main(
            ["trace", "--graph", "tree:n=16", "--algo", "bfs",
             "--backend", "dense", "--out", str(tmp_path / "t.jsonl")]
        )
        assert code == 2
        assert "backend" in capsys.readouterr().err


class TestPerfFlags:
    def test_unknown_workload_exits_2(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        code = main(["perf", "--fast", "--workload", "nope", "--no-gate"])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_workload_filter_and_compare(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        args = ["perf", "--fast", "--reps", "1", "--workload", "bfs_path",
                "--no-gate"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--compare", "BENCH_sim.json"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "bfs_path" in out


class TestSweepCommand:
    def test_fast_grid_inline(self, tmp_path, capsys):
        out = tmp_path / "sweep.jsonl"
        code = main(
            ["sweep", "--fast", "--backend", "inline", "--out", str(out)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "sweep kdom: 8 cell(s) — ran 8, skipped 0 (complete)" in text
        assert "merged: rounds(max)=" in text
        assert out.exists()

    def test_resume_skips_everything(self, tmp_path, capsys):
        out = tmp_path / "sweep.jsonl"
        args = ["sweep", "--fast", "--backend", "inline", "--out", str(out)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "ran 0, skipped 8 (complete)" in capsys.readouterr().out

    def test_partial_run_exits_incomplete_code(self, tmp_path, capsys):
        """Exit code 3 means "fine but unfinished" — distinct from 1
        (crash/verify failure) so CI can tell them apart."""
        out = tmp_path / "sweep.jsonl"
        code = main(
            ["sweep", "--fast", "--backend", "inline", "--out", str(out),
             "--max-cells", "2"]
        )
        assert code == 3
        assert "INCOMPLETE" in capsys.readouterr().out

    def test_sharded_sweeps_merge_byte_identical(self, tmp_path, capsys):
        one_shot = tmp_path / "full.jsonl"
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--out", str(one_shot)]
        ) == 0
        shards = []
        for index in range(2):
            path = tmp_path / f"shard{index}.jsonl"
            code = main(
                ["sweep", "--fast", "--backend", "inline",
                 "--shard", f"{index}/2", "--out", str(path)]
            )
            assert code == 0
            shards.append(str(path))
        merged = tmp_path / "merged.jsonl"
        assert main(["merge-stores", *shards, "--out", str(merged)]) == 0
        assert merged.read_bytes() == one_shot.read_bytes()
        assert "merged 2 shard store(s)" in capsys.readouterr().out

    def test_bad_shard_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="shard"):
            main(["sweep", "--fast", "--shard", "2/2"])

    def test_merge_refuses_missing_shard(self, tmp_path):
        path = tmp_path / "s0.jsonl"
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--shard", "0/2",
             "--out", str(path)]
        ) == 0
        with pytest.raises(SystemExit, match="missing shard"):
            main(["merge-stores", str(path),
                  "--out", str(tmp_path / "m.jsonl")])

    def test_unknown_workload_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["sweep", "--workload", "nope", "--spec", "tree:n=8"])

    def test_import_registers_benchmark_workload(self, capsys):
        code = main(
            ["sweep", "--import", "benchmarks.bench_e16_faults",
             "--workload", "e16-reliable", "--spec", "random:n=20,p=0.2",
             "--seeds", "0", "--ks", "0", "--backend", "inline"]
        )
        assert code == 0
        assert "sweep e16-reliable: 1 cell(s)" in capsys.readouterr().out

    def test_bad_import_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="--import"):
            main(["sweep", "--import", "no.such.module", "--fast"])

    def test_explicit_grid_with_verify(self, capsys):
        code = main(
            ["sweep", "--workload", "partition", "--spec", "tree:n=30",
             "--seeds", "0,1", "--ks", "3", "--backend", "inline",
             "--verify"]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "sweep partition: 2 cell(s)" in text
        assert "verify: all cells ok" in text

    def test_verbose_echoes_cells(self, capsys):
        code = main(
            ["sweep", "--workload", "kdom", "--spec", "tree:n=20",
             "--seeds", "0", "--ks", "2", "--backend", "inline", "-v"]
        )
        assert code == 0
        assert "tree:n=20 seed=0 k=2: rounds=" in capsys.readouterr().out

    def test_spec_required_without_fast(self):
        with pytest.raises(SystemExit, match="--spec"):
            main(["sweep", "--backend", "inline"])

    def test_bad_seed_list(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--spec", "tree:n=20", "--seeds", "0,x",
                  "--backend", "inline"])

    def test_grid_mismatch_is_a_clean_error(self, tmp_path, capsys):
        out = tmp_path / "sweep.jsonl"
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="different grid"):
            main(
                ["sweep", "--workload", "kdom", "--spec", "tree:n=20",
                 "--seeds", "0", "--ks", "2", "--backend", "inline",
                 "--out", str(out)]
            )


class TestReportCommand:
    def trace_file(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        assert main(
            ["trace", "--generate", "ring:8", "--algo", "flood",
             "--out", str(out)]
        ) == 0
        capsys.readouterr()  # discard trace output
        return out

    def test_valid_trace(self, tmp_path, capsys):
        out = self.trace_file(tmp_path, capsys)
        assert main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "trace valid" in text
        assert "algo=flood" in text

    def test_corrupt_trace_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["report", str(bad)]) == 1
        assert "unreadable trace" in capsys.readouterr().out

    def test_schema_violation_fails(self, tmp_path, capsys):
        out = self.trace_file(tmp_path, capsys)
        lines = out.read_text().splitlines()
        # Corrupt one event record: strip a required field.
        import json

        for index, line in enumerate(lines):
            obj = json.loads(line)
            if obj.get("record") == "event" and obj["kind"] == "send":
                del obj["payload"]
                lines[index] = json.dumps(obj, sort_keys=True)
                break
        out.write_text("\n".join(lines) + "\n")
        assert main(["report", str(out)]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestHardenedSweepCommand:
    def test_deadline_flag_is_byte_identical_to_plain_sweep(
        self, tmp_path, capsys
    ):
        plain, hardened = tmp_path / "plain.jsonl", tmp_path / "hard.jsonl"
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--out", str(plain)]
        ) == 0
        code = main(
            ["sweep", "--fast", "--workers", "2", "--deadline-s", "30",
             "--out", str(hardened)]
        )
        assert code == 0
        assert "ran 8, skipped 0 (complete)" in capsys.readouterr().out
        assert hardened.read_bytes() == plain.read_bytes()

    def test_bad_deadline_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--fast", "--deadline-s", "0"])


class TestRepairStoreCommand:
    def damaged_store(self, tmp_path, capsys):
        out = tmp_path / "sweep.jsonl"
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--out", str(out),
             "--max-cells", "3"]
        ) == 3
        capsys.readouterr()
        lines = out.read_text().splitlines()
        lines[1] = lines[1].replace('"k":', '"j":', 1)  # break one row's crc
        out.write_text("\n".join(lines) + "\n")
        return out

    def test_repairs_in_place(self, tmp_path, capsys):
        out = self.damaged_store(tmp_path, capsys)
        assert main(["repair-store", str(out)]) == 0
        text = capsys.readouterr().out
        assert "repaired" in text
        assert "corrupt line(s) dropped" in text
        # Repaired store resumes cleanly and refills the lost cell.
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--out", str(out)]
        ) == 0

    def test_repair_to_new_path(self, tmp_path, capsys):
        out = self.damaged_store(tmp_path, capsys)
        fixed = tmp_path / "fixed.jsonl"
        assert main(["repair-store", str(out), "--out", str(fixed)]) == 0
        assert fixed.exists()

    def test_missing_store_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["repair-store", str(tmp_path / "nope.jsonl")])


class TestPartialMergeCommand:
    def test_allow_partial_exits_incomplete_with_manifest(
        self, tmp_path, capsys
    ):
        shard0 = tmp_path / "s0.jsonl"
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--shard", "0/2",
             "--out", str(shard0)]
        ) == 0
        merged = tmp_path / "m.jsonl"
        code = main(
            ["merge-stores", str(shard0), "--out", str(merged),
             "--allow-partial"]
        )
        assert code == 3
        text = capsys.readouterr().out
        assert "PARTIAL merge" in text
        assert (tmp_path / "m.jsonl.holes.json").exists()
        # The checkpoint resumes into the full store.
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--out", str(merged)]
        ) == 0

    def test_complete_partial_merge_exits_zero(self, tmp_path, capsys):
        shards = []
        for index in range(2):
            path = tmp_path / f"s{index}.jsonl"
            assert main(
                ["sweep", "--fast", "--backend", "inline",
                 "--shard", f"{index}/2", "--out", str(path)]
            ) == 0
            shards.append(str(path))
        code = main(
            ["merge-stores", *shards, "--out", str(tmp_path / "m.jsonl"),
             "--allow-partial"]
        )
        assert code == 0


class TestChaosCommand:
    def test_clean_drill_verifies_and_exits_zero(self, tmp_path, capsys):
        code = main(
            ["chaos", "--fast", "--seed", "7",
             "--out-dir", str(tmp_path), "--deadline-s", "0.5"]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "chaos plan" in text
        assert "verified: store byte-identical to fault-free run" in text
        assert "task_retried" in text

    def test_poison_drill_exits_quarantine_code(self, tmp_path, capsys):
        code = main(
            ["chaos", "--fast", "--seed", "3", "--out-dir", str(tmp_path),
             "--deadline-s", "0.5", "--kills", "0", "--hangs", "0",
             "--corrupts", "0", "--poisons", "1", "--max-attempts", "2"]
        )
        assert code == 3
        text = capsys.readouterr().out
        assert "quarantined:" in text
        assert "minus" in text  # verified minus quarantined cells

    def test_overfull_plan_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="bad chaos drill"):
            main(
                ["chaos", "--workload", "kdom", "--spec", "tree:n=8",
                 "--seeds", "0", "--ks", "2", "--out-dir", str(tmp_path),
                 "--kills", "5"]
            )


class TestStatusCommand:
    def swept_store(self, tmp_path, capsys):
        out = tmp_path / "sweep.jsonl"
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        return out

    def test_status_reads_the_sidecar(self, tmp_path, capsys):
        out = self.swept_store(tmp_path, capsys)
        assert main(["status", str(out)]) == 0
        text = capsys.readouterr().out
        assert "sweep kdom: COMPLETE 8/8 cells" in text
        assert "backend inline, workers 1" in text

    def test_status_accepts_the_sidecar_path_directly(
        self, tmp_path, capsys
    ):
        out = self.swept_store(tmp_path, capsys)
        assert main(["status", str(out) + ".status.json"]) == 0
        assert "8/8 cells" in capsys.readouterr().out

    def test_status_final_renders_store_telemetry(self, tmp_path, capsys):
        out = self.swept_store(tmp_path, capsys)
        assert main(["status", str(out), "--final"]) == 0
        text = capsys.readouterr().out
        assert "sweep kdom: COMPLETE 8/8 cells" in text
        assert "telemetry (repro-telemetry/1):" in text
        assert "sweep_cells_ok{workload=kdom} = 8" in text

    def test_status_final_is_identical_across_worker_counts(
        self, tmp_path, capsys
    ):
        texts = []
        for workers in ("1", "2"):
            out = tmp_path / f"w{workers}.jsonl"
            assert main(
                ["sweep", "--fast", "--backend", "process",
                 "--workers", workers, "--out", str(out)]
            ) == 0
            capsys.readouterr()
            assert main(["status", str(out), "--final"]) == 0
            texts.append(capsys.readouterr().out)
        assert texts[0] == texts[1]

    def test_missing_sidecar_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read status file"):
            main(["status", str(tmp_path / "nope.jsonl")])

    def test_mid_sweep_status_via_max_cells(self, tmp_path, capsys):
        out = tmp_path / "partial.jsonl"
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--out", str(out),
             "--max-cells", "3"]
        ) == 3  # EXIT_SWEEP_INCOMPLETE
        capsys.readouterr()
        assert main(["status", str(out)]) == 0
        text = capsys.readouterr().out
        assert "INCOMPLETE 3/8 cells" in text
        assert "pending 5" in text


class TestStatusWatchTolerance:
    """Watch mode retries past transient sidecar failures (ISSUE 9):
    a watch started before the first heartbeat, or a read racing the
    os.replace swap, renders a waiting line instead of dying."""

    def _interrupt_after_first_sleep(self, monkeypatch):
        import time as time_mod

        def interrupt(_interval):
            raise KeyboardInterrupt

        monkeypatch.setattr(time_mod, "sleep", interrupt)

    def test_watch_tolerates_missing_sidecar(
        self, tmp_path, capsys, monkeypatch
    ):
        self._interrupt_after_first_sleep(monkeypatch)
        assert main(
            ["status", str(tmp_path / "nope.jsonl"), "--watch"]
        ) == 0
        assert "waiting for" in capsys.readouterr().out

    def test_watch_tolerates_torn_document(
        self, tmp_path, capsys, monkeypatch
    ):
        self._interrupt_after_first_sleep(monkeypatch)
        (tmp_path / "s.jsonl.status.json").write_text("{torn")
        assert main(["status", str(tmp_path / "s.jsonl"), "--watch"]) == 0
        assert "waiting for" in capsys.readouterr().out

    def test_watch_exits_when_state_is_terminal(self, tmp_path, capsys):
        out = tmp_path / "sweep.jsonl"
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        # state=complete on the first render: no sleep, clean exit.
        assert main(["status", str(out), "--watch"]) == 0
        assert "COMPLETE 8/8 cells" in capsys.readouterr().out

    def test_one_shot_keeps_the_hard_failure(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read status file"):
            main(["status", str(tmp_path / "nope.jsonl")])


class TestServeCommand:
    def test_parser_wires_the_config(self, monkeypatch):
        import repro.serve as serve_mod

        captured = {}

        def fake_run_server(config):
            captured["config"] = config
            return 0

        monkeypatch.setattr(serve_mod, "run_server", fake_run_server)
        assert main(
            ["serve", "--port", "0", "--backend", "inline",
             "--cache-size", "16", "--deadline-s", "2.5",
             "--workers", "3"]
        ) == 0
        config = captured["config"]
        assert config.port == 0
        assert config.backend == "inline"
        assert config.cache_size == 16
        assert config.deadline_s == 2.5
        assert config.workers == 3

    def test_bad_cache_size(self):
        with pytest.raises(SystemExit, match="--cache-size"):
            main(["serve", "--cache-size", "0"])

    def test_bad_deadline(self):
        with pytest.raises(SystemExit, match="--deadline-s"):
            main(["serve", "--deadline-s", "-1"])

    def test_bad_import(self):
        with pytest.raises(SystemExit, match="--import nope_mod"):
            main(["serve", "--import", "nope_mod"])


class TestTopCommand:
    def test_lists_every_sidecar(self, tmp_path, capsys):
        for name in ("a.jsonl", "b.jsonl"):
            assert main(
                ["sweep", "--fast", "--backend", "inline",
                 "--out", str(tmp_path / name)]
            ) == 0
        capsys.readouterr()
        assert main(["top", "--dir", str(tmp_path)]) == 0
        text = capsys.readouterr().out
        assert text.splitlines()[0].split()[:3] == ["sweep", "state", "cells"]
        assert "a.jsonl" in text and "b.jsonl" in text
        assert text.count("8/8") == 2

    def test_empty_dir(self, tmp_path, capsys):
        assert main(["top", "--dir", str(tmp_path)]) == 0
        assert "no *.status.json files found" in capsys.readouterr().out

    def test_unreadable_sidecar_skipped(self, tmp_path, capsys):
        (tmp_path / "torn.status.json").write_text("{not json")
        assert main(["top", "--dir", str(tmp_path)]) == 0
        assert "no *.status.json files found" in capsys.readouterr().out


class TestSweepTelemetryFlags:
    def test_no_telemetry_writes_no_sidecar_or_meta(self, tmp_path, capsys):
        import json as json_mod

        out = tmp_path / "off.jsonl"
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--out", str(out),
             "--no-telemetry"]
        ) == 0
        capsys.readouterr()
        assert not (tmp_path / "off.jsonl.status.json").exists()
        meta = json_mod.loads(out.read_text().splitlines()[0])
        assert "telemetry" not in meta

    def test_status_flag_redirects_the_sidecar(self, tmp_path, capsys):
        out = tmp_path / "s.jsonl"
        side = tmp_path / "elsewhere.status.json"
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--out", str(out),
             "--status", str(side)]
        ) == 0
        capsys.readouterr()
        assert side.exists()
        assert not (tmp_path / "s.jsonl.status.json").exists()

    def test_profile_workers_prints_hot_functions(self, tmp_path, capsys):
        out = tmp_path / "p.jsonl"
        prof = tmp_path / "prof"
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--out", str(out),
             "--profile-workers", str(prof)]
        ) == 0
        text = capsys.readouterr().out
        assert "worker profiles: 1 dump(s)" in text
        assert "cumulative" in text

    def test_profile_workers_defaults_next_to_the_store(
        self, tmp_path, capsys
    ):
        out = tmp_path / "p.jsonl"
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--out", str(out),
             "--profile-workers"]
        ) == 0
        capsys.readouterr()
        assert (tmp_path / "p.jsonl.profiles").is_dir()


class TestReportBench:
    def test_bench_renders_the_history(self, tmp_path, capsys):
        from repro import perf

        history = tmp_path / "history.jsonl"
        for best in (2.0, 1.0):
            perf.append_history(
                {"schema": perf.SCHEMA, "mode": "fast",
                 "workloads": {"sweep_kdom": {"best_seconds": best,
                                              "backend": "reference"}}},
                str(history),
            )
        assert main(["report", "--bench", "--history", str(history)]) == 0
        text = capsys.readouterr().out
        assert "perf trajectory: 2 recorded run(s)" in text
        assert "sweep_kdom" in text and "2.00x faster" in text

    def test_bench_without_history_exits_one(self, tmp_path, capsys):
        assert main(
            ["report", "--bench", "--history", str(tmp_path / "none")]
        ) == 1
        assert "no perf history" in capsys.readouterr().out

    def test_report_without_trace_or_bench_is_an_error(self):
        with pytest.raises(SystemExit, match="trace file is required"):
            main(["report"])


class TestIngestCommand:
    @pytest.fixture
    def store(self, tmp_path):
        path = tmp_path / "s.jsonl"
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--no-telemetry",
             "--out", str(path)]
        ) == 0
        return str(path)

    def test_ingest_then_noop_reingest(self, store, tmp_path, capsys):
        db = str(tmp_path / "wh.sqlite")
        assert main(["ingest", store, "--db", db]) == 0
        first = capsys.readouterr().out
        assert "+8 row(s)" in first and "8 row(s) total" in first
        assert main(["ingest", store, "--db", db]) == 0
        again = capsys.readouterr().out
        assert "no-op" in again and "8 row(s) total" in again

    def test_incomplete_store_exits_three(self, tmp_path, capsys):
        path = tmp_path / "part.jsonl"
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--no-telemetry",
             "--max-cells", "3", "--out", str(path)]
        ) == 3
        capsys.readouterr()
        db = str(tmp_path / "wh.sqlite")
        assert main(["ingest", str(path), "--db", db]) == 3
        assert "INCOMPLETE" in capsys.readouterr().out
        assert main(
            ["ingest", str(path), "--db", db, "--allow-partial"]
        ) == 3
        assert "PARTIAL" in capsys.readouterr().out

    def test_corrupt_store_exits_one(self, store, tmp_path, capsys):
        with open(store) as handle:
            lines = handle.read().splitlines()
        lines.insert(2, "{mid-file garbage")
        with open(store, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(SystemExit, match="corrupt"):
            main(["ingest", store, "--db", str(tmp_path / "wh.sqlite")])


class TestQueryCommand:
    @pytest.fixture
    def fabric(self, tmp_path, capsys):
        store = tmp_path / "s.jsonl"
        db = tmp_path / "wh.sqlite"
        assert main(
            ["sweep", "--fast", "--backend", "inline", "--no-telemetry",
             "--out", str(store)]
        ) == 0
        assert main(["ingest", str(store), "--db", str(db)]) == 0
        capsys.readouterr()
        return {"store": str(store), "db": str(db)}

    def test_json_byte_identity_warehouse_vs_raw(self, fabric, capsys):
        query = ["--metric", "dominators", "--where", "workload=kdom",
                 "--group-by", "family,k",
                 "--agg", "count,min,max,mean,p50,p90", "--json"]
        assert main(["query", "--db", fabric["db"]] + query) == 0
        from_warehouse = capsys.readouterr().out
        assert main(["query", "--store", fabric["store"]] + query) == 0
        from_raw = capsys.readouterr().out
        assert from_warehouse == from_raw
        doc = json.loads(from_warehouse)
        assert doc["schema"] == "repro-query/1"
        assert doc["rows_matched"] == 8

    def test_ascii_table_default(self, fabric, capsys):
        assert main(
            ["query", "--db", fabric["db"], "--metric", "rounds",
             "--group-by", "family"]
        ) == 0
        text = capsys.readouterr().out
        assert "query rounds [results]: 8 row(s) matched" in text

    def test_empty_match_exits_three(self, fabric, capsys):
        assert main(
            ["query", "--db", fabric["db"], "--metric", "dominators",
             "--where", "workload=absent"]
        ) == 3
        assert "0 row(s) matched" in capsys.readouterr().out

    def test_bad_filter_field_exits_one(self, fabric):
        with pytest.raises(SystemExit, match="unknown filter field"):
            main(["query", "--db", fabric["db"], "--metric", "dominators",
                  "--where", "color=red"])

    def test_metric_required_without_bench(self, fabric):
        with pytest.raises(SystemExit, match="--metric is required"):
            main(["query", "--db", fabric["db"]])

    def test_bench_query_over_history(self, tmp_path, capsys):
        from repro import perf

        history = tmp_path / "h.jsonl"
        for best in (2.0, 1.0):
            perf.append_history(
                {"schema": perf.SCHEMA, "mode": "fast",
                 "workloads": {"bfs_path": {"best_seconds": best,
                                            "backend": "reference"}}},
                str(history),
            )
        assert main(
            ["query", "--bench", "--history", str(history),
             "--group-by", "workload", "--agg", "count,min,max", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["table"] == "bench"
        assert doc["groups"] == [
            {"key": {"workload": "bfs_path"}, "count": 2,
             "min": 1.0, "max": 2.0},
        ]


class TestPortfolioCommand:
    def test_portfolio_roundtrip_to_warehouse(self, tmp_path, capsys):
        store = tmp_path / "p.jsonl"
        db = str(tmp_path / "wh.sqlite")
        assert main(
            ["portfolio", "--spec", "random:n=24,p=0.18",
             "--seeds", "0,1,2", "--backend", "inline",
             "--out", str(store)]
        ) == 0
        text = capsys.readouterr().out
        assert "<- best" in text and "verdict:" in text
        assert main(["ingest", str(store), "--db", db]) == 0
        assert "portfolio verdict" in capsys.readouterr().out

    def test_json_verdict_document(self, capsys):
        assert main(
            ["portfolio", "--spec", "tree:n=16", "--seeds", "0,1",
             "--backend", "inline", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-portfolio/1"
        assert doc["best_seed"] in (0, 1)

    def test_worker_count_does_not_change_the_verdict(self, tmp_path,
                                                      capsys):
        texts = []
        for workers, name in ((1, "w1"), (2, "w2")):
            store = tmp_path / f"{name}.jsonl"
            assert main(
                ["portfolio", "--spec", "random:n=20,p=0.2",
                 "--seeds", "0,1,2,3", "--backend", "process",
                 "--workers", str(workers), "--out", str(store)]
            ) == 0
            capsys.readouterr()
            with open(str(store) + ".verdict.json") as handle:
                texts.append(handle.read())
        assert texts[0] == texts[1]

    def test_unknown_workload_exits_one(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["portfolio", "--spec", "tree:n=16", "--workload",
                  "nope", "--backend", "inline"])


class TestReportBenchWarehouse:
    def test_history_lands_in_the_warehouse(self, tmp_path, capsys):
        from repro import perf

        history = tmp_path / "h.jsonl"
        db = str(tmp_path / "wh.sqlite")
        for best in (2.0, 1.5, 1.0):
            perf.append_history(
                {"schema": perf.SCHEMA, "mode": "fast",
                 "workloads": {"bfs_path": {"best_seconds": best,
                                            "backend": "reference"}}},
                str(history),
            )
        assert main(
            ["report", "--bench", "--history", str(history),
             "--warehouse", db]
        ) == 0
        text = capsys.readouterr().out
        assert "+3 bench entries" in text
        assert "perf trajectory: 3 recorded run(s)" in text
        # second ingest of the same history adds nothing
        assert main(
            ["report", "--bench", "--history", str(history),
             "--warehouse", db]
        ) == 0
        assert "+0 bench entries, 3 already recorded" in \
            capsys.readouterr().out
        assert main(
            ["query", "--bench", "--db", db, "--agg", "count"]
        ) == 0
