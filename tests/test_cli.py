"""Command-line interface."""

import pytest

from repro.cli import generate, main


class TestGenerate:
    def test_grid(self):
        g = generate("grid:3x4")
        assert g.num_nodes == 12

    def test_ring(self):
        assert generate("ring:9").num_edges == 9

    def test_tree_seeded(self):
        a = generate("tree:40", seed=3)
        b = generate("tree:40", seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_random(self):
        g = generate("random:30:0.1", seed=1)
        assert g.num_nodes == 30

    def test_complete(self):
        assert generate("complete:5").num_edges == 10

    def test_bad_kind(self):
        with pytest.raises(SystemExit):
            generate("mobius:9")

    def test_bad_spec(self):
        with pytest.raises(SystemExit):
            generate("grid:banana")


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--generate", "grid:4x4"]) == 0
        out = capsys.readouterr().out
        assert "nodes:    16" in out
        assert "leader (max id): 15" in out

    def test_kdom(self, capsys):
        assert main(["kdom", "--generate", "ring:24", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "|D| =" in out and "domination radius = 2" in out

    def test_kdom_verbose(self, capsys):
        assert main(
            ["kdom", "--generate", "ring:12", "--k", "1", "-v"]
        ) == 0
        assert "D = [" in capsys.readouterr().out

    def test_partition(self, capsys):
        assert main(["partition", "--generate", "tree:60", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "max radius" in out

    @pytest.mark.parametrize("algorithm", ["fast", "ghs", "pipeline"])
    def test_mst_exact(self, capsys, algorithm):
        code = main(
            ["mst", "--generate", "random:40:0.1", "--algorithm", algorithm]
        )
        assert code == 0
        assert "exact vs sequential Kruskal" in capsys.readouterr().out

    def test_graph_file(self, tmp_path, capsys):
        edge_file = tmp_path / "g.edges"
        edge_file.write_text("0 1 5\n1 2 3\n2 0 4\n")
        assert main(["info", "--graph", str(edge_file)]) == 0
        assert "nodes:    3" in capsys.readouterr().out

    def test_missing_source(self):
        with pytest.raises(SystemExit):
            main(["info"])


class TestFaultsCommand:
    def test_clean_run_is_healthy(self, capsys):
        assert main(["faults", "--generate", "ring:12", "--workload", "flood"]) == 0
        out = capsys.readouterr().out
        assert "completed: True" in out
        assert "resilience: OK" in out

    def test_crashed_dominator_fails_health_check(self, capsys):
        # Node 9 is in the DP's dominating set on ring:12's BFS spanning
        # tree; crashing it after the run strands a survivor component.
        code = main(
            [
                "faults", "--generate", "ring:12", "--workload", "kdom",
                "--k", "2", "--crash", "9@6",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATIONS" in out
        assert "no surviving dominator" in out

    def test_reliable_masks_loss(self, capsys):
        code = main(
            [
                "faults", "--generate", "ring:12", "--workload", "bfs",
                "--drop", "0.1", "--reliable", "--max-rounds", "5000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "completed: True" in out
        assert "reliable=yes" in out

    def test_verbose_prints_plan(self, capsys):
        assert main(
            [
                "faults", "--generate", "ring:8", "--workload", "flood",
                "--crash", "3@2", "-v",
            ]
        ) in (0, 1)
        assert "crash" in capsys.readouterr().out

    def test_bad_crash_spec(self):
        with pytest.raises(SystemExit):
            main(["faults", "--generate", "ring:8", "--crash", "3"])

    def test_bad_rates(self):
        with pytest.raises(SystemExit):
            main(["faults", "--generate", "ring:8", "--drop", "0.7",
                  "--duplicate", "0.7"])

    def test_bad_timeout(self):
        with pytest.raises(SystemExit):
            main(["faults", "--generate", "ring:8", "--reliable",
                  "--timeout", "2"])
