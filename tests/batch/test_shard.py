"""Multi-host sharding: deterministic partition, byte-identical merge.

The contract (ISSUE 5 tentpole): ``repro sweep --shard i/N`` runs a
deterministic slice of the canonical grid, and merging the N shard
stores with ``merge_stores`` reproduces, byte for byte, the store a
single unsharded sweep would have written.
"""

import json

import pytest

from repro.batch import (
    StoreError,
    SweepGrid,
    SweepStore,
    merge_stores,
    parse_shard,
    run_sweep,
    shard_cells,
)

GRID = SweepGrid(
    workload="partition",
    specs=("tree:n=24", "tree:n=31", "tree:n=18"),
    seeds=(0, 1),
    ks=(2, 3),
)


class TestParseShard:
    def test_parses(self):
        assert parse_shard("0/4") == (0, 4)
        assert parse_shard("3/4") == (3, 4)
        assert parse_shard("0/1") == (0, 1)

    @pytest.mark.parametrize("text", ["x/4", "4", "1-4", "", "0/0", "4/4", "-1/4"])
    def test_rejects(self, text):
        with pytest.raises(ValueError):
            parse_shard(text)


class TestShardCells:
    def test_no_shard_is_identity(self):
        cells = GRID.cells()
        assert shard_cells(cells, None) == list(enumerate(cells))

    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 12, 13])
    def test_shards_partition_the_grid_exactly(self, count):
        """Union over all shards == the full grid, with no overlaps."""
        cells = GRID.cells()
        seen = {}
        for index in range(count):
            for position, cell in shard_cells(cells, (index, count)):
                assert position not in seen, "cell assigned to two shards"
                seen[position] = cell
        assert sorted(seen) == list(range(len(cells)))
        assert [seen[i] for i in sorted(seen)] == cells

    def test_shard_selection_is_deterministic(self):
        cells = GRID.cells()
        assert shard_cells(cells, (1, 3)) == shard_cells(cells, (1, 3))

    def test_round_robin_mixes_specs(self):
        """Each shard of a 3-spec grid sees more than one spec."""
        for index in range(2):
            specs = {
                cell.spec for _i, cell in shard_cells(GRID.cells(), (index, 2))
            }
            assert len(specs) > 1


class TestShardedSweep:
    def test_merge_matches_one_shot_byte_for_byte(self, tmp_path):
        one_shot = tmp_path / "full.jsonl"
        run_sweep(GRID, store_path=str(one_shot))
        count = 3
        shard_paths = []
        for index in range(count):
            path = tmp_path / f"shard{index}.jsonl"
            summary = run_sweep(
                GRID, store_path=str(path), shard=(index, count)
            )
            assert summary.complete
            shard_paths.append(str(path))
        merged = tmp_path / "merged.jsonl"
        meta = merge_stores(shard_paths, str(merged))
        assert merged.read_bytes() == one_shot.read_bytes()
        assert meta["cells"] == 12

    def test_merge_order_independent(self, tmp_path):
        shard_paths = []
        for index in range(2):
            path = tmp_path / f"s{index}.jsonl"
            run_sweep(GRID, store_path=str(path), shard=(index, 2))
            shard_paths.append(str(path))
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        merge_stores(shard_paths, str(a))
        merge_stores(list(reversed(shard_paths)), str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_shard_totals_cover_grid(self, tmp_path):
        totals = 0
        for index in range(5):
            summary = run_sweep(GRID, shard=(index, 5))
            assert summary.complete
            totals += summary.total
        assert totals == len(GRID.cells())

    def test_shard_store_resumes(self, tmp_path):
        path = tmp_path / "s.jsonl"
        partial = run_sweep(
            GRID, store_path=str(path), shard=(0, 2), max_cells=2
        )
        assert not partial.complete
        resumed = run_sweep(GRID, store_path=str(path), shard=(0, 2))
        assert resumed.skipped == 2
        assert resumed.complete

    def test_shard_store_refuses_other_shard(self, tmp_path):
        path = tmp_path / "s.jsonl"
        run_sweep(GRID, store_path=str(path), shard=(0, 2), max_cells=1)
        with pytest.raises(StoreError, match="different grid"):
            run_sweep(GRID, store_path=str(path), shard=(1, 2))


class TestMergeErrors:
    def shard_store(self, tmp_path, index, count, name=None):
        path = tmp_path / (name or f"shard{index}.jsonl")
        run_sweep(GRID, store_path=str(path), shard=(index, count))
        return str(path)

    def test_missing_shard_refused(self, tmp_path):
        s0 = self.shard_store(tmp_path, 0, 3)
        s1 = self.shard_store(tmp_path, 1, 3)
        with pytest.raises(StoreError, match="missing shard"):
            merge_stores([s0, s1], str(tmp_path / "out.jsonl"))

    def test_duplicate_shard_refused(self, tmp_path):
        s0 = self.shard_store(tmp_path, 0, 2)
        s0b = self.shard_store(tmp_path, 0, 2, name="again.jsonl")
        with pytest.raises(StoreError, match="duplicate shard"):
            merge_stores([s0, s0b], str(tmp_path / "out.jsonl"))

    def test_unsharded_store_refused(self, tmp_path):
        full = tmp_path / "full.jsonl"
        run_sweep(GRID, store_path=str(full))
        with pytest.raises(StoreError, match="not a shard store"):
            merge_stores([str(full)], str(tmp_path / "out.jsonl"))

    def test_mixed_grids_refused(self, tmp_path):
        s0 = self.shard_store(tmp_path, 0, 2)
        other = SweepGrid("partition", ("tree:n=24",), (0,), (2,))
        path = tmp_path / "other.jsonl"
        run_sweep(other, store_path=str(path), shard=(1, 2))
        with pytest.raises(StoreError, match="different grid"):
            merge_stores([s0, str(path)], str(tmp_path / "out.jsonl"))

    def test_incomplete_shard_refused(self, tmp_path):
        s0 = self.shard_store(tmp_path, 0, 2)
        partial = tmp_path / "partial.jsonl"
        run_sweep(GRID, store_path=str(partial), shard=(1, 2), max_cells=1)
        with pytest.raises(StoreError, match="missing from the shards"):
            merge_stores([s0, str(partial)], str(tmp_path / "out.jsonl"))

    def test_empty_input_refused(self, tmp_path):
        with pytest.raises(StoreError, match="at least one"):
            merge_stores([], str(tmp_path / "out.jsonl"))

    def test_meta_returned_is_unsharded(self, tmp_path):
        paths = [self.shard_store(tmp_path, i, 2) for i in range(2)]
        out = tmp_path / "out.jsonl"
        meta = merge_stores(paths, str(out))
        assert "shard" not in meta
        stored_meta, rows = SweepStore(str(out)).load()
        assert stored_meta == meta
        assert len(rows) == 12


class TestPartialMerge:
    def shard_store(self, tmp_path, index, count, max_cells=None):
        path = tmp_path / f"shard{index}.jsonl"
        run_sweep(
            GRID, store_path=str(path), shard=(index, count),
            max_cells=max_cells,
        )
        return str(path)

    def test_missing_shard_allowed_with_holes_manifest(self, tmp_path):
        s0 = self.shard_store(tmp_path, 0, 3)
        s1 = self.shard_store(tmp_path, 1, 3)
        out = tmp_path / "out.jsonl"
        meta = merge_stores([s0, s1], str(out), allow_partial=True)
        assert meta["holes"] == 4  # shard 2's quarter of the 12-cell grid
        manifest = json.loads((tmp_path / "out.jsonl.holes.json").read_text())
        assert manifest["expected_shards"] == 3
        assert manifest["missing_shards"] == [2]
        assert manifest["expected_cells"] == 12
        assert manifest["present_cells"] == 8
        assert len(manifest["missing_cells"]) == 4

    def test_incomplete_shard_allowed(self, tmp_path):
        s0 = self.shard_store(tmp_path, 0, 2)
        s1 = self.shard_store(tmp_path, 1, 2, max_cells=1)
        out = tmp_path / "out.jsonl"
        meta = merge_stores([s0, s1], str(out), allow_partial=True)
        assert meta["holes"] == 5
        manifest = json.loads((tmp_path / "out.jsonl.holes.json").read_text())
        assert manifest["missing_shards"] == []  # present, just incomplete

    def test_partial_output_is_resumable_checkpoint(self, tmp_path):
        """The partial merge is a valid checkpoint store: resuming the
        full sweep against it fills the holes and reproduces the
        one-shot bytes."""
        one_shot = tmp_path / "full.jsonl"
        run_sweep(GRID, store_path=str(one_shot))
        s0 = self.shard_store(tmp_path, 0, 2)
        out = tmp_path / "out.jsonl"
        merge_stores([s0], str(out), allow_partial=True)
        resumed = run_sweep(GRID, store_path=str(out))
        assert resumed.skipped == 6 and resumed.ran == 6
        assert out.read_bytes() == one_shot.read_bytes()

    def test_complete_partial_merge_has_no_holes(self, tmp_path):
        paths = [self.shard_store(tmp_path, i, 2) for i in range(2)]
        one_shot = tmp_path / "full.jsonl"
        run_sweep(GRID, store_path=str(one_shot))
        out = tmp_path / "out.jsonl"
        meta = merge_stores(paths, str(out), allow_partial=True)
        assert meta.get("holes", 0) == 0
        assert out.read_bytes() == one_shot.read_bytes()

    def test_explicit_holes_path(self, tmp_path):
        s0 = self.shard_store(tmp_path, 0, 2)
        out = tmp_path / "out.jsonl"
        holes = tmp_path / "my-holes.json"
        merge_stores(
            [s0], str(out), allow_partial=True, holes_path=str(holes)
        )
        assert holes.exists()
        assert json.loads(holes.read_text())["store"] == str(out)
