"""Sweep runner: grid order, backends, checkpoint/resume, determinism.

The central contract (ISSUE satellite): the same grid run under the
inline backend and under the process backend — at any worker count —
must produce byte-identical finalized stores and identical merged
metrics.
"""

import json

import pytest

from repro.batch import (
    GraphCache,
    StoreError,
    SweepCell,
    SweepGrid,
    SweepStore,
    fast_grid,
    run_cell,
    run_sweep,
)
from repro.batch.sweep import SweepCellError

GRID = SweepGrid(
    workload="kdom",
    specs=("tree:n=24", "random:n=20,p=0.25"),
    seeds=(0, 1),
    ks=(2, 3),
)


class TestGrid:
    def test_cell_order_is_spec_major(self):
        cells = GRID.cells()
        assert len(cells) == 8
        assert [(c.spec, c.seed, c.k) for c in cells[:4]] == [
            ("tree:n=24", 0, 2),
            ("tree:n=24", 0, 3),
            ("tree:n=24", 1, 2),
            ("tree:n=24", 1, 3),
        ]
        assert all(c.spec == "random:n=20,p=0.25" for c in cells[4:])

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            SweepGrid("nope", ("tree:n=8",), (0,), (2,))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SweepGrid("kdom", ("tree:n=8",), (), (2,))

    def test_fast_grid_shape(self):
        grid = fast_grid()
        assert len(grid.cells()) == 8
        assert grid.meta()["cells"] == 8


class TestRunCell:
    def test_kdom_cell_is_deterministic(self):
        cell = SweepCell("kdom", "random:n=20,p=0.25", 1, 2, verify=True)
        a, b = run_cell(cell), run_cell(cell)
        assert a == b
        assert a["result"]["ok"]
        assert a["result"]["dominators"] <= a["result"]["bound"]

    def test_partition_cell(self):
        cell = SweepCell("partition", "tree:n=24", 0, 3, verify=True)
        row = run_cell(cell)
        assert row["result"]["ok"]
        assert row["result"]["min_size"] >= 4

    def test_mst_cell(self):
        cell = SweepCell("mst", "random:n=20,p=0.25", 0, 4, verify=True)
        row = run_cell(cell)
        assert row["result"]["ok"]
        assert row["result"]["mst_edges"] == row["result"]["n"] - 1

    def test_rows_are_json_safe(self):
        row = run_cell(SweepCell("kdom", "tree:n=24", 0, 2))
        assert json.loads(json.dumps(row)) == row

    def test_kdom_dense_cell_matches_reference_engine(self):
        pytest.importorskip("numpy")
        from repro.core import tree_kdominating_set
        from repro.graphs import RootedTree

        cell = SweepCell("kdom-dense", "tree:n=24", 0, 2, verify=True)
        a, b = run_cell(cell), run_cell(cell)
        assert a == b
        assert a["result"]["ok"]
        assert json.loads(json.dumps(a)) == a
        # The dense row must be the reference computation, byte for
        # byte: same dominator count, rounds, and stage breakdown.
        graph = GraphCache().get("tree:n=24", 0, weighted=False)
        root = min(graph.nodes, key=str)
        rooted = RootedTree.from_graph(graph, root)
        dominators, partition, staged = tree_kdominating_set(
            graph, root, rooted.parent, 2
        )
        assert a["result"]["dominators"] == len(dominators)
        assert a["result"]["clusters"] == partition.num_clusters
        assert a["result"]["rounds"] == staged.total_rounds
        assert a["result"]["breakdown"] == staged.breakdown()

    def test_cache_reused_across_cells(self):
        cache = GraphCache()
        run_cell(SweepCell("kdom", "tree:n=24", 0, 2), cache)
        run_cell(SweepCell("kdom", "tree:n=24", 0, 3), cache)
        assert cache.misses == 1
        assert cache.hits == 1


class TestRunSweep:
    def test_inline_in_memory(self):
        summary = run_sweep(GRID, backend="inline")
        assert summary.complete
        assert summary.ran == 8
        assert summary.skipped == 0
        assert len(summary.rows) == 8
        assert summary.merged.traffic.messages > 0

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            run_sweep(GRID, backend="threads")

    def test_byte_identical_stores_across_backends(self, tmp_path):
        """Satellite 4: inline and process (any worker count) sweeps of
        the same grid finalize to byte-identical JSONL stores."""
        reference = tmp_path / "inline.jsonl"
        run_sweep(GRID, store_path=str(reference), backend="inline")
        baseline = reference.read_bytes()
        for workers in (1, 2, 3):
            path = tmp_path / f"proc{workers}.jsonl"
            summary = run_sweep(
                GRID,
                store_path=str(path),
                backend="process",
                workers=workers,
            )
            assert summary.complete
            assert path.read_bytes() == baseline

    def test_merged_metrics_match_across_backends(self):
        inline = run_sweep(GRID, backend="inline")
        proc = run_sweep(GRID, backend="process", workers=2)
        assert proc.merged.to_dict() == inline.merged.to_dict()

    def test_resume_skips_completed_cells(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        run_sweep(GRID, store_path=path)
        again = run_sweep(GRID, store_path=path)
        assert again.ran == 0
        assert again.skipped == 8
        assert again.complete

    def test_resume_after_interrupt_runs_only_missing(self, tmp_path):
        path = tmp_path / "s.jsonl"
        partial = run_sweep(GRID, store_path=str(path), max_cells=3)
        assert partial.ran == 3
        assert not partial.complete
        resumed = run_sweep(GRID, store_path=str(path), backend="process",
                            workers=2)
        assert resumed.ran == 5
        assert resumed.skipped == 3
        assert resumed.complete
        # The stitched-together store equals a single-shot run's store.
        whole = tmp_path / "whole.jsonl"
        run_sweep(GRID, store_path=str(whole))
        assert path.read_bytes() == whole.read_bytes()

    def test_resume_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "s.jsonl"
        run_sweep(GRID, store_path=str(path), max_cells=2)
        with open(path, "a") as handle:
            handle.write('{"cell": {"workloa')  # killed mid-append
        resumed = run_sweep(GRID, store_path=str(path))
        assert resumed.skipped == 2
        assert resumed.complete

    def test_grid_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        run_sweep(GRID, store_path=path, max_cells=1)
        other = SweepGrid("kdom", GRID.specs, GRID.seeds, (2, 5))
        with pytest.raises(StoreError, match="different grid"):
            run_sweep(other, store_path=path)

    def test_no_resume_overwrites(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        run_sweep(GRID, store_path=path, max_cells=1)
        other = SweepGrid("kdom", GRID.specs, GRID.seeds, (2, 5))
        fresh = run_sweep(other, store_path=path, resume=False)
        assert fresh.complete
        meta, rows = SweepStore(path).load()
        assert meta["ks"] == [2, 5]
        assert len(rows) == 8

    def test_failing_cell_keeps_checkpoints(self, tmp_path, monkeypatch):
        from dataclasses import replace

        import repro.batch.registry as registry

        real = registry.get_workload("kdom")
        calls = {"n": 0}

        def flaky(graph, cell):
            calls["n"] += 1
            if calls["n"] > 3:
                raise RuntimeError("simulated crash")
            return real.fn(graph, cell)

        monkeypatch.setitem(
            registry._REGISTRY, "kdom", replace(real, fn=flaky)
        )
        path = tmp_path / "s.jsonl"
        with pytest.raises(SweepCellError):
            run_sweep(GRID, store_path=str(path))
        _meta, rows = SweepStore(str(path)).load()
        assert len(rows) == 3  # everything finished before the crash survived
        monkeypatch.undo()
        resumed = run_sweep(GRID, store_path=str(path))
        assert resumed.skipped == 3
        assert resumed.complete

    def test_echo_reports_each_cell(self):
        lines = []
        summary = run_sweep(GRID, max_cells=2, echo=lines.append)
        assert summary.ran == 2
        assert len(lines) == 2
        assert "rounds=" in lines[0]
