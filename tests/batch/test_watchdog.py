"""Watchdog, retries, quarantine: the hardened SharedPool loop.

Satellite coverage the seed lacked: dead-worker recovery under SIGKILL
and SIGSTOP *mid-task* (not just clean ``os._exit``), hang detection
via ``deadline_s``, quarantine of poison tasks, fabric events, and
resubmission never duplicating completed results.
"""

import os
import signal
import time

import pytest

from repro.batch import (
    PoolCrashError,
    SharedPool,
    TaskQuarantinedError,
    imap_completion_order,
)
from repro.obs import TraceBuffer, observe

#: Watchdog deadline for the fault tests: generous next to the
#: millisecond tasks, tiny next to the 600 s chaos hang.
DEADLINE = 0.5


def _square(x):
    return x * x


def _sigkill_once(marker_path):
    """SIGKILL our own worker process on the first attempt."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write("killed")
        os.kill(os.getpid(), signal.SIGKILL)
    return "survived"


def _sigstop_once(marker_path):
    """SIGSTOP (wedge, not die) our worker on the first attempt."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write("stopped")
        os.kill(os.getpid(), signal.SIGSTOP)
    return "survived"


def _hang_forever(_x):
    time.sleep(600.0)


def _mixed_fault(item):
    kind, value = item
    if kind == "sigkill":
        return _sigkill_once(value)
    if kind == "sigstop":
        return _sigstop_once(value)
    return value


class TestSignalRecovery:
    def test_sigkill_mid_task_recovers(self, tmp_path):
        marker = str(tmp_path / "killed")
        with SharedPool(workers=2) as pool:
            assert pool.map(_sigkill_once, [marker]) == ["survived"]
            assert pool.restarts == 1

    def test_sigstop_mid_task_recovers(self, tmp_path):
        """A stopped worker is *hung*, not dead: only the deadline
        watchdog can see it (SIGTERM would never be handled — teardown
        must SIGKILL)."""
        marker = str(tmp_path / "stopped")
        with SharedPool(workers=2, deadline_s=DEADLINE) as pool:
            assert pool.map(_sigstop_once, [marker]) == ["survived"]
            assert pool.restarts >= 1
            assert any(
                e["kind"] == "worker_killed" and e["reason"] == "hung"
                for e in pool.fabric_log
            )

    def test_resubmission_does_not_duplicate_completed_results(
        self, tmp_path
    ):
        """Siblings finished before the recovery are yielded exactly
        once; only genuinely unfinished tasks are resubmitted."""
        items = [("ok", i) for i in range(6)] + [
            ("sigkill", str(tmp_path / "k")),
            ("sigstop", str(tmp_path / "s")),
        ]
        seen = []
        with SharedPool(workers=2, deadline_s=DEADLINE) as pool:
            for index, status, payload in pool.imap(_mixed_fault, items):
                assert status == "ok"
                seen.append(index)
        assert sorted(seen) == list(range(8))  # each task exactly once
        assert len(seen) == len(set(seen))

    def test_pool_survives_for_later_batches(self, tmp_path):
        with SharedPool(workers=2, deadline_s=DEADLINE) as pool:
            pool.map(_sigstop_once, [str(tmp_path / "s")])
            assert pool.map(_square, [3, 4]) == [9, 16]


class TestDeadline:
    def test_fast_tasks_never_trip_a_generous_deadline(self):
        with SharedPool(workers=2, deadline_s=30.0) as pool:
            assert pool.map(_square, range(6)) == [x * x for x in range(6)]
            assert pool.restarts == 0
            assert pool.fabric_log == []

    def test_hung_task_is_quarantined_not_fatal(self):
        """The graceful-degradation contract: a task that hangs on
        every attempt ends as a quarantined result, the pool lives."""
        with SharedPool(
            workers=2, deadline_s=DEADLINE, max_attempts=2
        ) as pool:
            outcomes = list(pool.imap(_hang_forever, [0]))
            assert len(outcomes) == 1
            index, status, info = outcomes[0]
            assert (index, status) == (0, "quarantined")
            assert info["reason"] == "hung"
            assert info["attempts"] == 2
            assert pool.quarantined == 1
            # The pool is still usable afterwards.
            assert pool.map(_square, [5]) == [25]

    def test_map_raises_on_quarantine(self):
        with SharedPool(
            workers=1, deadline_s=DEADLINE, max_attempts=1
        ) as pool:
            with pytest.raises(TaskQuarantinedError, match="quarantined"):
                pool.map(_hang_forever, [0])

    def test_per_call_deadline_overrides_pool_default(self):
        with SharedPool(workers=1, max_attempts=1) as pool:
            # No pool-level deadline; the per-call one still fires.
            outcomes = list(
                pool.imap(_hang_forever, [0], deadline_s=DEADLINE)
            )
            assert outcomes[0][1] == "quarantined"

    def test_deadline_validated(self):
        with pytest.raises(ValueError, match="deadline_s"):
            SharedPool(workers=1, deadline_s=0)
        with pytest.raises(ValueError, match="max_attempts"):
            SharedPool(workers=1, max_attempts=0)

    def test_disposable_path_promotes_to_watchdog_pool(self):
        """imap_completion_order with a deadline but no shared pool
        still gets hang recovery (single-use SharedPool)."""
        outcomes = list(
            imap_completion_order(
                _hang_forever,
                [0],
                workers=2,
                deadline_s=DEADLINE,
                max_attempts=1,
            )
        )
        assert outcomes[0][1] == "quarantined"


class TestFabricEvents:
    def test_events_carry_fabric_coordinates(self, tmp_path):
        with SharedPool(workers=2) as pool:
            pool.map(_sigkill_once, [str(tmp_path / "k")])
        kinds = [e["kind"] for e in pool.fabric_log]
        assert "worker_killed" in kinds
        assert "task_retried" in kinds
        for event in pool.fabric_log:
            assert event["round"] == -1
            assert event["run"] == -1
            # Replayable by construction: no volatile fields.
            assert "pid" not in event and "time" not in event

    def test_events_reach_the_ambient_observation(self, tmp_path):
        buffer = TraceBuffer()
        with observe(buffer):
            with SharedPool(workers=2) as pool:
                pool.map(_sigkill_once, [str(tmp_path / "k")])
        assert buffer.by_kind("worker_killed")
        retried = buffer.by_kind("task_retried")
        assert retried and retried[0]["task"] == 0


class TestCrashErrorPayload:
    def test_pool_crash_error_carries_pending_items(self):
        """Satellite: operators get the failing items, not just counts,
        so they can resume around poison cells by hand."""
        with SharedPool(workers=2, max_restarts=0, max_attempts=99) as pool:
            with pytest.raises(PoolCrashError) as err:
                pool.map(_crash_always, ["cell-a", "cell-b"])
        assert err.value.pending == len(err.value.pending_items)
        assert set(err.value.pending_items) <= {"cell-a", "cell-b"}
        assert err.value.pending_items  # never empty on a crash


def _crash_always(_x):
    os._exit(13)
