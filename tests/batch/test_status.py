"""Status sidecar mechanics: atomic throttled writes and the renderers.

The sidecar is the *volatile* face of sweep telemetry — wall-clock
numbers, overwritten in place — so these tests pin the plumbing
(throttle, schema stamping, atomicity leftovers, discovery) and the
exact text the ``repro status`` / ``repro top`` renderers produce,
while tests/batch/test_telemetry_sweep.py pins what a live sweep puts
in the document.
"""

import json

import pytest

from repro.batch import (
    STATUS_SCHEMA,
    SweepStatusWriter,
    find_status_files,
    read_status,
    render_status,
    render_store_status,
    render_top,
    status_path_for,
)
from repro.batch.status import fabric_tallies, format_duration


class TestWriter:
    def test_write_stamps_schema_and_timestamp(self, tmp_path):
        path = str(tmp_path / "s.status.json")
        assert SweepStatusWriter(path).write({"state": "running"}, force=True)
        doc = json.loads(open(path).read())
        assert doc["schema"] == STATUS_SCHEMA
        assert doc["state"] == "running"
        assert doc["updated_unix"] > 0

    def test_unforced_writes_are_throttled(self, tmp_path):
        path = str(tmp_path / "s.status.json")
        writer = SweepStatusWriter(path, min_interval=60.0)
        assert writer.write({"state": "a"})
        assert not writer.write({"state": "b"})  # inside the interval
        assert json.loads(open(path).read())["state"] == "a"

    def test_force_bypasses_the_throttle(self, tmp_path):
        path = str(tmp_path / "s.status.json")
        writer = SweepStatusWriter(path, min_interval=60.0)
        writer.write({"state": "running"})
        assert writer.write({"state": "complete"}, force=True)
        assert json.loads(open(path).read())["state"] == "complete"

    def test_should_write_is_pure(self, tmp_path):
        path = str(tmp_path / "s.status.json")
        writer = SweepStatusWriter(path, min_interval=60.0)
        assert writer.should_write()  # nothing written yet
        assert writer.should_write()  # ...and checking didn't mutate
        assert writer.write({"state": "a"})
        assert not writer.should_write()  # inside the interval
        assert writer.should_write(force=True)
        assert not writer.should_write()  # force check didn't mutate
        assert not writer.write({"state": "b"})
        assert json.loads(open(path).read())["state"] == "a"

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "s.status.json")
        SweepStatusWriter(path).write({"state": "running"}, force=True)
        assert [p.name for p in tmp_path.iterdir()] == ["s.status.json"]


class TestReadAndDiscovery:
    def test_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "s.status.json")
        SweepStatusWriter(path).write({"state": "running"}, force=True)
        assert read_status(path)["state"] == "running"

    def test_read_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "s.status.json"
        path.write_text('{"schema": "other/9"}\n')
        with pytest.raises(ValueError, match="unknown status schema"):
            read_status(str(path))

    def test_status_path_for(self):
        assert status_path_for("out/sweep.jsonl") == (
            "out/sweep.jsonl.status.json"
        )

    def test_find_status_files_sorted_nonrecursive(self, tmp_path):
        for name in ("b.status.json", "a.status.json", "a.jsonl"):
            (tmp_path / name).write_text("{}")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "c.status.json").write_text("{}")
        found = find_status_files(str(tmp_path))
        assert [f.rsplit("/", 1)[-1] for f in found] == [
            "a.status.json",
            "b.status.json",
        ]

    def test_find_status_files_missing_dir(self, tmp_path):
        assert find_status_files(str(tmp_path / "nope")) == []


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds, text",
        [
            (None, "?"),
            (-1, "?"),
            (0.0, "0.0s"),
            (59.94, "59.9s"),
            (61, "1m01s"),
            (3661, "1h01m"),
        ],
    )
    def test_cases(self, seconds, text):
        assert format_duration(seconds) == text


class TestFabricTallies:
    def test_parses_labeled_counters(self):
        tallies = fabric_tallies(
            {
                "fabric_tasks{state=dispatched}": 10,
                "fabric_tasks{state=completed}": 8,
                "fabric_tasks{state=retried}": 2,
                "fabric_tasks{state=quarantined}": 1,
                "fabric_worker_respawns{reason=deadline}": 2,
                "fabric_worker_respawns{reason=died}": 1,
                "task_seconds": 99,  # unrelated counter: ignored
            }
        )
        assert tallies == {
            "dispatched": 10,
            "completed": 8,
            "retried": 2,
            "quarantined": 1,
            "respawns": 3,
        }

    def test_empty_input(self):
        assert fabric_tallies({}) == {
            "dispatched": 0,
            "completed": 0,
            "retried": 0,
            "quarantined": 0,
            "respawns": 0,
        }


SAMPLE_STATUS = {
    "schema": STATUS_SCHEMA,
    "state": "running",
    "workload": "kdom",
    "shard": None,
    "backend": "process",
    "workers": 2,
    "cells": {
        "total": 8,
        "done": 3,
        "ran": 3,
        "skipped": 0,
        "quarantined": 0,
        "pending": 5,
    },
    "inflight": ["kdom|tree:n=24|seed=0|k=2", "kdom|tree:n=24|seed=0|k=3"],
    "elapsed_s": 1.5,
    "cells_per_s": 2.0,
    "eta_s": 2.5,
    "fabric": {
        "dispatched": 5,
        "completed": 3,
        "retried": 1,
        "quarantined": 0,
        "respawns": 1,
    },
}


class TestRenderStatus:
    def test_running_document(self):
        lines = render_status(SAMPLE_STATUS)
        assert lines[0] == "sweep kdom: RUNNING 3/8 cells (37.5%)"
        assert "done 3 (ran 3, skipped 0)" in lines[1]
        assert "pending 5" in lines[1]
        assert lines[2] == "  backend process, workers 2"
        assert "2.00 cells/s" in lines[3]
        assert "eta 2.5s" in lines[3]
        assert lines[4] == "  retries 1, respawns 1"
        assert lines[5].startswith("  next: kdom|tree:n=24|seed=0|k=2")
        assert lines[5].endswith("(+3 more)")

    def test_shard_tag_and_empty_inflight(self):
        status = dict(SAMPLE_STATUS, shard=[0, 2], inflight=[])
        lines = render_status(status)
        assert lines[0].startswith("sweep kdom [shard [0, 2]]")
        assert not any(line.startswith("  next:") for line in lines)


class TestRenderStoreStatus:
    META = {
        "workload": "kdom",
        "cells": 2,
        "telemetry": {
            "schema": "repro-telemetry/1",
            "counters": {"sim_nodes_total": 48},
            "gauges": {"sim_nodes_max": 24},
            "histograms": {"cell_rounds": {"count": 2, "sum": 30}},
        },
    }
    ROWS = [
        {"cell": {}, "result": {}},
        {"cell": {}, "result": {}},
    ]

    def test_complete_store_with_telemetry(self):
        lines = render_store_status(self.META, self.ROWS)
        assert lines[0] == "sweep kdom: COMPLETE 2/2 cells"
        assert "  telemetry (repro-telemetry/1):" in lines
        assert "    sim_nodes_total = 48" in lines
        assert "    sim_nodes_max = 24" in lines
        assert "    cell_rounds: count=2 sum=30" in lines

    def test_incomplete_and_quarantined(self):
        rows = [{"cell": {}, "error": "boom"}]
        lines = render_store_status({"workload": "kdom", "cells": 2}, rows)
        assert lines[0] == "sweep kdom: INCOMPLETE 1/2 cells"
        assert "  quarantined 1" in lines


class TestRenderTop:
    def test_empty(self):
        assert render_top([], []) == ["(no *.status.json files found)"]

    def test_table_alignment_and_columns(self):
        other = dict(SAMPLE_STATUS, state="complete", workload="mst")
        other["cells"] = dict(SAMPLE_STATUS["cells"], done=8, pending=0)
        lines = render_top(
            [SAMPLE_STATUS, other],
            ["out/kdom.jsonl.status.json", "out/mst.jsonl.status.json"],
        )
        header, first, second = lines
        assert header.split() == [
            "sweep", "state", "cells", "cells/s", "eta", "quar", "retry"
        ]
        assert first.split() == [
            "kdom.jsonl", "running", "3/8", "2.00", "2.5s", "0", "1"
        ]
        assert second.split()[:3] == ["mst.jsonl", "complete", "8/8"]
        # Columns line up: "state" starts at the same offset everywhere.
        offsets = {line.index(token) for line, token in zip(
            lines, ("state", "running", "complete")
        )}
        assert len(offsets) == 1
