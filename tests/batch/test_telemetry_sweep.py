"""Sweep telemetry determinism: the summary in a store's meta is a
pure function of the rows.

The acceptance contract (ISSUE 8): the telemetry summary a finalized
store carries must be byte-identical across worker counts, across
shard counts (after ``merge_stores``), and across interrupt/resume —
and a chaos drill with retries must converge to the same summary as
the fault-free baseline.  Worker-shipped snapshots are an optimisation
for the live view, never the source of truth:
``shipped == recomputed`` is pinned here.
"""

import json

from repro.batch import (
    SweepGrid,
    SweepStore,
    cell_snapshot,
    deterministic_part,
    fast_grid,
    merge_stores,
    run_chaos,
    run_sweep,
    status_path_for,
    store_telemetry,
    strip_telemetry,
)

GRID = SweepGrid(
    workload="kdom",
    specs=("tree:n=24", "random:n=20,p=0.25"),
    seeds=(0, 1),
    ks=(2, 3),
)


def sweep_to(tmp_path, name, **kwargs):
    path = str(tmp_path / name)
    summary = run_sweep(GRID, store_path=path, **kwargs)
    return path, summary


class TestCellSnapshot:
    ROW = {
        "cell": {"workload": "kdom", "spec": "tree:n=8", "seed": 0, "k": 2},
        "result": {
            "n": 8,
            "rounds": 11,
            "dominators": 2,
            "clusters": 2,
            "metrics": {"messages": 40, "total_words": 80},
        },
    }

    def test_ok_row_counts_everything(self):
        snap = cell_snapshot(self.ROW)
        assert snap["counters"]["sweep_cells_total{workload=kdom}"] == 1
        assert snap["counters"]["sweep_cells_ok{workload=kdom}"] == 1
        assert snap["counters"]["sim_nodes_total"] == 8
        assert snap["counters"]["sim_rounds_total"] == 11
        assert snap["counters"]["sim_messages_total"] == 40
        assert snap["counters"]["sim_words_total"] == 80
        assert snap["counters"]["kdom_dominators_total"] == 2
        assert snap["gauges"]["sim_nodes_max"] == 8
        assert snap["histograms"]["cell_rounds"]["count"] == 1

    def test_error_row_counts_only_quarantine(self):
        snap = cell_snapshot({"cell": {"workload": "kdom"}, "error": "boom"})
        assert snap["counters"] == {
            "sweep_cells_quarantined{workload=kdom}": 1,
            "sweep_cells_total{workload=kdom}": 1,
        }
        assert snap["histograms"] == {}

    def test_pure_function_of_the_row(self):
        assert cell_snapshot(self.ROW) == cell_snapshot(dict(self.ROW))

    def test_no_volatile_plane(self):
        assert "volatile" not in cell_snapshot(self.ROW)


class TestWorkerCountInvariance:
    def test_store_and_telemetry_identical_across_worker_counts(
        self, tmp_path
    ):
        blobs = {}
        for name, kwargs in (
            ("inline.jsonl", {"backend": "inline"}),
            ("w1.jsonl", {"backend": "process", "workers": 1}),
            ("w2.jsonl", {"backend": "process", "workers": 2}),
            ("w3.jsonl", {"backend": "process", "workers": 3}),
        ):
            path, summary = sweep_to(tmp_path, name, **kwargs)
            blobs[name] = (tmp_path / name).read_bytes()
            assert summary.telemetry is not None
        assert len(set(blobs.values())) == 1

    def test_shipped_snapshots_equal_recomputed(self, tmp_path):
        path, summary = sweep_to(
            tmp_path, "w2.jsonl", backend="process", workers=2
        )
        meta, rows = SweepStore(path).load()
        recomputed = store_telemetry(rows.values())
        assert meta["telemetry"] == recomputed
        # The live summary's deterministic plane agrees with the store.
        live = {
            section: summary.telemetry[section]
            for section in ("counters", "gauges", "histograms")
        }
        assert live == deterministic_part(recomputed)

    def test_summary_volatile_plane_never_reaches_the_store(self, tmp_path):
        path, summary = sweep_to(
            tmp_path, "w2.jsonl", backend="process", workers=2
        )
        assert "volatile" in summary.telemetry  # live wall-clock facts
        meta, _rows = SweepStore(path).load()
        assert "volatile" not in meta["telemetry"]
        assert "volatile" not in (tmp_path / "w2.jsonl").read_text()


class TestResumeInvariance:
    def test_interrupt_resume_matches_one_shot(self, tmp_path):
        one_shot, _ = sweep_to(tmp_path, "oneshot.jsonl", backend="inline")
        resumed = str(tmp_path / "resumed.jsonl")
        partial = run_sweep(
            GRID, store_path=resumed, backend="inline", max_cells=3
        )
        assert not partial.complete
        run_sweep(GRID, store_path=resumed, backend="inline")
        assert (
            (tmp_path / "resumed.jsonl").read_bytes()
            == (tmp_path / "oneshot.jsonl").read_bytes()
        )

    def test_resume_over_a_finalized_store_is_stable(self, tmp_path):
        path, _ = sweep_to(tmp_path, "s.jsonl", backend="inline")
        before = (tmp_path / "s.jsonl").read_bytes()
        summary = run_sweep(GRID, store_path=path, backend="inline")
        assert summary.skipped == summary.total
        assert (tmp_path / "s.jsonl").read_bytes() == before


class TestShardInvariance:
    def test_merged_shards_match_unsharded_bytes(self, tmp_path):
        unsharded, _ = sweep_to(tmp_path, "full.jsonl", backend="inline")
        shard_paths = []
        for index in range(2):
            path = str(tmp_path / f"shard{index}.jsonl")
            run_sweep(
                GRID, store_path=path, backend="inline", shard=(index, 2)
            )
            shard_paths.append(path)
        # Each finalized shard carries its own slice-level summary...
        shard_metas = [SweepStore(p).load()[0] for p in shard_paths]
        assert all("telemetry" in meta for meta in shard_metas)
        assert (
            shard_metas[0]["telemetry"] != shard_metas[1]["telemetry"]
        )
        # ...which the merge strips and recomputes grid-wide.
        merged = str(tmp_path / "merged.jsonl")
        merged_meta = merge_stores(shard_paths, merged)
        assert (
            (tmp_path / "merged.jsonl").read_bytes()
            == (tmp_path / "full.jsonl").read_bytes()
        )
        full_meta, full_rows = SweepStore(unsharded).load()
        assert merged_meta["telemetry"] == full_meta["telemetry"]

    def test_strip_telemetry_helper(self):
        meta = {"workload": "kdom", "telemetry": {"schema": "x"}}
        assert strip_telemetry(meta) == {"workload": "kdom"}
        assert "telemetry" in meta  # non-mutating


class TestTelemetryOff:
    def test_disabled_sweep_writes_no_telemetry(self, tmp_path):
        path, summary = sweep_to(
            tmp_path, "off.jsonl", backend="inline", telemetry=False
        )
        assert summary.telemetry is None
        meta, _rows = SweepStore(path).load()
        assert "telemetry" not in meta
        assert not (tmp_path / "off.jsonl.status.json").exists()

    def test_off_store_rows_match_on_store_rows(self, tmp_path):
        off, _ = sweep_to(
            tmp_path, "off.jsonl", backend="inline", telemetry=False
        )
        on, _ = sweep_to(tmp_path, "on.jsonl", backend="inline")
        off_lines = (tmp_path / "off.jsonl").read_text().splitlines()
        on_lines = (tmp_path / "on.jsonl").read_text().splitlines()
        # Rows are identical; only the meta line differs (telemetry key).
        assert off_lines[1:] == on_lines[1:]
        off_meta = json.loads(off_lines[0])
        on_meta = json.loads(on_lines[0])
        assert strip_telemetry(on_meta) == off_meta


class TestStatusSidecar:
    def test_sweep_leaves_a_final_status_document(self, tmp_path):
        path, _ = sweep_to(
            tmp_path, "s.jsonl", backend="process", workers=2
        )
        doc = json.loads(open(status_path_for(path)).read())
        assert doc["schema"] == "repro-status/1"
        assert doc["state"] == "complete"
        assert doc["cells"]["done"] == 8
        assert doc["cells"]["pending"] == 0
        assert doc["workers"] == 2
        assert doc["backend"] == "process"
        assert doc["fabric"]["completed"] == 8

    def test_interrupted_sweep_reports_incomplete(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        run_sweep(GRID, store_path=path, backend="inline", max_cells=3)
        doc = json.loads(open(status_path_for(path)).read())
        assert doc["state"] == "incomplete"
        assert doc["cells"]["done"] == 3
        assert doc["cells"]["pending"] == 5

    def test_throttled_heartbeat_does_no_payload_work(
        self, tmp_path, monkeypatch
    ):
        """Between the forced start/finish heartbeats, a throttled
        heartbeat must early-exit before building the status payload
        (the remaining-cells scan is O(total) per completed cell)."""
        import math

        import repro.batch.sweep as sweep_mod

        calls = []
        real_tallies = sweep_mod.fabric_tallies
        monkeypatch.setattr(
            sweep_mod,
            "fabric_tallies",
            lambda counters: calls.append(1) or real_tallies(counters),
        )

        class NeverUnforced(sweep_mod.SweepStatusWriter):
            def __init__(self, path, min_interval=None):
                super().__init__(path, min_interval=math.inf)

        monkeypatch.setattr(sweep_mod, "SweepStatusWriter", NeverUnforced)
        run_sweep(GRID, store_path=str(tmp_path / "s.jsonl"),
                  backend="inline")
        # Payloads were built only for the two forced heartbeats —
        # none of the 8 per-cell heartbeats did payload work.
        assert len(calls) == 2

    def test_single_cell_process_sweep_reports_inline_fallback(
        self, tmp_path
    ):
        grid = SweepGrid(
            workload="kdom", specs=("tree:n=24",), seeds=(0,), ks=(2,)
        )
        path = str(tmp_path / "one.jsonl")
        run_sweep(grid, store_path=path, backend="process", workers=4)
        doc = json.loads(open(status_path_for(path)).read())
        # One pending cell executes inline: no phantom 4-worker pool.
        assert doc["backend"] == "inline"
        assert doc["workers"] == 1

    def test_single_worker_process_sweep_reports_inline_fallback(
        self, tmp_path
    ):
        path, _ = sweep_to(
            tmp_path, "w1.jsonl", backend="process", workers=1
        )
        doc = json.loads(open(status_path_for(path)).read())
        assert doc["backend"] == "inline"
        assert doc["workers"] == 1

    def test_ambient_shared_pool_workers_are_reported(self, tmp_path):
        from repro.batch import SharedPool

        path = str(tmp_path / "pooled.jsonl")
        with SharedPool(workers=3):
            run_sweep(GRID, store_path=path, backend="process")
        doc = json.loads(open(status_path_for(path)).read())
        # The sweep rode the ambient 3-worker pool — the document says
        # so instead of echoing resolve_workers(None).
        assert doc["backend"] == "process"
        assert doc["workers"] == 3


class TestChaosConvergence:
    def test_chaos_drill_converges_to_the_baseline_telemetry(self, tmp_path):
        grid = SweepGrid(
            workload="partition",
            specs=("tree:n=18", "tree:n=24"),
            seeds=(0,),
            ks=(2, 3, 4),
        )
        report = run_chaos(
            grid,
            seed=7,
            out_dir=str(tmp_path),
            workers=2,
            deadline_s=0.5,
        )
        assert report.verified
        assert report.byte_identical
        # Retries happened, yet both stores carry the identical
        # rows-derived summary — wall-clock noise never leaks in.
        assert report.restarts >= 1
        base_meta, base_rows = SweepStore(report.baseline_path).load()
        chaos_meta, _ = SweepStore(report.chaos_path).load()
        assert base_meta["telemetry"] == chaos_meta["telemetry"]
        assert base_meta["telemetry"] == store_telemetry(base_rows.values())


class TestProfileDumps:
    def test_profile_dir_collects_pstats(self, tmp_path):
        from repro.batch import aggregate_profiles

        profile_dir = str(tmp_path / "profiles")
        grid = fast_grid()
        run_sweep(
            grid,
            store_path=str(tmp_path / "p.jsonl"),
            backend="process",
            workers=2,
            profile_dir=profile_dir,
        )
        files, table = aggregate_profiles(profile_dir)
        assert files
        assert all(path.endswith(".pstats") for path in files)
        assert "cumulative" in table

    def test_profiling_does_not_change_the_store(self, tmp_path):
        plain, _ = sweep_to(tmp_path, "plain.jsonl", backend="inline")
        profiled, _ = sweep_to(
            tmp_path,
            "profiled.jsonl",
            backend="inline",
            profile_dir=str(tmp_path / "prof"),
        )
        assert (
            (tmp_path / "plain.jsonl").read_bytes()
            == (tmp_path / "profiled.jsonl").read_bytes()
        )

    def test_missing_dir_aggregates_empty(self, tmp_path):
        from repro.batch import aggregate_profiles

        assert aggregate_profiles(str(tmp_path / "nope")) == ([], "")
