"""GraphCache: one generation per (spec, seed, weighted)."""

import pytest

from repro.batch import GraphCache
from repro.graphs import GraphSpecError, has_unique_weights


class TestGraphCache:
    def test_same_key_same_object(self):
        cache = GraphCache()
        a = cache.get("tree:n=12", 0)
        b = cache.get("tree:n=12", 0)
        assert a is b
        assert cache.misses == 1
        assert cache.hits == 1

    def test_distinct_seeds_distinct_entries(self):
        cache = GraphCache()
        cache.get("tree:n=12", 0)
        cache.get("tree:n=12", 1)
        assert len(cache) == 2
        assert cache.misses == 2

    def test_weighted_is_a_separate_entry(self):
        cache = GraphCache()
        plain = cache.get("tree:n=12", 0)
        weighted = cache.get("tree:n=12", 0, weighted=True)
        assert plain is not weighted
        assert has_unique_weights(weighted)
        assert len(cache) == 2

    def test_weighted_generation_is_deterministic(self):
        a = GraphCache().get("random:n=20,p=0.3", 5, weighted=True)
        b = GraphCache().get("random:n=20,p=0.3", 5, weighted=True)
        assert sorted(a.edges()) == sorted(b.edges())
        assert all(a.weight(u, v) == b.weight(u, v) for u, v in a.edges())

    def test_bad_spec_propagates(self):
        with pytest.raises(GraphSpecError):
            GraphCache().get("nosuch:n=4", 0)
