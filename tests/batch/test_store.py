"""SweepStore: checkpoint appends, torn-line tolerance, canonical finalize."""

import json

import pytest

from repro.batch import SweepStore
from repro.batch.store import (
    CRC_FIELD,
    SCHEMA,
    StoreCorruption,
    StoreError,
    canonical_line,
    cell_key,
    repair_store,
    row_crc,
)

META = {"schema": SCHEMA, "workload": "kdom", "cells": 2}


def _row(seed, payload):
    return {
        "cell": {"workload": "kdom", "spec": "tree:n=8", "seed": seed, "k": 2},
        "result": payload,
    }


class TestCanonicalLine:
    def test_sorted_keys_fixed_separators(self):
        assert canonical_line({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'

    def test_stable_across_insertion_order(self):
        assert canonical_line({"x": 1, "y": 2}) == canonical_line(
            {"y": 2, "x": 1}
        )


class TestCellKey:
    def test_shape(self):
        cell = {"workload": "mst", "spec": "random:n=30,p=0.2", "seed": 4, "k": 6}
        assert cell_key(cell) == "mst|random:n=30,p=0.2|seed=4|k=6"


class TestSweepStore:
    def test_missing_file_loads_empty(self, tmp_path):
        store = SweepStore(str(tmp_path / "none.jsonl"))
        assert store.load() == (None, {})

    def test_begin_append_load_roundtrip(self, tmp_path):
        store = SweepStore(str(tmp_path / "s.jsonl"))
        store.begin(META, fresh=True)
        store.append(_row(0, {"rounds": 3}))
        store.append(_row(1, {"rounds": 5}))
        meta, rows = store.load()
        assert meta == META
        assert len(rows) == 2
        key = cell_key(_row(1, {})["cell"])
        assert rows[key]["result"]["rounds"] == 5

    def test_begin_without_fresh_preserves_rows(self, tmp_path):
        store = SweepStore(str(tmp_path / "s.jsonl"))
        store.begin(META, fresh=True)
        store.append(_row(0, {"rounds": 3}))
        store.begin(META, fresh=False)  # a resumed run re-opens the store
        _meta, rows = store.load()
        assert len(rows) == 1

    def test_fresh_truncates(self, tmp_path):
        store = SweepStore(str(tmp_path / "s.jsonl"))
        store.begin(META, fresh=True)
        store.append(_row(0, {"rounds": 3}))
        store.begin(META, fresh=True)
        _meta, rows = store.load()
        assert rows == {}

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = SweepStore(str(path))
        store.begin(META, fresh=True)
        store.append(_row(0, {"rounds": 3}))
        with open(path, "a") as handle:
            handle.write('{"cell": {"workload": "kd')  # killed mid-append
        meta, rows = store.load()
        assert meta == META
        assert len(rows) == 1

    def test_garbage_mid_file_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = SweepStore(str(path))
        store.begin(META, fresh=True)
        with open(path, "a") as handle:
            handle.write("not json\n")
            handle.write(canonical_line(_row(0, {"rounds": 1})) + "\n")
        with pytest.raises(StoreError, match="unparsable"):
            store.load()

    def test_unclassifiable_record_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = SweepStore(str(path))
        store.begin(META, fresh=True)
        with open(path, "a") as handle:
            handle.write('{"neither": true}\n')
            handle.write(canonical_line(_row(0, {"rounds": 1})) + "\n")
        with pytest.raises(StoreError, match="neither meta nor row"):
            store.load()

    def test_finalize_is_canonical_and_atomic(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = SweepStore(str(path))
        store.begin(META, fresh=True)
        # Checkpointed out of grid order...
        store.append(_row(1, {"rounds": 5}))
        store.append(_row(0, {"rounds": 3}))
        # ...finalized in grid order.
        store.finalize(META, [_row(0, {"rounds": 3}), _row(1, {"rounds": 5})])
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == META
        assert json.loads(lines[1])["cell"]["seed"] == 0
        assert json.loads(lines[2])["cell"]["seed"] == 1
        assert not (tmp_path / "s.jsonl.tmp").exists()

    def test_finalize_output_is_byte_stable(self, tmp_path):
        rows = [_row(0, {"z": 1, "a": 2}), _row(1, {"rounds": 5})]
        a, b = (SweepStore(str(tmp_path / name)) for name in ("a", "b"))
        a.finalize(META, rows)
        b.finalize(dict(reversed(META.items())), list(rows))
        assert (tmp_path / "a").read_bytes() == (tmp_path / "b").read_bytes()


class TestRowChecksums:
    def test_appended_rows_carry_crc(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = SweepStore(str(path))
        store.begin(META, fresh=True)
        store.append(_row(0, {"rounds": 3}))
        raw = json.loads(path.read_text().splitlines()[1])
        assert CRC_FIELD in raw
        assert raw[CRC_FIELD] == row_crc(_row(0, {"rounds": 3}))

    def test_load_strips_crc(self, tmp_path):
        store = SweepStore(str(tmp_path / "s.jsonl"))
        store.begin(META, fresh=True)
        store.append(_row(0, {"rounds": 3}))
        _meta, rows = store.load()
        (row,) = rows.values()
        assert CRC_FIELD not in row
        assert row == _row(0, {"rounds": 3})

    def test_tampered_row_raises_corruption(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = SweepStore(str(path))
        store.begin(META, fresh=True)
        store.append(_row(0, {"rounds": 3}))
        store.append(_row(1, {"rounds": 5}))
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"rounds":3', '"rounds":9')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StoreCorruption, match="checksum mismatch"):
            store.load()

    def test_bad_crc_on_last_line_is_corruption_not_torn(self, tmp_path):
        """A torn append can't produce complete JSON with a wrong
        checksum — so even on the final line, a crc mismatch raises."""
        path = tmp_path / "s.jsonl"
        store = SweepStore(str(path))
        store.begin(META, fresh=True)
        store.append(_row(0, {"rounds": 3}))
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1].replace('"rounds":3', '"rounds":9')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StoreCorruption, match="checksum mismatch"):
            store.load()

    def test_finalize_strips_crc_for_byte_stable_output(self, tmp_path):
        """Finalized stores keep the PR 5 on-disk format exactly."""
        path = tmp_path / "s.jsonl"
        store = SweepStore(str(path))
        store.finalize(META, [_row(0, {"rounds": 3})])
        for line in path.read_text().splitlines():
            assert CRC_FIELD not in json.loads(line)

    def test_legacy_rows_without_crc_still_load(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with open(path, "w") as handle:
            handle.write(canonical_line(META) + "\n")
            handle.write(canonical_line(_row(0, {"rounds": 3})) + "\n")
        _meta, rows = SweepStore(str(path)).load()
        assert len(rows) == 1


class TestSalvageAndRepair:
    def _damaged_store(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = SweepStore(str(path))
        store.begin(META, fresh=True)
        store.append(_row(0, {"rounds": 3}))
        store.append(_row(1, {"rounds": 5}))
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"rounds":3', '"rounds":9')  # bad crc
        path.write_text("\n".join(lines) + "\n")
        with open(path, "a") as handle:
            handle.write('{"cell": {"torn')  # torn tail on top
        return path

    def test_salvage_reports_damage(self, tmp_path):
        path = self._damaged_store(tmp_path)
        meta, rows, report = SweepStore(str(path)).salvage()
        assert meta == META
        assert list(rows) == [cell_key(_row(1, {})["cell"])]
        assert report.kept_rows == 1
        assert len(report.dropped) == 1
        assert report.torn_tail
        assert not report.clean
        assert "1 corrupt line(s) dropped" in report.summary()

    def test_salvage_of_clean_store_is_clean(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = SweepStore(str(path))
        store.begin(META, fresh=True)
        store.append(_row(0, {"rounds": 3}))
        _meta, rows, report = store.salvage()
        assert report.clean and report.kept_rows == 1

    def test_repair_store_in_place(self, tmp_path):
        path = self._damaged_store(tmp_path)
        report, missing = repair_store(str(path))
        assert report.kept_rows == 1
        # The repaired store loads cleanly and the valid row survived.
        _meta, rows = SweepStore(str(path)).load()
        assert list(rows) == [cell_key(_row(1, {})["cell"])]
        assert not (tmp_path / "s.jsonl.repair-tmp").exists()

    def test_repair_store_to_new_path(self, tmp_path):
        path = self._damaged_store(tmp_path)
        out = tmp_path / "fixed.jsonl"
        repair_store(str(path), str(out))
        # Source untouched, repaired copy loads.
        with pytest.raises(StoreCorruption):
            SweepStore(str(path)).load()
        _meta, rows = SweepStore(str(out)).load()
        assert len(rows) == 1

    def test_repair_without_meta_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(canonical_line(_row(0, {"rounds": 3})) + "\n")
        with pytest.raises(StoreError, match="meta"):
            repair_store(str(path))
