"""Workload registry: registration, lookup, conflicts, provider import."""

import sys

import pytest

from repro.batch.registry import (
    Workload,
    WorkloadError,
    get_workload,
    iter_workloads,
    register_workload,
    unregister,
    workload_names,
)


@pytest.fixture
def scratch_workload():
    """Register a throwaway workload; always unregister afterwards."""
    names = []

    def make(name, fn=None, **kwargs):
        names.append(name)
        if fn is None:
            def fn(graph, cell):  # noqa: ARG001
                """Scratch workload."""
                return {"n": graph.num_nodes}
        return register_workload(name, **kwargs)(fn)

    yield make
    for name in names:
        unregister(name)


class TestRegistration:
    def test_builtins_are_registered(self):
        # Importing the sweep module registers the three built-ins.
        import repro.batch.sweep  # noqa: F401

        assert {"kdom", "partition", "mst"} <= set(workload_names())
        assert get_workload("kdom").weighted
        assert not get_workload("partition").weighted
        assert get_workload("mst").provider == "repro.batch.sweep"

    def test_register_and_lookup(self, scratch_workload):
        scratch_workload("scratch-a", weighted=True)
        workload = get_workload("scratch-a")
        assert isinstance(workload, Workload)
        assert workload.weighted
        assert workload.description == "Scratch workload."

    def test_reregistering_same_function_is_noop(self, scratch_workload):
        def fn(graph, cell):
            return {}

        scratch_workload("scratch-b", fn)
        register_workload("scratch-b")(fn)  # same fn: allowed
        assert get_workload("scratch-b").fn is fn

    def test_conflicting_registration_refused(self, scratch_workload):
        scratch_workload("scratch-c")
        with pytest.raises(WorkloadError, match="already registered"):
            scratch_workload("scratch-c")

    def test_decorator_returns_function_unchanged(self):
        def fn(graph, cell):
            return {}

        try:
            assert register_workload("scratch-d")(fn) is fn
        finally:
            unregister("scratch-d")


class TestLookupErrors:
    def test_unknown_name_lists_known(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            get_workload("no-such-workload")
        with pytest.raises(WorkloadError, match="kdom"):
            get_workload("no-such-workload")

    def test_typo_gets_suggestion(self):
        with pytest.raises(WorkloadError, match="did you mean 'kdom'"):
            get_workload("kdon")

    def test_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            get_workload("no-such-workload")

    def test_provider_imported_on_miss(self):
        # Drop any cached copy so import_module re-executes the module
        # body (and with it the @register_workload decorators), the way
        # a fresh worker process would.
        sys.modules.pop("benchmarks.bench_e16_faults", None)
        unregister("e16-reliable")
        workload = get_workload(
            "e16-reliable", provider="benchmarks.bench_e16_faults"
        )
        assert workload.provider == "benchmarks.bench_e16_faults"

    def test_bad_provider_propagates(self):
        with pytest.raises(ImportError):
            get_workload("whatever", provider="no.such.module")


class TestIteration:
    def test_names_sorted(self):
        names = workload_names()
        assert list(names) == sorted(names)

    def test_iter_matches_names(self):
        assert tuple(w.name for w in iter_workloads()) == workload_names()

    def test_unregister_missing_is_noop(self):
        unregister("never-registered")
