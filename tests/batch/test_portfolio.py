"""Best-of-N portfolio runs: deterministic verdicts, sidecars, faults."""

import json
import os

import pytest

from repro.batch import (
    PortfolioError,
    SweepStore,
    portfolio_run,
    portfolio_verdict,
    verdict_json,
    verdict_path_for,
)

SPEC = "random:n=24,p=0.18"


def attempt(seed, dominators):
    return {
        "cell": {"workload": "kdom", "spec": SPEC, "seed": seed, "k": 2},
        "result": {"dominators": dominators, "rounds": 7,
                   "metrics": {"messages": 50 + seed}},
    }


class TestVerdictReduction:
    def test_smallest_picks_min_value(self):
        rows = [attempt(0, 9), attempt(1, 6), attempt(2, 8)]
        verdict = portfolio_verdict(
            rows, "kdom", SPEC, 2, seeds=[0, 1, 2],
        )
        assert verdict["best_seed"] == 1
        assert verdict["best_value"] == 6
        assert verdict["metric"] == "dominators"
        assert verdict["values"] == {"0": 9, "1": 6, "2": 8}

    def test_tie_breaks_to_smallest_seed(self):
        rows = [attempt(2, 5), attempt(0, 5), attempt(1, 5)]
        verdict = portfolio_verdict(rows, "kdom", SPEC, 2, seeds=[0, 1, 2])
        assert verdict["best_seed"] == 0

    def test_messages_reduction_uses_nested_metrics(self):
        rows = [attempt(0, 9), attempt(1, 6)]
        verdict = portfolio_verdict(
            rows, "kdom", SPEC, 2, seeds=[0, 1], reduce="messages",
        )
        assert verdict["metric"] == "messages"
        assert verdict["best_seed"] == 0  # 50 < 51

    def test_quarantined_attempts_survive_the_portfolio(self):
        rows = [
            attempt(0, 9),
            {"cell": attempt(1, 0)["cell"], "error": {"type": "Boom"}},
        ]
        verdict = portfolio_verdict(
            rows, "kdom", SPEC, 2, seeds=[0, 1], complete=False,
        )
        assert verdict["best_seed"] == 0
        assert verdict["quarantined"] == 1
        assert verdict["complete"] is False

    def test_no_candidates_means_no_best(self):
        rows = [{"cell": attempt(0, 0)["cell"], "error": {"type": "X"}}]
        verdict = portfolio_verdict(rows, "kdom", SPEC, 2, seeds=[0])
        assert verdict["best_seed"] is None
        assert verdict["best_value"] is None

    def test_unknown_reduction_rejected(self):
        with pytest.raises(PortfolioError):
            portfolio_verdict([], "kdom", SPEC, 2, seeds=[0],
                              reduce="largest")

    def test_verdict_is_pure_of_row_order(self):
        rows = [attempt(0, 9), attempt(1, 6), attempt(2, 8)]
        a = portfolio_verdict(rows, "kdom", SPEC, 2, seeds=[0, 1, 2])
        b = portfolio_verdict(rows[::-1], "kdom", SPEC, 2, seeds=[0, 1, 2])
        assert verdict_json(a) == verdict_json(b)


class TestPortfolioRun:
    def test_run_reduces_real_attempts(self, tmp_path):
        store = str(tmp_path / "p.jsonl")
        verdict, summary = portfolio_run(
            "kdom", SPEC, seeds=[0, 1, 2], k=2,
            store_path=store, backend="inline", telemetry=False,
        )
        assert summary.complete
        assert verdict["attempts"] == 3
        assert verdict["complete"] is True
        best = verdict["best_value"]
        assert best == min(verdict["values"].values())
        # the attempts are ordinary, finalized store rows
        meta, rows = SweepStore(store).load()
        assert meta["workload"] == "kdom"
        assert len(rows) == 3

    def test_verdict_sidecar_is_canonical_json(self, tmp_path):
        store = str(tmp_path / "p.jsonl")
        verdict, _ = portfolio_run(
            "kdom", SPEC, seeds=[0, 1], k=2,
            store_path=store, backend="inline", telemetry=False,
        )
        path = verdict_path_for(store)
        assert os.path.exists(path)
        with open(path) as handle:
            text = handle.read()
        assert text == verdict_json(verdict) + "\n"
        assert json.loads(text) == verdict

    def test_memory_only_run_needs_no_store(self):
        verdict, _ = portfolio_run(
            "kdom", SPEC, seeds=[0, 1], k=2,
            backend="inline", telemetry=False,
        )
        assert verdict["attempts"] == 2

    def test_verdict_bytes_identical_across_runs(self, tmp_path):
        # determinism contract: re-running the same portfolio (fresh
        # store, any completion order) reproduces the verdict bytes.
        texts = []
        for name in ("a", "b"):
            store = str(tmp_path / f"{name}.jsonl")
            portfolio_run(
                "kdom", SPEC, seeds=[0, 1, 2], k=2,
                store_path=store, backend="inline", telemetry=False,
            )
            with open(verdict_path_for(store)) as handle:
                texts.append(handle.read())
        assert texts[0] == texts[1]

    def test_duplicate_seeds_deduplicated(self):
        verdict, _ = portfolio_run(
            "kdom", SPEC, seeds=[1, 1, 0], k=2,
            backend="inline", telemetry=False,
        )
        assert verdict["seeds"] == [1, 0]
        assert verdict["attempts"] == 2

    def test_no_seeds_rejected(self):
        with pytest.raises(PortfolioError):
            portfolio_run("kdom", SPEC, seeds=[], backend="inline")
