"""SharedPool: reuse across calls, ambient routing, crash recovery."""

import os

import pytest

from repro.batch import (
    PoolCrashError,
    SharedPool,
    imap_completion_order,
    map_submission_order,
)


def _square(x):
    return x * x


def _pid(_x):
    return os.getpid()


def _crash_once(marker_path):
    """Hard-kill the worker on first sight of the marker's absence."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write("crashed")
        os._exit(13)
    return "survived"


def _crash_always(_x):
    os._exit(13)


class TestReuse:
    def test_same_workers_across_calls(self):
        with SharedPool(workers=2) as pool:
            first = set(pool.map(_pid, range(8)))
            second = set(pool.map(_pid, range(8)))
            assert first & second, "no worker survived between calls"
            assert pool.restarts == 0
            assert pool.completed == 16

    def test_map_preserves_submission_order(self):
        with SharedPool(workers=2) as pool:
            assert pool.map(_square, range(10)) == [x * x for x in range(10)]

    def test_ambient_pool_is_picked_up(self):
        """Pool-agnostic entry points route through the entered pool."""
        with SharedPool(workers=2) as pool:
            results = map_submission_order(
                _pid, range(6), backend="process"
            )
            assert set(results) <= set(pool.worker_pids())
            assert pool.completed == 6

    def test_explicit_pool_beats_ambient(self):
        with SharedPool(workers=2) as ambient:
            with SharedPool(workers=2) as inner:
                # inner is ambient now; pass the outer one explicitly
                list(imap_completion_order(_square, [1, 2], pool=ambient))
                assert ambient.completed == 2
                assert inner.completed == 0

    def test_current_tracks_nesting(self):
        assert SharedPool.current() is None
        with SharedPool(workers=1) as outer:
            assert SharedPool.current() is outer
            with SharedPool(workers=1) as inner:
                assert SharedPool.current() is inner
            assert SharedPool.current() is outer
        assert SharedPool.current() is None

    def test_lazy_start(self):
        with SharedPool(workers=1) as pool:
            assert not pool.started
            pool.map(_square, [3])
            assert pool.started

    def test_closed_pool_refuses_use(self):
        pool = SharedPool(workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(_square, [1])
        with pytest.raises(RuntimeError, match="closed"):
            with pool:
                pass

    def test_close_is_idempotent(self):
        pool = SharedPool(workers=1)
        pool.map(_square, [1])
        pool.close()
        pool.close()


class TestCrashRecovery:
    def test_worker_crash_restarts_and_finishes(self, tmp_path):
        """A task that hard-kills its worker once still completes after
        the pool restart resubmits it."""
        marker = str(tmp_path / "crashed")
        with SharedPool(workers=2) as pool:
            results = pool.map(_crash_once, [marker])
            assert results == ["survived"]
            assert pool.restarts == 1

    def test_permanent_crasher_raises_pool_crash_error(self):
        with SharedPool(workers=2, max_restarts=1) as pool:
            with pytest.raises(PoolCrashError) as err:
                pool.map(_crash_always, [1])
            assert err.value.pending == 1
            assert pool.restarts == 2

    def test_pool_usable_after_crash_error(self, tmp_path):
        with SharedPool(workers=2, max_restarts=0) as pool:
            with pytest.raises(PoolCrashError):
                pool.map(_crash_always, [1])
            assert pool.map(_square, [4]) == [16]

    def test_healthy_siblings_survive_a_crash(self, tmp_path):
        """Results completed before the crash are kept; the lost task
        reruns after restart."""
        marker = str(tmp_path / "crashed")
        items = [("ok", i) for i in range(6)] + [("crash", marker)]

        with SharedPool(workers=2) as pool:
            outcomes = dict()
            for index, status, payload in pool.imap(_mixed, items):
                assert status == "ok"
                outcomes[index] = payload
            assert len(outcomes) == 7
            assert outcomes[6] == "survived"


def _mixed(item):
    kind, value = item
    if kind == "crash":
        return _crash_once(value)
    return value
