"""Process-pool plumbing: ordering, failure transport, worker sizing."""

import pytest

from repro.batch import map_submission_order, resolve_workers
from repro.batch.pool import imap_completion_order


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError(f"bad cell {x}")
    return x * 10


class _Unpicklable(Exception):
    def __init__(self):
        super().__init__("nope")
        self.handle = lambda: None  # lambdas do not pickle


def _raise_unpicklable(_x):
    raise _Unpicklable()


class TestResolveWorkers:
    def test_default_is_cpu_count(self):
        assert resolve_workers(None) >= 1

    def test_explicit(self):
        assert resolve_workers(3) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestMapSubmissionOrder:
    def test_inline_order(self):
        assert map_submission_order(_square, [3, 1, 2]) == [9, 1, 4]

    def test_process_matches_inline(self):
        items = list(range(7))
        inline = map_submission_order(_square, items)
        for workers in (1, 2, 3):
            assert (
                map_submission_order(
                    _square, items, backend="process", workers=workers
                )
                == inline
            )

    def test_empty(self):
        assert map_submission_order(_square, [], backend="process") == []

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            map_submission_order(_square, [1, 2], backend="threads")

    def test_first_failure_reraised(self):
        with pytest.raises(ValueError, match="bad cell 3"):
            map_submission_order(
                _fail_on_three, [1, 2, 3, 4], backend="process", workers=2
            )

    def test_unpicklable_exception_transported(self):
        # An exception that cannot cross the process boundary must come
        # back as a faithful stand-in, not hang or kill the pool.
        with pytest.raises(RuntimeError, match="_Unpicklable"):
            map_submission_order(
                _raise_unpicklable, [1, 2], backend="process", workers=2
            )


class TestImapCompletionOrder:
    def test_tags_carry_submission_index(self):
        seen = {}
        for index, status, payload in imap_completion_order(
            _square, [5, 6, 7], workers=2
        ):
            assert status == "ok"
            seen[index] = payload
        assert seen == {0: 25, 1: 36, 2: 49}

    def test_errors_are_yielded_not_raised(self):
        statuses = {}
        for index, status, payload in imap_completion_order(
            _fail_on_three, [3, 4], workers=2
        ):
            statuses[index] = (status, payload)
        assert statuses[0][0] == "error"
        assert isinstance(statuses[0][1], ValueError)
        assert statuses[1] == ("ok", 40)

    def test_empty_yields_nothing(self):
        assert list(imap_completion_order(_square, [])) == []
