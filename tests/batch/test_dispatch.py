"""Spec-based dispatch: task kinds, rebuild exactness, pickle savings."""

import pickle

from repro.batch import GraphCache, NetworkSpec, network_spec, task_pickle_bytes
from repro.batch.dispatch import (
    NETWORK_TASK,
    SPEC_TASK,
    build_network,
    parallel_task,
    run_parallel_task,
)
from repro.graphs import RootedTree, random_tree
from repro.graphs.generators import cycle_graph
from repro.sim import FaultConfig, FaultInjector, Network
from repro.sim.runner import run_in_parallel


class _FloodFactory:  # minimal picklable program factory
    def __call__(self, ctx):
        from repro.primitives.flooding import FloodProgram

        return FloodProgram(ctx, 0, value=1)


_factory = _FloodFactory()


def _tree_runs(k=3, count=4):
    """Disjoint per-tree runs, like fastdom_tree's per-cluster stage."""
    from repro.core.fastdom_tree import _dp_factory

    runs = []
    for i in range(count):
        tree = random_tree(24 + i, seed=11 + i)
        rt = RootedTree.from_graph(tree, 0)
        runs.append((Network(tree), _dp_factory(0, rt.parent, k)))
    return runs


class TestNetworkSpec:
    def test_generated_network_is_recipe_expressible(self):
        network = Network(cycle_graph(10))
        spec = network_spec(network)
        assert isinstance(spec, NetworkSpec)
        assert spec.provenance.spec == "ring:n=10"

    def test_mutated_graph_falls_back(self):
        graph = cycle_graph(10)
        graph.add_edge(0, 5)
        assert network_spec(Network(graph)) is None

    def test_faulty_network_falls_back(self):
        injector = FaultInjector(FaultConfig(drop_rate=0.1, seed=0))
        network = Network(cycle_graph(10), faults=injector)
        assert network_spec(network) is None

    def test_spec_preserves_network_options(self):
        network = Network(cycle_graph(10), word_limit=4, scheduling="full")
        spec = network_spec(network)
        assert spec.word_limit == 4
        assert spec.scheduling == "full"

    def test_rebuild_matches_original(self):
        network = Network(cycle_graph(10), word_limit=4)
        rebuilt = build_network(network_spec(network), GraphCache())
        assert set(rebuilt.graph.nodes) == set(network.graph.nodes)
        assert rebuilt.word_limit == 4


class TestParallelTask:
    def test_spec_task_for_generated_graph(self):
        network = Network(cycle_graph(10))
        kind, _payload = parallel_task(network, _factory, 100)
        assert kind == SPEC_TASK

    def test_network_task_for_hand_built_graph(self):
        graph = cycle_graph(10)
        graph.add_edge(0, 5)
        kind, payload = parallel_task(Network(graph), _factory, 100)
        assert kind == NETWORK_TASK
        assert payload[0].graph is graph

    def test_both_kinds_execute_identically(self):
        """The fallback path and the spec path produce the same run."""
        from repro.core.fastdom_tree import _dp_factory

        tree = random_tree(16, seed=3)
        rt = RootedTree.from_graph(tree, 0)
        factory = _dp_factory(0, rt.parent, 2)

        spec_task = parallel_task(Network(tree), factory, 1000)
        assert spec_task[0] == SPEC_TASK
        mutated = tree.copy()
        mutated.provenance = None
        network_task = parallel_task(Network(mutated), factory, 1000)
        assert network_task[0] == NETWORK_TASK

        result_a, outputs_a, halted_a = run_parallel_task(spec_task)
        result_b, outputs_b, halted_b = run_parallel_task(network_task)
        assert outputs_a == outputs_b
        assert halted_a == halted_b
        assert result_a.to_dict() == result_b.to_dict()


class TestProcessBackendEquality:
    def test_inline_and_process_agree(self):
        runs_a = _tree_runs()
        runs_b = _tree_runs()
        nets_inline, metrics_inline = run_in_parallel(runs_a, backend="inline")
        nets_proc, metrics_proc = run_in_parallel(
            runs_b, backend="process", workers=2
        )
        assert metrics_inline.to_dict() == metrics_proc.to_dict()
        for a, b in zip(nets_inline, nets_proc):
            assert a.output_field("in_dominating_set") == b.output_field(
                "in_dominating_set"
            )


class TestPickleBytes:
    def test_spec_dispatch_shrinks_tasks(self):
        """The tentpole's measurable claim: shipping recipes beats
        shipping networks by a wide margin."""
        stats = task_pickle_bytes(_tree_runs())
        assert stats["runs"] == 4
        assert stats["spec_tasks"] == 4
        assert stats["spec_bytes"] < stats["network_bytes"] / 2
        assert stats["ratio"] < 0.5

    def test_fallback_counts_zero_spec_tasks(self):
        graph = cycle_graph(12)
        graph.add_edge(0, 6)
        stats = task_pickle_bytes([(Network(graph), _factory)])
        assert stats["spec_tasks"] == 0
        assert stats["ratio"] == 1.0

    def test_spec_task_is_picklable_and_small(self):
        network = Network(random_tree(200, seed=1))
        task = parallel_task(network, _factory, 1000)
        spec_bytes = len(pickle.dumps(task))
        network_bytes = len(pickle.dumps((NETWORK_TASK, (network, _factory, 1000))))
        assert spec_bytes < 1000
        assert spec_bytes < network_bytes / 10
