"""Deterministic chaos harness: plans, injection, the full drill.

The acceptance contract (ISSUE 6): same seed → same plan → same
retry/quarantine log, and the post-repair store is byte-identical to
the fault-free store minus quarantined cells.
"""

import pytest

from repro.batch import (
    ChaosAction,
    ChaosPlan,
    SharedPool,
    StoreCorruption,
    SweepGrid,
    SweepStore,
    run_chaos,
    run_sweep,
)
from repro.batch.chaos import retry_log

#: Small but multi-cell grid: 6 cells, enough for disjoint faults.
GRID = SweepGrid(
    workload="partition",
    specs=("tree:n=18", "tree:n=24"),
    seeds=(0,),
    ks=(2, 3, 4),
)

DEADLINE = 0.5


class TestChaosPlan:
    def test_generate_is_deterministic(self):
        a = ChaosPlan.generate(5, 20, kills=2, hangs=1, corrupts=2)
        b = ChaosPlan.generate(5, 20, kills=2, hangs=1, corrupts=2)
        assert a.as_dict() == b.as_dict()

    def test_different_seeds_differ(self):
        plans = {
            tuple(
                (a.index, a.kind)
                for a in ChaosPlan.generate(seed, 50, kills=3).actions
            )
            for seed in range(8)
        }
        assert len(plans) > 1

    def test_faults_land_on_disjoint_indices(self):
        plan = ChaosPlan.generate(3, 10, kills=3, hangs=3, corrupts=3)
        indices = [action.index for action in plan.actions]
        assert len(indices) == len(set(indices)) == 9

    def test_overfull_plan_rejected(self):
        with pytest.raises(ValueError, match="faulted task"):
            ChaosPlan.generate(0, 2, kills=2, hangs=1)

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            ChaosPlan([ChaosAction(1, "kill"), ChaosAction(1, "hang")])

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ChaosAction(0, "meteor")

    def test_one_shot_ops_fire_on_first_attempt_only(self):
        plan = ChaosPlan([ChaosAction(2, "kill"), ChaosAction(4, "hang")])
        assert plan.op_for(2, 0) == ("kill",)
        assert plan.op_for(2, 1) is None  # the retry runs clean
        assert plan.op_for(4, 0) == ("hang",)
        assert plan.op_for(3, 0) is None

    def test_poison_fires_on_every_attempt(self):
        plan = ChaosPlan([ChaosAction(1, "poison")])
        for attempt in range(5):
            assert plan.op_for(1, attempt) == ("kill",)

    def test_slow_carries_its_delay(self):
        plan = ChaosPlan([ChaosAction(0, "slow", 0.01)])
        assert plan.op_for(0, 0) == ("slow", 0.01)

    def test_corrupt_is_parent_side_only(self):
        plan = ChaosPlan([ChaosAction(3, "corrupt")])
        assert plan.op_for(3, 0) is None
        assert plan.should_corrupt(3)
        assert not plan.should_corrupt(2)

    def test_describe_and_indices(self):
        plan = ChaosPlan(
            [ChaosAction(4, "kill"), ChaosAction(1, "corrupt")], seed=9
        )
        assert plan.indices("kill") == [4]
        assert plan.indices("corrupt") == [1]
        assert "seed 9" in plan.describe()
        assert "corrupt@1" in plan.describe()
        assert len(plan) == 2


class TestStoreCorruptionInjection:
    def test_corrupted_row_fails_load_even_as_last_line(self, tmp_path):
        """Injected corruption is complete JSON with a wrong checksum —
        never mistakable for a torn final append."""
        path = str(tmp_path / "s.jsonl")
        run_sweep(GRID, store_path=path, max_cells=3)
        plan = ChaosPlan([ChaosAction(0, "corrupt")])
        plan.corrupt_store(path)
        with pytest.raises(StoreCorruption, match="checksum mismatch"):
            SweepStore(path).load()


class TestChaosSweep:
    def test_kill_retry_leaves_store_byte_identical(self, tmp_path):
        """A planned kill (worker crash mid-task) must be invisible in
        the finalized store: the retry re-runs the cell, no row is
        duplicated or lost."""
        clean, chaotic = str(tmp_path / "clean.jsonl"), str(
            tmp_path / "chaos.jsonl"
        )
        run_sweep(GRID, store_path=clean)
        plan = ChaosPlan([ChaosAction(2, "kill")])
        with SharedPool(workers=2, deadline_s=DEADLINE) as pool:
            summary = run_sweep(
                GRID,
                store_path=chaotic,
                backend="process",
                workers=2,
                chaos=plan,
            )
        assert summary.complete and summary.quarantined == 0
        assert pool.restarts >= 1
        assert (tmp_path / "chaos.jsonl").read_bytes() == (
            tmp_path / "clean.jsonl"
        ).read_bytes()

    def test_checkpoint_rows_are_never_duplicated(self, tmp_path):
        """Even in the un-finalized checkpoint, a retried task appends
        its row exactly once."""
        path = str(tmp_path / "chaos.jsonl")
        plan = ChaosPlan([ChaosAction(1, "kill"), ChaosAction(3, "hang")])
        with SharedPool(workers=2, deadline_s=DEADLINE):
            run_sweep(
                GRID,
                store_path=path,
                backend="process",
                workers=2,
                chaos=plan,
                finalize=False,
            )
        _meta, rows = SweepStore(path).load()
        lines = (tmp_path / "chaos.jsonl").read_text().splitlines()
        assert len(rows) == len(GRID.cells())
        assert len(lines) == 1 + len(GRID.cells())  # meta + one per cell

    def test_chaos_requires_process_backend(self):
        plan = ChaosPlan([ChaosAction(0, "kill")])
        with pytest.raises(ValueError, match="process"):
            run_sweep(GRID, backend="inline", chaos=plan)

    def test_quarantined_cell_recorded_and_skipped_on_resume(
        self, tmp_path
    ):
        path = str(tmp_path / "q.jsonl")
        plan = ChaosPlan([ChaosAction(0, "poison")])
        with SharedPool(workers=2, deadline_s=DEADLINE, max_attempts=2):
            summary = run_sweep(
                GRID,
                store_path=path,
                backend="process",
                workers=2,
                chaos=plan,
            )
        assert summary.quarantined == 1
        assert summary.complete  # degraded, but the sweep finished
        error_rows = [r for r in summary.rows if "error" in r]
        assert len(error_rows) == 1
        assert error_rows[0]["error"]["quarantined"] is True
        assert error_rows[0]["error"]["reason"] == "crashed"
        # Resume: the error row counts as present...
        resumed = run_sweep(GRID, store_path=path)
        assert resumed.ran == 0 and resumed.quarantined == 1
        # ...unless the caller asks to retry quarantined cells.
        retried = run_sweep(GRID, store_path=path, retry_quarantined=True)
        assert retried.ran == 1 and retried.quarantined == 0
        assert retried.complete

    def test_retried_quarantine_store_matches_clean_run(self, tmp_path):
        clean, poisoned = str(tmp_path / "c.jsonl"), str(tmp_path / "p.jsonl")
        run_sweep(GRID, store_path=clean)
        plan = ChaosPlan([ChaosAction(4, "poison")])
        with SharedPool(workers=2, deadline_s=DEADLINE, max_attempts=2):
            run_sweep(
                GRID,
                store_path=poisoned,
                backend="process",
                workers=2,
                chaos=plan,
            )
        run_sweep(GRID, store_path=poisoned, retry_quarantined=True)
        assert (tmp_path / "p.jsonl").read_bytes() == (
            tmp_path / "c.jsonl"
        ).read_bytes()


class TestRunChaosDrill:
    def test_full_drill_verifies_byte_identical(self, tmp_path):
        report = run_chaos(
            GRID,
            seed=7,
            out_dir=str(tmp_path),
            workers=2,
            deadline_s=DEADLINE,
        )
        assert report.verified
        assert report.byte_identical
        assert not report.quarantined_cells
        assert report.restarts >= 2  # one kill + one hang
        # The corrupt cell surfaced as missing after repair, then was
        # re-run by the resume phase.
        assert len(report.missing_after_repair) == 1

    def test_same_seed_replays_the_same_drill(self, tmp_path):
        reports = [
            run_chaos(
                GRID,
                seed=13,
                out_dir=str(tmp_path / name),
                workers=2,
                deadline_s=DEADLINE,
            )
            for name in ("a", "b")
        ]
        assert reports[0].plan.as_dict() == reports[1].plan.as_dict()
        assert reports[0].retry_events == reports[1].retry_events
        assert reports[0].quarantined_cells == reports[1].quarantined_cells
        assert (
            reports[0].verified,
            reports[0].byte_identical,
        ) == (reports[1].verified, reports[1].byte_identical)

    def test_poison_drill_verifies_minus_quarantined(self, tmp_path):
        report = run_chaos(
            GRID,
            seed=3,
            out_dir=str(tmp_path),
            workers=2,
            deadline_s=DEADLINE,
            kills=0,
            hangs=0,
            corrupts=0,
            poisons=1,
        )
        assert report.verified
        assert not report.byte_identical
        assert len(report.quarantined_cells) == 1
        assert any(
            event[0] == "task_quarantined" for event in report.retry_events
        )
        assert "quarantined" in "\n".join(report.lines())


class TestRetryLog:
    def test_filters_and_sorts(self):
        events = [
            {"kind": "worker_killed", "reason": "hung", "workers": 2},
            {"kind": "task_retried", "task": 5, "attempt": 1,
             "reason": "crashed"},
            {"kind": "task_quarantined", "task": 1, "attempts": 2,
             "reason": "hung"},
        ]
        log = retry_log(events)
        assert log == [
            ("task_quarantined", 1, 2, "hung"),
            ("task_retried", 5, 1, "crashed"),
        ]
