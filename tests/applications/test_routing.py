"""Cluster routing with sparse tables ([PU] application)."""

import random

import pytest

from repro.applications import build_routing, full_table_size
from repro.graphs import (
    assign_unique_weights,
    grid_graph,
    torus_graph,
)


@pytest.fixture(scope="module")
def routed_grid():
    g = assign_unique_weights(grid_graph(7, 7), seed=2)
    scheme, rounds = build_routing(g, 3)
    return g, scheme


class TestRouting:
    def test_all_pairs_deliver(self, routed_grid):
        g, scheme = routed_grid
        rng = random.Random(0)
        for _ in range(200):
            s, t = rng.randrange(49), rng.randrange(49)
            result = scheme.route(s, t)
            assert result.path[0] == s and result.path[-1] == t
            for a, b in zip(result.path, result.path[1:]):
                assert g.has_edge(a, b)

    def test_additive_stretch_bound(self, routed_grid):
        g, scheme = routed_grid
        k = 3
        rng = random.Random(1)
        for _ in range(200):
            s, t = rng.randrange(49), rng.randrange(49)
            if s == t:
                continue
            result = scheme.route(s, t)
            assert result.hops <= result.shortest + 4 * k

    def test_self_route(self, routed_grid):
        _g, scheme = routed_grid
        result = scheme.route(5, 5)
        assert result.hops == 0 and result.path == [5]

    def test_tables_sparser_than_full(self, routed_grid):
        g, scheme = routed_grid
        assert scheme.total_table_size() < full_table_size(g)
        assert scheme.max_table_size() < g.num_nodes - 1

    def test_average_stretch_reasonable(self, routed_grid):
        _g, scheme = routed_grid
        rng = random.Random(2)
        pairs = [(rng.randrange(49), rng.randrange(49)) for _ in range(100)]
        assert scheme.average_stretch(pairs) <= 3.0

    def test_torus(self):
        g = assign_unique_weights(torus_graph(6, 6), seed=3)
        scheme, _rounds = build_routing(g, 2)
        result = scheme.route(0, 35)
        assert result.path[-1] == 35
        assert result.hops <= result.shortest + 8


from hypothesis import given, settings

from ..conftest import weighted_graphs


@settings(max_examples=8, deadline=None)
@given(weighted_graphs(min_nodes=6, max_nodes=20))
def test_routing_property(graph):
    """Every route delivers with additive stretch at most 4k."""
    k = 2
    scheme, _rounds = build_routing(graph, k)
    nodes = sorted(graph.nodes)
    for s in nodes[:4]:
        for t in nodes[-4:]:
            result = scheme.route(s, t)
            assert result.path[0] == s and result.path[-1] == t
            assert result.hops <= result.shortest + 4 * k
