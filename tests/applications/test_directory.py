"""Distributed directory on dominating-set copies ([P2] application)."""

import pytest

from repro.applications import DominatingSetDirectory
from repro.graphs import assign_unique_weights, grid_graph


@pytest.fixture(scope="module")
def directory():
    g = assign_unique_weights(grid_graph(7, 7), seed=4)
    return g, DominatingSetDirectory(g, 3)


class TestDirectory:
    def test_publish_then_lookup(self, directory):
        _g, d = directory
        d.publish(0, "alpha", "payload")
        result = d.lookup(0, "alpha")
        assert result.value == "payload"

    def test_local_hit_within_2k(self, directory):
        _g, d = directory
        d.publish(10, "beta", 1)
        result = d.lookup(10, "beta")
        assert result.hit_local_copy
        assert result.hops <= d.local_read_bound()

    def test_remote_lookup_falls_back_to_home(self, directory):
        _g, d = directory
        d.publish(0, "gamma", 7)
        far = 48
        result = d.lookup(far, "gamma")
        assert result.value == 7

    def test_missing_key_raises(self, directory):
        _g, d = directory
        with pytest.raises(KeyError):
            d.lookup(3, "no-such-object")

    def test_home_is_deterministic(self, directory):
        _g, d = directory
        assert d.home_of("x") == d.home_of("x")
        assert d.home_of("x") in d.copies

    def test_copies_are_k_dominating(self, directory):
        g, d = directory
        from repro.verify import is_k_dominating

        assert is_k_dominating(g, set(d.copies), 3)
