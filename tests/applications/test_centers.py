"""Server placement on k-dominating sets."""

import pytest

from repro.applications import place_servers, random_placement
from repro.graphs import assign_unique_weights, grid_graph


@pytest.fixture
def grid():
    return assign_unique_weights(grid_graph(8, 8), seed=1)


class TestPlacement:
    def test_cover_radius_guaranteed(self, grid):
        placement = place_servers(grid, 3)
        assert placement.cover_radius <= 3

    def test_server_count_bound(self, grid):
        placement = place_servers(grid, 3)
        assert placement.server_count <= max(1, 64 // 4)

    def test_every_client_assigned_a_server(self, grid):
        placement = place_servers(grid, 2)
        assert set(placement.assignment) == set(grid.nodes)
        assert set(placement.assignment.values()) <= placement.servers

    def test_load_accounts_everyone(self, grid):
        placement = place_servers(grid, 2)
        assert sum(placement.load().values()) == 64

    def test_random_placement_same_count_weaker_radius(self, grid):
        placement = place_servers(grid, 3)
        rand = random_placement(grid, placement.server_count, seed=9)
        assert rand.server_count == placement.server_count
        # A structural guarantee vs luck: random may or may not cover
        # within k, but never beats the guarantee's validity.
        assert placement.cover_radius <= 3

    def test_random_placement_rejects_zero(self, grid):
        with pytest.raises(ValueError):
            random_placement(grid, 0)
