"""Leader election and distributed counting."""

import pytest

from repro.applications import count_nodes, leader_election
from repro.graphs import (
    Graph,
    cycle_graph,
    eccentricity,
    grid_graph,
    random_connected_graph,
    random_tree,
)


class TestLeaderElection:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: random_tree(60, seed=1),
            lambda: grid_graph(6, 6),
            lambda: cycle_graph(30),
            lambda: random_connected_graph(80, 0.07, seed=2),
        ],
    )
    def test_elects_max_id(self, factory):
        g = factory()
        leader, _rounds, _net = leader_election(g)
        assert leader == max(g.nodes)

    def test_everyone_agrees(self):
        g = random_connected_graph(50, 0.1, seed=3)
        _leader, _rounds, net = leader_election(g)
        assert len(set(net.output_field("leader").values())) == 1

    def test_rounds_near_eccentricity(self):
        g = cycle_graph(40)
        leader, rounds, _net = leader_election(g)
        assert rounds <= eccentricity(g, leader) + 2

    def test_single_node(self):
        g = Graph()
        g.add_node(7)
        leader, rounds, _net = leader_election(g)
        assert leader == 7


class TestCounting:
    @pytest.mark.parametrize("n,seed", [(30, 1), (100, 2)])
    def test_exact_count(self, n, seed):
        g = random_tree(n, seed=seed)
        total, staged = count_nodes(g, 0)
        assert total == n
        assert staged.total_rounds > 0

    def test_count_on_graph(self):
        g = grid_graph(7, 5)
        total, _staged = count_nodes(g, 12)
        assert total == 35
