#!/usr/bin/env python3
"""Merge the benchmark result tables into a single report.

Usage:
    pytest benchmarks/ --benchmark-only      # writes benchmarks/results/
    python scripts/collect_results.py        # -> benchmarks/results/REPORT.md
"""

from __future__ import annotations

import os
import re
import sys

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "results",
)


def natural_key(name: str):
    match = re.match(r"E(\d+)", name)
    return (int(match.group(1)) if match else 999, name)


def main() -> int:
    if not os.path.isdir(RESULTS_DIR):
        print(
            "no results directory; run `pytest benchmarks/ --benchmark-only` "
            "first",
            file=sys.stderr,
        )
        return 1
    files = sorted(
        (f for f in os.listdir(RESULTS_DIR) if f.endswith(".txt")),
        key=natural_key,
    )
    if not files:
        print("no result tables found", file=sys.stderr)
        return 1
    out_path = os.path.join(RESULTS_DIR, "REPORT.md")
    with open(out_path, "w") as out:
        out.write("# Benchmark report\n")
        out.write(
            "\nGenerated from benchmarks/results/*.txt; see EXPERIMENTS.md "
            "for the claim-by-claim interpretation.\n"
        )
        for name in files:
            out.write(f"\n## {name[:-4]}\n\n```\n")
            with open(os.path.join(RESULTS_DIR, name)) as handle:
                out.write(handle.read().strip())
            out.write("\n```\n")
    print(f"wrote {out_path} ({len(files)} experiments)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
