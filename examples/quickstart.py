#!/usr/bin/env python3
"""Quickstart: compute a small k-dominating set and its cluster
partition on a general network, exactly as Theorem 4.4 promises.

Run:  python examples/quickstart.py
"""

from repro import fastdom_graph
from repro.graphs import assign_unique_weights, diameter, torus_graph
from repro.verify import domination_radius, is_k_dominating, meets_size_bound


def main() -> None:
    # A 12x12 torus: 144 routers, diameter 12.  The model needs distinct
    # polynomial edge weights (used by the SimpleMST stage).
    network = assign_unique_weights(torus_graph(12, 12), seed=7)
    n = network.num_nodes
    k = 4

    print(f"network: n={n}, m={network.num_edges}, diameter={diameter(network)}")
    print(f"goal: a {k}-dominating set of at most n/(k+1) = {n // (k + 1)} nodes\n")

    dominators, partition, staged = fastdom_graph(network, k)

    print(f"dominating set ({len(dominators)} nodes): {sorted(dominators)}")
    print(f"size bound respected: {meets_size_bound(n, k, len(dominators))}")
    print(f"every node within {k} hops of a dominator: "
          f"{is_k_dominating(network, dominators, k)} "
          f"(actual radius {domination_radius(network, dominators)})")
    print(f"clusters: {partition.num_clusters}, sizes "
          f"{sorted(c.size for c in partition.clusters)}")

    print("\nsynchronous rounds used (the quantity the paper bounds):")
    for stage, rounds in staged.breakdown().items():
        print(f"  {stage:>22}: {rounds}")
    print(f"  {'TOTAL':>22}: {staged.total_rounds}  (O(k log* n))")


if __name__ == "__main__":
    main()
