#!/usr/bin/env python3
"""Centre selection for server placement (the [BKP] application, §1.1):
place the minimum-budget servers so every client is within k hops,
and compare against random placement with the same budget.

Run:  python examples/server_placement.py
"""

from repro.applications import place_servers, random_placement
from repro.graphs import assign_unique_weights, grid_graph


def main() -> None:
    # A 15x15 grid: a metro network of 225 access routers.
    network = assign_unique_weights(grid_graph(15, 15), seed=3)
    k = 3

    placement = place_servers(network, k)
    print(f"network: {network.num_nodes} nodes; service radius target: {k} hops")
    print(f"servers placed on the {k}-dominating set: {placement.server_count}")
    print(f"  guaranteed cover radius: {placement.cover_radius} <= {k}")
    loads = placement.load()
    print(f"  clients per server: min={min(loads.values())}, "
          f"max={placement.max_load()}")
    print(f"  distributed preprocessing: {placement.rounds} rounds\n")

    trials = [
        random_placement(network, placement.server_count, seed=s)
        for s in range(5)
    ]
    radii = [t.cover_radius for t in trials]
    print(f"random placement with the same budget ({placement.server_count} "
          f"servers), 5 trials:")
    print(f"  cover radii: {radii}  (no guarantee; "
          f"{sum(1 for r in radii if r > k)}/5 trials violate the {k}-hop SLA)")


if __name__ == "__main__":
    main()
