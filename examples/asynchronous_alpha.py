#!/usr/bin/env python3
"""The §1.2 remark, demonstrated: the paper assumes synchrony without
loss of generality because any synchronous algorithm runs on an
asynchronous network under synchroniser α of Awerbuch [A1].

This script runs the distributed BFS (Procedure Initialize's engine)
both synchronously and hosted under α on an event-driven network with
random per-message delays, and shows bit-identical outputs with pulse
counts equal to the synchronous round count.

Run:  python examples/asynchronous_alpha.py
"""

from repro.graphs import bfs_distances, random_tree
from repro.primitives.bfs import BFSTreeProgram
from repro.sim import Network, run_synchronized


def main() -> None:
    graph = random_tree(120, seed=21)
    root = 0

    sync_net = Network(graph)
    sync_metrics = sync_net.run(lambda ctx: BFSTreeProgram(ctx, root))
    sync_depths = sync_net.output_field("depth")
    print(f"synchronous BFS: {sync_metrics.rounds} rounds, "
          f"{sync_metrics.messages} messages")

    async_net, virtual_time = run_synchronized(
        graph, lambda ctx: BFSTreeProgram(ctx, root), seed=5
    )
    alpha_depths = {
        v: p.output["depth"] for v, p in async_net.programs.items()
    }
    pulses = max(
        p.pulses_at_halt
        for p in async_net.programs.values()
        if p.pulses_at_halt is not None
    )
    print(f"asynchronous + α:  {pulses} pulses, "
          f"{async_net.message_count} messages, "
          f"virtual completion time {virtual_time:.1f}")

    assert alpha_depths == sync_depths == bfs_distances(graph, root)
    print("\noutputs are bit-identical to the synchronous run;")
    print(f"α's overhead: "
          f"{async_net.message_count / (graph.num_edges * pulses):.2f} "
          f"messages per edge per pulse (the remark's 'one message over "
          f"each edge in each direction per round', plus acks)")


if __name__ == "__main__":
    main()
