#!/usr/bin/env python3
"""Fault injection walkthrough: what the paper's bounds cost to keep
when the network stops being perfect.

Three acts on the same 40-router network:

1. the BFS engine of Procedure Initialize on a clean network,
2. the same program under 8% seeded message loss — it wedges, and the
   simulator hands back a structured RunReport instead of an exception,
3. the same program behind ack/retransmit ReliableProgram channels —
   it completes, and we pay the measured round/message overhead.

Every fault is recorded in a FaultPlan; replaying the plan reproduces
the run bit-for-bit, which is how failures found in benchmarks become
regression tests.

Run:  python examples/faulty_run.py
"""

from repro.graphs import random_connected_graph
from repro.primitives.bfs import BFSTreeProgram
from repro.sim import (
    DEFAULT_WORD_LIMIT,
    RELIABLE_HEADER_WORDS,
    FaultConfig,
    FaultInjector,
    Network,
    make_reliable,
)
from repro.verify import check_run_report


def main() -> None:
    graph = random_connected_graph(40, 0.1, seed=3)
    root = min(graph.nodes, key=str)
    factory = lambda ctx: BFSTreeProgram(ctx, root)  # noqa: E731

    # Act 1: the reliable-network baseline the paper assumes.
    clean = Network(graph)
    baseline = clean.run(factory)
    print(f"clean network:    {baseline.rounds} rounds, "
          f"{baseline.messages} messages, spanning tree built")

    # Act 2: 8% message loss, raw protocol.  The wave protocol counts
    # replies, so a single lost ACCEPT wedges the whole network — but
    # with faults active the run degrades gracefully into a report.
    config = FaultConfig(drop_rate=0.08, seed=1)
    lossy = Network(graph, faults=FaultInjector(config))
    report = lossy.run(factory, max_rounds=300)
    print(f"\n8% loss, raw:     completed={report.completed}, "
          f"{report.metrics.dropped_messages} messages dropped, "
          f"{len(report.running())} nodes stuck")
    print(f"health check:     {check_run_report(report).summary()}")

    # Act 3: the same loss behind reliable channels.  The wrapper frames
    # every message with (seq, ack) — RELIABLE_HEADER_WORDS extra words —
    # and retransmits on timeout, still one message per edge per round.
    reliable = Network(
        graph,
        word_limit=DEFAULT_WORD_LIMIT + RELIABLE_HEADER_WORDS,
        faults=FaultInjector(config),
    )
    recovered = reliable.run(make_reliable(factory), max_rounds=5000)
    parents = reliable.output_field("parent")
    print(f"\n8% loss, reliable: completed={recovered.completed}, "
          f"{recovered.rounds} rounds "
          f"({recovered.rounds / baseline.rounds:.1f}x baseline), "
          f"{recovered.messages} messages "
          f"({recovered.messages / baseline.messages:.1f}x)")
    print(f"tree rebuilt:      {len(parents)} of {graph.num_nodes} nodes "
          f"have a parent pointer")

    # The plan is the replayable record of everything the adversary did.
    plan = recovered.plan
    print(f"\nfault plan:        {len(plan.events)} events "
          f"(seed {plan.seed}); first three:")
    for event in plan.events[:3]:
        print(f"  round {event.round:>3}  {event.kind:<6} "
              f"{event.node} -> {event.target}")
    replayed = Network(
        graph,
        word_limit=DEFAULT_WORD_LIMIT + RELIABLE_HEADER_WORDS,
        faults=FaultInjector.replay(plan),
    )
    again = replayed.run(make_reliable(factory), max_rounds=5000)
    print(f"replay identical:  {again == recovered}")


if __name__ == "__main__":
    main()
