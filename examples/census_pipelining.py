#!/usr/bin/env python3
"""Visualising Lemma 2.3's pipelining: the k+1 censuses of DiamDOM
share every tree edge with zero collisions.

Prints a round-by-round matrix of census messages crossing each edge of
a small path — each edge carries at most one message per round (the
simulator would raise otherwise), and the censuses march up the tree
staggered one round apart.

Run:  python examples/census_pipelining.py
"""

from repro.core.diam_dom import DiamDOMProgram
from repro.graphs import path_graph
from repro.sim import Network, TraceRecorder


def main() -> None:
    n, k = 10, 3
    graph = path_graph(n)
    recorder = TraceRecorder()
    network = Network(graph)
    network.attach_subscriber(recorder)
    network.run(lambda ctx: DiamDOMProgram(ctx, 0, k))

    # Collect census sends: (round, sender) -> census level.
    sends = {}
    for event in recorder.events:
        if event.kind == "send" and event.detail[1][0] == "CEN":
            sends[(event.round, event.node)] = event.detail[1][1]
    rounds = sorted({r for r, _v in sends})
    t1 = network.programs[0].output["t1"]

    print(f"path of {n} nodes rooted at 0, k = {k} "
          f"(censuses 0..{k}); t1 = {t1}")
    print(f"cell = census level crossing the edge toward the root "
          f"that round\n")
    header = "round | " + " ".join(f"e{v}" for v in range(n - 1, 0, -1))
    print(header)
    print("-" * len(header))
    for r in rounds:
        cells = []
        for v in range(n - 1, 0, -1):
            level = sends.get((r, v))
            cells.append(str(level) if level is not None else ".")
        print(f"{r:5d} | " + "  ".join(cells))

    print("\nEach column (edge) carries each census exactly once, on")
    print("consecutive rounds — the fully pipelined convergecast whose")
    print("collision-freedom is Lemma 2.3's 'crucial observation'.")
    decision = network.programs[0].output["decision_round"]
    print(f"root decides at round {decision} "
          f"(bound 5*Diam + k = {5 * (n - 1) + k})")


if __name__ == "__main__":
    main()
