#!/usr/bin/env python3
"""Routing with sparse tables (the [PU] application, §1.1): cluster the
network around a k-dominating set, keep per-node tables far below the
Θ(n) of shortest-path routing, and pay only a bounded additive stretch.

Run:  python examples/sparse_routing.py
"""

import random

from repro.applications import build_routing, full_table_size
from repro.graphs import assign_unique_weights, torus_graph


def main() -> None:
    network = assign_unique_weights(torus_graph(10, 10), seed=5)
    n = network.num_nodes
    k = 3

    scheme, preprocessing_rounds = build_routing(network, k)
    print(f"network: {n} nodes; cluster radius k={k}")
    print(f"distributed preprocessing: {preprocessing_rounds} rounds\n")

    print("table sizes:")
    print(f"  full shortest-path routing: {n - 1} entries/node "
          f"({full_table_size(network)} total)")
    print(f"  cluster routing:            max {scheme.max_table_size()} "
          f"entries/node ({scheme.total_table_size()} total)")

    rng = random.Random(1)
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(500)]
    worst = 0.0
    for s, t in pairs:
        if s == t:
            continue
        result = scheme.route(s, t)
        assert result.path[-1] == t
        assert result.hops <= result.shortest + 4 * k
        worst = max(worst, result.stretch)
    print(f"\n500 random routes delivered; "
          f"avg stretch {scheme.average_stretch(pairs):.2f}, "
          f"worst {worst:.2f} (additive bound: shortest + {4 * k})")


if __name__ == "__main__":
    main()
