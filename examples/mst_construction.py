#!/usr/bin/env python3
"""The headline application (§5): distributed MST in
O(sqrt(n) log* n + Diam) rounds, compared against the GHS-style and
pipeline-only baselines on the same network.

Run:  python examples/mst_construction.py
"""

from repro.graphs import assign_unique_weights, diameter, random_connected_graph
from repro.mst import fast_mst, ghs_mst, kruskal_mst, pipeline_only_mst
from repro.verify import spanning_tree_weight


def main() -> None:
    n = 300
    graph = assign_unique_weights(
        random_connected_graph(n, 6.0 / n, seed=11), seed=12
    )
    print(
        f"network: n={n}, m={graph.num_edges}, diameter={diameter(graph)}"
    )

    reference = kruskal_mst(graph)
    reference_weight = spanning_tree_weight(graph, reference)
    print(f"reference MST weight (sequential Kruskal): {reference_weight}\n")

    edges, staged, diag = fast_mst(graph)
    assert edges == reference
    print(
        f"Fast-MST: exact MST in {staged.total_rounds} rounds "
        f"(k={diag['k']}, {diag['clusters']} clusters, "
        f"{diag['pipelining_violations']} pipeline stalls)"
    )
    for stage, rounds in staged.breakdown().items():
        print(f"    {stage:>16}: {rounds}")

    ghs_edges, ghs_metrics = ghs_mst(graph)
    assert ghs_edges == reference
    print(f"\nGHS baseline:           {ghs_metrics.rounds} rounds (O(n))")

    pipe_edges, pipe_staged = pipeline_only_mst(graph)
    assert pipe_edges == reference
    print(f"pipeline-only baseline: {pipe_staged.total_rounds} rounds (O(n + Diam))")

    speedup = ghs_metrics.rounds / staged.total_rounds
    print(f"\nFast-MST beats GHS by {speedup:.1f}x on this low-diameter graph;")
    print("its advantage over the O(n + D) baseline grows as sqrt(n)/n -> 0.")


if __name__ == "__main__":
    main()
