"""E15 — solution-quality ablation (beyond the paper's bound).

The paper only promises |D| ≤ n/(k+1).  This experiment measures how
far each construction actually lands from the *optimum* on trees:

* ``fastdom``   — the distributed FastDOM_T (per-cluster minimum DP);
* ``minimum``   — the sequential exact tree minimum (Meir–Moon bound);
* ``greedy``    — the deepest-leaf greedy;
* ``class``     — the Lemma 2.1 level-class pick (size only; may fail
                  to dominate — reproduction note R1).

The distributed answer pays a locality premium over the global
optimum (clusters are solved independently), yet stays well inside the
paper's bound.
"""

import pytest

from repro.core import (
    fastdom_tree,
    greedy_kdominating_set,
    level_class_construction,
    minimum_kdominating_set,
)
from repro.graphs import (
    RootedTree,
    broom_tree,
    caterpillar_tree,
    path_graph,
    random_tree,
)

from .harness import emit, run_once

TREES = [
    ("path-400", path_graph(400)),
    ("random-tree-400", random_tree(400, seed=2)),
    ("caterpillar", caterpillar_tree(80, 4)),
    ("broom", broom_tree(200, 200)),
]
KS = (2, 4, 8)


def sweep():
    rows = []
    for name, g in TREES:
        rt = RootedTree.from_graph(g, 0)
        n = g.num_nodes
        for k in KS:
            fast_d, _p, _s = fastdom_tree(g, 0, rt.parent, k)
            minimum = minimum_kdominating_set(rt, k)
            greedy = greedy_kdominating_set(rt, k)
            level_set, _lvl = level_class_construction(rt, k)
            bound = max(1, n // (k + 1))
            assert len(minimum) <= len(fast_d) <= bound
            rows.append(
                [
                    name,
                    k,
                    len(fast_d),
                    len(minimum),
                    len(greedy),
                    len(level_set),
                    bound,
                    f"{len(fast_d) / max(len(minimum), 1):.2f}",
                ]
            )
    return rows


@pytest.mark.benchmark(group="e15")
def test_e15_solution_quality(benchmark):
    rows = run_once(benchmark, sweep)
    emit(
        "E15",
        "k-dominating set sizes: distributed vs sequential constructions",
        ["workload", "k", "fastdom", "minimum", "greedy", "class", "bound",
         "fast/min"],
        rows,
    )
