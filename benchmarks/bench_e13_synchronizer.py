"""E13 — §1.2 remark: synchrony is WLOG under synchroniser α [A1].

Runs the distributed BFS under synchroniser α on an asynchronous network
with random bounded delays and compares pulses/virtual time against the
synchronous round count, plus the per-edge message overhead.
"""

import pytest

from repro.graphs import grid_graph, random_tree
from repro.primitives.bfs import BFSTreeProgram
from repro.sim import Network, run_synchronized

from .harness import emit, run_once

CASES = [
    ("random-tree-100", random_tree(100, seed=1)),
    ("grid-8x8", grid_graph(8, 8)),
]


def sweep():
    rows = []
    for name, g in CASES:
        sync_net = Network(g)
        sync_metrics = sync_net.run(lambda ctx: BFSTreeProgram(ctx, 0))
        sync_depths = sync_net.output_field("depth")

        async_net, completion = run_synchronized(
            g, lambda ctx: BFSTreeProgram(ctx, 0), seed=7
        )
        alpha_depths = {
            v: p.output.get("depth") for v, p in async_net.programs.items()
        }
        assert alpha_depths == sync_depths
        pulses = max(
            p.pulses_at_halt
            for p in async_net.programs.values()
            if p.pulses_at_halt is not None
        )
        assert pulses <= sync_metrics.rounds + 2
        per_edge_per_pulse = async_net.message_count / (
            g.num_edges * max(pulses, 1)
        )
        rows.append(
            [
                name,
                sync_metrics.rounds,
                pulses,
                f"{completion:.1f}",
                f"{per_edge_per_pulse:.2f}",
            ]
        )
    return rows


@pytest.mark.benchmark(group="e13")
def test_e13_synchronizer_alpha(benchmark):
    rows = run_once(benchmark, sweep)
    emit(
        "E13",
        "BFS under synchroniser α: pulses track synchronous rounds",
        ["workload", "sync rounds", "alpha pulses", "virtual time",
         "msgs/edge/pulse"],
        rows,
    )
