"""E8 — Lemmas 4.1–4.3: SimpleMST builds a (k+1, n) spanning forest of
MST fragments in O(k) rounds (independent of n and Diam)."""

import pytest

from repro.core import simple_mst_forest
from repro.graphs import (
    assign_unique_weights,
    grid_graph,
    random_connected_graph,
    torus_graph,
)
from repro.mst import kruskal_mst
from repro.verify import check_spanning_forest

from .harness import emit, run_once

GRAPHS = [
    ("grid-16x16", assign_unique_weights(grid_graph(16, 16), seed=1)),
    ("torus-12x12", assign_unique_weights(torus_graph(12, 12), seed=2)),
    (
        "sparse-400",
        assign_unique_weights(random_connected_graph(400, 0.008, seed=3), seed=4),
    ),
]
KS = (1, 2, 4, 8, 16)


def sweep():
    rows = []
    for name, g in GRAPHS:
        mst = kruskal_mst(g)
        for k in KS:
            parents, fragments, net = simple_mst_forest(g, k)
            report = check_spanning_forest(g, fragments, sigma=k + 1)
            assert report, report.problems
            for v, p in parents.items():
                if p is not None:
                    assert (min(v, p), max(v, p)) in mst
            rows.append(
                [
                    name,
                    k,
                    len(fragments),
                    max(1, g.num_nodes // (k + 1)),
                    report.min_size,
                    net.metrics.rounds,
                    12 * (k + 1),
                ]
            )
    return rows


def n_independence():
    rows = []
    k = 8
    for n, seed in ((100, 1), (400, 2), (1600, 3)):
        g = assign_unique_weights(
            random_connected_graph(n, 4.0 / n, seed=seed), seed=seed + 10
        )
        _p, fragments, net = simple_mst_forest(g, k)
        rows.append([n, k, len(fragments), net.metrics.rounds])
    # The schedule depends only on k: identical round counts.
    assert len({row[3] for row in rows}) == 1
    return rows


@pytest.mark.benchmark(group="e08")
def test_e08_simplemst_guarantees(benchmark):
    rows = run_once(benchmark, sweep)
    emit(
        "E8",
        "SimpleMST (k+1, n) forest of MST fragments in O(k) rounds",
        ["workload", "k", "fragments", "max frags", "min size", "rounds",
         "~12(k+1)"],
        rows,
    )


@pytest.mark.benchmark(group="e08")
def test_e08_simplemst_n_independent(benchmark):
    rows = run_once(benchmark, n_independence)
    emit(
        "E8",
        "SimpleMST rounds independent of n (Lemma 4.1)",
        ["n", "k", "fragments", "rounds"],
        rows,
    )
