"""Load generator for `repro serve` (docs/service.md).

Drives a running server with concurrent keep-alive queries in two
phases — a *cold* pass touching every distinct cell once, then a
*warm* pass cycling the same cells through the result cache — and
prints the throughput report.  The CI ``serve-smoke`` job and manual
capacity checks use this; the committed ``serve_qps`` numbers in
BENCH_sim.json come from ``repro perf`` (same client, in-process
server).

Usage::

    PYTHONPATH=src python benchmarks/serve_load.py \\
        --port 8673 --spec tree:n=16 --distinct 8 \\
        --total 1000 --concurrency 100 --json

Exit status is non-zero when any request failed.
"""

import argparse
import json
import sys

from repro.serve import query_body, run_load


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="drive a running `repro serve` with concurrent "
                    "cold + warm queries"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8673)
    parser.add_argument("--workload", default="kdom")
    parser.add_argument("--spec", default="tree:n=16",
                        help="graph spec every query uses "
                             "(default: tree:n=16)")
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument("--distinct", type=int, default=8,
                        help="distinct cells (seeds 0..N-1); the cold "
                             "phase computes each once")
    parser.add_argument("--total", type=int, default=1000,
                        help="warm-phase queries cycled over the "
                             "distinct cells (default: 1000)")
    parser.add_argument("--concurrency", type=int, default=100,
                        help="concurrent keep-alive connections "
                             "(default: 100)")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON instead of text")
    args = parser.parse_args(argv)

    bodies = [
        query_body(args.workload, args.spec, seed, args.k)
        for seed in range(args.distinct)
    ]
    cold = run_load(
        args.host, args.port, bodies,
        concurrency=min(args.concurrency, args.distinct),
    )
    warm = run_load(
        args.host, args.port,
        [bodies[i % args.distinct] for i in range(args.total)],
        concurrency=args.concurrency,
    )
    report = {"distinct_cells": args.distinct, "cold": cold, "warm": warm}
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for phase in ("cold", "warm"):
            stats = report[phase]
            print(
                f"{phase}: {stats['requests']} queries in "
                f"{stats['seconds']:.3f}s = {stats['qps']:.0f} q/s "
                f"(errors {stats['errors']}, "
                f"p95 {stats['latency_p95_ms']:.1f}ms)"
            )
    return 1 if (cold["errors"] or warm["errors"]) else 0


if __name__ == "__main__":
    sys.exit(main())
