"""E4 — Lemma 3.4: DOM_Partition_1(k) gives |C| >= k+1, Rad <= 4k^2 in
O(k^2 log* n) time."""

import pytest

from repro.core import dom_partition_1
from repro.graphs import RootedTree, path_graph, random_tree
from repro.verify import check_partition

from .harness import emit, run_once

TREES = [
    ("random-tree-600", random_tree(600, seed=1)),
    ("path-600", path_graph(600)),
]
KS = (1, 2, 4, 8, 16)


def sweep():
    rows = []
    for name, g in TREES:
        rt = RootedTree.from_graph(g, 0)
        for k in KS:
            partition, staged = dom_partition_1(g, 0, rt.parent, k)
            report = check_partition(
                g, partition, min_cluster_size=k + 1,
                max_cluster_radius=max(4 * k * k, 1),
            )
            assert report, report.problems
            rows.append(
                [
                    name,
                    k,
                    partition.num_clusters,
                    report.min_size,
                    report.max_radius,
                    max(4 * k * k, 1),
                    staged.total_rounds,
                ]
            )
    return rows


@pytest.mark.benchmark(group="e04")
def test_e04_partition1(benchmark):
    rows = run_once(benchmark, sweep)
    emit(
        "E4",
        "DOM_Partition_1: cluster size/radius vs Lemma 3.4 bounds",
        ["workload", "k", "clusters", "min|C|", "maxRad", "4k^2", "rounds"],
        rows,
    )
