"""E9 — Theorem 4.4: FastDOM_G on general graphs — size bound, radius-k
partition, O(k log* n) rounds with the per-stage breakdown."""

import pytest

from repro.core import fastdom_graph
from repro.graphs import (
    assign_unique_weights,
    cycle_graph,
    grid_graph,
    random_connected_graph,
    torus_graph,
)
from repro.verify import is_k_dominating, meets_size_bound

from .harness import emit, run_once

GRAPHS = [
    ("grid-16x16", assign_unique_weights(grid_graph(16, 16), seed=1)),
    ("torus-10x10", assign_unique_weights(torus_graph(10, 10), seed=2)),
    ("ring-256", assign_unique_weights(cycle_graph(256), seed=3)),
    (
        "dense-200",
        assign_unique_weights(random_connected_graph(200, 0.08, seed=4), seed=5),
    ),
]
KS = (1, 2, 4, 8)


def sweep():
    rows = []
    for name, g in GRAPHS:
        n = g.num_nodes
        for k in KS:
            dominators, partition, staged = fastdom_graph(g, k)
            assert meets_size_bound(n, k, len(dominators))
            assert is_k_dominating(g, dominators, k)
            breakdown = staged.breakdown()
            rows.append(
                [
                    name,
                    k,
                    len(dominators),
                    max(1, n // (k + 1)),
                    breakdown.get("simple-mst", 0),
                    breakdown.get("fastdom-per-fragment", 0),
                    staged.total_rounds,
                ]
            )
    return rows


@pytest.mark.benchmark(group="e09")
def test_e09_fastdom_graph(benchmark):
    rows = run_once(benchmark, sweep)
    emit(
        "E9",
        "FastDOM_G on general graphs (Theorem 4.4)",
        ["workload", "k", "|D|", "bound", "simpleMST", "per-fragment",
         "total rounds"],
        rows,
    )
