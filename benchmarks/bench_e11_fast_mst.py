"""E11 — Theorem 5.6: Fast-MST runs in O(sqrt(n) log* n + Diam) rounds.

The benchmark sweeps n on low-diameter random graphs and reports all
four algorithms (Fast-MST, GHS, pipeline-only, flood-collect), fits the
log-log growth exponents (expected ~0.5 for Fast-MST vs ~1.0 for the
linear baselines) and extrapolates the crossover points.  Every run's
output is checked against Kruskal.
"""

import math

import pytest

from repro.analysis import crossover_estimate, fit_exponent, log_star
from repro.graphs import assign_unique_weights, diameter, random_connected_graph
from repro.mst import (
    fast_mst,
    flood_collect_mst,
    ghs_mst,
    kruskal_mst,
    pipeline_only_mst,
)

from .harness import emit, note, run_once

SIZES = (64, 144, 256, 484)


def make_graph(n, seed):
    # ~6 average degree keeps the diameter small relative to n.
    return assign_unique_weights(
        random_connected_graph(n, 6.0 / n, seed=seed), seed=seed + 1
    )


def sweep():
    rows = []
    fast_points, ghs_points, pipe_points, flood_points = [], [], [], []
    for i, n in enumerate(SIZES):
        g = make_graph(n, seed=i)
        want = kruskal_mst(g)
        d_g = diameter(g)

        fast_edges, fast_staged, diag = fast_mst(g)
        assert fast_edges == want and diag["pipelining_violations"] == 0
        ghs_edges, ghs_metrics = ghs_mst(g)
        assert ghs_edges == want
        pipe_edges, pipe_staged = pipeline_only_mst(g)
        assert pipe_edges == want
        flood_edges, flood_staged = flood_collect_mst(g)
        assert flood_edges == want

        claim = math.sqrt(n) * log_star(n) + d_g
        fast_points.append((n, fast_staged.total_rounds))
        ghs_points.append((n, ghs_metrics.rounds))
        pipe_points.append((n, pipe_staged.total_rounds))
        flood_points.append((n, flood_staged.total_rounds))
        rows.append(
            [
                n,
                g.num_edges,
                d_g,
                fast_staged.total_rounds,
                f"{fast_staged.total_rounds / claim:.1f}",
                ghs_metrics.rounds,
                pipe_staged.total_rounds,
                flood_staged.total_rounds,
            ]
        )

    fast_exp = fit_exponent(fast_points)
    ghs_exp = fit_exponent(ghs_points)
    pipe_exp = fit_exponent(pipe_points)
    flood_exp = fit_exponent(flood_points)
    note(
        "E11",
        f"growth exponents: fast-mst {fast_exp:.2f} (claim ~0.5), "
        f"ghs {ghs_exp:.2f} (~1), pipeline-only {pipe_exp:.2f} (~1), "
        f"flood {flood_exp:.2f} (>=1)",
    )
    # Shape checks: Fast-MST grows strictly slower than the baselines.
    assert fast_exp < ghs_exp - 0.2
    assert fast_exp < pipe_exp - 0.15
    # GHS already loses to Fast-MST within the measured range.
    assert ghs_points[-1][1] > fast_points[-1][1]
    crossover_pipe = crossover_estimate(fast_points, pipe_points)
    note(
        "E11",
        f"extrapolated fast-mst vs pipeline-only crossover at n ~ "
        f"{crossover_pipe:.0f} (constants of the partition stage dominate "
        f"below that)",
    )
    return rows


def regular_sweep():
    """A second series on 4-regular expanders (diameter O(log n)), the
    cleanest testbed for the sqrt(n) vs n separation; GHS omitted at the
    largest size to keep the suite quick."""
    from repro.graphs import random_regular_graph

    rows = []
    fast_points, pipe_points = [], []
    for i, n in enumerate((64, 256, 576)):
        g = assign_unique_weights(random_regular_graph(n, 4, seed=i), seed=i + 9)
        want = kruskal_mst(g)
        d_g = diameter(g)
        fast_edges, fast_staged, diag = fast_mst(g)
        assert fast_edges == want
        pipe_edges, pipe_staged = pipeline_only_mst(g)
        assert pipe_edges == want
        fast_points.append((n, fast_staged.total_rounds))
        pipe_points.append((n, pipe_staged.total_rounds))
        rows.append(
            [n, d_g, fast_staged.total_rounds, pipe_staged.total_rounds]
        )
    fast_exp = fit_exponent(fast_points)
    pipe_exp = fit_exponent(pipe_points)
    note(
        "E11",
        f"regular-graph exponents: fast-mst {fast_exp:.2f}, "
        f"pipeline-only {pipe_exp:.2f}; crossover ~ "
        f"{crossover_estimate(fast_points, pipe_points):.0f}",
    )
    assert fast_exp < pipe_exp - 0.15
    return rows


@pytest.mark.benchmark(group="e11")
def test_e11_fast_mst_vs_baselines(benchmark):
    rows = run_once(benchmark, sweep)
    emit(
        "E11",
        "MST round counts: Fast-MST vs GHS vs pipeline-only vs flood",
        ["n", "m", "Diam", "fast-mst", "fast/(sqrt(n)log*n+D)", "ghs",
         "pipeline-only", "flood"],
        rows,
    )


@pytest.mark.benchmark(group="e11")
def test_e11_regular_graph_series(benchmark):
    rows = run_once(benchmark, regular_sweep)
    emit(
        "E11",
        "Fast-MST vs pipeline-only on 4-regular expanders",
        ["n", "Diam", "fast-mst", "pipeline-only"],
        rows,
    )
