"""E2 — Lemma 2.3: Algorithm DiamDOM decides within 5*Diam(G) + k rounds,
with the k + 1 censuses fully pipelined (no edge collisions — enforced
by the simulator's congestion checker)."""

import pytest

from repro.core import diam_dom
from repro.graphs import (
    balanced_tree,
    diameter,
    grid_graph,
    path_graph,
    random_tree,
)

from .harness import emit, run_once

CASES = [
    ("path-128", path_graph(128)),
    ("path-512", path_graph(512)),
    ("binary-tree-h9", balanced_tree(2, 9)),
    ("random-tree-400", random_tree(400, seed=2)),
    ("grid-12x12", grid_graph(12, 12)),
]
KS = (1, 4, 16)


def sweep():
    rows = []
    for name, g in CASES:
        d_g = diameter(g)
        for k in KS:
            _d, _lvl, _counts, net = diam_dom(g, 0, k)
            decision = net.programs[0].output["decision_round"]
            _d2, _l2, _c2, net2 = diam_dom(g, 0, k, staggered_by_level=True)
            staggered = net2.programs[0].output["decision_round"]
            bound = 5 * d_g + k
            assert decision <= bound + 5, (name, k, decision, bound)
            assert staggered <= decision
            rows.append(
                [name, g.num_nodes, d_g, k, decision, staggered, bound,
                 f"{decision / bound:.2f}"]
            )
    return rows


@pytest.mark.benchmark(group="e02")
def test_e02_diamdom_timing(benchmark):
    rows = run_once(benchmark, sweep)
    emit(
        "E2",
        "DiamDOM decision round vs the 5*Diam + k bound (Lemma 2.3; "
        "'staggered' = the remark's level-staggered schedule)",
        ["workload", "n", "Diam", "k", "decision", "staggered", "bound",
         "ratio"],
        rows,
    )
