"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one claim table (EXPERIMENTS.md records the
outcomes).  Tables are printed to stdout and appended to
``benchmarks/results/<experiment>.txt`` so that
``pytest benchmarks/ --benchmark-only`` leaves a full record on disk
even with captured output.
"""

from __future__ import annotations

import atexit
import os
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.analysis import banner, format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# One persistent worker pool for the whole benchmark process: every
# process-backend sweep_map reuses it, so a run of several experiment
# sweeps pays worker startup once.  Created on first use, closed at
# interpreter exit.
_SHARED_POOL = None


def _shared_pool(workers: Optional[int]):
    global _SHARED_POOL
    if _SHARED_POOL is None:
        from repro.batch import SharedPool

        _SHARED_POOL = SharedPool(workers)
        atexit.register(_SHARED_POOL.close)
    return _SHARED_POOL


def emit(experiment: str, title: str, headers: Sequence[str], rows) -> str:
    """Render, print, and persist one claim table."""
    text = banner(f"{experiment}: {title}") + "\n" + format_table(headers, rows)
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "a") as handle:
        handle.write(text + "\n")
    return text


def note(experiment: str, message: str) -> None:
    print(f"[{experiment}] {message}")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{experiment}.txt"), "a") as handle:
        handle.write(f"[{experiment}] {message}\n")


def sweep_map(fn: Callable[[Any], Any], cells: Iterable[Any]) -> List[Any]:
    """Map a benchmark's cell function over its parameter grid.

    The experiments' sweeps (E01–E16) opt into process-parallel
    execution through the environment, keeping default runs inline and
    deterministic:

    * ``REPRO_SWEEP_BACKEND=process`` fans cells across the process's
      persistent :class:`~repro.batch.pool.SharedPool`; ``fn`` and the
      cells must then be picklable (module-level functions, plain
      data).
    * ``REPRO_SWEEP_WORKERS=N`` bounds the pool (default: CPU count).

    Results always come back in submission order, so tables render
    identically under either backend.
    """
    backend = os.environ.get("REPRO_SWEEP_BACKEND", "inline")
    workers_text = os.environ.get("REPRO_SWEEP_WORKERS", "")
    workers = int(workers_text) if workers_text else None
    from repro.batch import map_submission_order

    pool = _shared_pool(workers) if backend == "process" else None
    return map_submission_order(
        fn, cells, backend=backend, workers=workers, pool=pool
    )


def run_once(benchmark, fn):
    """Run a deterministic simulation exactly once under pytest-benchmark.

    The simulations are deterministic and individually heavy; repeated
    timing adds nothing, so one round/iteration is the right contract.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
