"""E1 — Lemma 2.1 / Corollary 3.9(a): |D| <= max(1, floor(n / (k+1))).

Regenerates the size-bound table across tree and graph families and k.
"""

import pytest

from repro.core import fastdom_graph, fastdom_tree
from repro.graphs import (
    RootedTree,
    assign_unique_weights,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_tree,
    star_graph,
    torus_graph,
)
from repro.verify import is_k_dominating, meets_size_bound

from .harness import emit, run_once

TREES = [
    ("path-256", path_graph(256)),
    ("star-256", star_graph(256)),
    ("random-tree-512", random_tree(512, seed=1)),
]
GRAPHS = [
    ("grid-16x16", assign_unique_weights(grid_graph(16, 16), seed=2)),
    ("torus-12x12", assign_unique_weights(torus_graph(12, 12), seed=3)),
    (
        "sparse-random-300",
        assign_unique_weights(random_connected_graph(300, 0.01, seed=4), seed=5),
    ),
]
KS = (1, 2, 4, 8, 16)


def sweep():
    rows = []
    for name, g in TREES:
        rt = RootedTree.from_graph(g, 0)
        for k in KS:
            if g.num_nodes < k + 1:
                continue
            d, _p, _s = fastdom_tree(g, 0, rt.parent, k)
            bound = max(1, g.num_nodes // (k + 1))
            assert meets_size_bound(g.num_nodes, k, len(d))
            assert is_k_dominating(g, d, k)
            rows.append(
                [name, g.num_nodes, k, len(d), bound, f"{len(d) / bound:.2f}"]
            )
    for name, g in GRAPHS:
        for k in KS:
            if g.num_nodes < k + 1:
                continue
            d, _p, _s = fastdom_graph(g, k)
            bound = max(1, g.num_nodes // (k + 1))
            assert meets_size_bound(g.num_nodes, k, len(d))
            assert is_k_dominating(g, d, k)
            rows.append(
                [name, g.num_nodes, k, len(d), bound, f"{len(d) / bound:.2f}"]
            )
    return rows


@pytest.mark.benchmark(group="e01")
def test_e01_size_bound(benchmark):
    rows = run_once(benchmark, sweep)
    emit(
        "E1",
        "k-dominating set size vs the Lemma 2.1 bound",
        ["workload", "n", "k", "|D|", "bound", "|D|/bound"],
        rows,
    )
