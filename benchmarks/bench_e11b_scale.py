"""E11b — the crossover, measured (not extrapolated).

At laptop scale the constant-heavy partition stage makes Fast-MST lose
to the O(n + Diam) pipeline-only baseline for small n; this benchmark
pushes n to 2048 on the same low-diameter family, where the baseline's
linear growth catches up: 1935 → 3422 rounds (n = 1024 → 2048) against
Fast-MST's ~4270 flat, putting the crossover just past n ≈ 2048 —
consistent with E11's power-law extrapolation (~3100).  GHS is omitted
(its O(n) rounds × n nodes makes the simulation itself quadratic).
"""

import pytest

from repro.graphs import assign_unique_weights, diameter, random_connected_graph
from repro.mst import fast_mst, kruskal_mst, pipeline_only_mst

from .harness import emit, note, run_once

SIZES = (1024, 2048)


def sweep():
    rows = []
    gap = {}
    for n in SIZES:
        g = assign_unique_weights(
            random_connected_graph(n, 6.0 / n, seed=3), seed=4
        )
        want = kruskal_mst(g)
        fast_edges, fast_staged, diag = fast_mst(g)
        assert fast_edges == want and diag["pipelining_violations"] == 0
        pipe_edges, pipe_staged = pipeline_only_mst(g)
        assert pipe_edges == want
        gap[n] = pipe_staged.total_rounds / fast_staged.total_rounds
        rows.append(
            [
                n,
                diameter(g),
                fast_staged.total_rounds,
                pipe_staged.total_rounds,
                f"{gap[n]:.2f}",
            ]
        )
    # The baseline closes in as n doubles: the ratio pipeline/fast must
    # grow (it crosses 1.0 just past this range).
    assert gap[2048] > gap[1024]
    note(
        "E11",
        f"scale probe: pipeline-only/fast-mst round ratio grows "
        f"{gap[1024]:.2f} -> {gap[2048]:.2f} as n doubles; crossover "
        f"imminent past n = 2048",
    )
    return rows


@pytest.mark.benchmark(group="e11")
def test_e11b_crossover_at_scale(benchmark):
    rows = run_once(benchmark, sweep)
    emit(
        "E11",
        "scale probe: the O(n + D) baseline catches up to Fast-MST",
        ["n", "Diam", "fast-mst", "pipeline-only", "pipe/fast"],
        rows,
    )
