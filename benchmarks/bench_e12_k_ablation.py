"""E12 — ablation of the k = sqrt(n) choice in Fast-MST (§5.2).

Sweeping k on a fixed graph shows the two stages trade off: small k
leaves many fragments for the pipeline (stage 2 pays O(n/k)); large k
makes the partition stage pay O(k log* n).  The paper's k = sqrt(n)
sits near the minimum.
"""

import math

import pytest

from repro.graphs import assign_unique_weights, random_connected_graph
from repro.mst import fast_mst, kruskal_mst

from .harness import emit, note, run_once, sweep_map

N = 400

KS = (2, 5, 10, 20, 40, 80)


def _e12_cell(args):
    """One k of the ablation (module-level so the cell is picklable and
    the sweep can fan across workers via REPRO_SWEEP_BACKEND=process)."""
    g, want, k = args
    edges, staged, diag = fast_mst(g, k=k)
    breakdown = staged.breakdown()
    stage1 = (
        breakdown.get("simple-mst", 0)
        + breakdown.get("dom-partition", 0)
        + breakdown.get("cluster-id-wave", 0)
    )
    stage2 = breakdown.get("bfs-tree", 0) + breakdown.get("pipeline", 0)
    return [k, diag["clusters"], stage1, stage2, staged.total_rounds,
            edges == want]


def sweep():
    g = assign_unique_weights(
        random_connected_graph(N, 6.0 / N, seed=9), seed=10
    )
    want = kruskal_mst(g)
    cells = sweep_map(_e12_cell, [(g, want, k) for k in KS])
    rows = []
    totals = {}
    for k, clusters, stage1, stage2, total, exact in cells:
        assert exact
        totals[k] = total
        rows.append([k, clusters, stage1, stage2, total])
    sqrt_n = round(math.sqrt(N))
    best_k = min(totals, key=totals.get)
    note(
        "E12",
        f"best k in sweep = {best_k}; paper's asymptotic choice sqrt(n) = "
        f"{sqrt_n}; rounds at best = {totals[best_k]}.  The partition "
        f"stage costs ~c*k*log*(n) with c >> 1 in this implementation, so "
        f"the empirical optimum sits at ~sqrt(n/c) — the asymptotic "
        f"tradeoff (stage 1 grows with k, stage 2 shrinks with k) is what "
        f"the table demonstrates.",
    )
    # Stage 1 must grow with k and stage 2 must shrink with k — the
    # tradeoff the paper balances at k = sqrt(n).
    stage1 = {row[0]: row[2] for row in rows}
    stage2 = {row[0]: row[3] for row in rows}
    assert stage1[80] > stage1[2]
    assert stage2[2] > stage2[80]
    # The big-k extreme loses badly to the best choice.
    assert totals[80] > 2 * totals[best_k]
    return rows


@pytest.mark.benchmark(group="e12")
def test_e12_k_ablation(benchmark):
    rows = run_once(benchmark, sweep)
    emit(
        "E12",
        f"Fast-MST k-ablation on n={N} (paper: k = sqrt(n))",
        ["k", "clusters", "stage1 rounds", "stage2 rounds", "total"],
        rows,
    )
