"""E6 — Lemmas 3.7/3.8: the fast DOM_Partition(k) keeps the 5k+2 radius
and k+1 size guarantees in O(k log* n) time.

The second table isolates the Lemma 3.8 shape: for fixed k the rounds
are flat in n; for fixed n they grow linearly in k (not k log k).
"""

import pytest

from repro.analysis import fit_exponent
from repro.core import dom_partition
from repro.graphs import RootedTree, path_graph, random_tree
from repro.verify import check_partition

from .harness import emit, note, run_once

KS = (1, 2, 4, 8, 16, 32)


def guarantee_sweep():
    rows = []
    for name, g in [
        ("random-tree-600", random_tree(600, seed=1)),
        ("path-600", path_graph(600)),
    ]:
        rt = RootedTree.from_graph(g, 0)
        for k in KS:
            partition, staged = dom_partition(g, 0, rt.parent, k)
            report = check_partition(
                g, partition, min_cluster_size=k + 1,
                max_cluster_radius=5 * k + 2,
            )
            assert report, report.problems
            rows.append(
                [
                    name,
                    k,
                    partition.num_clusters,
                    report.min_size,
                    report.max_radius,
                    5 * k + 2,
                    staged.total_rounds,
                ]
            )
    return rows


def scaling_sweep():
    rows = []
    # rounds vs k at fixed n
    g = path_graph(4096)
    rt = RootedTree.from_graph(g, 0)
    k_points = []
    for k in (4, 8, 16, 32, 64):
        _p, staged = dom_partition(g, 0, rt.parent, k)
        k_points.append((k, staged.total_rounds))
        rows.append(["path-4096 (k sweep)", k, 4096, staged.total_rounds])
    exponent = fit_exponent(k_points)
    note("E6", f"rounds-vs-k growth exponent {exponent:.2f} (claim: ~1.0)")
    assert exponent <= 1.45
    # rounds vs n at fixed k
    n_points = []
    for n in (512, 2048, 8192):
        g = random_tree(n, seed=n)
        rt = RootedTree.from_graph(g, 0)
        _p, staged = dom_partition(g, 0, rt.parent, 8)
        n_points.append((n, staged.total_rounds))
        rows.append(["random-tree (n sweep, k=8)", 8, n, staged.total_rounds])
    assert n_points[-1][1] <= n_points[0][1] * 1.4 + 20
    return rows


@pytest.mark.benchmark(group="e06")
def test_e06_partition_fast_guarantees(benchmark):
    rows = run_once(benchmark, guarantee_sweep)
    emit(
        "E6",
        "fast DOM_Partition: cluster size/radius vs Lemma 3.7 bounds",
        ["workload", "k", "clusters", "min|C|", "maxRad", "5k+2", "rounds"],
        rows,
    )


@pytest.mark.benchmark(group="e06")
def test_e06_partition_fast_scaling(benchmark):
    rows = run_once(benchmark, scaling_sweep)
    emit(
        "E6",
        "fast DOM_Partition: O(k log* n) round scaling (Lemma 3.8)",
        ["sweep", "k", "n", "rounds"],
        rows,
    )
