"""E16 — fault injection: degradation and the price of reliability.

The paper's bounds assume a perfectly reliable synchronous network
(§1.2).  This experiment measures what that assumption is worth: three
workloads (the BFS engine of Procedure Initialize, the tree k-domination
DP behind the partition stage, and the census-style convergecast that
Pipeline generalises) run under seeded message loss, raw and wrapped in
the ack/retransmit :class:`ReliableProgram` channels.  Reported per
loss rate: round and message overhead of the reliable wrapper relative
to the fault-free baseline, and whether the raw protocol survives at
all.  A final scenario crashes a dominator and shows `verify.resilience`
flagging the broken coverage bound.

Fast mode (CI smoke): ``python benchmarks/bench_e16_faults.py --fast``.

Importing this module also registers the ``e16-reliable`` sweep
workload, so the same measurement runs under the grid runner::

    python -m repro sweep --import benchmarks.bench_e16_faults \
        --workload e16-reliable --spec random:n=36,p=0.12 \
        --seeds 0,1 --ks 2,5 --out e16.jsonl

(the cell's ``k`` encodes the loss rate as k percent).
"""

import os
import sys

import pytest

from repro.batch.registry import register_workload
from repro.core.kdom_tree import TreeKDomProgram
from repro.graphs import path_graph, random_connected_graph, random_tree
from repro.graphs.distances import bfs_tree
from repro.primitives.bfs import BFSTreeProgram
from repro.primitives.convergecast import ConvergecastProgram, sum_combiner
from repro.sim import (
    DEFAULT_WORD_LIMIT,
    RELIABLE_HEADER_WORDS,
    FaultConfig,
    FaultInjector,
    Network,
    make_reliable,
)
from repro.verify import is_k_dominating, surviving_kdomination

if __package__:
    from .harness import emit, note, run_once
else:  # executed as a script (CI smoke mode)
    sys.path.insert(0, os.path.dirname(__file__))
    from harness import emit, note, run_once

LOSS_RATES = (0.0, 0.02, 0.05, 0.10)
FAST_LOSS_RATES = (0.0, 0.02, 0.05, 0.10)  # same sweep, smaller graphs
K = 2
RAW_BUDGET = 400
RELIABLE_BUDGET = 20000


def _fast() -> bool:
    return os.environ.get("REPRO_FAST", "") not in ("", "0")


def make_workloads(fast: bool):
    """Return [(name, graph, program factory, checker)]."""
    n_graph, n_tree = (36, 40) if fast else (96, 120)
    workloads = []

    g = random_connected_graph(n_graph, 4.0 / n_graph, seed=11)
    root = min(g.nodes, key=str)

    def check_bfs(net):
        parents = net.output_field("parent")
        assert len(parents) == g.num_nodes and parents[root] is None

    workloads.append(
        ("bfs", g, lambda ctx: BFSTreeProgram(ctx, root), check_bfs)
    )

    t = random_tree(n_tree, seed=12)
    t_root = min(t.nodes, key=str)
    _dist, t_parent = bfs_tree(t, t_root)

    def check_partition(net):
        flags = net.output_field("in_dominating_set")
        dominators = {v for v, flag in flags.items() if flag}
        assert is_k_dominating(t, dominators, K)
        assert len(dominators) <= max(1, t.num_nodes // (K + 1))

    workloads.append(
        (
            "partition",
            t,
            lambda ctx: TreeKDomProgram(ctx, t_root, t_parent, K),
            check_partition,
        )
    )

    t2 = random_tree(n_tree + 7, seed=13)
    t2_root = min(t2.nodes, key=str)
    _dist, t2_parent = bfs_tree(t2, t2_root)

    def check_pipeline(net):
        assert net.programs[t2_root].output["aggregate"] == t2.num_nodes

    workloads.append(
        (
            "pipeline",
            t2,
            lambda ctx: ConvergecastProgram(
                ctx, t2_root, t2_parent, 1, sum_combiner
            ),
            check_pipeline,
        )
    )
    return workloads


def run_case(graph, factory, loss, reliable, seed, max_rounds):
    """One execution; returns (metrics, network, completed)."""
    faults = (
        FaultInjector(FaultConfig(drop_rate=loss, seed=seed))
        if loss
        else None
    )
    word_limit = DEFAULT_WORD_LIMIT + (
        RELIABLE_HEADER_WORDS if reliable else 0
    )
    network = Network(graph, word_limit=word_limit, faults=faults)
    wrapped = make_reliable(factory) if reliable else factory
    result = network.run(wrapped, max_rounds=max_rounds)
    if faults is None:
        return result, network, result.all_halted
    return result.metrics, network, result.completed


@register_workload("e16-reliable")
def _workload_e16_reliable(graph, cell):
    """Reliable-wrapper overhead for BFS at drop rate ``cell.k`` percent."""
    loss = cell.k / 100.0
    root = min(graph.nodes, key=str)
    factory = lambda ctx: BFSTreeProgram(ctx, root)  # noqa: E731
    base, _base_net, base_ok = run_case(graph, factory, 0.0, False, 0, RAW_BUDGET)
    assert base_ok
    _raw, _raw_net, raw_ok = run_case(graph, factory, loss, False, 17, RAW_BUDGET)
    reliable, _rel_net, reliable_ok = run_case(
        graph, factory, loss, True, 17, RELIABLE_BUDGET
    )
    return {
        "n": graph.num_nodes,
        "loss": loss,
        "base_rounds": base.rounds,
        "base_messages": base.messages,
        "reliable_rounds": reliable.rounds,
        "reliable_messages": reliable.messages,
        "reliable_ok": bool(reliable_ok),
        "raw_survives": bool(raw_ok),
        "round_overhead": round(reliable.rounds / base.rounds, 2),
    }


def sweep(fast: bool):
    rows = []
    rates = FAST_LOSS_RATES if fast else LOSS_RATES
    for name, graph, factory, check in make_workloads(fast):
        base, base_net, base_ok = run_case(
            graph, factory, 0.0, False, 0, RAW_BUDGET
        )
        assert base_ok
        check(base_net)
        for loss in rates:
            _raw, _raw_net, raw_ok = run_case(
                graph, factory, loss, False, 17, RAW_BUDGET
            )
            reliable, reliable_net, reliable_ok = run_case(
                graph, factory, loss, True, 17, RELIABLE_BUDGET
            )
            # The reliable wrapper must mask every loss rate we sweep —
            # completion AND a correct output are the regression gate.
            assert reliable_ok
            check(reliable_net)
            rows.append(
                [
                    name,
                    graph.num_nodes,
                    loss,
                    base.rounds,
                    base.messages,
                    reliable.rounds,
                    reliable.messages,
                    f"{reliable.rounds / base.rounds:.2f}x",
                    f"{reliable.messages / base.messages:.2f}x",
                    "yes" if raw_ok else "NO",
                ]
            )
    return rows


HEADERS = [
    "workload",
    "n",
    "loss",
    "base rounds",
    "base msgs",
    "rel rounds",
    "rel msgs",
    "round ovh",
    "msg ovh",
    "raw survives",
]


def crash_scenario():
    """Crash a dominator: the raw output breaks the coverage bound."""
    tree = path_graph(10)
    _dist, parent_of = bfs_tree(tree, 0)
    injector = FaultInjector(FaultConfig(crashes={7: 4}, seed=0))
    network = Network(tree, faults=injector)
    report = network.run(
        lambda ctx: TreeKDomProgram(ctx, 0, parent_of, K), max_rounds=RAW_BUDGET
    )
    flags = network.output_field("in_dominating_set")
    dominators = {v for v, flag in flags.items() if flag}
    resilience = surviving_kdomination(
        tree, dominators, K, crashed=report.crashed()
    )
    assert not resilience.ok, "crashing a dominator must break coverage"
    return dominators, report, resilience


@pytest.mark.benchmark(group="e16")
def test_e16_loss_sweep(benchmark):
    rows = run_once(benchmark, lambda: sweep(_fast()))
    emit(
        "E16",
        "reliable-channel overhead vs the fault-free baseline",
        HEADERS,
        rows,
    )


@pytest.mark.benchmark(group="e16")
def test_e16_crash_violation(benchmark):
    dominators, report, resilience = run_once(benchmark, crash_scenario)
    note(
        "E16",
        f"crash-stop of dominator 7 on path(10): raw output "
        f"D={sorted(dominators)} -> {resilience.summary()}",
    )


if __name__ == "__main__":
    fast = "--fast" in sys.argv or _fast()
    emit(
        "E16",
        "reliable-channel overhead vs the fault-free baseline"
        + (" [fast]" if fast else ""),
        HEADERS,
        sweep(fast),
    )
    dominators, _report, resilience = crash_scenario()
    note(
        "E16",
        f"crash-stop of dominator 7 on path(10): raw output "
        f"D={sorted(dominators)} -> {resilience.summary()}",
    )
    print("E16 ok")
