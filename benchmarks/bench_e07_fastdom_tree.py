"""E7 — Theorem 3.2: FastDOM_T computes a k-dominating set of size at
most n/(k+1) on trees in O(k log* n) rounds."""

import pytest

from repro.analysis import log_star
from repro.core import fastdom_tree
from repro.graphs import RootedTree, broom_tree, path_graph, random_tree, star_graph
from repro.verify import is_k_dominating, meets_size_bound

from .harness import emit, run_once

TREES = [
    ("path-512", path_graph(512)),
    ("star-512", star_graph(512)),
    ("random-tree-512", random_tree(512, seed=3)),
    ("broom-256+256", broom_tree(256, 256)),
]
KS = (1, 2, 4, 8, 16)


def sweep():
    rows = []
    for name, g in TREES:
        rt = RootedTree.from_graph(g, 0)
        n = g.num_nodes
        for k in KS:
            dominators, partition, staged = fastdom_tree(g, 0, rt.parent, k)
            assert meets_size_bound(n, k, len(dominators))
            assert is_k_dominating(g, dominators, k)
            assert partition.max_radius_in_graph(g) <= k
            rows.append(
                [
                    name,
                    k,
                    len(dominators),
                    max(1, n // (k + 1)),
                    staged.total_rounds,
                ]
            )
    return rows


def scaling():
    rows = []
    k = 8
    points = []
    for n in (256, 1024, 4096):
        g = random_tree(n, seed=n)
        rt = RootedTree.from_graph(g, 0)
        _d, _p, staged = fastdom_tree(g, 0, rt.parent, k)
        points.append((n, staged.total_rounds))
        rows.append([n, log_star(n), k, staged.total_rounds])
    assert points[-1][1] <= points[0][1] * 1.4 + 20
    return rows


@pytest.mark.benchmark(group="e07")
def test_e07_fastdom_tree_guarantees(benchmark):
    rows = run_once(benchmark, sweep)
    emit(
        "E7",
        "FastDOM_T size and rounds (Theorem 3.2)",
        ["workload", "k", "|D|", "bound", "rounds"],
        rows,
    )


@pytest.mark.benchmark(group="e07")
def test_e07_fastdom_tree_scaling(benchmark):
    rows = run_once(benchmark, scaling)
    emit(
        "E7",
        "FastDOM_T rounds flat in n for fixed k (O(k log* n))",
        ["n", "log*(n)", "k", "rounds"],
        rows,
    )
