"""Engine perf smoke suite — thin wrapper over :mod:`repro.perf`.

Run from a checkout::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--fast] [--profile]

Equivalent to ``python -m repro perf``; see docs/performance.md for the
workload definitions and the BENCH_sim.json schema.
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["perf"] + sys.argv[1:]))
