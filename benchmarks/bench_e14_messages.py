"""E14 — communication cost (what §1.2 explicitly ignores).

"We shall follow the common trend of stripping away unessential
complications.  In particular, we ignore the communication cost of our
algorithm (i.e., the number of messages it uses)."  This experiment
quantifies that choice: total messages sent by the physical
message-passing stages of each MST algorithm, and by FastDOM_G, across
a size sweep.  (Fast-MST's contracted-tree bookkeeping exchanges are
round-charged, not message-counted — see DESIGN.md §2; the dominant
streams, SimpleMST + BFS + Pipeline, are counted exactly.)
"""

import pytest

from repro.core import fastdom_graph
from repro.graphs import assign_unique_weights, random_connected_graph
from repro.mst import fast_mst, flood_collect_mst, ghs_mst, pipeline_only_mst

from .harness import emit, run_once

SIZES = (64, 144, 256)


def make_graph(n, seed):
    return assign_unique_weights(
        random_connected_graph(n, 6.0 / n, seed=seed), seed=seed + 1
    )


def mst_sweep():
    rows = []
    for i, n in enumerate(SIZES):
        g = make_graph(n, seed=i)
        _e1, fast_staged, _d = fast_mst(g)
        _e2, ghs_metrics = ghs_mst(g)
        _e3, pipe_staged = pipeline_only_mst(g)
        _e4, flood_staged = flood_collect_mst(g)
        rows.append(
            [
                n,
                g.num_edges,
                fast_staged.total_messages,
                ghs_metrics.traffic.messages,
                pipe_staged.total_messages,
                flood_staged.total_messages,
            ]
        )
    # The classic time/message tradeoff, visible in the data: GHS is
    # message-frugal (its original selling point was O(m + n log n)
    # messages) while the pipelined collection pays Θ(N·n) messages to
    # broadcast the N-1 selected edges down every subtree.  Fast-MST
    # sits in between: its N = O(sqrt n) clusters shrink the broadcast.
    assert all(row[4] > row[3] for row in rows)  # pipeline-only > ghs
    assert all(row[2] < row[4] for row in rows)  # fast-mst < pipeline-only
    return rows


def kdom_sweep():
    rows = []
    for i, n in enumerate(SIZES):
        g = make_graph(n, seed=10 + i)
        for k in (2, 8):
            _d, _p, staged = fastdom_graph(g, k)
            rows.append([n, k, staged.total_messages, staged.total_rounds])
    return rows


@pytest.mark.benchmark(group="e14")
def test_e14_mst_messages(benchmark):
    rows = run_once(benchmark, mst_sweep)
    emit(
        "E14",
        "MST message totals (the cost §1.2 ignores)",
        ["n", "m", "fast-mst", "ghs", "pipeline-only", "flood"],
        rows,
    )


@pytest.mark.benchmark(group="e14")
def test_e14_fastdom_messages(benchmark):
    rows = run_once(benchmark, kdom_sweep)
    emit(
        "E14",
        "FastDOM_G message totals",
        ["n", "k", "messages", "rounds"],
        rows,
    )
