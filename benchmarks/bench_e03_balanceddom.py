"""E3 — Lemma 3.3: BalancedDOM runs in O(log* n) rounds.

The table shows round counts staying essentially flat while n grows by
three orders of magnitude, and the Definition 3.1 properties holding.
"""

import pytest

from repro.analysis import log_star
from repro.core import balanced_dom
from repro.graphs import RootedTree, random_tree
from repro.verify import is_dominating

from .harness import emit, run_once

SIZES = (32, 128, 512, 2048, 8192)


def sweep():
    rows = []
    rounds_seen = []
    for n in SIZES:
        g = random_tree(n, seed=n)
        rt = RootedTree.from_graph(g, 0)
        dominators, partition, net = balanced_dom(g, rt.parent)
        assert is_dominating(g, dominators)
        assert len(dominators) <= n // 2
        assert partition.min_cluster_size() >= 2
        rounds_seen.append(net.metrics.rounds)
        rows.append(
            [n, log_star(n), net.metrics.rounds, len(dominators), n // 2]
        )
    # Flatness: 256x more nodes may add only O(1) rounds.
    assert rounds_seen[-1] - rounds_seen[0] <= 5
    return rows


@pytest.mark.benchmark(group="e03")
def test_e03_balanced_dom_rounds(benchmark):
    rows = run_once(benchmark, sweep)
    emit(
        "E3",
        "BalancedDOM rounds stay O(log* n) (Lemma 3.3)",
        ["n", "log*(n)", "rounds", "|D|", "floor(n/2)"],
        rows,
    )
