"""E5 — Lemmas 3.5/3.6: DOM_Partition_2(k) gives |C| >= k+1,
Rad <= 5k+2 in O(k log k log* n) time."""

import pytest

from repro.core import dom_partition_2
from repro.graphs import RootedTree, broom_tree, path_graph, random_tree
from repro.verify import check_partition

from .harness import emit, run_once

TREES = [
    ("random-tree-600", random_tree(600, seed=1)),
    ("path-600", path_graph(600)),
    ("broom-300+300", broom_tree(300, 300)),
]
KS = (1, 2, 4, 8, 16, 32)


def sweep():
    rows = []
    for name, g in TREES:
        rt = RootedTree.from_graph(g, 0)
        for k in KS:
            if g.num_nodes < k + 1:
                continue
            partition, staged = dom_partition_2(g, 0, rt.parent, k)
            report = check_partition(
                g, partition, min_cluster_size=k + 1,
                max_cluster_radius=5 * k + 2,
            )
            assert report, report.problems
            rows.append(
                [
                    name,
                    k,
                    partition.num_clusters,
                    report.min_size,
                    report.max_radius,
                    5 * k + 2,
                    staged.total_rounds,
                ]
            )
    return rows


@pytest.mark.benchmark(group="e05")
def test_e05_partition2(benchmark):
    rows = run_once(benchmark, sweep)
    emit(
        "E5",
        "DOM_Partition_2: cluster size/radius vs Lemma 3.6 bounds",
        ["workload", "k", "clusters", "min|C|", "maxRad", "5k+2", "rounds"],
        rows,
    )
