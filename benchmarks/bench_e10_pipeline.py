"""E10 — §5.1 (Lemmas 5.1–5.5): Procedure Pipeline is fully pipelined
(zero stalls / ordering violations), finishes in O(N + Diam) rounds, and
produces the exact fragment-graph MST.  The ablation row disables the
cycle elimination, showing the Θ(m + Diam) cost the red rule avoids.
"""

import pytest

from repro.core import simple_mst_forest
from repro.graphs import (
    assign_unique_weights,
    cycle_graph,
    diameter,
    grid_graph,
    random_connected_graph,
)
from repro.mst import kruskal_mst, run_pipeline
from repro.obs import TraceBuffer, observe

from .harness import emit, run_once

GRAPHS = [
    ("grid-14x14", assign_unique_weights(grid_graph(14, 14), seed=1)),
    ("ring-200", assign_unique_weights(cycle_graph(200), seed=2)),
    (
        "dense-150",
        assign_unique_weights(random_connected_graph(150, 0.15, seed=3), seed=4),
    ),
]


def fragments_for(graph, k):
    parents, fragments, _net = simple_mst_forest(graph, k)
    fragment_of = {}
    for fragment in fragments:
        root = min(fragment, key=str)
        for v in fragment:
            fragment_of[v] = root
    tree_edges = {
        (min(v, p), max(v, p)) for v, p in parents.items() if p is not None
    }
    return fragment_of, tree_edges, len(fragments)


def edg_stalls(buffer):
    """Lemma 5.3 check against the engine's event stream: per node, the
    rounds carrying "EDG" upcasts must form a contiguous range — a gap
    is a stall the lemma proves cannot happen.  Unlike the programs' own
    ``pipelining_violations`` counters (self-reporting) or the old
    ``traced()`` monkey-patch wrapper (which shadowed ``send``), this
    reads what the engine actually did.
    """
    send_rounds = {}
    for event in buffer.events:
        if event["kind"] == "send" and event["payload"][0] == "EDG":
            send_rounds.setdefault(event["node"], set()).add(event["round"])
    stalls = {}
    for node, rounds in send_rounds.items():
        missing = [
            r for r in range(min(rounds), max(rounds) + 1) if r not in rounds
        ]
        if missing:
            stalls[node] = missing
    return stalls


def sweep():
    rows = []
    for name, g in GRAPHS:
        d_g = diameter(g)
        fragment_of, tree_edges, n_fragments = fragments_for(g, 7)
        buffer = TraceBuffer()
        with observe(buffer):
            selected, staged, net = run_pipeline(g, fragment_of)
        combined = tree_edges | {(min(a, b), max(a, b)) for a, b in selected}
        assert combined == kruskal_mst(g)
        stream_stalls = edg_stalls(buffer)
        assert stream_stalls == {}, stream_stalls
        order = sum(o["order_violations"] for o in net.outputs().values())
        self_reported = sum(
            o["pipelining_violations"] for o in net.outputs().values()
        )
        assert self_reported == 0 and order == 0
        rows.append(
            [
                name,
                n_fragments,
                d_g,
                staged.total_rounds,
                6 * (n_fragments + d_g) + 30,
                len(stream_stalls),
                order,
            ]
        )
    return rows


def ablation():
    rows = []
    g = assign_unique_weights(random_connected_graph(120, 0.3, seed=5), seed=6)
    frag = {v: v for v in g.nodes}
    _s, staged_red, _n = run_pipeline(g, frag)
    _s2, staged_all, _n2 = run_pipeline(g, frag, eliminate_cycles=False)
    rows.append(["red rule on (Θ(N + D))", g.num_edges, staged_red.total_rounds])
    rows.append(["red rule off (Θ(m + D))", g.num_edges, staged_all.total_rounds])
    assert staged_all.total_rounds > staged_red.total_rounds
    return rows


@pytest.mark.benchmark(group="e10")
def test_e10_pipeline(benchmark):
    rows = run_once(benchmark, sweep)
    emit(
        "E10",
        "Pipeline: exact MST, zero stalls, O(N + Diam) rounds",
        ["workload", "N frags", "Diam", "rounds", "~6(N+D)", "stalls",
         "order viol."],
        rows,
    )


@pytest.mark.benchmark(group="e10")
def test_e10_red_rule_ablation(benchmark):
    rows = run_once(benchmark, ablation)
    emit(
        "E10",
        "cycle-elimination ablation (dense graph, singleton fragments)",
        ["variant", "m", "rounds"],
        rows,
    )
