"""Cluster-based routing with sparse tables, in the style of [PU].

The paper's first listed application (§1.1): the [PU] routing scheme
partitions the network into radius-k clusters around a k-dominating
set; "the new construction can serve to speed up the preprocessing
stage of that routing scheme".  This module implements the routing
data structures that consume the FastDOM_G output:

* every node stores its dominator and a next-hop toward it;
* every node stores a next-hop for each *member of its own cluster*
  (local detail);
* every dominator stores a next-hop toward every other dominator
  (the inter-cluster backbone).

A message from ``s`` to ``t`` travels ``s -> dom(s) -> dom(t) -> t``
unless ``t`` lies in ``s``'s own cluster, in which case it goes direct.
Stretch is bounded by ``(dist(s, t) + 4k) / dist(s, t)``; table sizes
are ``O(cluster)`` at members and ``O(cluster + n / (k + 1))`` at
dominators instead of Θ(n) everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..core.fastdom_graph import fastdom_graph
from ..graphs.distances import bfs_distances, bfs_tree
from ..graphs.graph import Graph
from ..graphs.partition import Partition


@dataclass
class RouteResult:
    path: List[Any]
    hops: int
    shortest: int

    @property
    def stretch(self) -> float:
        if self.shortest == 0:
            return 1.0
        return self.hops / self.shortest


class ClusterRouting:
    """Routing tables built from a k-dominating set and its partition."""

    def __init__(self, graph: Graph, dominators, partition: Partition, k: int):
        self.graph = graph
        self.k = k
        self.dominators = set(dominators)
        self.center_of: Dict[Any, Any] = dict(partition.center_of)
        # next_hop[v][target] -> neighbour of v on a shortest path.
        self._tables: Dict[Any, Dict[Any, Any]] = {v: {} for v in graph.nodes}
        self._build()

    # -- construction -----------------------------------------------------
    def _build(self) -> None:
        # Backbone: every node keeps a next hop toward every dominator
        # (n / (k + 1) entries per node — the sparse part of the
        # tradeoff; classic shortest-path routing would keep n - 1).
        for target in sorted(self.dominators, key=str):
            _dist, parent = bfs_tree(self.graph, target)
            for v in self.graph.nodes:
                if v != target:
                    self._tables[v][target] = parent[v]
        # Local detail: for each node t, install entries for t along
        # the shortest path from t's dominator to t (length <= k), so a
        # message that reached dom(t) can descend to t.
        for t in sorted(self.graph.nodes, key=str):
            center = self.center_of[t]
            if center == t:
                continue
            _dist, parent = bfs_tree(self.graph, t)
            position = center
            while position != t:
                next_hop = parent[position]
                self._tables[position][t] = next_hop
                position = next_hop

    # -- queries ------------------------------------------------------------
    def table_size(self, v: Any) -> int:
        return len(self._tables[v])

    def max_table_size(self) -> int:
        return max(self.table_size(v) for v in self.graph.nodes)

    def total_table_size(self) -> int:
        return sum(self.table_size(v) for v in self.graph.nodes)

    def route(self, source: Any, target: Any) -> RouteResult:
        """Simulate forwarding from source to target."""
        if source == target:
            return RouteResult([source], 0, 0)
        waypoints = self._waypoints(source, target)
        path = [source]
        position = source
        for waypoint in waypoints:
            while position != waypoint:
                next_hop = self._tables[position].get(waypoint)
                if next_hop is None:
                    raise RuntimeError(
                        f"routing hole at {position} toward {waypoint}"
                    )
                position = next_hop
                path.append(position)
        shortest = bfs_distances(self.graph, source)[target]
        return RouteResult(path, len(path) - 1, shortest)

    def _waypoints(self, source: Any, target: Any) -> List[Any]:
        # Route toward the target's dominator (every node knows a next
        # hop for it), then descend the installed dominator-to-member
        # path.  Total detour at most 2k over the shortest path.
        center = self.center_of[target]
        if center in (source, target):
            return [target]
        if self._tables[source].get(target) is not None:
            # Source happens to lie on the installed descent path.
            return [target]
        return [center, target]

    def average_stretch(self, pairs) -> float:
        stretches = [self.route(s, t).stretch for s, t in pairs if s != t]
        if not stretches:
            return 1.0
        return sum(stretches) / len(stretches)


def build_routing(graph: Graph, k: int) -> Tuple[ClusterRouting, int]:
    """Build cluster routing from FastDOM_G; returns (scheme, rounds
    spent in the distributed preprocessing stage)."""
    dominators, partition, staged = fastdom_graph(graph, k)
    return ClusterRouting(graph, dominators, partition, k), staged.total_rounds


def full_table_size(graph: Graph) -> int:
    """Baseline: classic shortest-path routing keeps n - 1 entries at
    every node."""
    n = graph.num_nodes
    return n * (n - 1)
