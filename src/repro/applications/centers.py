"""Network-centre selection / server placement (the [BKP] motivation).

"Such sets are useful for efficient selection of network centers for
server placement, where it is desired to ensure that each node in the
network is sufficiently close to some server" (§1.1).  Placing servers
on a k-dominating set guarantees cover radius <= k with at most
``n / (k + 1)`` servers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Set

from ..core.fastdom_graph import fastdom_graph
from ..graphs.distances import bfs_distances
from ..graphs.graph import Graph
from ..verify.dominating import domination_radius


@dataclass
class ServerPlacement:
    """A placement of servers with its service assignment."""

    servers: Set[Any]
    assignment: Dict[Any, Any]  # client -> serving server
    cover_radius: int
    rounds: int = 0

    @property
    def server_count(self) -> int:
        return len(self.servers)

    def load(self) -> Dict[Any, int]:
        """Clients served per server."""
        out: Dict[Any, int] = {s: 0 for s in self.servers}
        for _client, server in self.assignment.items():
            out[server] += 1
        return out

    def max_load(self) -> int:
        return max(self.load().values(), default=0)


def place_servers(graph: Graph, k: int) -> ServerPlacement:
    """Place servers on the FastDOM_G k-dominating set.

    Every client is assigned its cluster's dominator, at distance <= k.
    """
    dominators, partition, staged = fastdom_graph(graph, k)
    assignment = dict(partition.center_of)
    radius = domination_radius(graph, dominators)
    if radius is None or radius > k:
        raise RuntimeError("placement does not cover within k")
    return ServerPlacement(
        servers=dominators,
        assignment=assignment,
        cover_radius=radius,
        rounds=staged.total_rounds,
    )


def random_placement(graph: Graph, count: int, seed: int = 0) -> ServerPlacement:
    """Baseline: the same number of servers, placed uniformly at random.

    Used by examples/benchmarks to show that the dominating-set
    placement's cover radius is structurally guaranteed while a random
    one's is not.
    """
    if count < 1:
        raise ValueError("count >= 1 required")
    rng = random.Random(seed)
    nodes = sorted(graph.nodes, key=str)
    servers = set(rng.sample(nodes, min(count, len(nodes))))
    assignment: Dict[Any, Any] = {}
    best_dist: Dict[Any, int] = {}
    for server in sorted(servers, key=str):
        dist = bfs_distances(graph, server)
        for v, d in dist.items():
            if v not in best_dist or d < best_dist[v]:
                best_dist[v] = d
                assignment[v] = server
    radius = max(best_dist.values()) if best_dist else 0
    return ServerPlacement(
        servers=servers, assignment=assignment, cover_radius=radius
    )
