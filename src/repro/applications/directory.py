"""Distributed directory placement (the [P2] motivation).

"It is proposed that a set of k-dominating centers can be selected for
locating copies of a distributed directory" (§1.1).  Objects are
registered in directory copies placed on the k-dominating set; a
client's *nearest* copy is at distance at most k, so a lookup that hits
its local copy costs at most ``2k`` (there and back).  Misses are
forwarded to the object's *home* copy (hash-placed), bounding every
lookup by ``2k + backbone``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from ..core.fastdom_graph import fastdom_graph
from ..graphs.distances import bfs_distances
from ..graphs.graph import Graph


@dataclass
class LookupResult:
    value: Any
    hops: int
    hit_local_copy: bool


class DominatingSetDirectory:
    """A replicated directory with copies on a k-dominating set."""

    def __init__(self, graph: Graph, k: int):
        self.graph = graph
        self.k = k
        dominators, partition, staged = fastdom_graph(graph, k)
        self.copies: List[Any] = sorted(dominators, key=str)
        self.local_copy_of: Dict[Any, Any] = dict(partition.center_of)
        self.preprocessing_rounds = staged.total_rounds
        self._store: Dict[Any, Dict[str, Any]] = {c: {} for c in self.copies}
        self._dist_cache: Dict[Any, Dict[Any, int]] = {}

    # -- internals ---------------------------------------------------------
    def _dist(self, u: Any, v: Any) -> int:
        if u not in self._dist_cache:
            self._dist_cache[u] = bfs_distances(self.graph, u)
        return self._dist_cache[u][v]

    def home_of(self, name: str) -> Any:
        """Deterministic hash placement of an object's home copy."""
        index = sum(ord(ch) for ch in name) % len(self.copies)
        return self.copies[index]

    # -- operations ----------------------------------------------------------
    def publish(self, client: Any, name: str, value: Any) -> int:
        """Register an object: write to the local copy and the home copy.

        Returns the hop cost.
        """
        local = self.local_copy_of[client]
        home = self.home_of(name)
        self._store[local][name] = value
        cost = self._dist(client, local)
        if home != local:
            self._store[home][name] = value
            cost += self._dist(local, home)
        return cost

    def lookup(self, client: Any, name: str) -> LookupResult:
        """Resolve an object: local copy first, then the home copy."""
        local = self.local_copy_of[client]
        cost = self._dist(client, local)
        if name in self._store[local]:
            return LookupResult(self._store[local][name], 2 * cost, True)
        home = self.home_of(name)
        cost += self._dist(local, home)
        value = self._store[home].get(name)
        if value is None:
            raise KeyError(name)
        return LookupResult(value, cost + self._dist(home, client), False)

    def local_read_bound(self) -> int:
        """Every hit on the local copy costs at most 2k hops."""
        return 2 * self.k
