"""Applications from the paper's introduction: routing with sparse
tables [PU], centre selection [BKP], distributed directories [P2]."""

from .aggregates import MaxIdFloodProgram, count_nodes, leader_election
from .centers import ServerPlacement, place_servers, random_placement
from .directory import DominatingSetDirectory, LookupResult
from .routing import (
    ClusterRouting,
    RouteResult,
    build_routing,
    full_table_size,
)

__all__ = [
    "ClusterRouting",
    "MaxIdFloodProgram",
    "DominatingSetDirectory",
    "LookupResult",
    "RouteResult",
    "ServerPlacement",
    "build_routing",
    "count_nodes",
    "full_table_size",
    "leader_election",
    "place_servers",
    "random_placement",
]
