"""Global aggregate utilities: leader election and node counting.

The paper's toolbox ([A2] solves "minimum-weight spanning tree,
counting, leader election and related problems"; [P] gives
time-optimal leader election) makes these one-liners over the
primitives in this repository:

* :func:`leader_election` — a max-id flood: every node forwards the
  largest identifier it has heard; the wave stabilises after
  ``ecc(leader)`` rounds.  Termination is observed by network
  quiescence (no message in flight), the standard simulation-side
  stopping rule for stabilising protocols.
* :func:`count_nodes` — BFS tree + convergecast census from any root,
  in O(Diam) rounds (Procedure ``Initialize`` + ``Census`` machinery).
"""

from __future__ import annotations

from typing import Any, List, Tuple

from ..graphs.graph import Graph
from ..primitives.bfs import build_bfs_tree
from ..primitives.convergecast import sum_combiner, tree_convergecast
from ..sim.model import Envelope
from ..sim.network import Network
from ..sim.program import Context, NodeProgram
from ..sim.runner import StagedRun


class MaxIdFloodProgram(NodeProgram):
    """Forward the largest id heard so far; stabilises on the leader.

    Output: ``leader`` (the node's current belief).
    """

    # Message-driven: a node re-broadcasts only when its belief improves,
    # which can only happen on receipt.  (The driver's quiescence rule is
    # unaffected: scheduling never changes what is sent, only which idle
    # programs are invoked.)
    TICK_EVERY_ROUND = False

    def __init__(self, ctx: Context):
        super().__init__(ctx)
        self.best = ctx.node

    def on_start(self) -> None:
        self.output["leader"] = self.best
        self.broadcast("MAX", self.best)

    def on_round(self, inbox: List[Envelope]) -> None:
        improved = False
        for envelope in inbox:
            if envelope.tag() == "MAX" and envelope.payload[1] > self.best:
                self.best = envelope.payload[1]
                improved = True
        if improved:
            self.output["leader"] = self.best
            self.broadcast("MAX", self.best)


def leader_election(graph: Graph) -> Tuple[Any, int, "Network"]:
    """Elect the maximum-id node.

    Returns (leader, rounds until the wave stabilised, network).
    Every node's ``leader`` output agrees on the winner.
    """
    network = Network(graph)
    metrics = network.run(MaxIdFloodProgram, stop_when_quiet=True)
    beliefs = network.output_field("leader")
    leaders = set(beliefs.values())
    if len(leaders) != 1:  # pragma: no cover - flood guarantees agreement
        raise RuntimeError(f"election did not converge: {leaders!r}")
    return leaders.pop(), metrics.rounds, network


def count_nodes(graph: Graph, root: Any) -> Tuple[int, StagedRun]:
    """Count the network's nodes from ``root`` (BFS + convergecast)."""
    staged = StagedRun()
    parents, _depths, bfs_network = build_bfs_tree(graph, root)
    staged.record("bfs", bfs_network.metrics)
    total, cc_network = tree_convergecast(
        graph, root, parents, {v: 1 for v in graph.nodes}, sum_combiner
    )
    staged.record("census", cc_network.metrics)
    return total, staged
