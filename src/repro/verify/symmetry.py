"""Independent checkers for the symmetry-breaking substrate."""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from ..graphs.graph import Graph


def check_coloring(
    graph: Graph, colors: Dict[Any, int], palette_size: Optional[int] = None
) -> bool:
    """Proper colouring, optionally within a palette ``[0, size)``."""
    for v in graph.nodes:
        if v not in colors:
            return False
        if palette_size is not None and not 0 <= colors[v] < palette_size:
            return False
        for u in graph.neighbors(v):
            if colors.get(u) == colors[v]:
                return False
    return True


def check_mis(graph: Graph, mis: Set[Any]) -> bool:
    """Independent and maximal."""
    for v in mis:
        if any(u in mis for u in graph.neighbors(v)):
            return False
    for v in graph.nodes:
        if v not in mis and not any(u in mis for u in graph.neighbors(v)):
            return False
    return True


def check_matching(graph: Graph, partner: Dict[Any, Optional[Any]]) -> bool:
    """Mutual, edge-respecting, and maximal."""
    for v, p in partner.items():
        if p is None:
            continue
        if not graph.has_edge(v, p):
            return False
        if partner.get(p) != v:
            return False
    unmatched = {v for v, p in partner.items() if p is None}
    for v in unmatched:
        if any(u in unmatched for u in graph.neighbors(v)):
            return False
    return True
