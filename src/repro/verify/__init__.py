"""Independent verification layer: checkers for every claim class."""

from .dominating import (
    domination_radius,
    every_dominator_has_outside_neighbor,
    is_dominating,
    is_k_dominating,
    meets_size_bound,
)
from .mst import check_mst, check_mst_fragments, spanning_tree_weight
from .partition import PartitionReport, check_partition, check_spanning_forest
from .resilience import (
    ResilienceReport,
    check_run_report,
    nontermination_detectors,
    surviving_kdomination,
    surviving_partition,
)
from .symmetry import check_coloring, check_matching, check_mis

__all__ = [
    "PartitionReport",
    "ResilienceReport",
    "check_coloring",
    "check_matching",
    "check_mis",
    "check_mst",
    "check_mst_fragments",
    "check_partition",
    "check_run_report",
    "check_spanning_forest",
    "domination_radius",
    "every_dominator_has_outside_neighbor",
    "is_dominating",
    "is_k_dominating",
    "meets_size_bound",
    "nontermination_detectors",
    "spanning_tree_weight",
    "surviving_kdomination",
    "surviving_partition",
]
