"""Independent verification layer: checkers for every claim class."""

from .dominating import (
    domination_radius,
    every_dominator_has_outside_neighbor,
    is_dominating,
    is_k_dominating,
    meets_size_bound,
)
from .mst import check_mst, check_mst_fragments, spanning_tree_weight
from .partition import PartitionReport, check_partition, check_spanning_forest
from .symmetry import check_coloring, check_matching, check_mis

__all__ = [
    "PartitionReport",
    "check_coloring",
    "check_matching",
    "check_mis",
    "check_mst",
    "check_mst_fragments",
    "check_partition",
    "check_spanning_forest",
    "domination_radius",
    "every_dominator_has_outside_neighbor",
    "is_dominating",
    "is_k_dominating",
    "meets_size_bound",
    "spanning_tree_weight",
]
