"""Independent checkers for partition / spanning-forest structure."""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, List, Optional, Set

from ..graphs.graph import Graph
from ..graphs.partition import Partition


class PartitionReport:
    """Outcome of a full partition check (all fields or raise-free)."""

    def __init__(self) -> None:
        self.is_partition = True
        self.problems: List[str] = []
        self.min_size: Optional[int] = None
        self.max_radius: Optional[int] = None

    def fail(self, message: str) -> None:
        self.is_partition = False
        self.problems.append(message)

    def __bool__(self) -> bool:
        return self.is_partition


def check_partition(
    graph: Graph,
    partition: Partition,
    min_cluster_size: Optional[int] = None,
    max_cluster_radius: Optional[int] = None,
    require_connected: bool = True,
) -> PartitionReport:
    """Validate disjointness, coverage, and the paper's size/radius
    bounds (measured *inside* each cluster, per Definition 3.1)."""
    report = PartitionReport()
    seen: Set[Any] = set()
    sizes: List[int] = []
    radii: List[int] = []
    for cluster in partition:
        overlap = cluster.members & seen
        if overlap:
            report.fail(f"clusters overlap on {sorted(overlap, key=str)[:5]}")
        seen |= cluster.members
        sizes.append(cluster.size)
        if require_connected:
            try:
                radii.append(cluster.radius_in(graph))
            except ValueError as exc:
                report.fail(f"cluster {cluster.center}: {exc}")
    missing = set(graph.nodes) - seen
    if missing:
        report.fail(f"nodes uncovered: {sorted(missing, key=str)[:5]}")
    report.min_size = min(sizes) if sizes else None
    report.max_radius = max(radii) if radii else None
    if min_cluster_size is not None and sizes and min(sizes) < min_cluster_size:
        report.fail(
            f"cluster size {min(sizes)} below required {min_cluster_size}"
        )
    if (
        max_cluster_radius is not None
        and radii
        and max(radii) > max_cluster_radius
    ):
        report.fail(
            f"cluster radius {max(radii)} above allowed {max_cluster_radius}"
        )
    return report


def check_spanning_forest(
    graph: Graph,
    fragments: Iterable[Set[Any]],
    sigma: int,
    rho: Optional[int] = None,
) -> PartitionReport:
    """Definition 3.1 (the (σ, ρ) spanning forest): disjoint trees of
    graph edges spanning all nodes, each with at least σ nodes and
    radius at most ρ."""
    report = PartitionReport()
    seen: Set[Any] = set()
    sizes: List[int] = []
    for fragment in fragments:
        if fragment & seen:
            report.fail("fragments overlap")
        seen |= fragment
        sizes.append(len(fragment))
        if not _connected_within(graph, fragment):
            report.fail(f"fragment of size {len(fragment)} not connected")
    if seen != set(graph.nodes):
        report.fail("fragments do not span the graph")
    report.min_size = min(sizes) if sizes else None
    if sizes and min(sizes) < min(sigma, graph.num_nodes):
        report.fail(f"fragment size {min(sizes)} below sigma={sigma}")
    if rho is not None:
        worst = 0
        for fragment in fragments:
            worst = max(worst, _radius_within(graph, fragment))
        report.max_radius = worst
        if worst > rho:
            report.fail(f"fragment radius {worst} above rho={rho}")
    return report


def _connected_within(graph: Graph, members: Set[Any]) -> bool:
    if not members:
        return True
    start = next(iter(members))
    seen = {start}
    queue = deque([start])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u in members and u not in seen:
                seen.add(u)
                queue.append(u)
    return seen == members


def _radius_within(graph: Graph, members: Set[Any]) -> int:
    best = None
    for center in members:
        dist = {center: 0}
        queue = deque([center])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if u in members and u not in dist:
                    dist[u] = dist[v] + 1
                    queue.append(u)
        ecc = max(dist.values())
        if best is None or ecc < best:
            best = ecc
    return best or 0
