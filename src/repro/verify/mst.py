"""Independent MST checkers (spanning, acyclic, weight-optimal, and the
cut-property test for MST *fragments*)."""

from __future__ import annotations

from typing import Any, Iterable, Tuple

from ..graphs.graph import Graph
from ..graphs.validation import edges_form_spanning_tree
from ..mst.kruskal import kruskal_mst


def check_mst(graph: Graph, edges: Iterable[Tuple[Any, Any]]) -> bool:
    """Exact check: the edges are a spanning tree of minimum weight.

    With distinct weights the MST is unique, so this compares edge sets
    against Kruskal.
    """
    edge_set = {_canonical(u, v) for u, v in edges}
    if not edges_form_spanning_tree(graph, edge_set):
        return False
    return edge_set == kruskal_mst(graph)


def check_mst_fragments(
    graph: Graph, fragment_edge_sets: Iterable[Iterable[Tuple[Any, Any]]]
) -> bool:
    """Every fragment's edges are a subset of the (unique) MST."""
    mst = kruskal_mst(graph)
    for edges in fragment_edge_sets:
        for u, v in edges:
            if _canonical(u, v) not in mst:
                return False
    return True


def spanning_tree_weight(graph: Graph, edges: Iterable[Tuple[Any, Any]]) -> float:
    return sum(graph.weight(u, v) for u, v in edges)


def _canonical(u: Any, v: Any) -> Tuple[Any, Any]:
    try:
        return (u, v) if u < v else (v, u)
    except TypeError:
        return (u, v) if str(u) < str(v) else (v, u)
