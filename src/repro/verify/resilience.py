"""Resilience checkers: the paper's guarantees, restricted to survivors.

The paper proves |D| <= max(1, floor(n/(k+1))) and radius-<=k clusters
in a failure-free network.  Under crash-stop faults those bounds are
*not* promised — these checkers make the degradation observable.  Given
an algorithm's outputs and the set of crashed nodes, they re-evaluate
the claims on the surviving subgraph (coverage per surviving component,
distances measured through surviving nodes only, the size bound against
the surviving population) and report every violation, instead of
raising, so tests and benchmarks can assert either "still holds" or
"correctly detected as broken".

Like the rest of :mod:`repro.verify`, nothing here shares code with
the algorithms being checked.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Set

from ..graphs.graph import Graph


@dataclass
class ResilienceReport:
    """Outcome of one resilience check: what held, what broke."""

    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def __bool__(self) -> bool:
        return self.ok

    def note(self, message: str) -> None:
        self.checks.append(message)

    def fail(self, message: str) -> None:
        self.failures.append(message)

    def merged_with(self, other: "ResilienceReport") -> "ResilienceReport":
        return ResilienceReport(
            checks=self.checks + other.checks,
            failures=self.failures + other.failures,
        )

    def summary(self) -> str:
        if self.ok:
            return f"OK ({len(self.checks)} checks)"
        lines = [f"VIOLATIONS ({len(self.failures)}):"]
        lines.extend(f"  - {failure}" for failure in self.failures)
        return "\n".join(lines)


def _surviving_components(graph: Graph, alive: Set[Any]) -> List[Set[Any]]:
    """Connected components of the subgraph induced by ``alive``."""
    seen: Set[Any] = set()
    components: List[Set[Any]] = []
    for start in sorted(alive, key=str):
        if start in seen:
            continue
        component = {start}
        seen.add(start)
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if u in alive and u not in component:
                    component.add(u)
                    seen.add(u)
                    queue.append(u)
        components.append(component)
    return components


def _distances_from(
    graph: Graph, sources: Iterable[Any], alive: Set[Any]
) -> Dict[Any, int]:
    """BFS distances from ``sources`` through surviving nodes only."""
    dist: Dict[Any, int] = {}
    queue = deque()
    for source in sources:
        dist[source] = 0
        queue.append(source)
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u in alive and u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def surviving_kdomination(
    graph: Graph,
    dominators: Set[Any],
    k: int,
    crashed: Iterable[Any] = (),
    check_size_bound: bool = True,
) -> ResilienceReport:
    """Do the paper's k-domination claims hold on the survivors?

    Checks, per surviving connected component: some dominator survived
    there, and every survivor is within ``k`` hops of a surviving
    dominator *through surviving nodes*.  Optionally re-checks Lemma
    2.1's size bound against the surviving population.
    """
    report = ResilienceReport()
    crashed_set = set(crashed)
    alive = {v for v in graph.nodes if v not in crashed_set}
    live_dominators = {d for d in dominators if d in alive}
    if not alive:
        report.note("no survivors: claims hold vacuously")
        return report

    components = _surviving_components(graph, alive)
    report.note(
        f"{len(alive)} survivors in {len(components)} component(s), "
        f"{len(live_dominators)} surviving dominator(s)"
    )
    for component in components:
        local = live_dominators & component
        label = sorted(component, key=str)[:4]
        if not local:
            report.fail(
                f"surviving component containing {label} "
                f"({len(component)} nodes) has no surviving dominator"
            )
            continue
        dist = _distances_from(graph, sorted(local, key=str), component)
        uncovered = sorted(
            (v for v in component if dist.get(v, k + 1) > k), key=str
        )
        if uncovered:
            report.fail(
                f"nodes {uncovered} are farther than k={k} from every "
                f"surviving dominator (through surviving nodes)"
            )
        else:
            report.note(
                f"component containing {label}: all {len(component)} "
                f"nodes within {k} of a surviving dominator"
            )
    if check_size_bound:
        bound = max(1, len(alive) // (k + 1))
        if len(live_dominators) > bound:
            report.fail(
                f"|D| = {len(live_dominators)} among survivors exceeds "
                f"max(1, floor({len(alive)}/{k + 1})) = {bound}"
            )
        else:
            report.note(
                f"size bound holds: {len(live_dominators)} <= {bound}"
            )
    return report


def surviving_partition(
    graph: Graph,
    center_of: Dict[Any, Any],
    k: int,
    crashed: Iterable[Any] = (),
) -> ResilienceReport:
    """Is every survivor assigned to a surviving centre within k hops?"""
    report = ResilienceReport()
    crashed_set = set(crashed)
    alive = {v for v in graph.nodes if v not in crashed_set}
    unassigned = sorted(
        (v for v in alive if center_of.get(v) is None), key=str
    )
    if unassigned:
        report.fail(f"surviving nodes {unassigned} have no cluster centre")
    orphaned = sorted(
        (
            v
            for v in alive
            if center_of.get(v) is not None and center_of[v] in crashed_set
        ),
        key=str,
    )
    if orphaned:
        report.fail(
            f"surviving nodes {orphaned} are assigned to crashed centres"
        )
    centers: Dict[Any, List[Any]] = {}
    for v in alive:
        center = center_of.get(v)
        if center is not None and center not in crashed_set:
            centers.setdefault(center, []).append(v)
    for center in sorted(centers, key=str):
        members = centers[center]
        if center not in alive:
            report.fail(f"centre {center} is not a surviving graph node")
            continue
        dist = _distances_from(graph, [center], alive)
        far = sorted(
            (v for v in members if dist.get(v, k + 1) > k), key=str
        )
        if far:
            report.fail(
                f"cluster of {center}: members {far} are farther than "
                f"k={k} through surviving nodes"
            )
    if not report.failures:
        report.note(
            f"{len(alive)} survivors correctly clustered around "
            f"{len(centers)} surviving centres (radius <= {k})"
        )
    return report


def check_run_report(report) -> ResilienceReport:
    """Sanity-check a :class:`~repro.sim.faults.RunReport`.

    Fault-free runs (empty plan) must have completed with every node
    halted.  Faulty runs must leave no node silently stuck: a node may
    halt, crash, or remain running *only if* the run itself reports the
    failure (``completed`` false), which is what "detecting
    non-termination" means at the system level.
    """
    result = ResilienceReport()
    stuck = sorted(
        (v for v, s in report.node_states.items() if s == "running"), key=str
    )
    if not report.plan.events:
        if not report.completed or stuck:
            result.fail(
                f"fault-free run did not terminate cleanly: "
                f"completed={report.completed}, stuck={stuck}"
            )
        else:
            result.note("fault-free run completed with all nodes halted")
        return result
    if stuck and report.completed:
        result.fail(
            f"run claims completion but nodes {stuck} neither halted "
            f"nor crashed"
        )
    elif stuck:
        result.note(
            f"non-termination detected: {len(stuck)} node(s) stuck after "
            f"{len(report.plan.events)} injected fault(s)"
        )
    else:
        result.note(
            f"all survivors terminated despite "
            f"{len(report.plan.events)} injected fault(s)"
        )
    return result


def nontermination_detectors(outputs: Dict[Any, Dict[str, Any]]) -> Set[Any]:
    """Nodes whose reliable channels flagged an unreachable neighbour.

    ``outputs`` is ``Network.outputs()``; a node that exhausted its
    retransmission budget exposes ``reliable_gave_up`` — the local,
    in-model signal that the computation will not terminate globally.
    """
    return {
        v
        for v, output in outputs.items()
        if output.get("reliable_gave_up")
    }
