"""Independent checkers for dominating-set claims.

These are used by tests and benchmarks to validate the algorithms'
outputs against the paper's stated bounds; they deliberately share no
code with the algorithms themselves.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Optional, Set

from ..graphs.graph import Graph


def domination_radius(graph: Graph, dominators: Set[Any]) -> Optional[int]:
    """max over nodes of the distance to the nearest dominator, or
    ``None`` if some node cannot reach any dominator."""
    if not dominators:
        return None
    dist: Dict[Any, int] = {}
    queue = deque()
    for d in dominators:
        if d not in graph:
            raise ValueError(f"dominator {d} not a graph node")
        dist[d] = 0
        queue.append(d)
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    if len(dist) != graph.num_nodes:
        return None
    return max(dist.values())


def is_k_dominating(graph: Graph, dominators: Set[Any], k: int) -> bool:
    """Every node within distance k of some dominator (§1.2)."""
    radius = domination_radius(graph, dominators)
    return radius is not None and radius <= k


def meets_size_bound(n: int, k: int, size: int) -> bool:
    """Lemma 2.1's bound: ``|D| <= max(1, floor(n / (k + 1)))``."""
    return size <= max(1, n // (k + 1))


def is_dominating(graph: Graph, dominators: Set[Any]) -> bool:
    return is_k_dominating(graph, dominators, 1) or all(
        v in dominators or any(u in dominators for u in graph.neighbors(v))
        for v in graph.nodes
    )


def every_dominator_has_outside_neighbor(
    graph: Graph, dominators: Set[Any]
) -> bool:
    """The extra property of Lemma 3.2's output."""
    return all(
        any(u not in dominators for u in graph.neighbors(v))
        for v in dominators
    )
