"""kdom-as-a-service: the asyncio HTTP front-end on the sweep fabric.

``repro serve`` runs a long-lived process that answers graph-spec
queries — k-dominating set, partition, MST, anything in the workload
registry — over HTTP/JSON.  The server is deliberately *thin*: it is a
bounded result cache plus a request batcher in front of the exact same
deterministic execution path ``run_sweep`` uses, so a served response
body is byte-identical to the corresponding row of a finalized sweep
store (``canonical_line(row) + "\\n"``).  That equivalence is the core
contract; tests and the CI ``serve-smoke`` job ``cmp`` it.

Architecture (stdlib only — ``asyncio.start_server`` with a minimal
HTTP/1.1 loop, no ``http.server``):

* The **event-loop thread** parses requests, answers cache hits, and
  collapses concurrent identical queries onto one in-flight future
  (single-flight).  All cache and in-flight state is loop-confined.
* A **dispatcher thread** drains queued cells, batches whatever is
  pending, and runs the batch through
  :func:`~repro.batch.pool.imap_completion_order` — onto a persistent
  :class:`~repro.batch.pool.SharedPool` (``backend="process"``) or a
  worker-style inline loop (``backend="inline"``).  Results hop back to
  the loop via ``call_soon_threadsafe``.
* Server counters and latency histograms live on the **volatile plane**
  of one :class:`~repro.obs.telemetry.TelemetrySession`; ``/metrics``
  snapshots it and ``/status`` renders a ``repro-serve/1`` document in
  the style of the sweep status sidecar.

Endpoints: ``POST /query`` (also GET with querystring), ``GET
/status``, ``GET /metrics``, ``GET /workloads``.  Errors: 400 for bad
JSON / malformed specs (:class:`~repro.graphs.GraphSpecError`), 404
for unknown workloads (with did-you-mean) or paths, 503 while draining
or when the pool quarantines a cell (deadline/chaos).

Drain: SIGTERM/SIGINT stops accepting connections, waits for in-flight
queries, shuts the dispatcher and pool down, and exits 0.
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from ..graphs import GraphSpecError
from ..obs.telemetry import TelemetrySession, emit_span_event
from ..batch.cache import GraphCache
from ..batch.pool import (
    PoolCrashError,
    SharedPool,
    imap_completion_order,
)
from ..batch.registry import WorkloadError, get_workload, workload_names
from ..batch.status import fabric_tallies, format_duration
from ..batch.store import canonical_line
from ..batch.sweep import SweepCell, _process_cell, run_cell
from .cache import ResultCache

#: Version tag on every serve JSON document (status, metrics, errors).
SERVE_SCHEMA = "repro-serve/1"

#: HTTP reason phrases for the statuses the server emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: How long a drain waits for in-flight queries before giving up.
DRAIN_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class ServeConfig:
    """Configuration for one :class:`ReproServe` instance.

    ``port=0`` binds an ephemeral port (tests); ``backend="inline"``
    executes cells on the dispatcher thread itself — no worker
    processes, same rows — while ``"process"`` keeps a persistent
    :class:`~repro.batch.pool.SharedPool` hot for the server's
    lifetime.  ``deadline_s``/``max_attempts`` arm the pool's
    hung-worker watchdog per batch; ``chaos`` is the deterministic
    fault-injection hook the 503 tests use.
    """

    host: str = "127.0.0.1"
    port: int = 8673
    backend: str = "inline"
    workers: Optional[int] = None
    cache_size: int = 1024
    deadline_s: Optional[float] = None
    max_attempts: Optional[int] = None
    chaos: Optional[Any] = None


class QueryError(Exception):
    """A request rejected before dispatch (maps to an HTTP status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def serve_tallies(volatile_counters: Dict[str, Any]) -> Dict[str, int]:
    """Collapse ``serve_requests{...}`` counters into flat tallies,
    the way :func:`~repro.batch.status.fabric_tallies` does for the
    pool's counters."""
    tallies = {"hit": 0, "miss": 0, "flight": 0, "error": 0}
    prefix = "serve_requests{"
    for key, value in volatile_counters.items():
        if not (key.startswith(prefix) and key.endswith("}")):
            continue
        for label in key[len(prefix):-1].split(","):
            name, _, outcome = label.partition("=")
            if name == "outcome" and outcome in tallies:
                tallies[outcome] += int(value)
    tallies["total"] = sum(tallies.values())
    return tallies


def render_serve_status(doc: Dict[str, Any]) -> List[str]:
    """Human-readable lines for a serve status document."""
    requests = doc.get("requests", {})
    cache = doc.get("cache", {})
    tasks = doc.get("tasks", {})
    fabric = doc.get("fabric", {})
    lines = [
        f"serve: {str(doc.get('state', '?')).upper()} "
        f"backend={doc.get('backend', '?')} "
        f"workers={doc.get('workers', '?')} "
        f"uptime {format_duration(doc.get('uptime_s'))}"
    ]
    lines.append(
        f"  requests {requests.get('total', 0)} "
        f"(hit {requests.get('hit', 0)}, miss {requests.get('miss', 0)}, "
        f"flight {requests.get('flight', 0)}, "
        f"error {requests.get('error', 0)})"
    )
    lines.append(
        f"  cache {cache.get('size', 0)}/{cache.get('capacity', 0)} "
        f"entries (hits {cache.get('hits', 0)}, "
        f"misses {cache.get('misses', 0)}, "
        f"evictions {cache.get('evictions', 0)})"
    )
    lines.append(
        f"  tasks ok {tasks.get('ok', 0)}, error {tasks.get('error', 0)}, "
        f"quarantined {tasks.get('quarantined', 0)}; "
        f"inflight {doc.get('inflight', 0)}"
    )
    lines.append(
        f"  fabric dispatched {fabric.get('dispatched', 0)}, "
        f"completed {fabric.get('completed', 0)}, "
        f"retried {fabric.get('retried', 0)}, "
        f"respawns {fabric.get('respawns', 0)}"
    )
    return lines


def _as_int(doc: Dict[str, Any], name: str, default: int) -> int:
    """An integer field from a query document (str digits accepted —
    GET querystrings arrive as strings)."""
    value = doc.get(name, default)
    if isinstance(value, bool):
        raise QueryError(400, f"query field {name!r} must be an integer")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        try:
            return int(value, 10)
        except ValueError:
            pass
    raise QueryError(
        400, f"query field {name!r} must be an integer, got {value!r}"
    )


def build_cell(doc: Dict[str, Any]) -> Tuple[SweepCell, Optional[str]]:
    """Validate a query document into a cell + provider module.

    Raises :class:`QueryError` — 400 for malformed fields, 404 for an
    unknown workload (the registry message carries did-you-mean).
    Spec *contents* are validated where graphs are built (the worker),
    so a bad spec surfaces as a dispatched
    :class:`~repro.graphs.GraphSpecError` instead.
    """
    if not isinstance(doc, dict):
        raise QueryError(400, "query body must be a JSON object")
    spec = doc.get("spec")
    if not isinstance(spec, str) or not spec:
        raise QueryError(400, "query field 'spec' must be a graph spec string")
    name = doc.get("workload", "kdom")
    if not isinstance(name, str):
        raise QueryError(400, "query field 'workload' must be a string")
    try:
        workload = get_workload(name)
    except WorkloadError as exc:
        raise QueryError(404, str(exc))
    cell = SweepCell(
        workload=name,
        spec=spec,
        seed=_as_int(doc, "seed", 0),
        k=_as_int(doc, "k", 2),
    )
    return cell, workload.provider


def classify_failure(exc: BaseException) -> int:
    """HTTP status for an exception raised while executing a cell."""
    if isinstance(exc, GraphSpecError):
        return 400
    if isinstance(exc, WorkloadError):
        return 404
    return 500


class ReproServe:
    """One server instance: cache + single-flight + dispatcher.

    Lifecycle: construct, ``await start()`` on the serving loop, then
    ``await drain()`` to stop.  :func:`running_server` packages that
    for synchronous callers (tests, the perf harness);
    :func:`run_server` adds signal handling for the CLI.
    """

    def __init__(self, config: ServeConfig) -> None:
        if config.backend not in ("inline", "process"):
            raise ValueError(
                f"backend must be 'inline' or 'process', "
                f"got {config.backend!r}"
            )
        if config.chaos is not None and config.backend != "process":
            raise ValueError("chaos injection requires backend='process'")
        self.config = config
        self.state = "starting"
        self.session = TelemetrySession()
        self.cache = ResultCache(config.cache_size)
        self._registry = self.session.registry
        self._inflight: Dict[str, asyncio.Future] = {}
        self._tasks: "queue.Queue[Optional[Tuple[str, SweepCell, Optional[str]]]]" = (
            queue.Queue()
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._pool: Optional[SharedPool] = None
        self._graph_cache = GraphCache()
        self._writers: set = set()
        self._started_monotonic = 0.0
        self._request_seq = 0

    # -- lifecycle ---------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, start the dispatcher, begin serving."""
        self._loop = asyncio.get_running_loop()
        self._started_monotonic = time.monotonic()
        if self.config.backend == "process":
            self._pool = SharedPool(workers=self.config.workers)
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._thread.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.state = "running"

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binds)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def workers(self) -> int:
        """Worker processes actually executing cells (1 when inline)."""
        return self._pool.workers if self._pool is not None else 1

    async def drain(self) -> None:
        """Graceful stop: no new connections, finish in-flight queries,
        shut the dispatcher and pool down."""
        if self.state in ("draining", "stopped"):
            return
        self.state = "draining"
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + DRAIN_TIMEOUT_S
        while self._inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        self._tasks.put(None)
        if self._thread is not None:
            await self._loop.run_in_executor(None, self._thread.join)
        if self._pool is not None:
            self._pool.close()
        for writer in list(self._writers):
            writer.close()
        self.state = "stopped"

    # -- dispatcher thread -------------------------------------------

    def _dispatch_loop(self) -> None:
        """Drain the task queue in batches until the shutdown sentinel.

        Runs with the server's telemetry session ambient so the pool's
        fabric counters and ``run_cell``'s task spans accumulate in the
        same registry ``/metrics`` snapshots.  (The ambient stack is
        process-global: don't run a concurrent ``run_sweep`` in this
        process while the server is executing cells.)
        """
        with self.session.activate():
            while True:
                item = self._tasks.get()
                if item is None:
                    return
                batch = [item]
                while True:
                    try:
                        extra = self._tasks.get_nowait()
                    except queue.Empty:
                        break
                    if extra is None:
                        self._run_batch(batch)
                        return
                    batch.append(extra)
                self._run_batch(batch)

    def _run_batch(
        self, batch: List[Tuple[str, SweepCell, Optional[str]]]
    ) -> None:
        self._registry.histogram("serve_batch_cells", volatile=True).observe(
            len(batch)
        )
        if self.config.backend == "inline":
            for key, cell, provider in batch:
                try:
                    row = run_cell(cell, self._graph_cache, provider)
                except Exception as exc:
                    self._post(key, ("error", exc))
                else:
                    self._post(key, ("ok", row, None))
            return
        keys = [key for key, _cell, _provider in batch]
        items = [(cell, provider, None) for _key, cell, provider in batch]
        unresolved = set(keys)
        try:
            for position, state, payload in imap_completion_order(
                _process_cell,
                items,
                pool=self._pool,
                deadline_s=self.config.deadline_s,
                max_attempts=self.config.max_attempts,
                chaos=self.config.chaos,
            ):
                key = keys[position]
                unresolved.discard(key)
                if state == "ok":
                    self._post(
                        key, ("ok", payload["row"], payload["telemetry"])
                    )
                elif state == "quarantined":
                    self._post(key, ("quarantined", payload))
                else:
                    self._post(key, ("error", payload))
        except Exception as exc:  # PoolCrashError included: keep serving
            for key in unresolved:
                self._post(key, ("error", exc))

    def _post(self, key: str, outcome: Tuple[Any, ...]) -> None:
        """Hop a finished cell back to the event-loop thread."""
        self._loop.call_soon_threadsafe(self._resolve, key, outcome)

    # -- loop-thread resolution --------------------------------------

    def _resolve(self, key: str, outcome: Tuple[Any, ...]) -> None:
        kind = outcome[0]
        if kind == "ok":
            row, shipped = outcome[1], outcome[2]
            if shipped is not None:
                self.session.merge(shipped)
            body = (canonical_line(row) + "\n").encode("utf-8")
            self.cache.put(key, body)
            self._registry.gauge("serve_cache_entries", volatile=True).set(
                len(self.cache)
            )
            outcome = ("ok", body)
        self._registry.counter("serve_tasks", volatile=True).inc(
            1, state=kind
        )
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(outcome)

    # -- HTTP --------------------------------------------------------

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").split()
                if len(parts) != 3:
                    await self._respond(writer, 400, self._error_body(
                        400, "malformed request line"
                    ), close=True)
                    break
                method, target, version = parts
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length") or 0)
                except ValueError:
                    length = -1
                if length < 0:
                    await self._respond(writer, 400, self._error_body(
                        400, "bad Content-Length header"
                    ), close=True)
                    break
                body = await reader.readexactly(length) if length else b""
                keep_alive = (
                    version == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                    and self.state == "running"
                )
                status, payload, extra = await self._route(
                    method, target, body
                )
                await self._respond(
                    writer, status, payload, extra, close=not keep_alive
                )
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        extra: Tuple[Tuple[str, str], ...] = (),
        close: bool = False,
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
        )
        for name, value in extra:
            head += f"{name}: {value}\r\n"
        head += (
            "Connection: close\r\n\r\n"
            if close
            else "Connection: keep-alive\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    def _error_body(self, status: int, message: str, **extra: Any) -> bytes:
        self._registry.counter("serve_errors", volatile=True).inc(
            1, code=str(status)
        )
        doc = {"schema": SERVE_SCHEMA, "status": status, "error": message}
        doc.update(extra)
        return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, bytes, Tuple[Tuple[str, str], ...]]:
        split = urlsplit(target)
        path = split.path
        if path == "/query":
            if method == "POST":
                if body:
                    try:
                        doc = json.loads(body.decode("utf-8"))
                    except (UnicodeDecodeError, ValueError):
                        return 400, self._error_body(
                            400, "request body is not valid JSON"
                        ), ()
                else:
                    doc = dict(parse_qsl(split.query))
            elif method == "GET":
                doc = dict(parse_qsl(split.query))
            else:
                return 405, self._error_body(
                    405, f"{method} not allowed on /query"
                ), ()
            return await self._handle_query(doc)
        if method != "GET":
            return 405, self._error_body(
                405, f"{method} not allowed on {path}"
            ), ()
        if path == "/metrics":
            doc = {"schema": SERVE_SCHEMA, "document": "metrics"}
            doc.update(self.session.snapshot())
            return 200, (
                json.dumps(doc, sort_keys=True) + "\n"
            ).encode("utf-8"), ()
        if path == "/status":
            doc = self.status_document()
            return 200, (
                json.dumps(doc, sort_keys=True) + "\n"
            ).encode("utf-8"), ()
        if path == "/workloads":
            doc = {
                "schema": SERVE_SCHEMA,
                "document": "workloads",
                "workloads": list(workload_names()),
            }
            return 200, (
                json.dumps(doc, sort_keys=True) + "\n"
            ).encode("utf-8"), ()
        return 404, self._error_body(404, f"no such endpoint: {path}"), ()

    async def _handle_query(
        self, doc: Dict[str, Any]
    ) -> Tuple[int, bytes, Tuple[Tuple[str, str], ...]]:
        started = time.perf_counter()
        requests = self._registry.counter("serve_requests", volatile=True)
        self._request_seq += 1
        request_id = self._request_seq
        outcome = "error"
        key: Optional[str] = None
        try:
            if self.state != "running":
                return 503, self._error_body(
                    503, "server is draining"
                ), ()
            try:
                cell, provider = build_cell(doc)
            except QueryError as exc:
                return exc.status, self._error_body(
                    exc.status, str(exc)
                ), ()
            key = cell.key
            emit_span_event(
                "span_start",
                span=f"request:{key}#{request_id}",
                parent="",
                level="request",
                name=key,
            )
            cached = self.cache.get(key)
            if cached is not None:
                outcome = "hit"
                return 200, cached, (("X-Serve-Cache", "hit"),)
            future = self._inflight.get(key)
            if future is not None:
                outcome = "flight"
                flavor = "flight"
            else:
                outcome = "miss"
                flavor = "miss"
                future = self._loop.create_future()
                self._inflight[key] = future
                self._tasks.put((key, cell, provider))
            result = await future
            kind = result[0]
            if kind == "ok":
                return 200, result[1], (("X-Serve-Cache", flavor),)
            if kind == "quarantined":
                outcome = "error"
                info = result[1]
                tally = fabric_tallies(
                    self._registry.volatile_counters
                )["quarantined"]
                return 503, self._error_body(
                    503,
                    f"cell {key} quarantined after "
                    f"{info.get('attempts')} attempt(s) "
                    f"({info.get('reason')})",
                    quarantined=info,
                    quarantine_tally=tally,
                ), ()
            outcome = "error"
            exc = result[1]
            status = classify_failure(exc)
            return status, self._error_body(
                status, f"{type(exc).__name__}: {exc}"
            ), ()
        finally:
            requests.inc(1, endpoint="query", outcome=outcome)
            self._registry.histogram(
                "serve_request_seconds", volatile=True
            ).observe(time.perf_counter() - started, endpoint="query")
            if key is not None:
                emit_span_event(
                    "span_end", span=f"request:{key}#{request_id}"
                )

    # -- documents ---------------------------------------------------

    def status_document(self) -> Dict[str, Any]:
        """The ``/status`` JSON document (``repro-serve/1``)."""
        volatile = self._registry.volatile_counters
        tasks = {"ok": 0, "error": 0, "quarantined": 0}
        prefix = "serve_tasks{state="
        for key, value in volatile.items():
            if key.startswith(prefix) and key.endswith("}"):
                state = key[len(prefix):-1]
                if state in tasks:
                    tasks[state] += int(value)
        return {
            "schema": SERVE_SCHEMA,
            "document": "status",
            "state": self.state,
            "backend": self.config.backend,
            "workers": self.workers,
            "uptime_s": time.monotonic() - self._started_monotonic,
            "requests": serve_tallies(volatile),
            "tasks": tasks,
            "cache": self.cache.stats(),
            "inflight": len(self._inflight),
            "fabric": fabric_tallies(volatile),
            "workloads": list(workload_names()),
        }


def run_server(config: ServeConfig, echo=print) -> int:
    """Run a server until SIGTERM/SIGINT, then drain.  Returns 0.

    This is ``repro serve``: it prints a ready line once the socket is
    bound (the CI smoke job polls for it) and a drain line on the way
    out.
    """
    import signal

    async def main() -> None:
        server = ReproServe(config)
        await server.start()
        echo(
            f"{SERVE_SCHEMA} listening on "
            f"http://{config.host}:{server.port} "
            f"(backend={config.backend}, workers={server.workers}, "
            f"cache={config.cache_size})",
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        echo("draining: waiting for in-flight queries ...")
        await server.drain()
        echo("drained cleanly")

    asyncio.run(main())
    return 0


@contextmanager
def running_server(config: ServeConfig):
    """A live server on a background thread — for tests and the perf
    harness.  Yields the :class:`ReproServe`; drains on exit."""
    server = ReproServe(config)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: List[BaseException] = []

    def runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # surface bind errors to the caller
            failure.append(exc)
            started.set()
            return
        started.set()
        loop.run_forever()
        loop.run_until_complete(loop.shutdown_asyncgens())
        loop.close()

    thread = threading.Thread(
        target=runner, name="repro-serve-loop", daemon=True
    )
    thread.start()
    started.wait(timeout=10)
    if failure:
        raise failure[0]
    try:
        yield server
    finally:
        future = asyncio.run_coroutine_threadsafe(server.drain(), loop)
        future.result(timeout=DRAIN_TIMEOUT_S + 5)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
