"""Async load client for the query server.

``run_load`` drives many concurrent keep-alive connections at one
server, pulling query bodies from a shared iterator, and returns
throughput/latency/error aggregates.  It backs the ``benchmarks/
serve_load.py`` generator, the ``serve_qps`` perf workload, and the CI
``serve-smoke`` job — stdlib only, like the server.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple


def query_body(
    workload: str, spec: str, seed: int, k: int
) -> bytes:
    """The JSON body for one ``POST /query``."""
    return json.dumps(
        {"workload": workload, "spec": spec, "seed": seed, "k": k},
        sort_keys=True,
    ).encode("utf-8")


async def _request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    host: str,
    body: bytes,
) -> Tuple[int, bytes]:
    """One keep-alive POST /query round trip: (status, body)."""
    writer.write(
        (
            f"POST /query HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("latin-1")
        + body
    )
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionResetError("server closed the connection")
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    payload = await reader.readexactly(length) if length else b""
    return status, payload


async def load_async(
    host: str,
    port: int,
    bodies: Iterable[bytes],
    concurrency: int = 32,
) -> Dict[str, Any]:
    """Issue every body in ``bodies`` across ``concurrency``
    connections; return the aggregate report."""
    iterator = iter(bodies)
    latencies: List[float] = []
    statuses: Dict[int, int] = {}
    failures = 0

    async def worker() -> None:
        nonlocal failures
        reader, writer = await asyncio.open_connection(host, port)
        try:
            while True:
                try:
                    body = next(iterator)
                except StopIteration:
                    return
                begun = time.perf_counter()
                try:
                    status, _payload = await _request(
                        reader, writer, host, body
                    )
                except (
                    ConnectionResetError,
                    BrokenPipeError,
                    asyncio.IncompleteReadError,
                ):
                    failures += 1
                    return
                latencies.append(time.perf_counter() - begun)
                statuses[status] = statuses.get(status, 0) + 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    elapsed = time.perf_counter() - started
    total = sum(statuses.values())
    ordered = sorted(latencies)

    def quantile(q: float) -> Optional[float]:
        if not ordered:
            return None
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    errors = failures + sum(
        count for status, count in statuses.items() if status != 200
    )
    return {
        "requests": total,
        "seconds": elapsed,
        "qps": total / elapsed if elapsed > 0 else 0.0,
        "statuses": {str(s): c for s, c in sorted(statuses.items())},
        "errors": errors,
        "latency_p50_ms": (
            quantile(0.50) * 1000.0 if ordered else None
        ),
        "latency_p95_ms": (
            quantile(0.95) * 1000.0 if ordered else None
        ),
    }


def run_load(
    host: str,
    port: int,
    bodies: List[bytes],
    concurrency: int = 32,
) -> Dict[str, Any]:
    """Synchronous wrapper around :func:`load_async`."""
    return asyncio.run(
        load_async(host, port, bodies, concurrency=concurrency)
    )
