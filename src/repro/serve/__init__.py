"""kdom-as-a-service: the persistent query server (docs/service.md).

A long-lived ``repro serve`` process answers graph-spec queries over
HTTP/JSON from a bounded result cache in front of the sweep fabric —
responses are byte-identical to the rows a direct ``run_sweep`` of the
same ``(workload, spec, seed, k)`` cell produces.
"""

from .cache import ResultCache
from .client import load_async, query_body, run_load
from .server import (
    SERVE_SCHEMA,
    QueryError,
    ReproServe,
    ServeConfig,
    build_cell,
    classify_failure,
    render_serve_status,
    run_server,
    running_server,
    serve_tallies,
)

__all__ = [
    "SERVE_SCHEMA",
    "QueryError",
    "ReproServe",
    "ResultCache",
    "ServeConfig",
    "build_cell",
    "classify_failure",
    "load_async",
    "query_body",
    "render_serve_status",
    "run_load",
    "run_server",
    "running_server",
    "serve_tallies",
]
