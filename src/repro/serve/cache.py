"""Bounded LRU result cache for the query server.

Entries are the *serialized* response bytes — exactly
``canonical_line(row) + "\\n"``, the same bytes a finalized
:class:`~repro.batch.store.SweepStore` holds for that cell — keyed by
the provenance recipe ``cell_key((spec, seed, k, workload))``.  Caching
bytes rather than rows keeps the byte-identity contract trivially true
on the hit path: the server never re-serializes, it replays.

The cache is deliberately tiny and synchronous: it is only ever touched
from the server's event-loop thread, so there is no locking.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional


class ResultCache:
    """A bounded LRU mapping cell keys to canonical response bytes."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[bytes]:
        """The cached bytes for ``key`` (refreshing recency), or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, value: bytes) -> None:
        """Insert (or refresh) ``key``; evict the LRU entry at capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
