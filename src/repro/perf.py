"""Performance smoke suite for the CONGEST simulation engine.

Times the repository's representative workloads — BFS tree construction
on a path and a grid, ``FastDOM_T`` on a random tree, ``Fast-MST``
end to end, and a kdom sweep through :mod:`repro.batch` (the
sweep-throughput number) — and writes a machine-readable report
(``BENCH_sim.json`` by default).  The suite exists to catch *engine* regressions: each
workload is deterministic, so wall-clock changes track engine overhead,
not algorithmic variance.

Two sizes are provided: the full suite (the numbers quoted in
``docs/performance.md``) and ``--fast``, a seconds-scale variant meant
for CI.  A committed baseline (``benchmarks/perf_baseline.json``) gives
the regression gate: the run fails if any workload is slower than
``gate_factor`` (default 2.0) times its baseline best.  The generous
factor absorbs machine-to-machine variance while still catching
order-of-magnitude mistakes like losing the active-set scheduler.

The engine carries observability hook points (:mod:`repro.obs`) that
are supposed to cost nothing when no subscriber is attached.  ``--obs``
turns that claim into a measurement: it times every workload twice —
bare (no subscriber; the default numbers already are this
configuration) and with a :class:`~repro.obs.CountingSubscriber`
attached — records both in an ``"observability"`` report section, and
gates the bare numbers at :data:`OBS_GATE_FACTOR` (1.05, i.e. <= 5%
overhead) against the committed baseline instead of the loose default
factor.

The report also carries a ``"spec_dispatch"`` section
(:func:`measure_spec_dispatch`): the pickle bytes the process backend
ships per task under spec-based dispatch versus whole-network
shipping, keeping the saving quoted in ``docs/performance.md`` a
measured number rather than a claim.

Usage::

    python -m repro perf              # full suite -> BENCH_sim.json
    python -m repro perf --fast       # CI-sized, gated against baseline
    python -m repro perf --fast --obs # + observability overhead check
    python -m repro perf --profile    # cProfile the hottest workload
"""

from __future__ import annotations

import cProfile
import io
import json
import platform
import pstats
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .core.fastdom_tree import fastdom_tree
from .graphs import (
    RootedTree,
    assign_unique_weights,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_tree,
)
from .mst import fast_mst
from .primitives.bfs import build_bfs_tree

SCHEMA = "repro-perf-smoke/1"

#: Default report location (repository root when run from a checkout).
DEFAULT_OUTPUT = "BENCH_sim.json"

#: Default committed baseline used by the regression gate.
DEFAULT_BASELINE = "benchmarks/perf_baseline.json"

DEFAULT_GATE_FACTOR = 2.0

#: The no-subscriber observability overhead contract: with ``--obs``,
#: each workload's bare best must stay within 5% of the committed
#: baseline best (which was recorded on the same class of machine).
OBS_GATE_FACTOR = 1.05


def _bfs_path(n: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    graph = path_graph(n)
    return lambda: build_bfs_tree(graph, 0), {"n": n, "root": 0}


def _bfs_grid(side: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    graph = grid_graph(side, side)
    return lambda: build_bfs_tree(graph, 0), {"side": side, "root": 0}


def _fastdom_tree(n: int, k: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    tree = random_tree(n, seed=1)
    rooted = RootedTree.from_graph(tree, 0)
    parent = rooted.parent
    return lambda: fastdom_tree(tree, 0, parent, k), {"n": n, "k": k, "seed": 1}


def _fast_mst(n: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    graph = assign_unique_weights(
        random_connected_graph(n, 6.0 / n, seed=3), seed=4
    )
    return lambda: fast_mst(graph), {"n": n, "extra_edge_p": 6.0 / n, "seed": 3}


def _sweep_kdom(n: int, cells: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    """Sweep-throughput smoke: a kdom grid through repro.batch, inline.

    The inline backend is what a timing workload wants — no pool
    startup noise — and it shares every per-cell code path (cache,
    workload, metric merge) with the sharded backend, so a regression
    here is a regression in sweep throughput.  ``cells`` is
    seeds × ks on one tree spec.
    """
    from .batch import SweepGrid, run_sweep

    seeds = tuple(range(cells // 2))
    grid = SweepGrid(
        workload="kdom",
        specs=(f"tree:n={n}",),
        seeds=seeds,
        ks=(2, 4),
    )
    return (
        lambda: run_sweep(grid, store_path=None, backend="inline"),
        {"n": n, "cells": len(seeds) * 2, "workload": "kdom"},
    )


#: name -> (builder, full-size kwargs, fast-size kwargs).  Builders take
#: the size parameters and return (callable, recorded params).
WORKLOADS: Dict[str, Tuple[Callable[..., Any], Dict[str, Any], Dict[str, Any]]] = {
    "bfs_path": (_bfs_path, {"n": 2000}, {"n": 600}),
    "bfs_grid": (_bfs_grid, {"side": 45}, {"side": 20}),
    "fastdom_tree": (_fastdom_tree, {"n": 1500, "k": 4}, {"n": 400, "k": 4}),
    "fast_mst": (_fast_mst, {"n": 512}, {"n": 192}),
    "sweep_kdom": (_sweep_kdom, {"n": 300, "cells": 8}, {"n": 80, "cells": 4}),
}


def time_workload(fn: Callable[[], Any], reps: int) -> List[float]:
    """Run ``fn`` ``reps`` times; return the wall-clock time of each run."""
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return times


def run_suite(
    fast: bool = False,
    reps: int = 3,
    echo: Callable[[str], None] = lambda line: None,
) -> Dict[str, Any]:
    """Run every workload; return the report dictionary."""
    mode = "fast" if fast else "full"
    workloads: Dict[str, Any] = {}
    for name, (builder, full_kwargs, fast_kwargs) in WORKLOADS.items():
        kwargs = fast_kwargs if fast else full_kwargs
        fn, params = builder(**kwargs)
        times = time_workload(fn, reps)
        best = min(times)
        workloads[name] = {
            "best_seconds": round(best, 6),
            "times": [round(t, 6) for t in times],
            "params": params,
        }
        echo(f"{name:<14} best {best:.3f}s over {reps} reps  {params}")
    return {
        "schema": SCHEMA,
        "mode": mode,
        "reps": reps,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workloads": workloads,
    }


def measure_observability(
    report: Dict[str, Any],
    fast: bool = False,
    reps: int = 3,
    echo: Callable[[str], None] = lambda line: None,
) -> Dict[str, Any]:
    """Time every workload with a subscriber attached; return the
    ``"observability"`` report section.

    The bare (no-subscriber) reference is the suite result already in
    ``report`` — those timings run with the hook points compiled in but
    no tap bound, which is exactly the configuration the <= 5% contract
    is about.  ``observed_seconds`` adds a
    :class:`~repro.obs.CountingSubscriber`, the cheapest real consumer,
    so the ratio bounds the event stream's dispatch cost from below.
    """
    from .obs import CountingSubscriber, observe

    section: Dict[str, Any] = {}
    for name, (builder, full_kwargs, fast_kwargs) in WORKLOADS.items():
        kwargs = fast_kwargs if fast else full_kwargs
        fn, _params = builder(**kwargs)
        counter = CountingSubscriber()

        def observed() -> None:
            with observe(counter):
                fn()

        times = time_workload(observed, reps)
        best = min(times)
        base = report["workloads"][name]["best_seconds"]
        ratio = best / base if base > 0 else float("inf")
        section[name] = {
            "base_seconds": base,
            "observed_seconds": round(best, 6),
            "observed_times": [round(t, 6) for t in times],
            "events": counter.total,
            "overhead_ratio": round(ratio, 3),
        }
        echo(
            f"{name:<14} observed {best:.3f}s vs bare {base:.3f}s "
            f"({ratio:.2f}x, {counter.total} events)"
        )
    return section


def measure_spec_dispatch(
    fast: bool = False,
    echo: Callable[[str], None] = lambda line: None,
) -> Dict[str, Any]:
    """Measure what the process backend ships per task; return the
    ``"spec_dispatch"`` report section.

    Builds the same ``(network, factory)`` runs ``FastDOM_T`` hands to
    :func:`~repro.batch.pool.run_networks_in_pool` — level-DP programs
    over random trees — and asks
    :func:`~repro.batch.dispatch.task_pickle_bytes` what each dispatch
    path would serialise.  ``spec_bytes`` is the recipe the rewritten
    dispatcher actually sends, ``network_bytes`` the whole-network
    fallback it replaced; the ratio is the per-task IPC saving quoted
    in ``docs/performance.md``.
    """
    from .batch.dispatch import task_pickle_bytes
    from .core.fastdom_tree import _dp_factory
    from .sim import Network

    sizes = (60, 120) if fast else (200, 400, 800)
    runs = []
    for i, n in enumerate(sizes):
        tree = random_tree(n, seed=11 + i)
        rooted = RootedTree.from_graph(tree, 0)
        runs.append((Network(tree), _dp_factory(0, rooted.parent, 3)))
    stats = task_pickle_bytes(runs)
    stats["tree_sizes"] = list(sizes)
    echo(
        f"{'spec_dispatch':<14} ships {stats['spec_bytes']} B vs "
        f"{stats['network_bytes']} B whole-network "
        f"({stats['ratio']:.2f}x, {stats['spec_tasks']}/{stats['runs']} "
        f"recipe-expressible)"
    )
    return stats


def check_obs_overhead(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    factor: float = OBS_GATE_FACTOR,
) -> List[str]:
    """Gate the no-subscriber configuration at ``factor`` x baseline.

    This is the enforcement of the observability overhead contract: the
    report's bare workload timings (hooks present, no subscriber) must
    stay within ``factor`` (default 1.05) of the committed baseline
    best.  Same skip rule as :func:`check_regressions` for workloads
    missing from the baseline.
    """
    mode = report.get("mode")
    reference = baseline.get(mode, {}) if mode else {}
    failures = []
    for name, result in report.get("workloads", {}).items():
        base = reference.get(name)
        if not base:
            continue
        allowed = base["best_seconds"] * factor
        current = result["best_seconds"]
        if current > allowed:
            failures.append(
                f"{name}: no-subscriber {current:.3f}s exceeds "
                f"{factor:.2f}x baseline ({base['best_seconds']:.3f}s -> "
                f"allowed {allowed:.3f}s) — instrumentation overhead "
                f"contract (docs/observability.md) violated"
            )
    return failures


def profile_suite(fast: bool = False, top: int = 25) -> str:
    """cProfile one pass over every workload; return the hot-frame table."""
    profiler = cProfile.Profile()
    for name, (builder, full_kwargs, fast_kwargs) in WORKLOADS.items():
        fn, _params = builder(**(fast_kwargs if fast else full_kwargs))
        profiler.enable()
        fn()
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    return stream.getvalue()


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None


def check_regressions(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    gate_factor: float = DEFAULT_GATE_FACTOR,
) -> List[str]:
    """Compare a report against a baseline of the same mode.

    Returns a list of human-readable regression descriptions (empty when
    the gate passes).  Workloads absent from the baseline are skipped —
    adding a workload must not retroactively fail the gate.
    """
    mode = report.get("mode")
    reference = baseline.get(mode, {}) if mode else {}
    failures = []
    for name, result in report.get("workloads", {}).items():
        base = reference.get(name)
        if not base:
            continue
        allowed = base["best_seconds"] * gate_factor
        current = result["best_seconds"]
        if current > allowed:
            failures.append(
                f"{name}: {current:.3f}s exceeds {gate_factor:.1f}x "
                f"baseline ({base['best_seconds']:.3f}s -> allowed "
                f"{allowed:.3f}s)"
            )
    return failures


def main(
    fast: bool = False,
    reps: int = 3,
    output: str = DEFAULT_OUTPUT,
    baseline_path: str = DEFAULT_BASELINE,
    gate_factor: float = DEFAULT_GATE_FACTOR,
    profile: bool = False,
    no_gate: bool = False,
    obs: bool = False,
) -> int:
    """Run the suite, write the report, apply the regression gate."""
    if profile:
        print(profile_suite(fast=fast))
        return 0
    report = run_suite(fast=fast, reps=reps, echo=print)
    report["spec_dispatch"] = measure_spec_dispatch(fast=fast, echo=print)
    if obs:
        report["observability"] = measure_observability(
            report, fast=fast, reps=reps, echo=print
        )
    write_report(report, output)
    print(f"wrote {output}")
    if no_gate:
        return 0
    baseline = load_baseline(baseline_path)
    if baseline is None:
        print(f"no baseline at {baseline_path}; gate skipped")
        return 0
    failures = check_regressions(report, baseline, gate_factor)
    if obs:
        failures += check_obs_overhead(report, baseline)
    if failures:
        for failure in failures:
            print(f"REGRESSION  {failure}", file=sys.stderr)
        return 1
    gates = f"{gate_factor:.1f}x"
    if obs:
        gates += f" + obs {OBS_GATE_FACTOR:.2f}x"
    print(f"gate passed ({gates} vs {baseline_path})")
    return 0
