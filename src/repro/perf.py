"""Performance smoke suite for the CONGEST simulation engine.

Times the repository's representative workloads — BFS tree construction
on a path and a grid, ``FastDOM_T`` on a random tree, ``Fast-MST``
end to end, and a kdom sweep through :mod:`repro.batch` (the
sweep-throughput number) — and writes a machine-readable report
(``BENCH_sim.json`` by default).  The suite exists to catch *engine* regressions: each
workload is deterministic, so wall-clock changes track engine overhead,
not algorithmic variance.

Two sizes are provided: the full suite (the numbers quoted in
``docs/performance.md``) and ``--fast``, a seconds-scale variant meant
for CI.  A committed baseline (``benchmarks/perf_baseline.json``) gives
the regression gate: the run fails if any workload is slower than
``gate_factor`` (default 2.0) times its baseline best.  The generous
factor absorbs machine-to-machine variance while still catching
order-of-magnitude mistakes like losing the active-set scheduler.

The engine carries observability hook points (:mod:`repro.obs`) that
are supposed to cost nothing when no subscriber is attached.  ``--obs``
turns that claim into a measurement: it times every workload twice —
bare (no subscriber; the default numbers already are this
configuration) and with a :class:`~repro.obs.CountingSubscriber`
attached — records both in an ``"observability"`` report section, and
gates the bare numbers at :data:`OBS_GATE_FACTOR` (1.05, i.e. <= 5%
overhead) against the committed baseline instead of the loose default
factor.

The report also carries a ``"spec_dispatch"`` section
(:func:`measure_spec_dispatch`): the pickle bytes the process backend
ships per task under spec-based dispatch versus whole-network
shipping, keeping the saving quoted in ``docs/performance.md`` a
measured number rather than a claim.

Large-n workloads (``fastdom_dense``, ``bfs_grid_dense``) exercise the
vectorized backend of :mod:`repro.sim.dense` — 10^5-node trees in the
fast suite, 10^6-node trees and grids in the full suite — and each
report entry names the ``backend`` it ran.  The ``"dense_speedup"``
section times ``FastDOM_T`` on the *same* 10^4-node tree under both
backends and gates the ratio at :data:`DENSE_SPEEDUP_FLOOR`; the dense
backend earning its keep is part of the committed record, not a claim.
On interpreters without numpy the dense workloads (and the speedup
section) are skipped with a note, so the suite still runs end to end.

Usage::

    python -m repro perf              # full suite -> BENCH_sim.json
    python -m repro perf --fast       # CI-sized, gated against baseline
    python -m repro perf --fast --obs # + observability overhead check
    python -m repro perf --workload fastdom_dense --reps 1  # one workload
    python -m repro perf --compare OLD.json   # per-workload speedup table
    python -m repro perf --profile    # cProfile the hottest workload
"""

from __future__ import annotations

import cProfile
import io
import json
import platform
import pstats
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .core.fastdom_tree import fastdom_tree
from .graphs import (
    RootedTree,
    assign_unique_weights,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_tree,
)
from .mst import fast_mst
from .primitives.bfs import build_bfs_tree

SCHEMA = "repro-perf-smoke/2"

#: Schema tag on each BENCH history line (``BENCH_history.jsonl``).
HISTORY_SCHEMA = "repro-perf-history/1"

#: Default report location (repository root when run from a checkout).
DEFAULT_OUTPUT = "BENCH_sim.json"

#: Default perf-trajectory history (one JSONL line appended per run;
#: rendered by ``repro report --bench``).
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: Default committed baseline used by the regression gate.
DEFAULT_BASELINE = "benchmarks/perf_baseline.json"

DEFAULT_GATE_FACTOR = 2.0

#: The no-subscriber observability overhead contract: with ``--obs``,
#: each workload's bare best must stay within 5% of the committed
#: baseline best (which was recorded on the same class of machine).
OBS_GATE_FACTOR = 1.05

#: The dense backend must beat the reference engine by at least this
#: factor on the ``dense_speedup`` measurement (FastDOM_T, n=10^4).
#: Measured headroom is ~3x above the floor, so the gate survives
#: machine variance while still catching a de-vectorized code path.
DENSE_SPEEDUP_FLOOR = 10.0

#: Warm-cache serve throughput may fall to 1/this of the committed
#: baseline before the ``serve_qps`` gate fails — same tolerance shape
#: as the workload gate, applied to a rate instead of a duration.
SERVE_QPS_GATE_FACTOR = 2.0


def _bfs_path(n: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    graph = path_graph(n)
    return lambda: build_bfs_tree(graph, 0), {"n": n, "root": 0}


def _bfs_grid(side: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    graph = grid_graph(side, side)
    return lambda: build_bfs_tree(graph, 0), {"side": side, "root": 0}


def _fastdom_tree(n: int, k: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    tree = random_tree(n, seed=1)
    rooted = RootedTree.from_graph(tree, 0)
    parent = rooted.parent
    return lambda: fastdom_tree(tree, 0, parent, k), {"n": n, "k": k, "seed": 1}


def _fast_mst(n: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    graph = assign_unique_weights(
        random_connected_graph(n, 6.0 / n, seed=3), seed=4
    )
    return lambda: fast_mst(graph), {"n": n, "extra_edge_p": 6.0 / n, "seed": 3}


def _sweep_kdom(n: int, cells: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    """Sweep-throughput smoke: a kdom grid through repro.batch, inline.

    The inline backend is what a timing workload wants — no pool
    startup noise — and it shares every per-cell code path (cache,
    workload, metric merge) with the sharded backend, so a regression
    here is a regression in sweep throughput.  ``cells`` is
    seeds × ks on one tree spec.
    """
    from .batch import SweepGrid, run_sweep

    seeds = tuple(range(cells // 2))
    grid = SweepGrid(
        workload="kdom",
        specs=(f"tree:n={n}",),
        seeds=seeds,
        ks=(2, 4),
    )
    return (
        lambda: run_sweep(grid, store_path=None, backend="inline"),
        {"n": n, "cells": len(seeds) * 2, "workload": "kdom"},
    )


def _fastdom_dense(n: int, k: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    tree = random_tree(n, seed=1)
    rooted = RootedTree.from_graph(tree, 0)
    parent = rooted.parent
    return (
        lambda: fastdom_tree(tree, 0, parent, k, backend="dense"),
        {"n": n, "k": k, "seed": 1},
    )


def _bfs_grid_dense(side: int) -> Tuple[Callable[[], Any], Dict[str, Any]]:
    graph = grid_graph(side, side)
    return (
        lambda: build_bfs_tree(graph, 0, backend="dense"),
        {"side": side, "root": 0},
    )


#: name -> (builder, full-size kwargs, fast-size kwargs, backend).
#: Builders take the size parameters and return (callable, recorded
#: params); ``backend`` is recorded per workload in the report, and
#: ``"dense"`` workloads are skipped (with a note) when numpy is
#: unavailable.
WORKLOADS: Dict[
    str, Tuple[Callable[..., Any], Dict[str, Any], Dict[str, Any], str]
] = {
    "bfs_path": (_bfs_path, {"n": 2000}, {"n": 600}, "reference"),
    "bfs_grid": (_bfs_grid, {"side": 45}, {"side": 20}, "reference"),
    "fastdom_tree": (
        _fastdom_tree, {"n": 1500, "k": 4}, {"n": 400, "k": 4}, "reference"
    ),
    "fast_mst": (_fast_mst, {"n": 512}, {"n": 192}, "reference"),
    "sweep_kdom": (
        _sweep_kdom, {"n": 300, "cells": 8}, {"n": 80, "cells": 4}, "reference"
    ),
    # The large-n vectorized workloads: 10^5-node trees in the fast
    # suite (the CI large-n smoke), 10^6 nodes in the full suite.
    "fastdom_dense": (
        _fastdom_dense,
        {"n": 1_000_000, "k": 4},
        {"n": 100_000, "k": 4},
        "dense",
    ),
    "bfs_grid_dense": (
        _bfs_grid_dense, {"side": 1000}, {"side": 300}, "dense"
    ),
}


def select_workloads(
    names: Optional[List[str]] = None,
) -> Dict[str, Tuple[Callable[..., Any], Dict[str, Any], Dict[str, Any], str]]:
    """Resolve a ``--workload`` filter; ``None``/empty means everything."""
    if not names:
        return dict(WORKLOADS)
    unknown = [name for name in names if name not in WORKLOADS]
    if unknown:
        raise ValueError(
            f"unknown workload(s) {', '.join(unknown)}; "
            f"available: {', '.join(WORKLOADS)}"
        )
    return {name: WORKLOADS[name] for name in WORKLOADS if name in names}


def time_workload(fn: Callable[[], Any], reps: int) -> List[float]:
    """Run ``fn`` ``reps`` times; return the wall-clock time of each run."""
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return times


def run_suite(
    fast: bool = False,
    reps: int = 3,
    echo: Callable[[str], None] = lambda line: None,
    only: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """Run every (selected) workload; return the report dictionary."""
    from .sim.dense import HAVE_NUMPY

    mode = "fast" if fast else "full"
    workloads: Dict[str, Any] = {}
    for name, (builder, full_kwargs, fast_kwargs, backend) in select_workloads(
        only
    ).items():
        if backend == "dense" and not HAVE_NUMPY:
            echo(f"{name:<14} skipped (numpy unavailable)")
            continue
        kwargs = fast_kwargs if fast else full_kwargs
        fn, params = builder(**kwargs)
        times = time_workload(fn, reps)
        best = min(times)
        workloads[name] = {
            "best_seconds": round(best, 6),
            "times": [round(t, 6) for t in times],
            "params": params,
            "backend": backend,
        }
        echo(f"{name:<14} best {best:.3f}s over {reps} reps  {params}")
    return {
        "schema": SCHEMA,
        "mode": mode,
        "reps": reps,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workloads": workloads,
    }


def measure_observability(
    report: Dict[str, Any],
    fast: bool = False,
    reps: int = 3,
    echo: Callable[[str], None] = lambda line: None,
) -> Dict[str, Any]:
    """Time every workload with a subscriber attached; return the
    ``"observability"`` report section.

    The bare (no-subscriber) reference is the suite result already in
    ``report`` — those timings run with the hook points compiled in but
    no tap bound, which is exactly the configuration the <= 5% contract
    is about.  ``observed_seconds`` adds a
    :class:`~repro.obs.CountingSubscriber`, the cheapest real consumer,
    so the ratio bounds the event stream's dispatch cost from below.
    """
    from .obs import CountingSubscriber, observe

    section: Dict[str, Any] = {}
    for name, (builder, full_kwargs, fast_kwargs, backend) in WORKLOADS.items():
        if name not in report.get("workloads", {}):
            continue
        if backend == "dense":
            # Observed dense runs fall back to the reference engine by
            # design (the event stream has no dense replay for these
            # drivers), so an "overhead" ratio would time two different
            # engines.  The contract is about the event engine's hook
            # points; dense workloads sit outside it.
            continue
        kwargs = fast_kwargs if fast else full_kwargs
        fn, _params = builder(**kwargs)
        counter = CountingSubscriber()

        def observed() -> None:
            with observe(counter):
                fn()

        times = time_workload(observed, reps)
        best = min(times)
        base = report["workloads"][name]["best_seconds"]
        ratio = best / base if base > 0 else float("inf")
        section[name] = {
            "base_seconds": base,
            "observed_seconds": round(best, 6),
            "observed_times": [round(t, 6) for t in times],
            "events": counter.total,
            "overhead_ratio": round(ratio, 3),
        }
        echo(
            f"{name:<14} observed {best:.3f}s vs bare {base:.3f}s "
            f"({ratio:.2f}x, {counter.total} events)"
        )
    return section


def measure_telemetry_overhead(
    fast: bool = False,
    reps: int = 3,
    echo: Callable[[str], None] = lambda line: None,
) -> Dict[str, Any]:
    """Time the kdom sweep with fabric telemetry off and on; return the
    ``"telemetry"`` report section.

    Mirrors the observability discipline: the metrics registry, spans
    and status heartbeats must cost (nearly) nothing when disabled —
    ``telemetry=False`` reduces :func:`repro.batch.run_sweep` to the
    pre-telemetry code path plus one ``None`` check per cell.  The gate
    in :func:`main` (``--telemetry``) holds the *off* configuration to
    :data:`OBS_GATE_FACTOR` of the committed ``sweep_kdom`` baseline,
    which was recorded before the fabric carried any telemetry at all.
    """
    from .batch import SweepGrid, run_sweep

    n, cells = (80, 4) if fast else (300, 8)
    seeds = tuple(range(cells // 2))
    grid = SweepGrid(
        workload="kdom", specs=(f"tree:n={n}",), seeds=seeds, ks=(2, 4)
    )

    def sweep(enabled: bool) -> None:
        run_sweep(
            grid, store_path=None, backend="inline", telemetry=enabled
        )

    off_times = time_workload(lambda: sweep(False), reps)
    on_times = time_workload(lambda: sweep(True), reps)
    off, on = min(off_times), min(on_times)
    ratio = on / off if off > 0 else float("inf")
    echo(
        f"{'telemetry':<14} off {off:.3f}s vs on {on:.3f}s "
        f"({ratio:.2f}x, {len(seeds) * 2} cells, n={n})"
    )
    return {
        "n": n,
        "cells": len(seeds) * 2,
        "off_seconds": round(off, 6),
        "off_times": [round(t, 6) for t in off_times],
        "on_seconds": round(on, 6),
        "on_times": [round(t, 6) for t in on_times],
        "overhead_ratio": round(ratio, 3),
    }


def check_telemetry_overhead(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    factor: float = OBS_GATE_FACTOR,
) -> List[str]:
    """Gate the telemetry-disabled sweep at ``factor`` x the committed
    ``sweep_kdom`` baseline — the fabric-telemetry twin of
    :func:`check_obs_overhead`."""
    section = report.get("telemetry")
    if not section:
        return []
    mode = report.get("mode")
    base = baseline.get(mode, {}).get("sweep_kdom") if mode else None
    if not base:
        return []
    allowed = base["best_seconds"] * factor
    current = section["off_seconds"]
    if current > allowed:
        return [
            f"telemetry: disabled sweep {current:.3f}s exceeds "
            f"{factor:.2f}x baseline sweep_kdom "
            f"({base['best_seconds']:.3f}s -> allowed {allowed:.3f}s) — "
            f"fabric telemetry must cost nothing when off "
            f"(docs/observability.md)"
        ]
    return []


def measure_spec_dispatch(
    fast: bool = False,
    echo: Callable[[str], None] = lambda line: None,
) -> Dict[str, Any]:
    """Measure what the process backend ships per task; return the
    ``"spec_dispatch"`` report section.

    Builds the same ``(network, factory)`` runs ``FastDOM_T`` hands to
    :func:`~repro.batch.pool.run_networks_in_pool` — level-DP programs
    over random trees — and asks
    :func:`~repro.batch.dispatch.task_pickle_bytes` what each dispatch
    path would serialise.  ``spec_bytes`` is the recipe the rewritten
    dispatcher actually sends, ``network_bytes`` the whole-network
    fallback it replaced; the ratio is the per-task IPC saving quoted
    in ``docs/performance.md``.
    """
    from .batch.dispatch import task_pickle_bytes
    from .core.fastdom_tree import _dp_factory
    from .sim import Network

    sizes = (60, 120) if fast else (200, 400, 800)
    runs = []
    for i, n in enumerate(sizes):
        tree = random_tree(n, seed=11 + i)
        rooted = RootedTree.from_graph(tree, 0)
        runs.append((Network(tree), _dp_factory(0, rooted.parent, 3)))
    stats = task_pickle_bytes(runs)
    stats["tree_sizes"] = list(sizes)
    echo(
        f"{'spec_dispatch':<14} ships {stats['spec_bytes']} B vs "
        f"{stats['network_bytes']} B whole-network "
        f"({stats['ratio']:.2f}x, {stats['spec_tasks']}/{stats['runs']} "
        f"recipe-expressible)"
    )
    return stats


def measure_dense_speedup(
    n: int = 10_000,
    k: int = 4,
    echo: Callable[[str], None] = lambda line: None,
) -> Dict[str, Any]:
    """Time ``FastDOM_T`` on one tree under both backends; return the
    ``"dense_speedup"`` report section.

    This is the head-to-head number behind the dense backend: the same
    10^4-node random tree, the same k, reference event engine versus
    array rounds, one rep each (the reference side is seconds-scale, so
    best-of-N would triple the suite for a digit that doesn't move).
    The gate in :func:`main` requires ``speedup >=``
    :data:`DENSE_SPEEDUP_FLOOR`.
    """
    from .sim.dense import HAVE_NUMPY

    if not HAVE_NUMPY:
        echo(f"{'dense_speedup':<14} skipped (numpy unavailable)")
        return {"skipped": "numpy unavailable"}
    tree = random_tree(n, seed=1)
    rooted = RootedTree.from_graph(tree, 0)
    parent = rooted.parent
    reference = min(
        time_workload(lambda: fastdom_tree(tree, 0, parent, k), 1)
    )
    dense = min(
        time_workload(
            lambda: fastdom_tree(tree, 0, parent, k, backend="dense"), 1
        )
    )
    speedup = reference / dense if dense > 0 else float("inf")
    echo(
        f"{'dense_speedup':<14} reference {reference:.3f}s vs dense "
        f"{dense:.3f}s ({speedup:.1f}x, n={n}, k={k})"
    )
    return {
        "n": n,
        "k": k,
        "reference_seconds": round(reference, 6),
        "dense_seconds": round(dense, 6),
        "speedup": round(speedup, 2),
    }


def measure_serve_qps(
    fast: bool = False,
    echo: Callable[[str], None] = lambda line: None,
) -> Dict[str, Any]:
    """Load-test a live in-process ``repro serve``; return the
    ``"serve_qps"`` report section.

    Two phases against one server (inline backend — the server cost,
    not the pool's): a *cold* pass that computes every distinct cell
    once, then a *warm* pass of thousands of queries over the same
    cells, all answered from the result cache.  The gate in
    :func:`main` holds ``warm_qps`` above ``1/SERVE_QPS_GATE_FACTOR``
    of the committed baseline — cold throughput is dominated by the
    algorithm itself and is recorded, not gated.
    """
    from .serve import ServeConfig, query_body, run_load, running_server

    distinct = 64 if fast else 256
    total = 1000 if fast else 4000
    concurrency = 100
    spec = "tree:n=16"
    bodies = [query_body("kdom", spec, seed, 2) for seed in range(distinct)]
    config = ServeConfig(
        host="127.0.0.1", port=0, backend="inline", cache_size=distinct * 2
    )
    with running_server(config) as server:
        cold = run_load(
            "127.0.0.1",
            server.port,
            bodies,
            concurrency=min(concurrency, distinct),
        )
        warm = run_load(
            "127.0.0.1",
            server.port,
            [bodies[i % distinct] for i in range(total)],
            concurrency=concurrency,
        )
        cache_hits = server.cache.hits
    section = {
        "spec": spec,
        "distinct_cells": distinct,
        "warm_requests": total,
        "concurrency": concurrency,
        "cold_qps": round(cold["qps"], 1),
        "cold_seconds": round(cold["seconds"], 6),
        "warm_qps": round(warm["qps"], 1),
        "warm_seconds": round(warm["seconds"], 6),
        "warm_latency_p95_ms": (
            round(warm["latency_p95_ms"], 3)
            if warm["latency_p95_ms"] is not None
            else None
        ),
        "errors": cold["errors"] + warm["errors"],
        "cache_hits": cache_hits,
    }
    echo(
        f"{'serve_qps':<14} cold {cold['qps']:.0f} q/s "
        f"({distinct} cells), warm {warm['qps']:.0f} q/s "
        f"({total} queries, c={concurrency})"
    )
    return section


def check_serve_qps(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    factor: float = SERVE_QPS_GATE_FACTOR,
) -> List[str]:
    """Gate warm serve throughput at ``1/factor`` of the baseline.

    Same skip rule as :func:`check_regressions`: a mode whose baseline
    has no ``serve_qps`` entry is not gated.  Any failed request during
    the load test fails the gate outright — a throughput number built
    on errors is not a throughput number.
    """
    mode = report.get("mode")
    section = report.get("serve_qps") or {}
    base = (baseline.get(mode) or {}).get("serve_qps")
    if not section or not base:
        return []
    failures = []
    if section.get("errors"):
        failures.append(
            f"serve_qps: {section['errors']} failed request(s) during "
            f"the load test"
        )
    floor = base["warm_qps"] / factor
    warm = section.get("warm_qps", 0.0)
    if warm < floor:
        failures.append(
            f"serve_qps: warm {warm:.0f} q/s below baseline "
            f"{base['warm_qps']:.0f} q/s / {factor:.1f} "
            f"(floor {floor:.0f} q/s)"
        )
    return failures


def compare_reports(
    old: Dict[str, Any], new: Dict[str, Any]
) -> List[str]:
    """Per-workload speedup table between two reports (``--compare``).

    Returns formatted lines; workloads present in only one report are
    listed as such rather than dropped, so renames are visible.
    """
    old_workloads = old.get("workloads", {})
    new_workloads = new.get("workloads", {})
    lines = [
        f"{'workload':<16} {'old':>9} {'new':>9} {'speedup':>8}",
    ]
    if old.get("mode") != new.get("mode"):
        lines.insert(
            0,
            f"note: comparing mode={old.get('mode')!r} against "
            f"mode={new.get('mode')!r}; sizes differ",
        )
    for name in sorted(set(old_workloads) | set(new_workloads)):
        old_best = old_workloads.get(name, {}).get("best_seconds")
        new_best = new_workloads.get(name, {}).get("best_seconds")
        if old_best is None:
            lines.append(f"{name:<16} {'-':>9} {new_best:>8.3f}s {'new':>8}")
        elif new_best is None:
            lines.append(f"{name:<16} {old_best:>8.3f}s {'-':>9} {'gone':>8}")
        else:
            ratio = old_best / new_best if new_best > 0 else float("inf")
            lines.append(
                f"{name:<16} {old_best:>8.3f}s {new_best:>8.3f}s "
                f"{ratio:>7.2f}x"
            )
    return lines


def history_entry(
    report: Dict[str, Any], recorded_unix: Optional[float] = None
) -> Dict[str, Any]:
    """One compact history entry for a perf report.

    The single definition of the ``repro-perf-history/1`` shape —
    :func:`append_history` writes it, the warehouse
    (``Warehouse.ingest_history``) decomposes it into queryable
    bench samples, and tests build synthetic histories from it.
    """
    return {
        "schema": HISTORY_SCHEMA,
        "mode": report.get("mode"),
        "recorded_unix": (
            round(time.time(), 3) if recorded_unix is None
            else recorded_unix
        ),
        "workloads": {
            name: result["best_seconds"]
            for name, result in report.get("workloads", {}).items()
        },
        "dense_speedup": report.get("dense_speedup", {}).get("speedup"),
        "serve_qps": report.get("serve_qps", {}).get("warm_qps"),
    }


def append_history(
    report: Dict[str, Any], path: str = DEFAULT_HISTORY
) -> Dict[str, Any]:
    """Append one compact JSONL line for this run to the BENCH history.

    The history is the longitudinal record behind ``repro report
    --bench``: every perf run adds a :func:`history_entry`.
    Wall-clock timestamps are fine here — the history is a log, not a
    store.
    """
    entry = history_entry(report)
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True,
                                separators=(",", ":")) + "\n")
    return entry


def load_history(
    path: str = DEFAULT_HISTORY,
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Read the BENCH history: ``(entries, problems)``, file order.

    Unreadable or foreign-schema lines are skipped and reported as
    problems rather than raised — a half-written last line must not
    block the trajectory view.
    """
    entries: List[Dict[str, Any]] = []
    problems: List[str] = []
    try:
        with open(path) as handle:
            lines = handle.read().splitlines()
    except FileNotFoundError:
        return [], []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            problems.append(f"line {number}: unparsable history line")
            continue
        if not isinstance(entry, dict) or entry.get("schema") != HISTORY_SCHEMA:
            problems.append(
                f"line {number}: not a {HISTORY_SCHEMA!r} entry"
            )
            continue
        entries.append(entry)
    return entries, problems


#: Trajectory intensity ramp: fastest run renders '.' and the slowest
#: '@', so a cooling-down workload reads as a right-to-left fade.
_TRAJECTORY_RAMP = ".:-=+*#%@"


def _trajectory_ramp(series: List[float]) -> str:
    lo, hi = min(series), max(series)
    if hi <= lo:
        return _TRAJECTORY_RAMP[0] * len(series)
    top = len(_TRAJECTORY_RAMP) - 1
    return "".join(
        _TRAJECTORY_RAMP[int((value - lo) / (hi - lo) * top)]
        for value in series
    )


def perf_trajectory(
    entries: List[Dict[str, Any]], source: Optional[str] = None
) -> List[str]:
    """Render the perf trajectory across recorded history entries.

    One table per mode (fast/full sizes are not comparable): first and
    latest best per workload, the first->latest trend, and a per-run
    intensity ramp ('.' fastest .. '@' slowest) so a regression sitting
    in the middle of the history is visible, not just endpoint drift.
    """
    head = f"perf trajectory: {len(entries)} recorded run(s)"
    if source:
        head += f" from {source}"
    lines = [head]
    by_mode: Dict[str, List[Dict[str, Any]]] = {}
    for entry in entries:
        by_mode.setdefault(str(entry.get("mode", "?")), []).append(entry)
    for mode, group in by_mode.items():
        lines.append("")
        lines.append(f"mode {mode}: {len(group)} run(s)")
        names = sorted({
            name for entry in group for name in entry.get("workloads", {})
        })
        if not names:
            lines.append("  (no workloads recorded)")
            continue
        name_width = max(len("workload"), max(len(n) for n in names))
        lines.append(
            f"  {'workload':<{name_width}}  {'first':>9}  {'latest':>9}  "
            f"{'trend':>13}  runs ('.'=fastest '@'=slowest)"
        )
        for name in names:
            series = [
                entry["workloads"][name]
                for entry in group
                if name in entry.get("workloads", {})
            ]
            first, latest = series[0], series[-1]
            if latest <= 0:
                trend = "?"
            else:
                ratio = first / latest
                trend = (
                    f"{ratio:.2f}x faster"
                    if ratio >= 1
                    else f"{1 / ratio:.2f}x slower"
                )
            lines.append(
                f"  {name:<{name_width}}  {first:>8.3f}s  {latest:>8.3f}s  "
                f"{trend:>13}  {_trajectory_ramp(series)}"
            )
        speedups = [
            entry["dense_speedup"]
            for entry in group
            if entry.get("dense_speedup")
        ]
        if speedups:
            lines.append(
                f"  dense speedup: {speedups[0]:.1f}x first, "
                f"{speedups[-1]:.1f}x latest"
            )
    return lines


def check_obs_overhead(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    factor: float = OBS_GATE_FACTOR,
) -> List[str]:
    """Gate the no-subscriber configuration at ``factor`` x baseline.

    This is the enforcement of the observability overhead contract: the
    report's bare workload timings (hooks present, no subscriber) must
    stay within ``factor`` (default 1.05) of the committed baseline
    best.  Same skip rule as :func:`check_regressions` for workloads
    missing from the baseline.
    """
    mode = report.get("mode")
    reference = baseline.get(mode, {}) if mode else {}
    failures = []
    for name, result in report.get("workloads", {}).items():
        base = reference.get(name)
        if not base:
            continue
        if result.get("backend") == "dense":
            # No hook points on the dense path; the loose gate in
            # check_regressions already covers these workloads.
            continue
        allowed = base["best_seconds"] * factor
        current = result["best_seconds"]
        if current > allowed:
            failures.append(
                f"{name}: no-subscriber {current:.3f}s exceeds "
                f"{factor:.2f}x baseline ({base['best_seconds']:.3f}s -> "
                f"allowed {allowed:.3f}s) — instrumentation overhead "
                f"contract (docs/observability.md) violated"
            )
    return failures


def profile_suite(
    fast: bool = False, top: int = 25, only: Optional[List[str]] = None
) -> str:
    """cProfile one pass over every workload; return the hot-frame table."""
    from .sim.dense import HAVE_NUMPY

    profiler = cProfile.Profile()
    for name, (builder, full_kwargs, fast_kwargs, backend) in select_workloads(
        only
    ).items():
        if backend == "dense" and not HAVE_NUMPY:
            continue
        fn, _params = builder(**(fast_kwargs if fast else full_kwargs))
        profiler.enable()
        fn()
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    return stream.getvalue()


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None


def check_regressions(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    gate_factor: float = DEFAULT_GATE_FACTOR,
) -> List[str]:
    """Compare a report against a baseline of the same mode.

    Returns a list of human-readable regression descriptions (empty when
    the gate passes).  Workloads absent from the baseline are skipped —
    adding a workload must not retroactively fail the gate.
    """
    mode = report.get("mode")
    reference = baseline.get(mode, {}) if mode else {}
    failures = []
    for name, result in report.get("workloads", {}).items():
        base = reference.get(name)
        if not base:
            continue
        allowed = base["best_seconds"] * gate_factor
        current = result["best_seconds"]
        if current > allowed:
            failures.append(
                f"{name}: {current:.3f}s exceeds {gate_factor:.1f}x "
                f"baseline ({base['best_seconds']:.3f}s -> allowed "
                f"{allowed:.3f}s)"
            )
    return failures


def main(
    fast: bool = False,
    reps: int = 3,
    output: str = DEFAULT_OUTPUT,
    baseline_path: str = DEFAULT_BASELINE,
    gate_factor: float = DEFAULT_GATE_FACTOR,
    profile: bool = False,
    no_gate: bool = False,
    obs: bool = False,
    workload: Optional[List[str]] = None,
    compare: Optional[str] = None,
    telemetry: bool = False,
    history: Optional[str] = DEFAULT_HISTORY,
) -> int:
    """Run the suite, write the report, apply the regression gate.

    ``workload`` restricts the suite to the named workloads (the
    auxiliary spec-dispatch and dense-speedup sections are then
    skipped); ``compare`` prints a per-workload speedup table against a
    previously written report after the run.  ``telemetry`` adds the
    sweep telemetry-overhead section and its disabled-cost gate;
    ``history`` appends the run to the BENCH history (``None`` skips).
    """
    try:
        select_workloads(workload)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if profile:
        print(profile_suite(fast=fast, only=workload))
        return 0
    report = run_suite(fast=fast, reps=reps, echo=print, only=workload)
    if not workload:
        report["spec_dispatch"] = measure_spec_dispatch(fast=fast, echo=print)
        report["dense_speedup"] = measure_dense_speedup(echo=print)
        report["serve_qps"] = measure_serve_qps(fast=fast, echo=print)
    if obs:
        report["observability"] = measure_observability(
            report, fast=fast, reps=reps, echo=print
        )
    if telemetry:
        report["telemetry"] = measure_telemetry_overhead(
            fast=fast, reps=reps, echo=print
        )
    write_report(report, output)
    print(f"wrote {output}")
    if history:
        append_history(report, history)
        print(f"appended history -> {history}")
    if compare is not None:
        old = load_baseline(compare)
        if old is None:
            print(f"no report at {compare}; comparison skipped")
        else:
            for line in compare_reports(old, report):
                print(line)
    if no_gate:
        return 0
    baseline = load_baseline(baseline_path)
    if baseline is None:
        print(f"no baseline at {baseline_path}; gate skipped")
        return 0
    if baseline.get("schema") != SCHEMA:
        print(
            f"baseline schema {baseline.get('schema')!r} != {SCHEMA!r}; "
            f"gate skipped — re-record {baseline_path}"
        )
        return 0
    failures = check_regressions(report, baseline, gate_factor)
    failures += check_serve_qps(report, baseline)
    if obs:
        failures += check_obs_overhead(report, baseline)
    if telemetry:
        failures += check_telemetry_overhead(report, baseline)
    speedup_section = report.get("dense_speedup", {})
    speedup = speedup_section.get("speedup")
    if speedup is not None and speedup < DENSE_SPEEDUP_FLOOR:
        failures.append(
            f"dense_speedup: {speedup:.2f}x below the "
            f"{DENSE_SPEEDUP_FLOOR:.0f}x floor (reference "
            f"{speedup_section['reference_seconds']:.3f}s, dense "
            f"{speedup_section['dense_seconds']:.3f}s)"
        )
    if failures:
        for failure in failures:
            print(f"REGRESSION  {failure}", file=sys.stderr)
        return 1
    gates = f"{gate_factor:.1f}x"
    if obs:
        gates += f" + obs {OBS_GATE_FACTOR:.2f}x"
    if telemetry:
        gates += f" + telemetry-off {OBS_GATE_FACTOR:.2f}x"
    if speedup is not None:
        gates += f" + dense {DENSE_SPEEDUP_FLOOR:.0f}x floor"
    if report.get("serve_qps"):
        gates += f" + serve 1/{SERVE_QPS_GATE_FACTOR:.1f}x qps floor"
    print(f"gate passed ({gates} vs {baseline_path})")
    return 0
