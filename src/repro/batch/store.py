"""JSONL result store for sweeps: checkpoint, resume, canonical form.

Lifecycle of a store file:

* **Checkpointing** — while a sweep runs, each finished cell's row is
  appended (and flushed) immediately, in *completion* order.  An
  interrupted sweep therefore keeps everything it finished.
* **Resume** — :meth:`SweepStore.load` reads rows back keyed by cell,
  so a re-run executes only the missing cells (the meta line pins the
  grid; resuming against a different grid is refused).
* **Canonical finalize** — when every cell is present the store is
  atomically rewritten in *grid* order with sorted-key, fixed-separator
  JSON.  Two completed sweeps over the same grid are byte-identical,
  whatever backend or worker count produced them — that is the
  determinism contract tests/batch/test_sweep.py enforces.

* **Shard merge** — a grid swept as N shards (``repro sweep --shard
  i/N`` on N hosts) yields N stores whose metas differ only in the
  ``shard`` field.  :func:`merge_stores` recombines them into the
  canonical one-shot store, byte for byte — the multi-host half of the
  determinism contract.

Rows deliberately contain no wall-clock data; timing lives in the
sweep summary (and ``BENCH_sim.json``), never in the store.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Store schema tag, written into the meta line.
SCHEMA = "repro-sweep/1"


def canonical_line(obj: Dict[str, Any]) -> str:
    """The one true serialization of a row (or meta) object."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def cell_key(cell: Dict[str, Any]) -> str:
    """Stable identity of a grid cell, as stored in a row's ``cell``."""
    return (
        f"{cell['workload']}|{cell['spec']}"
        f"|seed={cell['seed']}|k={cell['k']}"
    )


class StoreError(ValueError):
    """A store file does not match the sweep trying to use it."""


class SweepStore:
    """One JSONL file holding a sweep's meta line and result rows."""

    def __init__(self, path: str) -> None:
        self.path = path

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # -- reading -----------------------------------------------------------
    def load(self) -> Tuple[Optional[Dict[str, Any]], Dict[str, Dict[str, Any]]]:
        """Read (meta, rows-by-cell-key); (None, {}) when absent.

        Tolerates a truncated trailing line (the run may have been
        killed mid-append); anything else malformed raises.
        """
        if not self.exists():
            return None, {}
        meta: Optional[Dict[str, Any]] = None
        rows: Dict[str, Dict[str, Any]] = {}
        with open(self.path) as handle:
            lines = handle.read().splitlines()
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines) - 1:
                    break  # torn final append from an interrupted run
                raise StoreError(
                    f"{self.path}:{number + 1}: unparsable store line"
                )
            if "schema" in record and "cell" not in record:
                meta = record
            elif "cell" in record:
                rows[cell_key(record["cell"])] = record
            else:
                raise StoreError(
                    f"{self.path}:{number + 1}: neither meta nor row"
                )
        return meta, rows

    # -- writing -----------------------------------------------------------
    def begin(self, meta: Dict[str, Any], fresh: bool) -> None:
        """Open the store for a run: write the meta line if the file is
        new (or ``fresh`` forces a truncate)."""
        if fresh or not self.exists():
            with open(self.path, "w") as handle:
                handle.write(canonical_line(meta) + "\n")

    def append(self, row: Dict[str, Any]) -> None:
        """Checkpoint one finished cell (appended and flushed)."""
        with open(self.path, "a") as handle:
            handle.write(canonical_line(row) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def finalize(
        self, meta: Dict[str, Any], rows: Iterable[Dict[str, Any]]
    ) -> None:
        """Atomically rewrite the store in canonical (grid) order."""
        tmp = self.path + ".tmp"
        with open(tmp, "w") as handle:
            handle.write(canonical_line(meta) + "\n")
            for row in rows:
                handle.write(canonical_line(row) + "\n")
        os.replace(tmp, self.path)


# ---------------------------------------------------------------------------
# Shard merge
# ---------------------------------------------------------------------------
def grid_cell_dicts(meta: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The grid's cells, in canonical order, from its meta line alone.

    Mirrors ``SweepGrid.cells()`` (spec-major, then seed, then k) but
    needs no workload lookup, so stores written by external workloads
    merge without importing their provider modules.
    """
    return [
        {"workload": meta["workload"], "spec": spec, "seed": seed, "k": k}
        for spec in meta["specs"]
        for seed in meta["seeds"]
        for k in meta["ks"]
    ]


def merge_stores(shard_paths: Sequence[str], out_path: str) -> Dict[str, Any]:
    """Merge N complete shard stores into the canonical one-shot store.

    The inputs must be the N shards of one grid — same meta apart from
    the ``shard`` field, shard indices covering ``0/N .. (N-1)/N``
    exactly — and together they must supply every grid cell.  The
    output is written with :meth:`SweepStore.finalize` under the
    unsharded meta, so it is byte-identical to the store a single
    unsharded sweep of the grid would have produced.

    Returns the merged meta.  Raises :class:`StoreError` on any
    mismatch (different grids, missing/duplicate shards, missing
    cells).
    """
    if not shard_paths:
        raise StoreError("merge_stores needs at least one shard store")
    base_meta: Optional[Dict[str, Any]] = None
    seen_shards: Dict[int, str] = {}
    shard_count: Optional[int] = None
    rows: Dict[str, Dict[str, Any]] = {}
    for path in shard_paths:
        meta, shard_rows = SweepStore(path).load()
        if meta is None:
            raise StoreError(f"{path}: missing or empty store")
        shard_text = meta.get("shard")
        if shard_text is None:
            raise StoreError(
                f"{path}: not a shard store (no shard field in meta)"
            )
        try:
            index_text, count_text = str(shard_text).split("/", 1)
            index, count = int(index_text), int(count_text)
        except ValueError:
            raise StoreError(
                f"{path}: malformed shard field {shard_text!r}"
            ) from None
        unsharded = {key: val for key, val in meta.items() if key != "shard"}
        if base_meta is None:
            base_meta, shard_count = unsharded, count
        elif unsharded != base_meta or count != shard_count:
            raise StoreError(
                f"{path}: shard belongs to a different grid than "
                f"{shard_paths[0]}"
            )
        if index in seen_shards:
            raise StoreError(
                f"{path}: duplicate shard {index}/{count} "
                f"(also in {seen_shards[index]})"
            )
        seen_shards[index] = path
        rows.update(shard_rows)
    assert base_meta is not None and shard_count is not None
    missing_shards = sorted(set(range(shard_count)) - set(seen_shards))
    if missing_shards:
        raise StoreError(
            f"missing shard store(s) for "
            f"{', '.join(f'{i}/{shard_count}' for i in missing_shards)}"
        )
    ordered: List[Dict[str, Any]] = []
    missing_cells = []
    for cell in grid_cell_dicts(base_meta):
        row = rows.get(cell_key(cell))
        if row is None:
            missing_cells.append(cell_key(cell))
        else:
            ordered.append(row)
    if missing_cells:
        raise StoreError(
            f"{len(missing_cells)} grid cell(s) missing from the shards "
            f"(first: {missing_cells[0]}) — finish every shard sweep "
            f"before merging"
        )
    SweepStore(out_path).finalize(base_meta, ordered)
    return base_meta
