"""JSONL result store for sweeps: checkpoint, resume, canonical form.

Lifecycle of a store file:

* **Checkpointing** — while a sweep runs, each finished cell's row is
  appended (and flushed) immediately, in *completion* order.  An
  interrupted sweep therefore keeps everything it finished.  Every
  checkpointed row carries a CRC32 over its canonical serialization,
  so a later reader can tell bit-rot (and chaos-injected corruption)
  from a legitimate row.
* **Resume** — :meth:`SweepStore.load` reads rows back keyed by cell,
  so a re-run executes only the missing cells (the meta line pins the
  grid; resuming against a different grid is refused).  ``load``
  distinguishes a *torn final append* (the run was killed mid-write:
  an unparsable last line, silently dropped) from *mid-file
  corruption* (any earlier unparsable line, or any line whose CRC does
  not match: :class:`StoreCorruption`).  A corrupt store is repaired
  with :meth:`SweepStore.salvage` / :func:`repair_store` — valid rows
  survive, corrupt ones are dropped so the next resume re-runs those
  cells.
* **Canonical finalize** — when every cell is present the store is
  atomically rewritten in *grid* order with sorted-key, fixed-separator
  JSON and **without** checksums: two completed sweeps over the same
  grid are byte-identical, whatever backend or worker count produced
  them — the determinism contract tests/batch/test_sweep.py enforces,
  unchanged since PR 5 (checksums protect the append-phase window;
  a finalized store is written in one atomic replace).

* **Shard merge** — a grid swept as N shards (``repro sweep --shard
  i/N`` on N hosts) yields N stores whose metas differ only in the
  ``shard`` field.  :func:`merge_stores` recombines them into the
  canonical one-shot store, byte for byte — the multi-host half of the
  determinism contract.  ``allow_partial=True`` tolerates missing
  shards/cells and emits an explicit holes manifest instead of raising.

Rows deliberately contain no wall-clock data; timing lives in the
sweep summary (and ``BENCH_sim.json``), never in the store.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .telemetry import store_telemetry, strip_telemetry

#: Store schema tag, written into the meta line.
SCHEMA = "repro-sweep/1"

#: Key under which a checkpointed row carries its integrity checksum.
CRC_FIELD = "crc"


def canonical_line(obj: Dict[str, Any]) -> str:
    """The one true serialization of a row (or meta) object."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def row_crc(row: Dict[str, Any]) -> str:
    """CRC32 (hex, 8 chars) over a row's canonical serialization."""
    return f"{zlib.crc32(canonical_line(row).encode()) & 0xFFFFFFFF:08x}"


def cell_key(cell: Dict[str, Any]) -> str:
    """Stable identity of a grid cell, as stored in a row's ``cell``."""
    return (
        f"{cell['workload']}|{cell['spec']}"
        f"|seed={cell['seed']}|k={cell['k']}"
    )


class StoreError(ValueError):
    """A store file does not match the sweep trying to use it."""


class StoreCorruption(StoreError):
    """A store line before the final append is unreadable or fails its
    checksum — bit-rot, a concurrent writer, or injected chaos.

    ``line_numbers`` lists the offending 1-based lines.  Unlike a torn
    final append (tolerated: the writer died mid-line), corruption is
    never silently skipped by :meth:`SweepStore.load`; run ``repro
    repair-store`` (or :func:`repair_store`) to salvage the valid rows
    and re-mark the lost cells for resume.
    """

    def __init__(self, path: str, problems: List[Tuple[int, str]]) -> None:
        detail = "; ".join(
            f"line {number}: {why}" for number, why in problems[:5]
        )
        super().__init__(
            f"{path}: {len(problems)} corrupt store line(s) ({detail}) — "
            f"run `repro repair-store` to salvage"
        )
        self.path = path
        self.problems = problems
        self.line_numbers = [number for number, _why in problems]


@dataclass
class SalvageReport:
    """What :meth:`SweepStore.salvage` kept and dropped."""

    path: str
    total_lines: int = 0
    kept_rows: int = 0
    #: ``(line_number, reason)`` for every dropped line.
    dropped: List[Tuple[int, str]] = field(default_factory=list)
    torn_tail: bool = False
    missing_meta: bool = False

    @property
    def clean(self) -> bool:
        return not self.dropped and not self.torn_tail and not self.missing_meta

    def summary(self) -> str:
        parts = [f"{self.kept_rows} row(s) kept"]
        if self.dropped:
            parts.append(f"{len(self.dropped)} corrupt line(s) dropped")
        if self.torn_tail:
            parts.append("torn final append dropped")
        if self.missing_meta:
            parts.append("meta line missing")
        return ", ".join(parts)


def _classify(line: str) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
    """Parse and verify one store line: ``(record, problem)``.

    ``record`` has its checksum verified and stripped; ``problem`` is
    ``None`` for a good line, else a short reason.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None, "unparsable store line"
    if not isinstance(record, dict):
        return None, "unparsable store line"
    crc = record.pop(CRC_FIELD, None)
    if crc is not None and crc != row_crc(record):
        return None, f"checksum mismatch (recorded {crc})"
    return record, None


class SweepStore:
    """One JSONL file holding a sweep's meta line and result rows."""

    def __init__(self, path: str) -> None:
        self.path = path

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # -- reading -----------------------------------------------------------
    def _read_lines(self) -> List[str]:
        with open(self.path) as handle:
            return handle.read().splitlines()

    def load(self) -> Tuple[Optional[Dict[str, Any]], Dict[str, Dict[str, Any]]]:
        """Read (meta, rows-by-cell-key); (None, {}) when absent.

        Tolerates a truncated trailing line (the run may have been
        killed mid-append).  Any *earlier* unreadable line, or any line
        failing its checksum, raises :class:`StoreCorruption` — a torn
        write can only ever be the last thing that happened to an
        append-only file, so damage anywhere else is real corruption
        and silently skipping it would truncate results.
        """
        if not self.exists():
            return None, {}
        meta: Optional[Dict[str, Any]] = None
        rows: Dict[str, Dict[str, Any]] = {}
        lines = self._read_lines()
        corrupt: List[Tuple[int, str]] = []
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            record, problem = _classify(line)
            if record is None:
                if number == len(lines) - 1 and problem == "unparsable store line":
                    break  # torn final append from an interrupted run
                corrupt.append((number + 1, problem or "unreadable"))
                continue
            if problem is not None:
                corrupt.append((number + 1, problem))
                continue
            if "schema" in record and "cell" not in record:
                meta = record
            elif "cell" in record:
                rows[cell_key(record["cell"])] = record
            else:
                corrupt.append((number + 1, "neither meta nor row"))
        if corrupt:
            raise StoreCorruption(self.path, corrupt)
        return meta, rows

    def salvage(
        self,
    ) -> Tuple[Optional[Dict[str, Any]], Dict[str, Dict[str, Any]], SalvageReport]:
        """Best-effort read: keep every verifiable row, report the rest.

        The forgiving sibling of :meth:`load` — corruption does not
        raise, it lands in the :class:`SalvageReport`.  Dropped rows
        simply leave their cells missing, which is exactly the state a
        resumed sweep repairs by re-running them.
        """
        report = SalvageReport(path=self.path)
        if not self.exists():
            report.missing_meta = True
            return None, {}, report
        meta: Optional[Dict[str, Any]] = None
        rows: Dict[str, Dict[str, Any]] = {}
        lines = self._read_lines()
        report.total_lines = len(lines)
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            record, problem = _classify(line)
            if record is None or problem is not None:
                if (
                    number == len(lines) - 1
                    and problem == "unparsable store line"
                ):
                    report.torn_tail = True
                else:
                    report.dropped.append(
                        (number + 1, problem or "unreadable")
                    )
                continue
            if "schema" in record and "cell" not in record:
                meta = record
            elif "cell" in record:
                key = cell_key(record["cell"])
                if key not in rows:
                    report.kept_rows += 1
                rows[key] = record
            else:
                report.dropped.append((number + 1, "neither meta nor row"))
        report.missing_meta = meta is None
        return meta, rows, report

    # -- writing -----------------------------------------------------------
    def begin(self, meta: Dict[str, Any], fresh: bool) -> None:
        """Open the store for a run: write the meta line if the file is
        new (or ``fresh`` forces a truncate)."""
        if fresh or not self.exists():
            with open(self.path, "w") as handle:
                handle.write(canonical_line(meta) + "\n")

    def append(self, row: Dict[str, Any]) -> None:
        """Checkpoint one finished cell (appended and flushed), with its
        integrity checksum."""
        stamped = dict(row)
        stamped[CRC_FIELD] = row_crc(row)
        with open(self.path, "a") as handle:
            handle.write(canonical_line(stamped) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def finalize(
        self, meta: Dict[str, Any], rows: Iterable[Dict[str, Any]]
    ) -> None:
        """Atomically rewrite the store in canonical (grid) order.

        Checksums are stripped: the finalized form is the PR 5 one,
        byte-identical across backends, worker counts and hosts.
        """
        tmp = self.path + ".tmp"
        with open(tmp, "w") as handle:
            handle.write(canonical_line(meta) + "\n")
            for row in rows:
                row = {k: v for k, v in row.items() if k != CRC_FIELD}
                handle.write(canonical_line(row) + "\n")
        os.replace(tmp, self.path)


# ---------------------------------------------------------------------------
# Repair
# ---------------------------------------------------------------------------
def repair_store(
    path: str, out_path: Optional[str] = None
) -> Tuple[SalvageReport, List[str]]:
    """Salvage a (possibly corrupt) store into a clean checkpoint file.

    Valid rows are kept and rewritten — atomically, in checkpoint form
    (with checksums) — and everything unreadable is dropped, so the
    repaired store ``load()``\\ s cleanly and a resumed sweep re-runs
    exactly the lost cells.  Returns the salvage report and the cell
    keys the store *should* hold but no longer does (when the meta
    survives and defines the grid; missing cells of a shard store are
    computed against the shard's slice).

    ``out_path`` defaults to repairing in place.
    """
    store = SweepStore(path)
    meta, rows, report = store.salvage()
    if meta is None:
        raise StoreError(
            f"{path}: no usable meta line survives — the store cannot be "
            f"repaired (re-run the sweep with a fresh store)"
        )
    target = SweepStore(out_path or path)
    tmp = SweepStore(target.path + ".repair-tmp")
    tmp.begin(meta, fresh=True)
    for key in sorted(rows):
        tmp.append(rows[key])
    os.replace(tmp.path, target.path)
    missing = [key for key in expected_cell_keys(meta) if key not in rows]
    return report, missing


# ---------------------------------------------------------------------------
# Shard merge
# ---------------------------------------------------------------------------
def grid_cell_dicts(meta: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The grid's cells, in canonical order, from its meta line alone.

    Mirrors ``SweepGrid.cells()`` (spec-major, then seed, then k) but
    needs no workload lookup, so stores written by external workloads
    merge without importing their provider modules.
    """
    return [
        {"workload": meta["workload"], "spec": spec, "seed": seed, "k": k}
        for spec in meta["specs"]
        for seed in meta["seeds"]
        for k in meta["ks"]
    ]


def expected_cell_keys(meta: Dict[str, Any]) -> List[str]:
    """Every cell key ``meta``'s store is responsible for, in canonical
    order — the full grid, or this shard's round-robin slice when the
    meta carries a ``shard`` field.  Metas that predate (or omit) the
    grid-definition fields define no expectations."""
    if not all(key in meta for key in ("workload", "specs", "seeds", "ks")):
        return []
    keys = [cell_key(cell) for cell in grid_cell_dicts(meta)]
    shard_text = meta.get("shard")
    if shard_text is None:
        return keys
    index_text, count_text = str(shard_text).split("/", 1)
    index, count = int(index_text), int(count_text)
    return [key for i, key in enumerate(keys) if i % count == index]


def merge_stores(
    shard_paths: Sequence[str],
    out_path: str,
    allow_partial: bool = False,
    holes_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Merge N shard stores into the canonical one-shot store.

    The inputs must be shards of one grid — same meta apart from the
    ``shard`` field (and each shard's slice-level ``telemetry``
    summary, which is dropped and recomputed grid-wide).  By default the merge is strict: shard indices
    must cover ``0/N .. (N-1)/N`` exactly and together supply every
    grid cell, and the output is written with
    :meth:`SweepStore.finalize` under the unsharded meta — byte-
    identical to the store a single unsharded sweep would have
    produced.  Raises :class:`StoreError` on any mismatch.

    ``allow_partial=True`` relaxes completeness (a host died, a shard
    store was lost): whatever rows exist are merged into a *checkpoint*
    store that ``repro sweep --out`` can resume to completion, and an
    explicit **holes manifest** is written next to it (``holes_path``,
    default ``<out_path>.holes.json``) recording the missing shard
    indices and missing cell keys — holes are loud, never silent.
    Grid mismatches and duplicate shards still raise.

    Returns the merged (unsharded) meta; with ``allow_partial`` the
    meta gains a ``"holes"`` count so downstream tooling can tell a
    partial merge from a complete one without re-scanning.
    """
    if not shard_paths:
        raise StoreError("merge_stores needs at least one shard store")
    base_meta: Optional[Dict[str, Any]] = None
    seen_shards: Dict[int, str] = {}
    shard_count: Optional[int] = None
    rows: Dict[str, Dict[str, Any]] = {}
    telemetry_everywhere = True
    for path in shard_paths:
        meta, shard_rows = SweepStore(path).load()
        if meta is None:
            raise StoreError(f"{path}: missing or empty store")
        telemetry_everywhere = telemetry_everywhere and "telemetry" in meta
        shard_text = meta.get("shard")
        if shard_text is None:
            raise StoreError(
                f"{path}: not a shard store (no shard field in meta)"
            )
        try:
            index_text, count_text = str(shard_text).split("/", 1)
            index, count = int(index_text), int(count_text)
        except ValueError:
            raise StoreError(
                f"{path}: malformed shard field {shard_text!r}"
            ) from None
        # A finalized shard meta carries its slice-level telemetry
        # summary, which legitimately differs per shard — drop it (and
        # the shard field) before the same-grid comparison.
        unsharded = strip_telemetry(
            {key: val for key, val in meta.items() if key != "shard"}
        )
        if base_meta is None:
            base_meta, shard_count = unsharded, count
        elif unsharded != base_meta or count != shard_count:
            raise StoreError(
                f"{path}: shard belongs to a different grid than "
                f"{shard_paths[0]}"
            )
        if index in seen_shards:
            raise StoreError(
                f"{path}: duplicate shard {index}/{count} "
                f"(also in {seen_shards[index]})"
            )
        seen_shards[index] = path
        rows.update(shard_rows)
    assert base_meta is not None and shard_count is not None
    missing_shards = sorted(set(range(shard_count)) - set(seen_shards))
    if missing_shards and not allow_partial:
        raise StoreError(
            f"missing shard store(s) for "
            f"{', '.join(f'{i}/{shard_count}' for i in missing_shards)}"
        )
    ordered: List[Dict[str, Any]] = []
    missing_cells = []
    for cell in grid_cell_dicts(base_meta):
        row = rows.get(cell_key(cell))
        if row is None:
            missing_cells.append(cell_key(cell))
        else:
            ordered.append(row)
    if missing_cells and not allow_partial:
        raise StoreError(
            f"{len(missing_cells)} grid cell(s) missing from the shards "
            f"(first: {missing_cells[0]}) — finish every shard sweep "
            f"before merging (or pass --allow-partial)"
        )
    if not (missing_shards or missing_cells):
        merged_meta = dict(base_meta)
        if telemetry_everywhere:
            # Recompute the grid-level summary from the merged rows —
            # byte-identical to what an unsharded sweep would finalize.
            merged_meta["telemetry"] = store_telemetry(ordered)
        SweepStore(out_path).finalize(merged_meta, ordered)
        return merged_meta
    # Partial merge: a resumable checkpoint store plus a holes manifest.
    out = SweepStore(out_path)
    out.begin(base_meta, fresh=True)
    for row in ordered:
        out.append({k: v for k, v in row.items() if k != CRC_FIELD})
    manifest = {
        "store": out_path,
        "schema": SCHEMA,
        "expected_shards": shard_count,
        "missing_shards": missing_shards,
        "expected_cells": base_meta["cells"],
        "present_cells": len(ordered),
        "missing_cells": missing_cells,
    }
    holes_path = holes_path or out_path + ".holes.json"
    with open(holes_path, "w") as handle:
        handle.write(canonical_line(manifest) + "\n")
    merged_meta = dict(base_meta)
    merged_meta["holes"] = len(missing_cells)
    return merged_meta
