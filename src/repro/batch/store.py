"""JSONL result store for sweeps: checkpoint, resume, canonical form.

Lifecycle of a store file:

* **Checkpointing** — while a sweep runs, each finished cell's row is
  appended (and flushed) immediately, in *completion* order.  An
  interrupted sweep therefore keeps everything it finished.
* **Resume** — :meth:`SweepStore.load` reads rows back keyed by cell,
  so a re-run executes only the missing cells (the meta line pins the
  grid; resuming against a different grid is refused).
* **Canonical finalize** — when every cell is present the store is
  atomically rewritten in *grid* order with sorted-key, fixed-separator
  JSON.  Two completed sweeps over the same grid are byte-identical,
  whatever backend or worker count produced them — that is the
  determinism contract tests/batch/test_sweep.py enforces.

Rows deliberately contain no wall-clock data; timing lives in the
sweep summary (and ``BENCH_sim.json``), never in the store.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, Optional, Tuple

#: Store schema tag, written into the meta line.
SCHEMA = "repro-sweep/1"


def canonical_line(obj: Dict[str, Any]) -> str:
    """The one true serialization of a row (or meta) object."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def cell_key(cell: Dict[str, Any]) -> str:
    """Stable identity of a grid cell, as stored in a row's ``cell``."""
    return (
        f"{cell['workload']}|{cell['spec']}"
        f"|seed={cell['seed']}|k={cell['k']}"
    )


class StoreError(ValueError):
    """A store file does not match the sweep trying to use it."""


class SweepStore:
    """One JSONL file holding a sweep's meta line and result rows."""

    def __init__(self, path: str) -> None:
        self.path = path

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # -- reading -----------------------------------------------------------
    def load(self) -> Tuple[Optional[Dict[str, Any]], Dict[str, Dict[str, Any]]]:
        """Read (meta, rows-by-cell-key); (None, {}) when absent.

        Tolerates a truncated trailing line (the run may have been
        killed mid-append); anything else malformed raises.
        """
        if not self.exists():
            return None, {}
        meta: Optional[Dict[str, Any]] = None
        rows: Dict[str, Dict[str, Any]] = {}
        with open(self.path) as handle:
            lines = handle.read().splitlines()
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines) - 1:
                    break  # torn final append from an interrupted run
                raise StoreError(
                    f"{self.path}:{number + 1}: unparsable store line"
                )
            if "schema" in record and "cell" not in record:
                meta = record
            elif "cell" in record:
                rows[cell_key(record["cell"])] = record
            else:
                raise StoreError(
                    f"{self.path}:{number + 1}: neither meta nor row"
                )
        return meta, rows

    # -- writing -----------------------------------------------------------
    def begin(self, meta: Dict[str, Any], fresh: bool) -> None:
        """Open the store for a run: write the meta line if the file is
        new (or ``fresh`` forces a truncate)."""
        if fresh or not self.exists():
            with open(self.path, "w") as handle:
                handle.write(canonical_line(meta) + "\n")

    def append(self, row: Dict[str, Any]) -> None:
        """Checkpoint one finished cell (appended and flushed)."""
        with open(self.path, "a") as handle:
            handle.write(canonical_line(row) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def finalize(
        self, meta: Dict[str, Any], rows: Iterable[Dict[str, Any]]
    ) -> None:
        """Atomically rewrite the store in canonical (grid) order."""
        tmp = self.path + ".tmp"
        with open(tmp, "w") as handle:
            handle.write(canonical_line(meta) + "\n")
            for row in rows:
                handle.write(canonical_line(row) + "\n")
        os.replace(tmp, self.path)
