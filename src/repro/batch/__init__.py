"""Process-parallel batch execution: pools, caches, sweeps, stores.

The scaling layer the ROADMAP calls for: a persistent
:class:`SharedPool` process backend for
:func:`repro.sim.run_in_parallel` (vertex-disjoint cluster runs on
separate cores, tasks shipped as graph-rebuild specs), a decorator
registry of sweep workloads, and a sharded sweep runner that fans a
(graph-spec × seed × k) grid across workers — or across hosts via
``--shard i/N`` plus :func:`merge_stores` — with graph-generation
caching and a checkpoint/resume JSONL result store.  See
docs/performance.md ("Batch execution and sweeps").

The fabric is *hardened* (docs/robustness.md): dead and hung workers
are detected and replaced (``deadline_s`` watchdog), poison tasks are
quarantined after bounded retries instead of crashing the batch, store
rows carry checksums (:func:`repair_store` salvages a damaged store),
and the whole story is drilled deterministically by
:mod:`repro.batch.chaos`.
"""

from .cache import GraphCache
from .chaos import ChaosAction, ChaosPlan, ChaosReport, run_chaos
from .dispatch import NetworkSpec, network_spec, task_pickle_bytes
from .pool import (
    PoolCrashError,
    SharedPool,
    TaskQuarantinedError,
    imap_completion_order,
    map_submission_order,
    resolve_workers,
    run_networks_in_pool,
)
from .registry import (
    Workload,
    WorkloadError,
    get_workload,
    register_workload,
    workload_names,
)
from .status import (
    STATUS_SCHEMA,
    SweepStatusWriter,
    find_status_files,
    read_status,
    render_status,
    render_store_status,
    render_top,
    status_path_for,
)
from .store import (
    SCHEMA,
    SalvageReport,
    StoreCorruption,
    StoreError,
    SweepStore,
    canonical_line,
    cell_key,
    merge_stores,
    repair_store,
)
from .portfolio import (
    PORTFOLIO_SCHEMA,
    PortfolioError,
    REDUCTIONS,
    portfolio_run,
    portfolio_verdict,
    render_verdict,
    verdict_json,
    verdict_path_for,
)
from .sweep import (
    SWEEP_BACKENDS,
    SweepCell,
    SweepCellError,
    SweepCrashError,
    SweepGrid,
    SweepSummary,
    fast_grid,
    parse_shard,
    run_cell,
    run_sweep,
    shard_cells,
)
from .telemetry import (
    aggregate_profiles,
    cell_snapshot,
    deterministic_part,
    store_telemetry,
    strip_telemetry,
)

__all__ = [
    "ChaosAction",
    "ChaosPlan",
    "ChaosReport",
    "GraphCache",
    "NetworkSpec",
    "PORTFOLIO_SCHEMA",
    "PoolCrashError",
    "PortfolioError",
    "REDUCTIONS",
    "SCHEMA",
    "STATUS_SCHEMA",
    "SWEEP_BACKENDS",
    "SalvageReport",
    "SharedPool",
    "StoreCorruption",
    "StoreError",
    "SweepCell",
    "SweepCellError",
    "SweepCrashError",
    "SweepGrid",
    "SweepStatusWriter",
    "SweepStore",
    "SweepSummary",
    "TaskQuarantinedError",
    "Workload",
    "WorkloadError",
    "aggregate_profiles",
    "canonical_line",
    "cell_key",
    "cell_snapshot",
    "deterministic_part",
    "fast_grid",
    "find_status_files",
    "get_workload",
    "imap_completion_order",
    "map_submission_order",
    "merge_stores",
    "network_spec",
    "parse_shard",
    "portfolio_run",
    "portfolio_verdict",
    "read_status",
    "register_workload",
    "render_status",
    "render_verdict",
    "render_store_status",
    "render_top",
    "repair_store",
    "resolve_workers",
    "run_cell",
    "run_chaos",
    "run_networks_in_pool",
    "run_sweep",
    "shard_cells",
    "status_path_for",
    "store_telemetry",
    "strip_telemetry",
    "task_pickle_bytes",
    "verdict_json",
    "verdict_path_for",
    "workload_names",
]
