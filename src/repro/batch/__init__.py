"""Process-parallel batch execution: pools, caches, sweeps, stores.

The scaling layer the ROADMAP calls for: a process-pool backend for
:func:`repro.sim.run_in_parallel` (vertex-disjoint cluster runs on
separate cores) and a sharded sweep runner that fans a
(graph-spec × seed × k) grid across workers with graph-generation
caching and a checkpoint/resume JSONL result store.  See
docs/performance.md ("Batch execution and sweeps").
"""

from .cache import GraphCache
from .pool import (
    imap_completion_order,
    map_submission_order,
    resolve_workers,
    run_networks_in_pool,
)
from .store import SCHEMA, StoreError, SweepStore, canonical_line, cell_key
from .sweep import (
    SWEEP_BACKENDS,
    SweepCell,
    SweepCellError,
    SweepGrid,
    SweepSummary,
    WORKLOADS,
    fast_grid,
    run_cell,
    run_sweep,
)

__all__ = [
    "GraphCache",
    "SCHEMA",
    "SWEEP_BACKENDS",
    "StoreError",
    "SweepCell",
    "SweepCellError",
    "SweepGrid",
    "SweepStore",
    "SweepSummary",
    "WORKLOADS",
    "canonical_line",
    "cell_key",
    "fast_grid",
    "imap_completion_order",
    "map_submission_order",
    "resolve_workers",
    "run_cell",
    "run_networks_in_pool",
    "run_sweep",
]
