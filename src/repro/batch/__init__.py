"""Process-parallel batch execution: pools, caches, sweeps, stores.

The scaling layer the ROADMAP calls for: a persistent
:class:`SharedPool` process backend for
:func:`repro.sim.run_in_parallel` (vertex-disjoint cluster runs on
separate cores, tasks shipped as graph-rebuild specs), a decorator
registry of sweep workloads, and a sharded sweep runner that fans a
(graph-spec × seed × k) grid across workers — or across hosts via
``--shard i/N`` plus :func:`merge_stores` — with graph-generation
caching and a checkpoint/resume JSONL result store.  See
docs/performance.md ("Batch execution and sweeps").
"""

from .cache import GraphCache
from .dispatch import NetworkSpec, network_spec, task_pickle_bytes
from .pool import (
    PoolCrashError,
    SharedPool,
    imap_completion_order,
    map_submission_order,
    resolve_workers,
    run_networks_in_pool,
)
from .registry import (
    Workload,
    WorkloadError,
    get_workload,
    register_workload,
    workload_names,
)
from .store import (
    SCHEMA,
    StoreError,
    SweepStore,
    canonical_line,
    cell_key,
    merge_stores,
)
from .sweep import (
    SWEEP_BACKENDS,
    SweepCell,
    SweepCellError,
    SweepGrid,
    SweepSummary,
    fast_grid,
    parse_shard,
    run_cell,
    run_sweep,
    shard_cells,
)

__all__ = [
    "GraphCache",
    "NetworkSpec",
    "PoolCrashError",
    "SCHEMA",
    "SWEEP_BACKENDS",
    "SharedPool",
    "StoreError",
    "SweepCell",
    "SweepCellError",
    "SweepGrid",
    "SweepStore",
    "SweepSummary",
    "Workload",
    "WorkloadError",
    "canonical_line",
    "cell_key",
    "fast_grid",
    "get_workload",
    "imap_completion_order",
    "map_submission_order",
    "merge_stores",
    "network_spec",
    "parse_shard",
    "register_workload",
    "resolve_workers",
    "run_cell",
    "run_networks_in_pool",
    "run_sweep",
    "shard_cells",
    "task_pickle_bytes",
    "workload_names",
]
