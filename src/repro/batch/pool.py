"""Process-pool execution: the one place that touches ``multiprocessing``.

Two consumers share this module:

* :func:`repro.sim.run_in_parallel` with ``backend="process"`` ships
  whole (network, factory) runs to workers via
  :func:`run_networks_in_pool`;
* the sweep runner (:mod:`repro.batch.sweep`) fans grid cells across
  workers via :func:`imap_completion_order`, consuming results as they
  finish so it can checkpoint them immediately.

Determinism contract: results are *tagged with their submission index*
inside the worker, so callers can always reassemble submission order
regardless of completion order.  Everything that crosses the process
boundary (task functions, items, results) must be picklable; task
functions must be module-level (or picklable callables), which is why
the sweep and runner keep theirs at module scope.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple


def resolve_workers(workers: Optional[int]) -> int:
    """Number of pool processes: ``workers`` or the CPU count."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _portable_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives pickling, else a faithful stand-in
    (an unpicklable exception must not take the whole pool down)."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _invoke(task: Tuple[Callable[[Any], Any], int, Any]) -> Tuple[int, str, Any]:
    """Worker-side trampoline: run one task, tag it with its index."""
    fn, index, item = task
    try:
        return index, "ok", fn(item)
    except Exception as exc:  # shipped back, re-raised caller-side
        return index, "error", _portable_exception(exc)


def imap_completion_order(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    workers: Optional[int] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
) -> Iterator[Tuple[int, str, Any]]:
    """Yield ``(submission_index, status, payload)`` as tasks finish.

    ``status`` is ``"ok"`` (payload = result) or ``"error"`` (payload =
    the exception; the caller decides whether to raise).  The pool is
    torn down when the iterator is exhausted or closed.
    """
    tasks = [(fn, index, item) for index, item in enumerate(items)]
    if not tasks:
        return
    processes = min(resolve_workers(workers), len(tasks))
    ctx = multiprocessing.get_context()
    pool = ctx.Pool(processes=processes, initializer=initializer, initargs=initargs)
    try:
        for result in pool.imap_unordered(_invoke, tasks):
            yield result
        pool.close()
        pool.join()
    finally:
        pool.terminate()


def map_submission_order(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    backend: str = "inline",
    workers: Optional[int] = None,
) -> List[Any]:
    """Map ``fn`` over ``items``; results in submission order.

    ``backend="inline"`` runs in this process; ``"process"`` fans out
    and reassembles.  The first failing item's exception is re-raised
    either way.  This is the benchmark harness's opt-in hook.
    """
    items = list(items)
    if backend == "inline" or len(items) <= 1:
        return [fn(item) for item in items]
    if backend != "process":
        raise ValueError(f"backend must be 'inline' or 'process', got {backend!r}")
    results: List[Any] = [None] * len(items)
    failures = {}
    for index, status, payload in imap_completion_order(fn, items, workers):
        if status == "error":
            failures[index] = payload
        else:
            results[index] = payload
    if failures:
        raise failures[min(failures)]
    return results


# ---------------------------------------------------------------------------
# run_in_parallel's process backend
# ---------------------------------------------------------------------------
def _run_network_task(task: Tuple[Any, Any, int]) -> Tuple[Any, dict, dict]:
    """Execute one (network, factory) run inside a worker.

    Returns what parent-side drivers consume — the run result (metrics
    or fault report), per-node outputs and halt flags — rather than the
    mutated network: finished programs may hold generator frames
    (:class:`~repro.sim.program.ScriptedProgram`), which do not pickle.
    """
    network, factory, max_rounds = task
    result = network.run(factory, max_rounds=max_rounds)
    outputs = {v: program.output for v, program in network.programs.items()}
    halted = {v: program.halted for v, program in network.programs.items()}
    return result, outputs, halted


def run_networks_in_pool(
    runs: List[Tuple[Any, Any]],
    max_rounds: int,
    workers: Optional[int] = None,
) -> Tuple[List[Any], Any]:
    """Process backend for :func:`repro.sim.run_in_parallel`.

    Ships each pre-run network + factory to a worker, adopts the
    results back into the caller's network objects, and merges metrics
    in submission order (deterministic regardless of completion
    order).  On failure, completed runs are preserved and re-raised as
    :class:`~repro.sim.runner.ParallelRunError`, matching the inline
    backend's contract.
    """
    from ..sim.metrics import RunMetrics
    from ..sim.runner import ParallelRunError

    tasks = [(network, factory, max_rounds) for network, factory in runs]
    outcomes: List[Optional[Tuple[Any, dict, dict]]] = [None] * len(tasks)
    failures = {}
    for index, status, payload in imap_completion_order(_run_network_task, tasks):
        if status == "error":
            failures[index] = payload
        else:
            outcomes[index] = payload
    networks: List[Any] = []
    collected: List[RunMetrics] = []
    for run, outcome in zip(runs, outcomes):
        if outcome is None:  # the failed run (or one lost with it)
            continue
        network = run[0]
        result, outputs, halted = outcome
        metrics = getattr(result, "metrics", result)
        network.adopt_results(metrics, outputs, halted)
        networks.append(network)
        collected.append(metrics)
    if failures:
        first = min(failures)
        raise ParallelRunError(
            first, networks, RunMetrics.merge(collected), failures[first]
        ) from failures[first]
    return networks, RunMetrics.merge(collected)
