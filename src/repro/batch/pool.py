"""Process-pool execution: the one place that touches ``multiprocessing``.

Three consumers share this module:

* :func:`repro.sim.run_in_parallel` with ``backend="process"`` ships
  runs (a :class:`~repro.batch.dispatch.NetworkSpec` recipe, or a whole
  network as fallback) via :func:`run_networks_in_pool`;
* the sweep runner (:mod:`repro.batch.sweep`) fans grid cells across
  workers via :func:`imap_completion_order`, consuming results as they
  finish so it can checkpoint them immediately;
* :func:`benchmarks.harness.sweep_map` maps experiment cells through
  :func:`map_submission_order`.

All three routes go through one pool when a :class:`SharedPool` is
active (entered as a context manager, or passed explicitly): the pool
persists across calls, so repeated fan-outs pay worker startup once
and worker-side caches (graph regeneration, imported workload modules)
stay warm.  Without one, each call spins up a disposable pool — the
PR 4 behaviour.

Determinism contract: results are *tagged with their submission index*
inside the worker, so callers can always reassemble submission order
regardless of completion order.  Everything that crosses the process
boundary (task functions, items, results) must be picklable; task
functions must be module-level (or picklable callables), which is why
the sweep and runner keep theirs at module scope.

**Fault tolerance** (docs/robustness.md): a worker that *dies* mid-task
is detected by watching the pool's pid set; a worker that *hangs*
(livelock, SIGSTOP, a task that never returns) is detected by the
per-task ``deadline_s`` watchdog.  Either way the pool is torn down
(SIGKILL — SIGTERM cannot kill a stopped process), respawned after a
capped exponential backoff, and unfinished tasks are resubmitted.  A
task blamed ``max_attempts`` times is **quarantined**: yielded with
status ``"quarantined"`` instead of being retried forever, so one
poison task degrades the batch instead of crashing it.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import time
from collections import deque
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple


def resolve_workers(workers: Optional[int]) -> int:
    """Number of pool processes: ``workers`` or the CPU count."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _portable_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives pickling, else a faithful stand-in
    (an unpicklable exception must not take the whole pool down)."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


#: How long a chaos "hang" op sleeps — effectively forever next to any
#: reasonable ``deadline_s``; the watchdog is what ends it.
_HANG_SECONDS = 600.0


def _apply_chaos_op(op: Optional[Tuple[Any, ...]]) -> None:
    """Worker-side chaos execution (see :mod:`repro.batch.chaos`).

    ``op`` is ``None`` (the overwhelmingly common case), or a small
    tuple: ``("kill",)`` hard-exits the worker mid-task, ``("hang",)``
    wedges it until the watchdog kills it, ``("slow", seconds)`` sleeps
    before running the task normally.
    """
    if not op:
        return
    kind = op[0]
    if kind == "kill":
        os._exit(137)
    elif kind == "hang":
        time.sleep(_HANG_SECONDS)
    elif kind == "slow":
        time.sleep(float(op[1]))


def _invoke(
    task: Tuple[Callable[[Any], Any], int, Any, Optional[Tuple[Any, ...]]]
) -> Tuple[int, str, Any]:
    """Worker-side trampoline: run one task, tag it with its index."""
    fn, index, item, chaos_op = task
    _apply_chaos_op(chaos_op)
    try:
        return index, "ok", fn(item)
    except Exception as exc:  # shipped back, re-raised caller-side
        return index, "error", _portable_exception(exc)


# ---------------------------------------------------------------------------
# The persistent shared pool
# ---------------------------------------------------------------------------
class PoolCrashError(RuntimeError):
    """Workers kept dying faster than the pool could make progress.

    Raised by :meth:`SharedPool.imap` after ``max_restarts`` consecutive
    pool restarts delivered no result (and quarantined nothing) — the
    signature of a pool-wide failure rather than a single poison task
    (poison tasks are quarantined instead).  Results delivered before
    the crash were already yielded; ``pending`` counts the tasks still
    unfinished and ``pending_items`` carries the items themselves so
    callers can report exactly which work was lost (the sweep surfaces
    these as cell keys via :class:`~repro.batch.sweep.SweepCrashError`).
    """

    def __init__(
        self,
        restarts: int,
        pending: int,
        pending_items: Tuple[Any, ...] = (),
    ) -> None:
        super().__init__(
            f"worker pool crashed {restarts} time(s); giving up with "
            f"{pending} task(s) unfinished (a task is killing its worker)"
        )
        self.restarts = restarts
        self.pending = pending
        self.pending_items = tuple(pending_items)


class TaskQuarantinedError(RuntimeError):
    """A strict consumer (``map``) met a quarantined task."""

    def __init__(self, index: int, info: Dict[str, Any]) -> None:
        super().__init__(
            f"task {index} quarantined after {info.get('attempts')} "
            f"attempt(s): {info.get('reason')}"
        )
        self.index = index
        self.info = info


#: Stack of entered SharedPools; the innermost is the ambient pool that
#: pool-agnostic call sites (run_in_parallel, run_sweep, sweep_map)
#: route through.
_ACTIVE: List["SharedPool"] = []

#: Seconds between liveness/readiness polls while draining a batch.
#: Tasks here are whole simulation runs (milliseconds at minimum), so a
#: short sleep costs nothing measurable and keeps the parent responsive.
_POLL_INTERVAL = 0.005


class SharedPool:
    """A persistent worker pool reused across batch calls.

    ::

        with SharedPool(workers=4) as pool:
            run_sweep(grid_a, backend="process")   # same 4 workers
            run_sweep(grid_b, backend="process")   # ...reused
            fastdom_tree(tree, root, parent, k, backend="process")

    Entering the context makes the pool *ambient*: every
    ``backend="process"`` call inside the block routes through it
    (innermost pool wins when nested).  Passing ``pool=...`` explicitly
    works too and takes precedence.  Exiting shuts the workers down;
    :meth:`close` is idempotent and also safe to call directly.

    **Crash recovery.**  A worker that dies mid-task (hard exit, OOM
    kill) would hang a plain ``multiprocessing.Pool`` consumer forever:
    the pool replaces the worker but the task it held is silently lost.
    ``SharedPool`` watches the worker pid set while draining; when it
    changes, the pool is torn down, respawned, and every unfinished
    task resubmitted.  Tasks must therefore be idempotent — true for
    everything in this repository, where tasks are deterministic
    simulations.

    **Hang recovery.**  ``deadline_s`` arms a watchdog: a task in
    flight longer than the deadline means its worker is hung (infinite
    loop, SIGSTOP, deadlock), which no pid-set watching can see.  The
    pool is killed (SIGKILL — a stopped worker ignores SIGTERM) and
    rebuilt exactly as for a crash.

    **Blame, retries, quarantine.**  Each recovery increments the
    attempt count of the tasks *blamed* for it — the deadline-expired
    tasks on a hang, the in-flight tasks on a crash (at most
    ``workers`` of them, thanks to windowed dispatch; a planned chaos
    op narrows blame to the task that carries it).  Unblamed casualties
    are resubmitted for free.  A task blamed ``max_attempts`` times is
    yielded with status ``"quarantined"`` and not retried.  Only
    ``max_restarts`` *consecutive* recoveries with no progress (no
    result, no quarantine) raise :class:`PoolCrashError`.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        max_restarts: int = 2,
        deadline_s: Optional[float] = None,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.max_restarts = max_restarts
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.deadline_s = deadline_s
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        #: Lifetime counters (telemetry for tests and perf reports).
        self.restarts = 0
        self.dispatched = 0
        self.completed = 0
        self.quarantined = 0
        #: Fabric events (worker_killed / task_retried / task_quarantined)
        #: in emission order; also forwarded to the ambient obs session.
        self.fabric_log: List[Dict[str, Any]] = []
        self._pool: Optional[Any] = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    def _ensure(self) -> Any:
        if self._closed:
            raise RuntimeError("SharedPool is closed")
        if self._pool is None:
            self._pool = multiprocessing.get_context().Pool(self.workers)
        return self._pool

    def _teardown(self) -> None:
        """Kill the workers outright and discard the pool.

        SIGKILL rather than ``Pool.terminate``'s SIGTERM alone: a
        SIGSTOPped worker never handles SIGTERM, so ``join`` would hang
        on exactly the failure mode the watchdog exists to clear.
        """
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        for proc in list(pool._pool):
            if proc.is_alive():
                try:
                    os.kill(proc.pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
        # A worker killed while blocked on the task queue dies *holding*
        # the queue's reader lock, and one killed mid-result-write dies
        # holding the result queue's writer lock; ``Pool.terminate``
        # would deadlock acquiring them (``_help_stuff_finish``).  The
        # pool is being discarded, so force-release both — a release of
        # an already-free lock raises and is ignored.
        for lock in (
            getattr(pool._inqueue, "_rlock", None),
            getattr(pool._outqueue, "_wlock", None),
        ):
            try:
                if lock is not None:
                    lock.release()
            except Exception:
                pass
        pool.terminate()
        pool.join()

    def close(self) -> None:
        """Shut the workers down; the pool cannot be used afterwards."""
        self._teardown()
        self._closed = True

    def __enter__(self) -> "SharedPool":
        if self._closed:
            raise RuntimeError("SharedPool is closed")
        _ACTIVE.append(self)
        return self

    def __exit__(self, *_exc: Any) -> None:
        _ACTIVE.remove(self)
        self.close()

    @classmethod
    def current(cls) -> Optional["SharedPool"]:
        """The innermost entered pool, or ``None``."""
        return _ACTIVE[-1] if _ACTIVE else None

    # -- inspection --------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._pool is not None

    def worker_pids(self) -> Tuple[int, ...]:
        """Pids of the live workers (empty before first use)."""
        if self._pool is None:
            return ()
        return tuple(p.pid for p in self._pool._pool)

    # -- fabric events -----------------------------------------------------
    def _emit(self, kind: str, **fields: Any) -> None:
        """Record a fabric event and forward it to the obs layer.

        Fabric events carry ``round=-1``/``run=-1``: they describe the
        execution fabric, not any simulated network round.  Volatile
        data (pids, timestamps) deliberately never appears — the chaos
        harness compares these logs across replays.
        """
        event: Dict[str, Any] = {"kind": kind, "round": -1, "run": -1}
        event.update(fields)
        self.fabric_log.append(event)
        from ..obs.session import current_observation

        observation = current_observation()
        if observation is not None:
            observation.dispatch(dict(event))

    # -- execution ---------------------------------------------------------
    def imap(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        deadline_s: Optional[float] = None,
        max_attempts: Optional[int] = None,
        chaos: Optional[Any] = None,
    ) -> Iterator[Tuple[int, str, Any]]:
        """Yield ``(submission_index, status, payload)`` as tasks finish.

        ``status`` is ``"ok"`` (payload = result), ``"error"`` (payload
        = the exception the task raised; deterministic failures are
        never retried), or ``"quarantined"`` (payload = a dict with
        ``reason``/``attempts``; see the class docstring).  Per-call
        ``deadline_s``/``max_attempts`` override the pool's defaults.
        ``chaos`` is a :class:`~repro.batch.chaos.ChaosPlan` (or
        anything with its ``op_for(index, attempt)`` shape) injecting
        planned worker faults — the deterministic test harness for all
        of the above.
        """
        deadline = deadline_s if deadline_s is not None else self.deadline_s
        attempts_cap = (
            max_attempts if max_attempts is not None else self.max_attempts
        )
        # Telemetry is ambient and optional: one lookup per batch, one
        # ``is not None`` per instrumented point — the fabric mirror of
        # the engine's no-subscriber discipline.  Everything recorded
        # here is wall-clock-shaped, so it all rides the volatile plane.
        from ..obs.telemetry import current_telemetry

        session = current_telemetry()
        if session is not None:
            tele_queue_wait = session.registry.histogram(
                "fabric_queue_wait_s", volatile=True
            )
            tele_latency = session.registry.histogram(
                "fabric_task_latency_s", volatile=True
            )
            tele_counter = session.registry.counter(
                "fabric_tasks", volatile=True
            )
            session.registry.gauge("fabric_workers", volatile=True).max(
                self.workers
            )
        batch_started = time.monotonic()
        items = list(items)
        pending: Dict[int, Any] = dict(enumerate(items))
        attempts: Dict[int, int] = {}
        stalled_restarts = 0
        while pending:
            pool = self._ensure()
            pids = set(p.pid for p in pool._pool)
            queue = deque(sorted(pending))
            # Windowed dispatch: at most ``workers`` tasks in flight, so
            # the in-flight set approximates "actually running" and a
            # recovery blames at most one window, not the whole batch.
            inflight: Dict[int, Tuple[Any, float]] = {}
            progressed = False
            failure: Optional[Tuple[str, List[int]]] = None
            while queue or inflight:
                while queue and len(inflight) < self.workers:
                    index = queue.popleft()
                    op = (
                        chaos.op_for(index, attempts.get(index, 0))
                        if chaos is not None
                        else None
                    )
                    result = pool.apply_async(
                        _invoke, ((fn, index, pending[index], op),)
                    )
                    now = time.monotonic()
                    inflight[index] = (result, now)
                    self.dispatched += 1
                    if session is not None:
                        tele_counter.inc(state="dispatched")
                        tele_queue_wait.observe(now - batch_started)
                done = [i for i, (r, _) in inflight.items() if r.ready()]
                for index in done:
                    handle, started = inflight.pop(index)
                    outcome = handle.get()
                    del pending[index]
                    self.completed += 1
                    progressed = True
                    if session is not None:
                        tele_counter.inc(state="completed")
                        tele_latency.observe(time.monotonic() - started)
                    yield outcome
                if not (queue or inflight):
                    break
                if done:
                    continue  # drain ready results before fault checks
                failure = self._detect_failure(
                    inflight, pids, pool, deadline, chaos, attempts
                )
                if failure is not None:
                    break
                time.sleep(_POLL_INTERVAL)
            if not pending or failure is None:
                continue
            # -- recovery: blame, quarantine, respawn, resubmit --------
            reason, blamed = failure
            self.restarts += 1
            self._teardown()
            self._emit("worker_killed", reason=reason, workers=self.workers)
            if session is not None:
                session.registry.counter(
                    "fabric_worker_respawns", volatile=True
                ).inc(reason=reason)
            for index in blamed:
                attempts[index] = attempts.get(index, 0) + 1
                if attempts[index] >= attempts_cap:
                    del pending[index]
                    self.quarantined += 1
                    progressed = True
                    info = {"reason": reason, "attempts": attempts[index]}
                    self._emit(
                        "task_quarantined",
                        task=index,
                        attempts=attempts[index],
                        reason=reason,
                    )
                    if session is not None:
                        tele_counter.inc(state="quarantined")
                    yield index, "quarantined", info
                else:
                    self._emit(
                        "task_retried",
                        task=index,
                        attempt=attempts[index],
                        reason=reason,
                    )
                    if session is not None:
                        tele_counter.inc(state="retried")
            stalled_restarts = 0 if progressed else stalled_restarts + 1
            if stalled_restarts > self.max_restarts:
                raise PoolCrashError(
                    stalled_restarts, len(pending), tuple(pending.values())
                )
            if pending:
                time.sleep(
                    min(
                        self.backoff_max_s,
                        self.backoff_base_s * (2 ** (stalled_restarts or 1)),
                    )
                )

    def _detect_failure(
        self,
        inflight: Dict[int, Tuple[Any, float]],
        pids: set,
        pool: Any,
        deadline: Optional[float],
        chaos: Optional[Any],
        attempts: Dict[int, int],
    ) -> Optional[Tuple[str, List[int]]]:
        """One watchdog pass: ``(reason, blamed_indices)`` or ``None``.

        Blame narrows to the tasks carrying a *planned* chaos op when
        one is in flight — that keeps the retry/quarantine log
        deterministic under ``repro chaos`` replays, where organic
        blame ("everything in flight") would depend on scheduling.
        """

        def planned(kind: str, candidates: List[int]) -> List[int]:
            if chaos is None:
                return []
            return [
                index
                for index in candidates
                if (chaos.op_for(index, attempts.get(index, 0)) or (None,))[0]
                == kind
            ]

        if deadline is not None:
            now = time.monotonic()
            expired = [
                index
                for index, (_r, started) in inflight.items()
                if now - started > deadline
            ]
            if expired:
                return "hung", sorted(planned("hang", expired) or expired)
        # Liveness: the pool's maintenance thread replaces dead workers,
        # so a changed pid set means a worker died and whatever task it
        # held is lost.
        if set(p.pid for p in pool._pool) != pids:
            candidates = list(inflight)
            return "crashed", sorted(planned("kill", candidates) or candidates)
        return None

    def map(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> List[Any]:
        """Map ``fn`` over ``items``; results in submission order, the
        first failing (or quarantined) item's exception re-raised."""
        items = list(items)
        results: List[Any] = [None] * len(items)
        failures: Dict[int, BaseException] = {}
        for index, status, payload in self.imap(fn, items):
            if status == "error":
                failures[index] = payload
            elif status == "quarantined":
                failures[index] = TaskQuarantinedError(index, payload)
            else:
                results[index] = payload
        if failures:
            raise failures[min(failures)]
        return results


# ---------------------------------------------------------------------------
# Pool-agnostic entry points
# ---------------------------------------------------------------------------
def imap_completion_order(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    workers: Optional[int] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
    pool: Optional[SharedPool] = None,
    deadline_s: Optional[float] = None,
    max_attempts: Optional[int] = None,
    chaos: Optional[Any] = None,
) -> Iterator[Tuple[int, str, Any]]:
    """Yield ``(submission_index, status, payload)`` as tasks finish.

    ``status`` is ``"ok"`` (payload = result), ``"error"`` (payload =
    the exception; the caller decides whether to raise), or
    ``"quarantined"`` (see :meth:`SharedPool.imap`).  Routing: an
    explicit ``pool``, else the ambient :meth:`SharedPool.current`, else
    a disposable pool torn down when the iterator is exhausted or
    closed.  ``initializer`` forces the disposable path (a shared pool's
    workers were started long ago); in-repo callers use lazily-created
    worker state instead.  ``deadline_s``/``chaos`` need the monitored
    :class:`SharedPool` loop, so they promote the disposable path to a
    single-use SharedPool.
    """
    items = list(items)
    if not items:
        return
    if initializer is None:
        shared = pool if pool is not None else SharedPool.current()
        if shared is not None:
            yield from shared.imap(
                fn,
                items,
                deadline_s=deadline_s,
                max_attempts=max_attempts,
                chaos=chaos,
            )
            return
        if deadline_s is not None or chaos is not None:
            one_use = SharedPool(
                workers=min(resolve_workers(workers), len(items)),
                deadline_s=deadline_s,
            )
            try:
                yield from one_use.imap(
                    fn, items, max_attempts=max_attempts, chaos=chaos
                )
            finally:
                one_use.close()
            return
    tasks = [(fn, index, item, None) for index, item in enumerate(items)]
    processes = min(resolve_workers(workers), len(tasks))
    from ..obs.telemetry import current_telemetry

    session = current_telemetry()
    if session is not None:
        tele_counter = session.registry.counter("fabric_tasks", volatile=True)
        tele_counter.inc(len(tasks), state="dispatched")
        session.registry.gauge("fabric_workers", volatile=True).max(processes)
    ctx = multiprocessing.get_context()
    one_shot = ctx.Pool(
        processes=processes, initializer=initializer, initargs=initargs
    )
    try:
        for result in one_shot.imap_unordered(_invoke, tasks):
            if session is not None:
                tele_counter.inc(state="completed")
            yield result
        one_shot.close()
        one_shot.join()
    finally:
        one_shot.terminate()


def map_submission_order(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    backend: str = "inline",
    workers: Optional[int] = None,
    pool: Optional[SharedPool] = None,
) -> List[Any]:
    """Map ``fn`` over ``items``; results in submission order.

    ``backend="inline"`` runs in this process; ``"process"`` fans out
    (through ``pool``, the ambient shared pool, or a disposable one)
    and reassembles.  The first failing item's exception is re-raised
    either way.  This is the benchmark harness's opt-in hook.
    """
    items = list(items)
    if backend == "inline" or len(items) <= 1:
        return [fn(item) for item in items]
    if backend != "process":
        raise ValueError(f"backend must be 'inline' or 'process', got {backend!r}")
    results: List[Any] = [None] * len(items)
    failures: Dict[int, BaseException] = {}
    for index, status, payload in imap_completion_order(
        fn, items, workers, pool=pool
    ):
        if status == "error":
            failures[index] = payload
        elif status == "quarantined":
            failures[index] = TaskQuarantinedError(index, payload)
        else:
            results[index] = payload
    if failures:
        raise failures[min(failures)]
    return results


# ---------------------------------------------------------------------------
# run_in_parallel's process backend
# ---------------------------------------------------------------------------
def run_networks_in_pool(
    runs: List[Tuple[Any, Any]],
    max_rounds: int,
    workers: Optional[int] = None,
    pool: Optional[SharedPool] = None,
    deadline_s: Optional[float] = None,
) -> Tuple[List[Any], Any]:
    """Process backend for :func:`repro.sim.run_in_parallel`.

    Each run ships as the smallest thing that reproduces it: a
    :class:`~repro.batch.dispatch.NetworkSpec` recipe when the network
    is recipe-expressible, the whole network otherwise (see
    :mod:`repro.batch.dispatch`).  Workers send back the run result,
    outputs and halt flags; the caller's network objects adopt them,
    and metrics merge in submission order (deterministic regardless of
    completion order).  On failure, completed runs are preserved and
    re-raised as :class:`~repro.sim.runner.ParallelRunError`, matching
    the inline backend's contract.  ``deadline_s`` arms the hung-worker
    watchdog (quarantined runs surface as failures here — a lost
    simulation run has no partial result worth keeping).
    """
    from ..sim.metrics import RunMetrics
    from ..sim.runner import ParallelRunError
    from .dispatch import parallel_task, run_parallel_task

    tasks = [
        parallel_task(network, factory, max_rounds)
        for network, factory in runs
    ]
    outcomes: List[Optional[Tuple[Any, dict, dict]]] = [None] * len(tasks)
    failures: Dict[int, BaseException] = {}
    for index, status, payload in imap_completion_order(
        run_parallel_task, tasks, workers, pool=pool, deadline_s=deadline_s
    ):
        if status == "error":
            failures[index] = payload
        elif status == "quarantined":
            failures[index] = TaskQuarantinedError(index, payload)
        else:
            outcomes[index] = payload
    networks: List[Any] = []
    collected: List[RunMetrics] = []
    for run, outcome in zip(runs, outcomes):
        if outcome is None:  # the failed run (or one lost with it)
            continue
        network = run[0]
        result, outputs, halted = outcome
        metrics = getattr(result, "metrics", result)
        network.adopt_results(metrics, outputs, halted)
        networks.append(network)
        collected.append(metrics)
    if failures:
        first = min(failures)
        raise ParallelRunError(
            first, networks, RunMetrics.merge(collected), failures[first]
        ) from failures[first]
    return networks, RunMetrics.merge(collected)
