"""Process-pool execution: the one place that touches ``multiprocessing``.

Three consumers share this module:

* :func:`repro.sim.run_in_parallel` with ``backend="process"`` ships
  runs (a :class:`~repro.batch.dispatch.NetworkSpec` recipe, or a whole
  network as fallback) via :func:`run_networks_in_pool`;
* the sweep runner (:mod:`repro.batch.sweep`) fans grid cells across
  workers via :func:`imap_completion_order`, consuming results as they
  finish so it can checkpoint them immediately;
* :func:`benchmarks.harness.sweep_map` maps experiment cells through
  :func:`map_submission_order`.

All three routes go through one pool when a :class:`SharedPool` is
active (entered as a context manager, or passed explicitly): the pool
persists across calls, so repeated fan-outs pay worker startup once
and worker-side caches (graph regeneration, imported workload modules)
stay warm.  Without one, each call spins up a disposable pool — the
PR 4 behaviour.

Determinism contract: results are *tagged with their submission index*
inside the worker, so callers can always reassemble submission order
regardless of completion order.  Everything that crosses the process
boundary (task functions, items, results) must be picklable; task
functions must be module-level (or picklable callables), which is why
the sweep and runner keep theirs at module scope.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple


def resolve_workers(workers: Optional[int]) -> int:
    """Number of pool processes: ``workers`` or the CPU count."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _portable_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives pickling, else a faithful stand-in
    (an unpicklable exception must not take the whole pool down)."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _invoke(task: Tuple[Callable[[Any], Any], int, Any]) -> Tuple[int, str, Any]:
    """Worker-side trampoline: run one task, tag it with its index."""
    fn, index, item = task
    try:
        return index, "ok", fn(item)
    except Exception as exc:  # shipped back, re-raised caller-side
        return index, "error", _portable_exception(exc)


# ---------------------------------------------------------------------------
# The persistent shared pool
# ---------------------------------------------------------------------------
class PoolCrashError(RuntimeError):
    """Workers kept dying faster than the pool could restart them.

    Raised by :meth:`SharedPool.imap` after ``max_restarts`` pool
    restarts within one call still left tasks unfinished — the signature
    of a task that hard-kills its worker (``os._exit``, OOM kill,
    segfault) every time it runs.  Results delivered before the crash
    were already yielded; ``pending`` counts the tasks still unfinished.
    """

    def __init__(self, restarts: int, pending: int) -> None:
        super().__init__(
            f"worker pool crashed {restarts} time(s); giving up with "
            f"{pending} task(s) unfinished (a task is killing its worker)"
        )
        self.restarts = restarts
        self.pending = pending


#: Stack of entered SharedPools; the innermost is the ambient pool that
#: pool-agnostic call sites (run_in_parallel, run_sweep, sweep_map)
#: route through.
_ACTIVE: List["SharedPool"] = []

#: Seconds between liveness/readiness polls while draining a batch.
#: Tasks here are whole simulation runs (milliseconds at minimum), so a
#: short sleep costs nothing measurable and keeps the parent responsive.
_POLL_INTERVAL = 0.005


class SharedPool:
    """A persistent worker pool reused across batch calls.

    ::

        with SharedPool(workers=4) as pool:
            run_sweep(grid_a, backend="process")   # same 4 workers
            run_sweep(grid_b, backend="process")   # ...reused
            fastdom_tree(tree, root, parent, k, backend="process")

    Entering the context makes the pool *ambient*: every
    ``backend="process"`` call inside the block routes through it
    (innermost pool wins when nested).  Passing ``pool=...`` explicitly
    works too and takes precedence.  Exiting shuts the workers down;
    :meth:`close` is idempotent and also safe to call directly.

    **Crash recovery.**  A worker that dies mid-task (hard exit, OOM
    kill) would hang a plain ``multiprocessing.Pool`` consumer forever:
    the pool replaces the worker but the task it held is silently lost.
    ``SharedPool`` watches the worker pid set while draining; when it
    changes, the pool is torn down, respawned, and every unfinished
    task resubmitted.  Tasks must therefore be idempotent — true for
    everything in this repository, where tasks are deterministic
    simulations.  After ``max_restarts`` restarts within a single call
    the pool raises :class:`PoolCrashError` instead of looping forever.
    """

    def __init__(
        self, workers: Optional[int] = None, max_restarts: int = 2
    ) -> None:
        self.workers = resolve_workers(workers)
        self.max_restarts = max_restarts
        #: Lifetime counters (telemetry for tests and perf reports).
        self.restarts = 0
        self.dispatched = 0
        self.completed = 0
        self._pool: Optional[Any] = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    def _ensure(self) -> Any:
        if self._closed:
            raise RuntimeError("SharedPool is closed")
        if self._pool is None:
            self._pool = multiprocessing.get_context().Pool(self.workers)
        return self._pool

    def _teardown(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def close(self) -> None:
        """Shut the workers down; the pool cannot be used afterwards."""
        self._teardown()
        self._closed = True

    def __enter__(self) -> "SharedPool":
        if self._closed:
            raise RuntimeError("SharedPool is closed")
        _ACTIVE.append(self)
        return self

    def __exit__(self, *_exc: Any) -> None:
        _ACTIVE.remove(self)
        self.close()

    @classmethod
    def current(cls) -> Optional["SharedPool"]:
        """The innermost entered pool, or ``None``."""
        return _ACTIVE[-1] if _ACTIVE else None

    # -- inspection --------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._pool is not None

    def worker_pids(self) -> Tuple[int, ...]:
        """Pids of the live workers (empty before first use)."""
        if self._pool is None:
            return ()
        return tuple(p.pid for p in self._pool._pool)

    # -- execution ---------------------------------------------------------
    def imap(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[Tuple[int, str, Any]]:
        """Yield ``(submission_index, status, payload)`` as tasks finish.

        Same contract as :func:`imap_completion_order`, executed on the
        persistent workers, with crash-restart as described on the
        class.
        """
        pending = {
            index: (fn, index, item) for index, item in enumerate(items)
        }
        restarts_this_call = 0
        while pending:
            pool = self._ensure()
            pids = set(p.pid for p in pool._pool)
            inflight = {
                index: pool.apply_async(_invoke, (task,))
                for index, task in pending.items()
            }
            self.dispatched += len(inflight)
            broken = False
            while inflight and not broken:
                done = [i for i, r in inflight.items() if r.ready()]
                for index in done:
                    outcome = inflight.pop(index).get()
                    del pending[index]
                    self.completed += 1
                    yield outcome
                if not inflight:
                    break
                # Liveness: the pool's maintenance thread replaces dead
                # workers, so a changed pid set means a worker died and
                # whatever task it held is lost.
                if set(p.pid for p in pool._pool) != pids:
                    broken = True
                else:
                    time.sleep(_POLL_INTERVAL)
            if pending and broken:
                restarts_this_call += 1
                self.restarts += 1
                self._teardown()
                if restarts_this_call > self.max_restarts:
                    raise PoolCrashError(restarts_this_call, len(pending))

    def map(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> List[Any]:
        """Map ``fn`` over ``items``; results in submission order, the
        first failing item's exception re-raised."""
        items = list(items)
        results: List[Any] = [None] * len(items)
        failures = {}
        for index, status, payload in self.imap(fn, items):
            if status == "error":
                failures[index] = payload
            else:
                results[index] = payload
        if failures:
            raise failures[min(failures)]
        return results


# ---------------------------------------------------------------------------
# Pool-agnostic entry points
# ---------------------------------------------------------------------------
def imap_completion_order(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    workers: Optional[int] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
    pool: Optional[SharedPool] = None,
) -> Iterator[Tuple[int, str, Any]]:
    """Yield ``(submission_index, status, payload)`` as tasks finish.

    ``status`` is ``"ok"`` (payload = result) or ``"error"`` (payload =
    the exception; the caller decides whether to raise).  Routing: an
    explicit ``pool``, else the ambient :meth:`SharedPool.current`, else
    a disposable pool torn down when the iterator is exhausted or
    closed.  ``initializer`` forces the disposable path (a shared pool's
    workers were started long ago); in-repo callers use lazily-created
    worker state instead.
    """
    tasks = [(fn, index, item) for index, item in enumerate(items)]
    if not tasks:
        return
    if initializer is None:
        shared = pool if pool is not None else SharedPool.current()
        if shared is not None:
            yield from shared.imap(fn, [item for _fn, _i, item in tasks])
            return
    processes = min(resolve_workers(workers), len(tasks))
    ctx = multiprocessing.get_context()
    one_shot = ctx.Pool(
        processes=processes, initializer=initializer, initargs=initargs
    )
    try:
        for result in one_shot.imap_unordered(_invoke, tasks):
            yield result
        one_shot.close()
        one_shot.join()
    finally:
        one_shot.terminate()


def map_submission_order(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    backend: str = "inline",
    workers: Optional[int] = None,
    pool: Optional[SharedPool] = None,
) -> List[Any]:
    """Map ``fn`` over ``items``; results in submission order.

    ``backend="inline"`` runs in this process; ``"process"`` fans out
    (through ``pool``, the ambient shared pool, or a disposable one)
    and reassembles.  The first failing item's exception is re-raised
    either way.  This is the benchmark harness's opt-in hook.
    """
    items = list(items)
    if backend == "inline" or len(items) <= 1:
        return [fn(item) for item in items]
    if backend != "process":
        raise ValueError(f"backend must be 'inline' or 'process', got {backend!r}")
    results: List[Any] = [None] * len(items)
    failures = {}
    for index, status, payload in imap_completion_order(
        fn, items, workers, pool=pool
    ):
        if status == "error":
            failures[index] = payload
        else:
            results[index] = payload
    if failures:
        raise failures[min(failures)]
    return results


# ---------------------------------------------------------------------------
# run_in_parallel's process backend
# ---------------------------------------------------------------------------
def run_networks_in_pool(
    runs: List[Tuple[Any, Any]],
    max_rounds: int,
    workers: Optional[int] = None,
    pool: Optional[SharedPool] = None,
) -> Tuple[List[Any], Any]:
    """Process backend for :func:`repro.sim.run_in_parallel`.

    Each run ships as the smallest thing that reproduces it: a
    :class:`~repro.batch.dispatch.NetworkSpec` recipe when the network
    is recipe-expressible, the whole network otherwise (see
    :mod:`repro.batch.dispatch`).  Workers send back the run result,
    outputs and halt flags; the caller's network objects adopt them,
    and metrics merge in submission order (deterministic regardless of
    completion order).  On failure, completed runs are preserved and
    re-raised as :class:`~repro.sim.runner.ParallelRunError`, matching
    the inline backend's contract.
    """
    from ..sim.metrics import RunMetrics
    from ..sim.runner import ParallelRunError
    from .dispatch import parallel_task, run_parallel_task

    tasks = [
        parallel_task(network, factory, max_rounds)
        for network, factory in runs
    ]
    outcomes: List[Optional[Tuple[Any, dict, dict]]] = [None] * len(tasks)
    failures = {}
    for index, status, payload in imap_completion_order(
        run_parallel_task, tasks, workers, pool=pool
    ):
        if status == "error":
            failures[index] = payload
        else:
            outcomes[index] = payload
    networks: List[Any] = []
    collected: List[RunMetrics] = []
    for run, outcome in zip(runs, outcomes):
        if outcome is None:  # the failed run (or one lost with it)
            continue
        network = run[0]
        result, outputs, halted = outcome
        metrics = getattr(result, "metrics", result)
        network.adopt_results(metrics, outputs, halted)
        networks.append(network)
        collected.append(metrics)
    if failures:
        first = min(failures)
        raise ParallelRunError(
            first, networks, RunMetrics.merge(collected), failures[first]
        ) from failures[first]
    return networks, RunMetrics.merge(collected)
