"""Decorator-registered sweep workloads.

PR 4 hard-coded the sweep's workloads (``kdom``/``partition``/``mst``)
in a module-level dict, so a benchmark wanting its own sweep cells had
to patch ``sweep.py``.  This registry inverts that: any module defines
a workload with ::

    from repro.batch.registry import register_workload

    @register_workload("my-workload", weighted=True)
    def _my_workload(graph, cell):
        ...deterministic...
        return {"n": graph.num_nodes, ...}

and every consumer — ``run_sweep``, ``repro sweep --workload
my-workload``, the stores — picks it up by name.  The function
receives the cell's (cached, **read-only**) graph and the
:class:`~repro.batch.sweep.SweepCell`, and must return a JSON-safe,
fully deterministic row: completed stores are compared byte for byte,
so nothing run-varying (timing, pids) may appear.  ``weighted=True``
asks the cache for distinct polynomial edge weights.

Worker processes resolve workloads by name too.  Registration is an
import side effect, so each :class:`Workload` records its defining
module (the *provider*); the sweep ships that name with each cell and
workers import it before lookup.  Built-ins live in
:mod:`repro.batch.sweep`, which workers always import; the provider
hook is what lets *benchmark*-defined workloads (e.g.
``benchmarks.bench_e16_faults``) run under start methods that do not
inherit the parent's modules.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from difflib import get_close_matches
from typing import Any, Callable, Dict, Iterator, Optional, Tuple


class WorkloadError(ValueError):
    """Unknown workload name, or a conflicting registration."""


@dataclass(frozen=True)
class Workload:
    """One registered sweep workload."""

    name: str
    fn: Callable[[Any, Any], Dict[str, Any]]
    #: Whether cells need distinct polynomial edge weights.
    weighted: bool
    #: Module whose import registers this workload (``None`` when
    #: defined in an unimportable place, e.g. a ``__main__`` script).
    provider: Optional[str]
    description: str = ""


_REGISTRY: Dict[str, Workload] = {}


def register_workload(
    name: str, *, weighted: bool = False
) -> Callable[[Callable[[Any, Any], Dict[str, Any]]], Callable]:
    """Decorator: register ``fn`` as the sweep workload ``name``.

    Re-registering the *same* function under the same name is a no-op
    (modules may be imported under two names — package and script);
    registering a different function over an existing name raises
    :class:`WorkloadError`, because silently replacing a workload would
    change what stored rows mean.
    """

    def decorate(fn: Callable[[Any, Any], Dict[str, Any]]) -> Callable:
        module = getattr(fn, "__module__", None)
        provider = module if module not in (None, "__main__") else None
        workload = Workload(
            name=name,
            fn=fn,
            weighted=weighted,
            provider=provider,
            description=(fn.__doc__ or "").strip().splitlines()[0]
            if fn.__doc__
            else "",
        )
        existing = _REGISTRY.get(name)
        if existing is not None and not _same_function(existing.fn, fn):
            raise WorkloadError(
                f"workload {name!r} is already registered by "
                f"{existing.provider or 'an unimportable module'}; "
                f"pick another name"
            )
        _REGISTRY[name] = workload
        return fn

    return decorate


def _same_function(a: Callable, b: Callable) -> bool:
    if a is b:
        return True
    qualname = getattr(a, "__qualname__", "")
    # Nested functions share a qualname with every sibling closure, so
    # only identity can prove sameness for them; for module-level
    # functions, matching (module, qualname) means the same source
    # definition imported again.
    if "<locals>" in qualname:
        return False
    return (
        qualname == getattr(b, "__qualname__", None)
        and getattr(a, "__module__", None) == getattr(b, "__module__", None)
    )


def get_workload(name: str, provider: Optional[str] = None) -> Workload:
    """Look ``name`` up, importing ``provider`` first if it is missing.

    Raises :class:`WorkloadError` with the known names (and a
    did-you-mean hint) when the lookup fails — the error the CLI shows
    verbatim.
    """
    if name not in _REGISTRY and provider:
        importlib.import_module(provider)
    try:
        return _REGISTRY[name]
    except KeyError:
        known = sorted(_REGISTRY)
        hint = get_close_matches(name, known, n=1)
        suggestion = f" (did you mean {hint[0]!r}?)" if hint else ""
        raise WorkloadError(
            f"unknown workload {name!r}{suggestion}; registered: "
            f"{', '.join(known) or 'none'} — define one with "
            f"@register_workload and import its module "
            f"(repro sweep --import MODULE)"
        ) from None


def workload_names() -> Tuple[str, ...]:
    """Registered workload names, sorted."""
    return tuple(sorted(_REGISTRY))


def iter_workloads() -> Iterator[Workload]:
    for name in workload_names():
        yield _REGISTRY[name]


def unregister(name: str) -> None:
    """Remove a registration (tests and interactive sessions)."""
    _REGISTRY.pop(name, None)
