"""Deterministic sweep telemetry: per-cell snapshots and store summaries.

The fabric telemetry that ends up *inside* a sweep store's meta must be
byte-identical across worker counts, shard counts, and interrupt/resume
— the same contract the rows themselves honour.  The only way to make
that unconditional is to derive it from the rows: :func:`cell_snapshot`
is a pure function of one store row, and :func:`store_telemetry` merges
those snapshots with the order-invariant
:meth:`~repro.obs.telemetry.MetricsRegistry.merge`.

Workers compute the very same function (plus volatile wall-clock
extras) and ship the snapshot back with each result, so a live sweep
aggregates without re-deriving — but a resumed or merged store can
always recompute the identical summary from rows alone.
``tests/batch/test_telemetry_sweep.py`` pins shipped == recomputed.

Wall-clock facts (task latency, queue wait, span durations) ride the
snapshot's ``volatile`` plane and never reach a store; see
:mod:`repro.obs.telemetry` for the two-plane rules.
"""

from __future__ import annotations

import io
import os
import pstats
from typing import Any, Dict, Iterable, List, Tuple

from ..obs.telemetry import TELEMETRY_SCHEMA, MetricsRegistry

#: Snapshot sections that make up the deterministic plane.
DETERMINISTIC_SECTIONS = ("counters", "gauges", "histograms")


def cell_snapshot(row: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic telemetry for one store row.

    Pure in the row: no clocks, no pids, no worker identity — so any
    partition of the grid merged in any order yields the same summary.
    """
    registry = MetricsRegistry()
    cell = row.get("cell", {})
    workload = cell.get("workload", "?")
    registry.counter("sweep_cells_total").inc(workload=workload)
    if "error" in row:
        registry.counter("sweep_cells_quarantined").inc(workload=workload)
        return registry.snapshot()
    registry.counter("sweep_cells_ok").inc(workload=workload)
    result = row.get("result", {})
    n = result.get("n")
    if isinstance(n, int):
        registry.counter("sim_nodes_total").inc(n)
        registry.gauge("sim_nodes_max").max(n)
    rounds = result.get("rounds")
    if isinstance(rounds, int):
        registry.counter("sim_rounds_total").inc(rounds)
        registry.histogram("cell_rounds").observe(rounds)
    metrics = result.get("metrics", {})
    messages = metrics.get("messages")
    if isinstance(messages, int):
        registry.counter("sim_messages_total").inc(messages)
        registry.histogram("cell_messages").observe(messages)
    words = metrics.get("total_words")
    if isinstance(words, int):
        registry.counter("sim_words_total").inc(words)
    dominators = result.get("dominators")
    if isinstance(dominators, int):
        registry.counter("kdom_dominators_total").inc(dominators)
        registry.histogram("cell_dominators").observe(dominators)
    clusters = result.get("clusters")
    if isinstance(clusters, int):
        registry.counter("sim_clusters_total").inc(clusters)
    return registry.snapshot()


def deterministic_part(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """A snapshot with its volatile plane stripped — the only part that
    may flow toward a store meta."""
    return {
        section: snapshot.get(section, {})
        for section in DETERMINISTIC_SECTIONS
    }


def store_telemetry(rows: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """The telemetry summary a finalized store carries in its meta."""
    registry = MetricsRegistry()
    for row in rows:
        registry.merge(cell_snapshot(row))
    summary = {"schema": TELEMETRY_SCHEMA}
    summary.update(deterministic_part(registry.snapshot()))
    return summary


def strip_telemetry(meta: Dict[str, Any]) -> Dict[str, Any]:
    """A meta without its ``telemetry`` summary — for comparisons that
    must treat partial stores (whose slice-level summaries differ) as
    the same grid."""
    return {key: val for key, val in meta.items() if key != "telemetry"}


# ---------------------------------------------------------------------------
# Worker profiling (repro sweep --profile-workers)
# ---------------------------------------------------------------------------
def profile_files(profile_dir: str) -> List[str]:
    """The per-worker ``.pstats`` dumps under ``profile_dir``, sorted."""
    if not os.path.isdir(profile_dir):
        return []
    return sorted(
        os.path.join(profile_dir, name)
        for name in os.listdir(profile_dir)
        if name.endswith(".pstats")
    )


def aggregate_profiles(
    profile_dir: str, top: int = 15
) -> Tuple[List[str], str]:
    """Merge every worker's cProfile dump into one hot-function table.

    Returns ``(files, table)`` — the dumps that were merged and the
    aggregated ``pstats`` output (top ``top`` functions by cumulative
    time, dirs stripped).  Empty table when no dumps exist.
    """
    files = profile_files(profile_dir)
    if not files:
        return [], ""
    stats = pstats.Stats(files[0], stream=io.StringIO())
    for path in files[1:]:
        stats.add(path)
    buffer = io.StringIO()
    stats.stream = buffer
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return files, buffer.getvalue().rstrip()
