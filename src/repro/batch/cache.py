"""Graph/weight-generation cache for sweep cells.

Sweep grids repeat the same (spec, seed) pair across every value of
``k``, and generation — especially ``random:`` connectivity retries
and the distinct-weight assignment — is a real fraction of small-cell
runtime.  The cache generates each (spec, seed, weighted) combination
once and hands the same object to every later cell.

Cached graphs are therefore **shared and must be treated read-only**
by workloads.  Weight assignment is the one sanctioned mutation and it
happens here, at generation time, so a weighted and an unweighted
request for the same (spec, seed) get *separate* objects.

In the process backend each worker holds its own lazily-created cache
(module state in :mod:`repro.batch.sweep` and
:mod:`repro.batch.dispatch`), so repeated cells never regenerate
within a worker and workers never contend on shared state.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..graphs import (
    Graph,
    assign_unique_weights,
    has_unique_weights,
    parse_graph_spec,
)


class GraphCache:
    """Memoized (spec, seed, weight seed) -> graph generation."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, int, Optional[int]], Graph] = {}
        self.hits = 0
        self.misses = 0

    def get(
        self,
        spec: str,
        seed: int,
        weighted: bool = False,
        weight_seed: Optional[int] = None,
    ) -> Graph:
        """The graph for ``spec`` at ``seed``; generated at most once.

        ``weighted=True`` additionally assigns distinct polynomial edge
        weights (seeded by the same ``seed``) unless the generator
        already produced unique weights.  ``weight_seed`` decouples the
        weight seed from the generation seed — the spec-dispatch replay
        (:mod:`repro.batch.dispatch`) needs that, because a graph may
        have been weighted with an unrelated seed.
        """
        if weight_seed is None and weighted:
            weight_seed = int(seed)
        key = (spec, int(seed), weight_seed)
        graph = self._entries.get(key)
        if graph is not None:
            self.hits += 1
            return graph
        self.misses += 1
        graph = parse_graph_spec(spec, seed=seed)
        if weight_seed is not None and not has_unique_weights(graph):
            assign_unique_weights(graph, seed=weight_seed)
        self._entries[key] = graph
        return graph

    def __len__(self) -> int:
        return len(self._entries)
