"""Live sweep status: an atomic sidecar file next to each store.

A running sweep heartbeats one small JSON document (``<store>.status.
json`` by default) describing where it is: progress, throughput, ETA,
retry/quarantine tallies, and the first few pending cell keys.  Writes
go through a temp file + ``os.replace`` so readers — ``repro status``,
``repro top``, a person with ``watch cat`` — always see a complete
document, even mid-heartbeat, even over NFS-ish filesystems where the
store itself is being appended to.

Unlike everything that ends up *inside* a store, the status file is
deliberately volatile: it carries wall-clock timing and is overwritten
in place.  The deterministic counterpart — the telemetry summary in a
finalized store's meta — is rendered by :func:`render_store_status`,
which ``repro status --final`` uses so summaries can be diffed across
worker counts.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

#: Version tag on every status document.
STATUS_SCHEMA = "repro-status/1"

#: Minimum seconds between heartbeat writes (unforced).
MIN_WRITE_INTERVAL = 0.2

#: How many pending cell keys a status document lists verbatim.
PENDING_PREVIEW = 6


def status_path_for(store_path: str) -> str:
    """The sidecar path for a store: ``<store>.status.json``."""
    return store_path + ".status.json"


class SweepStatusWriter:
    """Throttled, atomic writer for one sweep's status document."""

    def __init__(
        self, path: str, min_interval: float = MIN_WRITE_INTERVAL
    ) -> None:
        self.path = path
        self.min_interval = min_interval
        self._last_write: Optional[float] = None

    def should_write(self, force: bool = False) -> bool:
        """Whether :meth:`write` would write right now.

        Pure throttle check — no clock mutation, no I/O — so callers
        can skip building the status payload entirely when the write
        would be dropped anyway (``run_sweep``'s heartbeat does this on
        every completed cell).
        """
        if force or self._last_write is None:
            return True
        return time.monotonic() - self._last_write >= self.min_interval

    def write(self, payload: Dict[str, Any], force: bool = False) -> bool:
        """Write ``payload`` (plus schema/timestamp stamps) unless a
        write happened within ``min_interval`` seconds and ``force`` is
        off.  Returns whether a write happened."""
        if not self.should_write(force):
            return False
        self._last_write = time.monotonic()
        doc = {"schema": STATUS_SCHEMA, "updated_unix": time.time()}
        doc.update(payload)
        tmp = self.path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(doc, handle, sort_keys=True, separators=(",", ":"))
            handle.write("\n")
        os.replace(tmp, self.path)
        return True


def read_status(path: str) -> Dict[str, Any]:
    """Load a status document (raises OSError / ValueError on bad input)."""
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != STATUS_SCHEMA:
        raise ValueError(
            f"{path}: unknown status schema {doc.get('schema')!r} "
            f"(expected {STATUS_SCHEMA!r})"
        )
    return doc


def find_status_files(directory: str = ".") -> List[str]:
    """Every ``*.status.json`` under ``directory`` (non-recursive, sorted)."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    return sorted(
        os.path.join(directory, name)
        for name in names
        if name.endswith(".status.json")
    )


def format_duration(seconds: Optional[float]) -> str:
    if seconds is None or seconds < 0:
        return "?"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def fabric_tallies(volatile_counters: Dict[str, Any]) -> Dict[str, int]:
    """Collapse the pool's labeled volatile counters into the flat
    tallies a status document carries (summing across labels)."""
    tallies = {
        "dispatched": 0,
        "completed": 0,
        "retried": 0,
        "quarantined": 0,
        "respawns": 0,
    }
    prefix = "fabric_tasks{state="
    for key, value in volatile_counters.items():
        if key.startswith(prefix) and key.endswith("}"):
            state = key[len(prefix):-1]
            if state in tallies:
                tallies[state] += int(value)
        elif key.startswith("fabric_worker_respawns"):
            tallies["respawns"] += int(value)
    return tallies


def _volatile_counter(status: Dict[str, Any], name: str) -> int:
    return int(status.get("fabric", {}).get(name, 0))


def render_status(status: Dict[str, Any]) -> List[str]:
    """Human-readable lines for one status document."""
    workload = status.get("workload", "?")
    shard = status.get("shard")
    title = f"sweep {workload}" + (f" [shard {shard}]" if shard else "")
    cells = status.get("cells", {})
    total = cells.get("total", 0)
    done = cells.get("done", 0)
    state = str(status.get("state", "unknown")).upper()
    pct = 100.0 * done / total if total else 0.0
    lines = [f"{title}: {state} {done}/{total} cells ({pct:.1f}%)"]
    lines.append(
        f"  done {done} (ran {cells.get('ran', 0)}, "
        f"skipped {cells.get('skipped', 0)}), "
        f"quarantined {cells.get('quarantined', 0)}, "
        f"pending {cells.get('pending', 0)}"
    )
    lines.append(
        f"  backend {status.get('backend', '?')}, "
        f"workers {status.get('workers', '?')}"
    )
    rate = status.get("cells_per_s")
    rate_text = f"{rate:.2f} cells/s" if rate else "- cells/s"
    lines.append(
        f"  elapsed {format_duration(status.get('elapsed_s'))}, "
        f"{rate_text}, eta {format_duration(status.get('eta_s'))}"
    )
    lines.append(
        f"  retries {_volatile_counter(status, 'retried')}, "
        f"respawns {_volatile_counter(status, 'respawns')}"
    )
    inflight = status.get("inflight") or []
    if inflight:
        extra = cells.get("pending", 0) - len(inflight)
        suffix = f" (+{extra} more)" if extra > 0 else ""
        lines.append("  next: " + ", ".join(inflight) + suffix)
    return lines


def render_store_status(
    meta: Dict[str, Any], rows: List[Dict[str, Any]]
) -> List[str]:
    """Deterministic summary of a finalized store (no sidecar needed).

    Pure in the store contents — byte-identical across the worker and
    shard counts that produced the store, which is what the CI
    telemetry-smoke job diffs.
    """
    workload = meta.get("workload", "?")
    shard = meta.get("shard")
    title = f"sweep {workload}" + (f" [shard {shard}]" if shard else "")
    expected = meta.get("cells", len(rows))
    quarantined = sum(1 for row in rows if "error" in row)
    state = "COMPLETE" if len(rows) >= expected else "INCOMPLETE"
    lines = [f"{title}: {state} {len(rows)}/{expected} cells"]
    if quarantined:
        lines.append(f"  quarantined {quarantined}")
    telemetry = meta.get("telemetry")
    if telemetry:
        lines.append(f"  telemetry ({telemetry.get('schema')}):")
        for key, value in telemetry.get("counters", {}).items():
            lines.append(f"    {key} = {value}")
        for key, value in telemetry.get("gauges", {}).items():
            lines.append(f"    {key} = {value}")
        for key, series in telemetry.get("histograms", {}).items():
            lines.append(
                f"    {key}: count={series.get('count')} "
                f"sum={series.get('sum')}"
            )
    return lines


def render_top(statuses: List[Dict[str, Any]], paths: List[str]) -> List[str]:
    """One-line-per-sweep table for ``repro top``."""
    if not statuses:
        return ["(no *.status.json files found)"]
    rows = []
    for path, status in zip(paths, statuses):
        cells = status.get("cells", {})
        total = cells.get("total", 0)
        done = cells.get("done", 0)
        rate = status.get("cells_per_s") or 0.0
        rows.append(
            (
                os.path.basename(path).replace(".status.json", ""),
                str(status.get("state", "?")),
                f"{done}/{total}",
                f"{rate:.2f}",
                format_duration(status.get("eta_s")),
                str(cells.get("quarantined", 0)),
                str(_volatile_counter(status, "retried")),
            )
        )
    header = ("sweep", "state", "cells", "cells/s", "eta", "quar", "retry")
    widths = [
        max(len(header[i]), max(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(len(header)))
    ]
    for row in rows:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(header)))
        )
    return lines
