"""Spec-based run dispatch: ship the recipe, not the network.

PR 4's process backend pickled whole pre-run :class:`~repro.sim.network.
Network` objects to workers — adjacency tables, neighbour sets, weight
maps, precomputed delivery ranks.  For large graphs that pickle cost
dominates the run itself.  This module replaces the payload with a
:class:`NetworkSpec`: the graph's :class:`~repro.graphs.graph.
GraphProvenance` (a spec string, two seeds and an optional member
tuple) plus the network's word limit and scheduling mode.  The worker
rebuilds the graph through its process-local
:class:`~repro.batch.cache.GraphCache` — so sibling runs over the same
base graph regenerate it once — and constructs a fresh ``Network``.

The contract that makes this exact: provenance replay
(``parse_graph_spec`` → ``assign_unique_weights`` → ``subgraph``)
reproduces nodes, edges and weights bit for bit, and ``Network``
derives *all* engine state (dense index, neighbour tables, delivery
ranks) deterministically from the graph.  A rebuilt network therefore
runs the same program to the same outputs, metrics and per-round
traffic as a shipped one.

Networks that carry state the recipe cannot express — a fault injector
mid-plan, a hand-built or mutated graph (``provenance is None``) —
fall back to the PR 4 network-shipping path; see
:func:`parallel_task`.  ``docs/performance.md`` records the measured
per-task pickle sizes for both paths.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..graphs.graph import GraphProvenance
from ..sim.network import Network
from .cache import GraphCache

#: Task kinds produced by :func:`parallel_task`.
SPEC_TASK = "spec"
NETWORK_TASK = "network"


@dataclass(frozen=True)
class NetworkSpec:
    """Everything a worker needs to rebuild and run a plain network."""

    provenance: GraphProvenance
    word_limit: int
    scheduling: str


def network_spec(network: Network) -> Optional[NetworkSpec]:
    """The spec that rebuilds ``network`` in a worker, or ``None``.

    ``None`` means the network cannot be expressed as a recipe — its
    graph has no provenance (hand-built, loaded, or mutated after
    generation) or it carries a fault injector whose RNG/plan state
    must travel with it — and the caller should ship the network.
    """
    if network.faults is not None:
        return None
    provenance = getattr(network.graph, "provenance", None)
    if provenance is None:
        return None
    return NetworkSpec(provenance, network.word_limit, network.scheduling)


def build_graph(provenance: GraphProvenance, cache: GraphCache):
    """Replay a provenance recipe through ``cache``."""
    graph = cache.get(
        provenance.spec,
        provenance.seed,
        weight_seed=provenance.weight_seed,
    )
    if provenance.members is not None:
        graph = graph.subgraph(provenance.members)
    return graph


def build_network(spec: NetworkSpec, cache: GraphCache) -> Network:
    """Rebuild the network a :class:`NetworkSpec` describes."""
    return Network(
        build_graph(spec.provenance, cache),
        word_limit=spec.word_limit,
        scheduling=spec.scheduling,
    )


def parallel_task(
    network: Network, factory: Any, max_rounds: int
) -> Tuple[str, Tuple[Any, Any, int]]:
    """The task to ship for one ``run_in_parallel`` run.

    Spec dispatch when the network is recipe-expressible, the PR 4
    network-shipping fallback otherwise.  Both task kinds execute via
    :func:`run_parallel_task` and return the same
    ``(result, outputs, halted)`` triple.
    """
    spec = network_spec(network)
    if spec is not None:
        return SPEC_TASK, (spec, factory, max_rounds)
    return NETWORK_TASK, (network, factory, max_rounds)


# Worker-process graph cache, created on first use.  Plain lazy module
# state (not a pool initializer) so tasks routed through a long-lived
# SharedPool — created before anyone knew graphs would be rebuilt —
# still get per-worker memoization.
_WORKER_CACHE: Optional[GraphCache] = None


def worker_graph_cache() -> GraphCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = GraphCache()
    return _WORKER_CACHE


def run_parallel_task(
    task: Tuple[str, Tuple[Any, Any, int]]
) -> Tuple[Any, Dict[Any, Any], Dict[Any, bool]]:
    """Worker-side executor for both task kinds.

    Returns what parent-side drivers consume — the run result (metrics
    or fault report), per-node outputs and halt flags — rather than the
    mutated network: finished programs may hold generator frames
    (:class:`~repro.sim.program.ScriptedProgram`), which do not pickle.
    """
    kind, payload = task
    if kind == SPEC_TASK:
        spec, factory, max_rounds = payload
        network = build_network(spec, worker_graph_cache())
    else:
        network, factory, max_rounds = payload
    result = network.run(factory, max_rounds=max_rounds)
    outputs = {v: program.output for v, program in network.programs.items()}
    halted = {v: program.halted for v, program in network.programs.items()}
    return result, outputs, halted


def task_pickle_bytes(
    runs: List[Tuple[Network, Any]], max_rounds: int = 1_000_000
) -> Dict[str, Any]:
    """Measure what each dispatch path would ship for ``runs``.

    Used by ``repro perf`` to keep the spec-dispatch saving honest:
    ``spec_bytes`` is the pickled size of the tasks :func:`parallel_task`
    actually produces, ``network_bytes`` the size of the network-shipping
    equivalents.  ``spec_tasks`` counts how many runs were
    recipe-expressible.
    """
    spec_total = 0
    network_total = 0
    spec_tasks = 0
    for network, factory in runs:
        kind, payload = parallel_task(network, factory, max_rounds)
        if kind == SPEC_TASK:
            spec_tasks += 1
        spec_total += len(pickle.dumps((kind, payload)))
        network_total += len(
            pickle.dumps((NETWORK_TASK, (network, factory, max_rounds)))
        )
    return {
        "runs": len(runs),
        "spec_tasks": spec_tasks,
        "spec_bytes": spec_total,
        "network_bytes": network_total,
        "ratio": round(spec_total / network_total, 4) if network_total else 1.0,
    }
