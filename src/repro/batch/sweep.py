"""Sharded parameter sweeps over a (graph-spec × seed × k) grid.

The paper's experiments (EXPERIMENTS.md, E01–E16) are parameter
sweeps: the same deterministic workload at many ``(spec, seed, k)``
cells.  This module turns that shape into a first-class runner:

* a :class:`SweepGrid` enumerates cells in a fixed, documented order
  (spec-major, then seed, then k) — the canonical order of the result
  store and of metric merging;
* cells fan across worker processes (``backend="process"``) or run in
  this process (``"inline"``), behind the same function; an entered
  :class:`~repro.batch.pool.SharedPool` is reused instead of spawning
  a pool per sweep;
* each worker keeps a :class:`~repro.batch.cache.GraphCache`, so the
  cells sharing a (spec, seed) pair regenerate nothing;
* results checkpoint into a :class:`~repro.batch.store.SweepStore`
  as they finish, and a resumed sweep executes only missing cells;
* ``shard=(i, n)`` restricts one invocation to every n-th cell of the
  canonical order — the multi-host protocol: run the same grid with
  ``--shard 0/N .. (N-1)/N`` on N machines, then
  :func:`~repro.batch.store.merge_stores` stitches the shard stores
  into the byte-identical one-shot store;
* per-cell metrics are merged with
  :meth:`~repro.sim.metrics.RunMetrics.merge` in grid order, so the
  summary is identical whatever backend or worker count ran the cells.

Workloads are looked up by name in :mod:`repro.batch.registry`; the
built-ins (``kdom``, ``partition``, ``mst``) are registered below, and
benchmarks register their own (e.g. ``bench-e16-faults``).  Every
workload must stay deterministic: a result row may contain nothing
that varies run to run (no timing, no pids), because completed stores
are compared byte for byte.
"""

from __future__ import annotations

import cProfile
import os
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..graphs import RootedTree
from ..obs.telemetry import (
    TELEMETRY_SCHEMA,
    MetricsRegistry,
    TelemetrySession,
    emit_phase_spans,
    span,
)
from ..sim.metrics import RunMetrics
from .cache import GraphCache
from .pool import (
    PoolCrashError,
    SharedPool,
    imap_completion_order,
    resolve_workers,
)
from .registry import get_workload, register_workload
from .status import (
    PENDING_PREVIEW,
    SweepStatusWriter,
    fabric_tallies,
    status_path_for,
)
from .store import SCHEMA, SweepStore, StoreError, cell_key
from .telemetry import cell_snapshot, deterministic_part

#: Execution backends accepted by :func:`run_sweep`.
SWEEP_BACKENDS = ("inline", "process")


# ---------------------------------------------------------------------------
# Grid
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """One point of the grid: a workload at (spec, seed, k)."""

    workload: str
    spec: str
    seed: int
    k: int
    verify: bool = False

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "spec": self.spec,
            "seed": self.seed,
            "k": self.k,
        }

    @property
    def key(self) -> str:
        return cell_key(self.as_dict())


@dataclass(frozen=True)
class SweepGrid:
    """A (spec × seed × k) grid for one workload.

    ``verify`` adds the per-cell correctness checks (domination radius,
    MST exactness) — more expensive, still deterministic.
    """

    workload: str
    specs: Tuple[str, ...]
    seeds: Tuple[int, ...]
    ks: Tuple[int, ...]
    verify: bool = False

    def __post_init__(self) -> None:
        get_workload(self.workload)  # raises WorkloadError when unknown
        if not (self.specs and self.seeds and self.ks):
            raise ValueError("grid needs at least one spec, seed and k")

    def cells(self) -> List[SweepCell]:
        """Grid cells in canonical order: spec-major, then seed, then k."""
        return [
            SweepCell(self.workload, spec, seed, k, self.verify)
            for spec in self.specs
            for seed in self.seeds
            for k in self.ks
        ]

    def meta(self) -> Dict[str, Any]:
        """The store's meta line: schema plus the full grid definition."""
        return {
            "schema": SCHEMA,
            "workload": self.workload,
            "specs": list(self.specs),
            "seeds": list(self.seeds),
            "ks": list(self.ks),
            "verify": self.verify,
            "cells": len(self.specs) * len(self.seeds) * len(self.ks),
        }


def fast_grid(workload: str = "kdom") -> SweepGrid:
    """The CI-sized grid behind ``repro sweep --fast`` (8 small cells)."""
    return SweepGrid(
        workload=workload,
        specs=("tree:n=40", "random:n=36,p=0.12"),
        seeds=(0, 1),
        ks=(2, 3),
    )


# ---------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------
def parse_shard(text: str) -> Tuple[int, int]:
    """Parse ``"i/N"`` into a validated ``(i, n)`` shard selector."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"shard must look like i/N (e.g. 0/4), got {text!r}"
        ) from None
    return validate_shard((index, count))


def validate_shard(shard: Tuple[int, int]) -> Tuple[int, int]:
    index, count = shard
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(
            f"shard index must be in [0, {count}), got {index}"
        )
    return index, count


def shard_cells(
    cells: List[SweepCell], shard: Optional[Tuple[int, int]]
) -> List[Tuple[int, SweepCell]]:
    """The (canonical-index, cell) pairs shard ``(i, n)`` is responsible
    for: every cell whose canonical-order index is ``i`` modulo ``n``.

    Round-robin over the canonical order (rather than contiguous
    blocks) so each shard gets a representative mix of specs and sizes
    — the grid is spec-major, and a contiguous split would hand one
    host all the big graphs.  Shards partition the grid exactly: over
    ``i = 0..n-1`` every cell appears in precisely one shard.
    """
    indexed = list(enumerate(cells))
    if shard is None:
        return indexed
    index, count = validate_shard(shard)
    return [(i, cell) for i, cell in indexed if i % count == index]


# ---------------------------------------------------------------------------
# Workloads (deterministic; rows must carry nothing run-varying)
# ---------------------------------------------------------------------------
@register_workload("kdom", weighted=True)
def _workload_kdom(graph, cell: SweepCell) -> Dict[str, Any]:
    """``FastDOM_G``: k-dominating set on a general graph (§4.5)."""
    from ..core import fastdom_graph
    from ..verify import domination_radius

    dominators, partition, staged = fastdom_graph(graph, cell.k)
    bound = max(1, graph.num_nodes // (cell.k + 1))
    result = {
        "n": graph.num_nodes,
        "edges": graph.num_edges,
        "dominators": len(dominators),
        "bound": bound,
        "clusters": partition.num_clusters,
        "rounds": staged.total_rounds,
        "breakdown": staged.breakdown(),
        "metrics": staged.combined.to_dict(per_round=False),
    }
    if cell.verify:
        result["radius"] = domination_radius(graph, dominators)
        result["ok"] = (
            len(dominators) <= bound and result["radius"] <= cell.k
        )
    return result


@register_workload("kdom-dense")
def _workload_kdom_dense(graph, cell: SweepCell) -> Dict[str, Any]:
    """``TreeKDom`` under the vectorized backend (``repro.sim.dense``):
    the exact per-tree DP as array rounds.  Tree specs only; inputs
    outside the dense contract fall back to the reference engine with
    identical results, so rows stay deterministic either way."""
    from ..core import tree_kdominating_set
    from ..verify import domination_radius

    root = min(graph.nodes, key=str)
    rooted = RootedTree.from_graph(graph, root)
    dominators, partition, staged = tree_kdominating_set(
        graph, root, rooted.parent, cell.k, backend="dense"
    )
    bound = max(1, graph.num_nodes // (cell.k + 1))
    result = {
        "n": graph.num_nodes,
        "dominators": len(dominators),
        "bound": bound,
        "clusters": partition.num_clusters,
        "rounds": staged.total_rounds,
        "breakdown": staged.breakdown(),
        "metrics": staged.combined.to_dict(per_round=False),
    }
    if cell.verify:
        result["radius"] = domination_radius(graph, dominators)
        result["ok"] = (
            len(dominators) <= bound and result["radius"] <= cell.k
        )
    return result


@register_workload("partition")
def _workload_partition(graph, cell: SweepCell) -> Dict[str, Any]:
    """Fast ``DOM_Partition`` on the BFS tree rooted at the min node."""
    from ..core import dom_partition

    root = min(graph.nodes, key=str)
    rooted = RootedTree.from_graph(graph, root)
    partition, staged = dom_partition(graph, root, rooted.parent, cell.k)
    sizes = sorted(cluster.size for cluster in partition.clusters)
    result = {
        "n": graph.num_nodes,
        "clusters": partition.num_clusters,
        "min_size": sizes[0],
        "max_size": sizes[-1],
        "rounds": staged.total_rounds,
        "breakdown": staged.breakdown(),
        "metrics": staged.combined.to_dict(per_round=False),
    }
    if cell.verify:
        max_radius = max(
            cluster.radius_in(graph) for cluster in partition.clusters
        )
        result["max_radius"] = max_radius
        result["ok"] = (
            sizes[0] >= cell.k + 1 and max_radius <= 5 * cell.k + 2
        )
    return result


@register_workload("mst", weighted=True)
def _workload_mst(graph, cell: SweepCell) -> Dict[str, Any]:
    """``Fast-MST`` end to end; the cell's k overrides sqrt(n)."""
    from ..mst import fast_mst, kruskal_mst

    edges, staged, diag = fast_mst(graph, k=cell.k)
    result = {
        "n": graph.num_nodes,
        "edges": graph.num_edges,
        "k_used": diag["k"],
        "clusters": diag["clusters"],
        "mst_edges": len(edges),
        "mst_weight": int(sum(graph.weight(u, v) for u, v in edges)),
        "rounds": staged.total_rounds,
        "breakdown": staged.breakdown(),
        "metrics": staged.combined.to_dict(per_round=False),
    }
    if cell.verify:
        result["ok"] = edges == kruskal_mst(graph)
    return result


def run_cell(
    cell: SweepCell,
    cache: Optional[GraphCache] = None,
    provider: Optional[str] = None,
) -> Dict[str, Any]:
    """Execute one cell; return its store row (fully deterministic).

    ``provider`` is the module to import when ``cell.workload`` is not
    yet registered — how worker processes pick up benchmark-defined
    workloads (see :mod:`repro.batch.registry`).
    """
    workload = get_workload(cell.workload, provider)
    cache = cache if cache is not None else GraphCache()
    graph = cache.get(cell.spec, cell.seed, weighted=workload.weighted)
    key = cell.key
    with span("task", key):
        result = workload.fn(graph, cell)
    # Phase spans are retrospective: a staged run's breakdown is known
    # only after it completes (deterministic, so trace-safe).
    emit_phase_spans(key, result.get("breakdown") or {})
    return {"cell": cell.as_dict(), "result": result}


# Worker-process graph cache: lazy module state rather than a pool
# initializer, so sweep cells can route through a long-lived
# SharedPool whose workers predate the sweep.
_WORKER_CACHE: Optional[GraphCache] = None


def _worker_cache() -> GraphCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = GraphCache()
    return _WORKER_CACHE


# Worker-process profiler, created on first profiled task so the dump
# accumulates every cell this worker ran (repro sweep --profile-workers).
_WORKER_PROFILER: Optional[cProfile.Profile] = None


def _worker_profiler() -> cProfile.Profile:
    global _WORKER_PROFILER
    if _WORKER_PROFILER is None:
        _WORKER_PROFILER = cProfile.Profile()
    return _WORKER_PROFILER


def _process_cell(
    task: Tuple[SweepCell, Optional[str], Optional[str]],
) -> Dict[str, Any]:
    """Worker-side cell execution: run, measure, snapshot, ship.

    Returns ``{"row", "telemetry"}`` — the deterministic store row plus
    this task's registry snapshot (the row-derived deterministic plane
    and the worker's volatile wall-clock plane), which the parent
    merges.  With ``profile_dir`` set, the worker profiles the cell and
    re-dumps its cumulative ``worker-<pid>.pstats`` after every task
    (so the dump survives however the sweep ends).
    """
    cell, provider, profile_dir = task
    cache = _worker_cache()
    hits, misses = cache.hits, cache.misses
    session = TelemetrySession()
    profiler: Optional[cProfile.Profile] = None
    if profile_dir:
        os.makedirs(profile_dir, exist_ok=True)
        profiler = _worker_profiler()
    started = time.perf_counter()
    with session.activate():
        if profiler is not None:
            profiler.enable()
        try:
            row = run_cell(cell, cache, provider)
        finally:
            if profiler is not None:
                profiler.disable()
    elapsed = time.perf_counter() - started
    if profiler is not None:
        profiler.dump_stats(
            os.path.join(profile_dir, f"worker-{os.getpid()}.pstats")
        )
    session.merge(cell_snapshot(row))
    registry = session.registry
    registry.histogram("task_seconds", volatile=True).observe(elapsed)
    cache_counter = registry.counter("graph_cache", volatile=True)
    if cache.hits > hits:
        cache_counter.inc(cache.hits - hits, outcome="hit")
    if cache.misses > misses:
        cache_counter.inc(cache.misses - misses, outcome="miss")
    return {"row": row, "telemetry": session.snapshot()}


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------
class SweepCellError(RuntimeError):
    """A cell failed; checkpointed rows survive for resume."""

    def __init__(self, cell: SweepCell, cause: BaseException) -> None:
        super().__init__(f"sweep cell {cell.key} failed: {cause!r}")
        self.cell = cell


class SweepCrashError(RuntimeError):
    """The worker pool crashed; ``cell_keys`` names the lost cells.

    Wraps :class:`~repro.batch.pool.PoolCrashError` with the sweep-level
    identity of every unfinished task, so an operator can resume around
    poison cells by hand (checkpointed rows survive in the store).
    """

    def __init__(
        self, cause: PoolCrashError, cell_keys: List[str]
    ) -> None:
        listed = ", ".join(cell_keys[:8])
        more = "" if len(cell_keys) <= 8 else f" (+{len(cell_keys) - 8} more)"
        super().__init__(f"{cause}; lost cells: {listed}{more}")
        self.cell_keys = list(cell_keys)

    @property
    def restarts(self) -> int:
        cause = self.__cause__
        return cause.restarts if isinstance(cause, PoolCrashError) else 0


def quarantined_row(cell: SweepCell, info: Dict[str, Any]) -> Dict[str, Any]:
    """The store row for a quarantined cell: an ``error`` record instead
    of a ``result``, so resumes can see (and optionally retry) it."""
    return {
        "cell": cell.as_dict(),
        "error": {
            "quarantined": True,
            "attempts": info.get("attempts"),
            "reason": info.get("reason"),
        },
    }


@dataclass
class SweepSummary:
    """What a sweep did: counts, timing, and grid-order merged metrics.

    ``telemetry`` is the sweep's full registry snapshot (deterministic
    plane plus volatile wall-clock plane) when telemetry was enabled —
    the deterministic sections match what a finalized store's meta
    carries.
    """

    total: int
    ran: int
    skipped: int
    complete: bool
    elapsed: float
    merged: RunMetrics
    quarantined: int = 0
    telemetry: Optional[Dict[str, Any]] = None
    rows: List[Dict[str, Any]] = field(repr=False, default_factory=list)

    @property
    def cells_per_second(self) -> float:
        return self.ran / self.elapsed if self.elapsed > 0 else 0.0


def run_sweep(
    grid: SweepGrid,
    store_path: Optional[str] = None,
    backend: str = "inline",
    workers: Optional[int] = None,
    resume: bool = True,
    max_cells: Optional[int] = None,
    shard: Optional[Tuple[int, int]] = None,
    echo: Callable[[str], None] = lambda line: None,
    deadline_s: Optional[float] = None,
    max_attempts: Optional[int] = None,
    chaos: Optional[Any] = None,
    retry_quarantined: bool = False,
    finalize: bool = True,
    telemetry: bool = True,
    status_path: Optional[str] = None,
    profile_dir: Optional[str] = None,
) -> SweepSummary:
    """Run (or resume) a sweep; return its summary.

    * ``store_path=None`` keeps results in memory only.
    * ``resume=True`` (default) skips cells already present in the
      store; ``False`` truncates and starts fresh.
    * ``max_cells`` bounds how many *pending* cells execute — the
      hook the interrupt/resume tests and the CI smoke job use.
    * ``shard=(i, n)`` runs only this invocation's slice of the grid
      (see :func:`shard_cells`); the store's meta records the shard,
      and :func:`~repro.batch.store.merge_stores` recombines the n
      shard stores into the one-shot store.
    * On full completion (of the grid, or of the shard's slice) the
      store is rewritten in canonical grid order (byte-identical
      across backends and worker counts) — unless ``finalize=False``
      or any cell is quarantined, which keep the checkpoint form so
      the store stays repairable/resumable.

    **Fault tolerance** (process backend; docs/robustness.md).
    ``deadline_s`` arms the hung-worker watchdog, ``max_attempts``
    caps retries before a cell is *quarantined*: recorded in the store
    as an ``error`` row and counted in ``SweepSummary.quarantined``,
    while the rest of the sweep completes.  A resumed sweep treats
    quarantined rows as present unless ``retry_quarantined=True``.
    A pool-wide crash raises :class:`SweepCrashError` naming the lost
    cells.  ``chaos`` injects a deterministic
    :class:`~repro.batch.chaos.ChaosPlan` of worker/store faults —
    the test harness for all of the above.

    **Telemetry** (on by default; docs/observability.md).  The sweep
    runs inside an ambient :class:`~repro.obs.telemetry.
    TelemetrySession`: workers ship per-cell registry snapshots back
    with their rows, fabric counters/latencies accumulate in the pool
    loop, and ``SweepSummary.telemetry`` carries the merged snapshot.
    The *deterministic* plane of that snapshot is written into the
    finalized store's meta as ``"telemetry"`` — it is a pure function
    of the rows, so it is byte-identical across backends, worker
    counts, shards, and resumes.  A store-backed sweep also heartbeats
    an atomic status sidecar (``status_path``, default
    ``<store>.status.json``; see :mod:`repro.batch.status`) rendered by
    ``repro status`` / ``repro top``.  ``telemetry=False`` turns all of
    it off — the overhead of the *enabled* path is itself gated at
    ≤1.05x by ``repro perf --telemetry``.  ``profile_dir`` makes every
    worker cProfile its cells and dump ``worker-<pid>.pstats`` there
    (``repro sweep --profile-workers``).
    """
    if backend not in SWEEP_BACKENDS:
        raise ValueError(
            f"backend must be one of {SWEEP_BACKENDS}, got {backend!r}"
        )
    if chaos is not None and backend != "process":
        raise ValueError("chaos injection requires backend='process'")
    selected = shard_cells(grid.cells(), shard)
    meta = dict(grid.meta())
    if shard is not None:
        meta["shard"] = f"{shard[0]}/{shard[1]}"
    store = SweepStore(store_path) if store_path else None
    rows_by_index: Dict[int, Dict[str, Any]] = {}
    if store is not None:
        if resume:
            stored_meta, existing = store.load()
            if stored_meta is not None and _grid_mismatch(stored_meta, meta):
                raise StoreError(
                    f"{store.path} was written for a different grid; "
                    f"pass resume=False (or a new path) to overwrite"
                )
            for index, cell in selected:
                row = existing.get(cell.key)
                if row is None:
                    continue
                if retry_quarantined and "error" in row:
                    continue  # re-run the poison cell instead of skipping
                rows_by_index[index] = row
        store.begin(meta, fresh=not resume)

    pending = [
        (index, cell)
        for index, cell in selected
        if index not in rows_by_index
    ]
    skipped = len(selected) - len(pending)
    if max_cells is not None:
        pending = pending[:max_cells]

    provider = get_workload(grid.workload).provider
    # The watchdog and chaos injection live in the monitored pool loop,
    # so they must not fall back to the single-process fast path.
    hardened = deadline_s is not None or chaos is not None
    # An entered SharedPool always executes the cells (it is the first
    # route in imap_completion_order), so the single-cell/single-worker
    # inline fallback only applies when there is no pool to reuse.
    shared = SharedPool.current() if backend == "process" else None
    use_inline = backend == "inline" or (
        shared is None
        and not hardened
        and (len(pending) <= 1 or resolve_workers(workers) == 1)
    )
    # Status documents report the backend/workers that actually execute
    # cells — when the fallback runs inline, claiming a process pool
    # would make `repro top` show a phantom one.
    if use_inline:
        effective_backend, effective_workers = "inline", 1
    else:
        effective_backend = "process"
        effective_workers = (
            shared.workers
            if shared is not None
            else min(resolve_workers(workers), max(len(pending), 1))
        )

    # Telemetry: one ambient session for the live/volatile view, and a
    # separate deterministic accumulator for the store meta — fed only
    # by row-derived snapshots (worker-shipped or recomputed), so the
    # stored summary is a pure function of the rows.
    session = TelemetrySession() if telemetry else None
    det_registry = MetricsRegistry() if telemetry else None
    status: Optional[SweepStatusWriter] = None
    if telemetry:
        target = status_path or (
            status_path_for(store_path) if store_path else None
        )
        if target:
            status = SweepStatusWriter(target)
    if det_registry is not None:
        for row in rows_by_index.values():
            snap = cell_snapshot(row)
            det_registry.merge(snap)
            session.merge(snap)
    if profile_dir:
        os.makedirs(profile_dir, exist_ok=True)

    start = time.perf_counter()
    ran_count = 0

    def heartbeat(state: str, force: bool = False) -> None:
        # Early-exit *before* payload construction: the remaining-cells
        # comprehension is O(total cells) and the quarantine scan is
        # O(done), so building the document on every completed cell
        # only to have the writer throttle it would make the heartbeat
        # itself a hot-path cost on large grids.
        if status is None or not status.should_write(force):
            return
        elapsed_now = time.perf_counter() - start
        done = len(rows_by_index)
        remaining = [
            cell.key
            for index, cell in selected
            if index not in rows_by_index
        ]
        rate = ran_count / elapsed_now if elapsed_now > 0 else 0.0
        vol_counters = session.registry.volatile_counters
        status.write(
            {
                "state": state,
                "workload": grid.workload,
                "shard": meta.get("shard"),
                "backend": effective_backend,
                "workers": effective_workers,
                "store": store.path if store is not None else None,
                "cells": {
                    "total": len(selected),
                    "done": done,
                    "ran": ran_count,
                    "skipped": skipped,
                    "quarantined": sum(
                        1 for r in rows_by_index.values() if "error" in r
                    ),
                    "pending": len(remaining),
                },
                "inflight": remaining[:PENDING_PREVIEW],
                "elapsed_s": elapsed_now,
                "cells_per_s": rate,
                "eta_s": (len(remaining) / rate) if rate > 0 else None,
                "fabric": fabric_tallies(vol_counters),
            },
            # The throttle already passed above; force here so a clock
            # tick between the check and the write can't drop it.
            force=True,
        )

    def record(
        index: int,
        row: Dict[str, Any],
        shipped: Optional[Dict[str, Any]] = None,
    ) -> None:
        nonlocal ran_count
        ran_count += 1
        rows_by_index[index] = row
        if store is not None:
            store.append(row)
        if det_registry is not None:
            snap = shipped if shipped is not None else cell_snapshot(row)
            det_registry.merge(deterministic_part(snap))
            session.merge(snap)
        echo(_cell_line(row))
        heartbeat("running")

    with ExitStack() as stack:
        if session is not None:
            stack.enter_context(session.activate())
            stack.enter_context(span("sweep", grid.workload))
            if shard is not None:
                stack.enter_context(
                    span("shard", f"{shard[0]}/{shard[1]}")
                )
        heartbeat("running", force=True)
        try:
            if use_inline:
                cache = GraphCache()
                profiler = cProfile.Profile() if profile_dir else None
                for index, cell in pending:
                    cell_start = time.perf_counter()
                    try:
                        if profiler is not None:
                            profiler.enable()
                        try:
                            row = run_cell(cell, cache)
                        finally:
                            if profiler is not None:
                                profiler.disable()
                    except Exception as exc:
                        raise SweepCellError(cell, exc) from exc
                    if session is not None:
                        session.registry.histogram(
                            "task_seconds", volatile=True
                        ).observe(time.perf_counter() - cell_start)
                    record(index, row)
                if profiler is not None and pending:
                    profiler.dump_stats(
                        os.path.join(
                            profile_dir, f"inline-{os.getpid()}.pstats"
                        )
                    )
            else:
                items = [
                    (cell, provider, profile_dir)
                    for _index, cell in pending
                ]
                try:
                    for position, state, payload in imap_completion_order(
                        _process_cell,
                        items,
                        workers=workers,
                        deadline_s=deadline_s,
                        max_attempts=max_attempts,
                        chaos=chaos,
                    ):
                        index, cell = pending[position]
                        if state == "error":
                            raise SweepCellError(cell, payload) from payload
                        if state == "quarantined":
                            row = quarantined_row(cell, payload)
                            shipped = None
                        else:
                            row = payload["row"]
                            shipped = payload["telemetry"]
                        record(index, row, shipped)
                        if (
                            store is not None
                            and chaos is not None
                            and chaos.should_corrupt(position)
                        ):
                            chaos.corrupt_store(store.path)
                except PoolCrashError as exc:
                    keys = [
                        cell_key(item[0].as_dict())
                        for item in exc.pending_items
                    ]
                    raise SweepCrashError(exc, keys) from exc
        except BaseException:
            heartbeat("crashed", force=True)
            raise
    elapsed = time.perf_counter() - start

    complete = len(rows_by_index) == len(selected)
    ordered = [rows_by_index[i] for i in sorted(rows_by_index)]
    quarantined = sum(1 for row in ordered if "error" in row)
    if complete and store is not None and finalize and quarantined == 0:
        final_meta = dict(meta)
        if det_registry is not None:
            summary = {"schema": TELEMETRY_SCHEMA}
            summary.update(deterministic_part(det_registry.snapshot()))
            final_meta["telemetry"] = summary
        store.finalize(final_meta, ordered)
    heartbeat("complete" if complete else "incomplete", force=True)
    merged = RunMetrics.merge(
        RunMetrics.from_dict(row["result"]["metrics"])
        for row in ordered
        if "metrics" in row.get("result", {})
    )
    return SweepSummary(
        total=len(selected),
        ran=len(pending),
        skipped=skipped,
        complete=complete,
        elapsed=elapsed,
        merged=merged,
        quarantined=quarantined,
        telemetry=session.snapshot() if session is not None else None,
        rows=ordered,
    )


def _grid_mismatch(meta: Dict[str, Any], expected: Dict[str, Any]) -> bool:
    """Compare the grid-defining fields of two meta records."""
    keys = ("schema", "workload", "specs", "seeds", "ks", "verify", "shard")
    return any(meta.get(key) != expected.get(key) for key in keys)


def _cell_line(row: Dict[str, Any]) -> str:
    cell = row["cell"]
    if "error" in row:
        error = row["error"]
        return (
            f"{cell['workload']} {cell['spec']} seed={cell['seed']} "
            f"k={cell['k']}: QUARANTINED after {error.get('attempts')} "
            f"attempt(s) ({error.get('reason')})"
        )
    result = row["result"]
    return (
        f"{cell['workload']} {cell['spec']} seed={cell['seed']} "
        f"k={cell['k']}: rounds={result.get('rounds')} "
        f"messages={result.get('metrics', {}).get('messages')}"
    )
