"""Best-of-N portfolio runs: fan seeds out, reduce to one verdict.

FastGraphs.jl's greedy dominating-set benchmark (SNIPPETS.md #2) runs
``reps`` randomized attempts and keeps the smallest set — the
canonical experiment shape for comparing randomized CONGEST algorithms
(KP95 vs. the Penso–Barbosa line in the algorithm-zoo roadmap item).
:func:`portfolio_run` first-classes it on the sweep fabric: the N
seeds become a one-spec :class:`~repro.batch.sweep.SweepGrid` and run
through :func:`~repro.batch.sweep.run_sweep`, so the ambient
:class:`~repro.batch.pool.SharedPool`, deadline watchdog, bounded
retries, chaos drills, and checkpoint/resume stores all apply
unchanged.  Every attempt is an ordinary store row (warehouse-
ingestable); the reduction verdict is a deterministic JSON document
written as a ``<store>.verdict.json`` sidecar that ``repro ingest``
picks up automatically.

Determinism contract: the verdict is a pure function of the attempt
rows, which are themselves byte-identical across backends and worker
counts — so the winning seed cannot depend on completion order (ties
break toward the smallest seed).  CI's portfolio-smoke step ``cmp``s
the verdicts of ``--workers 1`` and ``--workers 2`` runs.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from .store import SweepStore, canonical_line
from .sweep import SweepGrid, SweepSummary, run_sweep

#: Schema tag on every verdict document.
PORTFOLIO_SCHEMA = "repro-portfolio/1"

#: Reduction name -> candidate result fields, first present wins.
#: All reductions minimize; "smallest" is the FastGraphs best-of-N
#: shape (fewest dominators, falling back to fewest clusters for
#: partition-style workloads).
REDUCTIONS: Dict[str, Tuple[str, ...]] = {
    "smallest": ("dominators", "clusters"),
    "rounds": ("rounds",),
    "messages": ("messages",),
}


class PortfolioError(ValueError):
    """A malformed portfolio request (unknown reduction, no seeds)."""


def _attempt_value(
    row: Dict[str, Any], fields: Tuple[str, ...]
) -> Optional[Any]:
    """The reduction metric of one attempt row, or ``None``.

    Deliberately local (not :func:`repro.warehouse.query.extract_metric`)
    — the warehouse imports the batch layer, so the dependency must not
    point back.
    """
    result = row.get("result")
    if not isinstance(result, dict):
        return None  # quarantined attempt
    for name in fields:
        value = result.get(name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return value
        metrics = result.get("metrics")
        if isinstance(metrics, dict):
            value = metrics.get(name)
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                return value
    return None


def portfolio_verdict(
    rows: Sequence[Dict[str, Any]],
    workload: str,
    spec: str,
    k: int,
    seeds: Sequence[int],
    reduce: str = "smallest",
    complete: bool = True,
) -> Dict[str, Any]:
    """Reduce attempt rows to the verdict document (pure function).

    ``best_seed`` minimizes ``(value, seed)`` over attempts that
    produced the metric; it is ``None`` when no attempt did (all
    quarantined, or the workload lacks the metric).  The document
    carries no paths or timings, so identical attempts give identical
    verdict bytes wherever they ran.
    """
    fields = REDUCTIONS.get(reduce)
    if fields is None:
        raise PortfolioError(
            f"unknown reduction {reduce!r}; available: "
            f"{', '.join(sorted(REDUCTIONS))}"
        )
    values: Dict[str, Any] = {}
    quarantined = 0
    candidates = []
    metric = fields[0]
    for row in rows:
        seed = row.get("cell", {}).get("seed")
        value = _attempt_value(row, fields)
        if value is None:
            quarantined += 1 if "error" in row else 0
            continue
        for name in fields:  # which alias actually supplied the value
            if _attempt_value(row, (name,)) is not None:
                metric = name
                break
        values[str(seed)] = value
        candidates.append((value, seed))
    best = min(candidates) if candidates else None
    return {
        "schema": PORTFOLIO_SCHEMA,
        "workload": workload,
        "spec": spec,
        "k": k,
        "reduce": reduce,
        "metric": metric,
        "seeds": list(seeds),
        "attempts": len(rows),
        "quarantined": quarantined,
        "complete": bool(complete),
        "best_seed": None if best is None else best[1],
        "best_value": None if best is None else best[0],
        "values": values,
    }


def verdict_path_for(store_path: str) -> str:
    """The verdict sidecar next to a portfolio's attempt store."""
    return store_path + ".verdict.json"


def portfolio_run(
    workload: str,
    spec: str,
    seeds: Sequence[int],
    k: int = 2,
    reduce: str = "smallest",
    store_path: Optional[str] = None,
    backend: str = "inline",
    workers: Optional[int] = None,
    resume: bool = True,
    deadline_s: Optional[float] = None,
    max_attempts: Optional[int] = None,
    chaos: Optional[Any] = None,
    telemetry: bool = True,
    verify: bool = False,
    echo: Callable[[str], None] = lambda line: None,
) -> Tuple[Dict[str, Any], SweepSummary]:
    """Run a best-of-N portfolio; return ``(verdict, sweep summary)``.

    The attempts are the one-spec grid ``(spec,) × seeds × (k,)`` run
    through :func:`run_sweep` with everything that implies: ambient
    SharedPool reuse under ``backend="process"``, deadline/retry/chaos
    semantics, resumable checkpoint stores, telemetry.  With a
    ``store_path`` the attempts finalize as a normal sweep store and
    the verdict lands in :func:`verdict_path_for` beside it — both
    ingest into the warehouse with one ``repro ingest`` call.

    A quarantined attempt does not sink the portfolio: the verdict
    reduces over the surviving attempts and records the casualty count
    (``quarantined``), mirroring the sweep fabric's own
    quarantine-and-continue stance.
    """
    if reduce not in REDUCTIONS:
        raise PortfolioError(
            f"unknown reduction {reduce!r}; available: "
            f"{', '.join(sorted(REDUCTIONS))}"
        )
    seeds = list(dict.fromkeys(int(seed) for seed in seeds))
    if not seeds:
        raise PortfolioError("portfolio needs at least one seed")
    grid = SweepGrid(
        workload=workload,
        specs=(spec,),
        seeds=tuple(seeds),
        ks=(k,),
        verify=verify,
    )
    summary = run_sweep(
        grid,
        store_path=store_path,
        backend=backend,
        workers=workers,
        resume=resume,
        echo=echo,
        deadline_s=deadline_s,
        max_attempts=max_attempts,
        chaos=chaos,
        telemetry=telemetry,
    )
    rows = summary.rows
    if store_path is not None:
        # The finalized store is the authority (canonical order, CRC
        # stripped) — reduce over what future ingests will read.
        _meta, stored = SweepStore(store_path).load()
        rows = [stored[key] for key in sorted(stored)]
    verdict = portfolio_verdict(
        rows,
        workload=workload,
        spec=spec,
        k=k,
        seeds=seeds,
        reduce=reduce,
        complete=summary.complete and summary.quarantined == 0,
    )
    if store_path is not None:
        path = verdict_path_for(store_path)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            handle.write(canonical_line(verdict) + "\n")
        os.replace(tmp, path)
    return verdict, summary


def render_verdict(verdict: Dict[str, Any]) -> list:
    """Human lines for one verdict (``repro portfolio`` output)."""
    lines = [
        f"portfolio {verdict['workload']} {verdict['spec']} "
        f"k={verdict['k']} reduce={verdict['reduce']} "
        f"({verdict['attempts']} attempt(s))"
    ]
    for seed_text, value in sorted(
        verdict.get("values", {}).items(), key=lambda item: int(item[0])
    ):
        marker = (
            " <- best"
            if verdict.get("best_seed") is not None
            and seed_text == str(verdict["best_seed"])
            else ""
        )
        lines.append(
            f"  seed {seed_text}: {verdict['metric']}={value}{marker}"
        )
    if verdict.get("quarantined"):
        lines.append(f"  quarantined attempts: {verdict['quarantined']}")
    if verdict.get("best_seed") is None:
        lines.append("  no attempt produced the reduction metric")
    else:
        lines.append(
            f"best: seed {verdict['best_seed']} with "
            f"{verdict['metric']}={verdict['best_value']}"
        )
    if not verdict.get("complete", True):
        lines.append("INCOMPLETE: not every attempt finished cleanly")
    return lines


def verdict_json(verdict: Dict[str, Any]) -> str:
    """Canonical one-line serialization (what the sidecar holds)."""
    return canonical_line(verdict)
