"""Deterministic chaos harness for the sweep fabric.

PR 1 gave the *simulated* CONGEST network seeded, replayable fault
plans (:mod:`repro.sim.faults`): drop/delay/crash events scheduled by a
:class:`~repro.sim.faults.FaultPlan` so resilience experiments are
reproducible bit for bit.  This module applies the same discipline to
the *real* execution layer — the worker pools and result stores that
run the sweeps:

* a :class:`ChaosPlan` is generated from a seed and schedules faults at
  planned task indices: ``kill`` (the worker hard-exits mid-task),
  ``hang`` (the worker wedges until the ``deadline_s`` watchdog clears
  it), ``slow`` (a delay below the deadline — exercises the watchdog's
  *non*-firing path), ``corrupt`` (the task's just-checkpointed store
  row is damaged on disk) and ``poison`` (the task kills its worker on
  *every* attempt, forcing quarantine);
* :func:`repro.batch.sweep.run_sweep` accepts ``chaos=plan`` and routes
  the worker-side ops through :class:`~repro.batch.pool.SharedPool`'s
  monitored loop (see ``_apply_chaos_op``), applying ``corrupt``
  parent-side right after the row is appended;
* :func:`run_chaos` is the end-to-end drill behind ``repro chaos``:
  fault-free baseline → sweep under the plan → ``repair-store`` →
  resume → verify that the final store matches the baseline byte for
  byte, minus the quarantined cells.

Everything is deterministic by construction: the plan depends only on
``(seed, tasks)``, fabric events carry no pids or timestamps, and the
retry/quarantine log is compared as a *sorted* list of events — with
several faulty tasks in flight at once, the kernel scheduler may order
their detections either way, but the *set* of (kind, task, attempt,
reason) events is invariant across replays.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .store import CRC_FIELD, SweepStore, canonical_line, row_crc

#: Fault kinds a ChaosPlan can schedule.
CHAOS_KINDS = ("kill", "hang", "slow", "corrupt", "poison")

#: Kinds executed inside the worker (via ``pool._apply_chaos_op``).
_WORKER_KINDS = ("kill", "hang", "slow", "poison")


@dataclass(frozen=True)
class ChaosAction:
    """One scheduled fault: ``kind`` fires at task ``index``.

    ``detail`` is the sleep for ``slow`` actions (seconds), unused
    otherwise.  Worker faults fire on the task's *first* attempt only —
    the retry runs clean, which is what makes recovery verifiable —
    except ``poison``, which fires on every attempt until the task is
    quarantined.
    """

    index: int
    kind: str
    detail: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"kind must be one of {CHAOS_KINDS}, got {self.kind!r}"
            )
        if self.index < 0:
            raise ValueError(f"index must be >= 0, got {self.index}")

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"index": self.index, "kind": self.kind}
        if self.detail is not None:
            record["detail"] = self.detail
        return record


class ChaosPlan:
    """A seeded, replayable schedule of fabric faults.

    The fabric mirror of :class:`~repro.sim.faults.FaultPlan`: built
    either explicitly from :class:`ChaosAction` records or sampled by
    :meth:`generate`, and consumed by
    :meth:`~repro.batch.pool.SharedPool.imap` (worker faults) and
    :func:`~repro.batch.sweep.run_sweep` (store corruption).  Task
    indices refer to submission order — for a fresh sweep, the grid's
    canonical cell order.
    """

    def __init__(
        self,
        actions: List[ChaosAction],
        seed: Optional[int] = None,
    ) -> None:
        by_index: Dict[int, ChaosAction] = {}
        for action in actions:
            if action.index in by_index:
                raise ValueError(
                    f"two chaos actions at task index {action.index} "
                    f"(faults must target disjoint tasks)"
                )
            by_index[action.index] = action
        self.actions = tuple(sorted(actions, key=lambda a: a.index))
        self.seed = seed
        self._by_index = by_index

    @classmethod
    def generate(
        cls,
        seed: int,
        tasks: int,
        kills: int = 1,
        hangs: int = 1,
        slows: int = 0,
        corrupts: int = 1,
        poisons: int = 0,
        slow_s: float = 0.05,
    ) -> "ChaosPlan":
        """Sample a plan over ``tasks`` task indices.

        Same ``(seed, tasks, counts)`` → same plan, always — the
        replayability contract ``repro chaos --seed`` rests on.  Faults
        land on disjoint indices so each fault's effect on the store is
        attributable.
        """
        wanted = [
            ("kill", kills),
            ("hang", hangs),
            ("slow", slows),
            ("corrupt", corrupts),
            ("poison", poisons),
        ]
        need = sum(count for _kind, count in wanted)
        if need > tasks:
            raise ValueError(
                f"plan wants {need} faulted task(s) but only {tasks} exist"
            )
        rng = random.Random(seed)
        indices = rng.sample(range(tasks), need)
        actions: List[ChaosAction] = []
        cursor = 0
        for kind, count in wanted:
            for _ in range(count):
                detail = slow_s if kind == "slow" else None
                actions.append(ChaosAction(indices[cursor], kind, detail))
                cursor += 1
        return cls(actions, seed=seed)

    # -- consumption -------------------------------------------------------
    def op_for(
        self, index: int, attempt: int
    ) -> Optional[Tuple[Any, ...]]:
        """The worker-side op for task ``index`` on its ``attempt``-th
        try, or ``None`` (see ``pool._apply_chaos_op``)."""
        action = self._by_index.get(index)
        if action is None or action.kind not in _WORKER_KINDS:
            return None
        if action.kind == "poison":
            return ("kill",)  # every attempt: the definition of poison
        if attempt != 0:
            return None  # one-shot faults: the retry runs clean
        if action.kind == "slow":
            return ("slow", action.detail if action.detail else 0.05)
        return (action.kind,)

    def should_corrupt(self, index: int) -> bool:
        """Whether task ``index``'s checkpointed row gets corrupted."""
        action = self._by_index.get(index)
        return action is not None and action.kind == "corrupt"

    def corrupt_store(self, path: str) -> None:
        """Damage the most recently appended row of the store at
        ``path``: its CRC is bit-inverted, so the line stays complete,
        parseable JSON that *fails* verification — unambiguously
        corruption, never mistakable for a torn final append."""
        with open(path) as handle:
            lines = handle.read().splitlines()
        while lines and not lines[-1].strip():
            lines.pop()
        if not lines:
            return
        record = json.loads(lines[-1])
        stripped = {k: v for k, v in record.items() if k != CRC_FIELD}
        good = row_crc(stripped)
        record[CRC_FIELD] = f"{int(good, 16) ^ 0xFFFFFFFF:08x}"
        lines[-1] = canonical_line(record)
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")

    # -- bookkeeping -------------------------------------------------------
    def indices(self, kind: str) -> List[int]:
        """The task indices scheduled for ``kind``, ascending."""
        return [a.index for a in self.actions if a.kind == kind]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "actions": [action.as_dict() for action in self.actions],
        }

    def describe(self) -> str:
        if not self.actions:
            return "chaos plan: empty"
        inner = ", ".join(
            f"{action.kind}@{action.index}" for action in self.actions
        )
        seed = "" if self.seed is None else f" (seed {self.seed})"
        return f"chaos plan{seed}: {inner}"

    def __len__(self) -> int:
        return len(self.actions)


def retry_log(fabric_log: List[Dict[str, Any]]) -> List[Tuple[Any, ...]]:
    """The replay-comparable view of a pool's fabric log: the retry and
    quarantine events as sorted ``(kind, task, attempt, reason)`` tuples
    (sorted because concurrent faults may be *detected* in either
    order; the set of events is the deterministic part)."""
    rows = []
    for event in fabric_log:
        if event.get("kind") not in ("task_retried", "task_quarantined"):
            continue
        rows.append(
            (
                event["kind"],
                event.get("task"),
                event.get("attempt", event.get("attempts")),
                event.get("reason"),
            )
        )
    return sorted(rows)


# ---------------------------------------------------------------------------
# The end-to-end drill
# ---------------------------------------------------------------------------
@dataclass
class ChaosReport:
    """What a :func:`run_chaos` drill did, and whether it verified.

    ``verified`` is the headline: every non-quarantined cell of the
    post-repair, post-resume store matches the fault-free baseline
    (and when nothing was quarantined, the two files are byte-identical
    — ``byte_identical``).
    """

    plan: ChaosPlan
    baseline_path: str
    chaos_path: str
    quarantined_cells: List[str] = field(default_factory=list)
    mismatched_cells: List[str] = field(default_factory=list)
    missing_after_repair: List[str] = field(default_factory=list)
    retry_events: List[Tuple[Any, ...]] = field(default_factory=list)
    salvage_summary: str = ""
    byte_identical: bool = False
    restarts: int = 0

    @property
    def verified(self) -> bool:
        return not self.mismatched_cells

    def lines(self) -> List[str]:
        """Human-readable drill summary for the CLI."""
        out = [self.plan.describe()]
        out.append(
            f"fabric: {self.restarts} restart(s), "
            f"{len(self.retry_events)} retry/quarantine event(s)"
        )
        out.append(f"repair: {self.salvage_summary}")
        if self.quarantined_cells:
            out.append(
                "quarantined: " + ", ".join(self.quarantined_cells)
            )
        if self.mismatched_cells:
            out.append(
                "MISMATCH vs fault-free baseline: "
                + ", ".join(self.mismatched_cells)
            )
        elif self.byte_identical:
            out.append("verified: store byte-identical to fault-free run")
        else:
            out.append(
                "verified: store matches fault-free run minus "
                "quarantined cell(s)"
            )
        return out


def run_chaos(
    grid: Any,
    seed: int,
    out_dir: str,
    workers: int = 2,
    deadline_s: float = 1.0,
    max_attempts: int = 3,
    kills: int = 1,
    hangs: int = 1,
    slows: int = 0,
    corrupts: int = 1,
    poisons: int = 0,
    echo: Callable[[str], None] = lambda line: None,
) -> ChaosReport:
    """Run the full chaos drill over ``grid`` and verify recovery.

    Five phases, each exercising one leg of the crash-only story:

    1. **Baseline** — the grid swept inline, fault-free, finalized:
       the ground truth (``baseline.jsonl`` under ``out_dir``).
    2. **Chaos sweep** — the same grid under a
       :meth:`ChaosPlan.generate`\\ d plan, through a monitored
       :class:`~repro.batch.pool.SharedPool` with the watchdog armed.
       ``finalize=False`` keeps the checkpoint (CRC'd) form so injected
       store corruption survives to the next phase.
    3. **Repair** — :func:`~repro.batch.store.repair_store` salvages
       the store; corrupted rows drop out as missing cells.
    4. **Resume** — the sweep re-runs exactly the missing cells
       (quarantined cells stay quarantined: their error rows are
       legitimate results of the drill).
    5. **Verify** — the final store against the baseline: byte-identical
       when nothing was quarantined, else per-cell identical minus the
       quarantined cells.

    Deterministic end to end: same ``seed`` (and grid/fault counts) →
    same plan, same sorted retry/quarantine log, same verification
    verdict.
    """
    from .pool import SharedPool
    from .sweep import run_sweep

    os.makedirs(out_dir, exist_ok=True)
    cells = grid.cells()
    plan = ChaosPlan.generate(
        seed,
        len(cells),
        kills=kills,
        hangs=hangs,
        slows=slows,
        corrupts=corrupts,
        poisons=poisons,
    )
    echo(plan.describe())

    baseline_path = os.path.join(out_dir, "baseline.jsonl")
    echo("phase 1/5: fault-free baseline")
    run_sweep(grid, baseline_path, backend="inline", resume=False)

    chaos_path = os.path.join(out_dir, f"chaos-seed{seed}.jsonl")
    echo("phase 2/5: sweep under chaos")
    pool = SharedPool(
        workers=workers, deadline_s=deadline_s, max_attempts=max_attempts
    )
    with pool:
        run_sweep(
            grid,
            chaos_path,
            backend="process",
            workers=workers,
            resume=False,
            chaos=plan,
            finalize=False,
        )
    events = retry_log(pool.fabric_log)
    restarts = pool.restarts

    echo("phase 3/5: repair-store")
    from .store import repair_store

    salvage, missing = repair_store(chaos_path)
    echo(f"  {salvage.summary()}")

    echo("phase 4/5: resume the repaired store")
    run_sweep(grid, chaos_path, backend="inline", resume=True)

    echo("phase 5/5: verify against the baseline")
    _meta, baseline_rows = SweepStore(baseline_path).load()
    _meta, final_rows = SweepStore(chaos_path).load()
    quarantined = sorted(
        key for key, row in final_rows.items() if "error" in row
    )
    mismatched = [
        key
        for key in sorted(baseline_rows)
        if key not in quarantined
        and final_rows.get(key) != baseline_rows[key]
    ]
    byte_identical = False
    if not quarantined and not mismatched:
        with open(baseline_path, "rb") as a, open(chaos_path, "rb") as b:
            byte_identical = a.read() == b.read()

    report = ChaosReport(
        plan=plan,
        baseline_path=baseline_path,
        chaos_path=chaos_path,
        quarantined_cells=quarantined,
        mismatched_cells=mismatched,
        missing_after_repair=missing,
        retry_events=events,
        salvage_summary=salvage.summary(),
        byte_identical=byte_identical,
        restarts=restarts,
    )
    return report
