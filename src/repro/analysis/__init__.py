"""Benchmark-side analysis: growth-exponent fits and table rendering."""

from .complexity import (
    bound_ratios,
    crossover_estimate,
    fit_exponent,
    log_star,
    ratios_are_bounded,
)
from .tables import banner, format_table

__all__ = [
    "banner",
    "bound_ratios",
    "crossover_estimate",
    "fit_exponent",
    "format_table",
    "log_star",
    "ratios_are_bounded",
]
