"""Empirical complexity analysis used by the benchmark harness.

The paper's claims are asymptotic; the benchmarks validate their
*shape* by (a) fitting log-log growth exponents to measured round
counts and (b) checking that the ratio ``measured / claimed_bound``
stays flat (or shrinks) as the driving parameter grows.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple


def fit_exponent(points: Sequence[Tuple[float, float]]) -> float:
    """Least-squares slope of log(y) against log(x).

    For measurements following ``y = C * x^a`` this recovers ``a``.
    Points with non-positive coordinates are rejected.
    """
    cleaned = [(x, y) for x, y in points if x > 0 and y > 0]
    if len(cleaned) < 2:
        raise ValueError("need at least two positive points")
    logs = [(math.log(x), math.log(y)) for x, y in cleaned]
    n = len(logs)
    mean_x = sum(lx for lx, _ in logs) / n
    mean_y = sum(ly for _, ly in logs) / n
    sxx = sum((lx - mean_x) ** 2 for lx, _ in logs)
    sxy = sum((lx - mean_x) * (ly - mean_y) for lx, ly in logs)
    if sxx == 0:
        raise ValueError("all x values identical")
    return sxy / sxx


def bound_ratios(
    points: Sequence[Tuple[float, float]],
    bound: Callable[[float], float],
) -> List[float]:
    """``measured / bound(x)`` for each (x, measured) point."""
    return [y / bound(x) for x, y in points]


def ratios_are_bounded(
    points: Sequence[Tuple[float, float]],
    bound: Callable[[float], float],
    tolerance_growth: float = 1.5,
) -> bool:
    """True when the measured/bound ratio does not grow by more than
    ``tolerance_growth`` from the first to the last point — the working
    definition of "the claimed complexity shape holds"."""
    ratios = bound_ratios(points, bound)
    if len(ratios) < 2:
        return True
    return ratios[-1] <= ratios[0] * tolerance_growth + 1e-9


def log_star(n: float) -> int:
    count = 0
    value = float(n)
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


def crossover_estimate(
    points_a: Sequence[Tuple[float, float]],
    points_b: Sequence[Tuple[float, float]],
) -> float:
    """Extrapolated x where power-law fits of two series cross.

    Fits ``y = C x^a`` to each series and solves for equality.  Returns
    ``inf`` when the fits never cross for x above 1.
    """
    a1 = fit_exponent(points_a)
    a2 = fit_exponent(points_b)
    # Recover intercepts via geometric means.
    c1 = math.exp(
        sum(math.log(y) - a1 * math.log(x) for x, y in points_a)
        / len(points_a)
    )
    c2 = math.exp(
        sum(math.log(y) - a2 * math.log(x) for x, y in points_b)
        / len(points_b)
    )
    if abs(a1 - a2) < 1e-9:
        return math.inf
    x = (c2 / c1) ** (1.0 / (a1 - a2))
    return x if x > 1 else math.inf
