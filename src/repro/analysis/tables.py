"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """A padded, pipe-separated table (stable across terminals)."""
    rendered_rows = [[_cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def banner(title: str) -> str:
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"
