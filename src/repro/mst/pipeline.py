"""Procedure ``Pipeline`` (§5.1, Fig. 8): fully pipelined global edge
elimination.

Every node of a BFS tree ``B`` maintains the set ``Q`` of inter-fragment
edges it knows of (its own incident ones, plus everything upcast by its
children) and the set ``U`` of edges it has already sent up.  At each
pulse it sends the lightest edge of::

    RC = Q \\ (U  ∪  Cyc(U, Q))

where ``Cyc(U, Q)`` is the set of edges closing a cycle with ``U`` on
the *fragment graph* (evaluated here with a per-node union-find over
fragment ids).  When ``RC`` is empty the node sends a terminating
message and stops upcasting.  The root gathers the surviving edges,
computes the fragment-graph MST locally (red rule: an edge that is
heaviest on a cycle is in no MST, so discarded edges are never needed),
and streams the ``N - 1`` chosen edges back down the tree.

The paper's analytical claims are instrumented directly:

* Lemma 5.1 (upcast edges form a forest) holds by construction of the
  union-find filter;
* Lemma 5.3(d) (each node upcasts in nondecreasing weight order) is
  checked at every send — a violation is recorded in the node output
  ``order_violations``;
* Lemmas 5.3(a)/5.4 (a node's candidate set only empties once all its
  children have terminated — the "fully pipelined, no waiting" claim)
  is checked when terminating — a violation is recorded in
  ``pipelining_violations``.

Setting ``eliminate_cycles=False`` disables the ``Cyc`` filter (every
known edge is upcast), turning the procedure into the naive
collect-everything baseline whose time is Θ(m + Diam) instead of
Θ(N + Diam) — the ablation of experiment E10.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..graphs.graph import Graph
from ..primitives.bfs import build_bfs_tree
from ..sim.model import Envelope
from ..sim.network import Network
from ..sim.program import Context, NodeProgram
from ..sim.runner import StagedRun
from .unionfind import UnionFind

#: An edge descriptor: (weight, fragment_a, fragment_b, endpoint_a,
#: endpoint_b), endpoints sorted.  Descriptors are shared by both
#: endpoints so duplicates arriving via different children dedupe.
EdgeDescriptor = Tuple[float, Any, Any, Any, Any]


def make_descriptor(
    weight: float, u: Any, v: Any, fragment_of: Dict[Any, Any]
) -> EdgeDescriptor:
    a, b = (u, v) if str(u) < str(v) else (v, u)
    return (weight, fragment_of[a], fragment_of[b], a, b)


class PipelineProgram(NodeProgram):
    """One node of Procedure ``Pipeline``.

    Outputs: at every node ``upcast_count``, ``start_round``,
    ``term_round``, ``order_violations``, ``pipelining_violations``,
    ``incident_selected`` (its incident fragment-graph MST edges); at
    the root additionally ``selected_edges`` (the full set ``S``).
    """

    def __init__(
        self,
        ctx: Context,
        root: Any,
        parent_of: Dict[Any, Optional[Any]],
        fragment_id: Any,
        eliminate_cycles: bool = True,
    ):
        super().__init__(ctx)
        self.is_root = ctx.node == root
        self.parent = parent_of.get(ctx.node)
        self.children = tuple(
            nb for nb in ctx.neighbors if parent_of.get(nb) == ctx.node
        )
        self.fragment_id = fragment_id
        self.eliminate_cycles = eliminate_cycles

        self.queue: List[EdgeDescriptor] = []  # Q, kept sorted
        self.known: Set[EdgeDescriptor] = set()
        self.sent_up: Set[EdgeDescriptor] = set()  # U
        self.union_find = UnionFind()
        self.children_heard: Set[Any] = set()
        self.children_done: Set[Any] = set()
        self.started = False
        self.terminated = False
        self.last_weight_sent: Optional[float] = None

        # Downstream broadcast state (root originates, others relay).
        self.broadcast_queue: List[Tuple[Any, Any]] = []
        self.stream_complete = False
        self.selected_incident: List[Tuple[Any, Any]] = []

        self.output["order_violations"] = 0
        self.output["pipelining_violations"] = 0
        self.output["upcast_count"] = 0

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        # Pulse -1: learn the fragment ids across every incident edge.
        self.broadcast("FRG", self.fragment_id)

    def on_round(self, inbox: List[Envelope]) -> None:
        for envelope in inbox:
            tag = envelope.tag()
            if tag == "FRG":
                self._note_fragment(envelope)
            elif tag == "EDG":
                self._receive_edge(envelope)
            elif tag == "TRM":
                self.children_heard.add(envelope.sender)
                self.children_done.add(envelope.sender)
            elif tag == "SEL":
                self._receive_selection(envelope)
            elif tag == "DON":
                self.stream_complete = True

        if not self.started:
            if self.children_heard >= set(self.children) and self.round >= 1:
                self.started = True
                self.output["start_round"] = self.round
        if self.started and not self.terminated and not self.is_root:
            self._pulse_upcast()
        if self.is_root:
            self._maybe_complete()
        self._pump_broadcast()

    # -- building Q ------------------------------------------------------
    def _note_fragment(self, envelope: Envelope) -> None:
        neighbor = envelope.sender
        neighbor_fragment = envelope.payload[1]
        if neighbor_fragment == self.fragment_id:
            return
        weight = self.ctx.weight(neighbor)
        a, b = (
            (self.node, neighbor)
            if str(self.node) < str(neighbor)
            else (neighbor, self.node)
        )
        fa = self.fragment_id if a == self.node else neighbor_fragment
        fb = neighbor_fragment if a == self.node else self.fragment_id
        self._add_edge((weight, fa, fb, a, b))

    def _receive_edge(self, envelope: Envelope) -> None:
        _tag, weight, fa, fb, a, b = envelope.payload
        self.children_heard.add(envelope.sender)
        self._add_edge((weight, fa, fb, a, b))

    def _add_edge(self, descriptor: EdgeDescriptor) -> None:
        if descriptor not in self.known:
            self.known.add(descriptor)
            self.queue.append(descriptor)
            self.queue.sort()

    # -- upcasting --------------------------------------------------------
    def _next_candidate(self) -> Optional[EdgeDescriptor]:
        while self.queue:
            descriptor = self.queue[0]
            weight, fa, fb, _a, _b = descriptor
            if descriptor in self.sent_up:
                self.queue.pop(0)
                continue
            if self.eliminate_cycles and self.union_find.connected(fa, fb):
                # e in Cyc(U, Q): drop for good (red rule).
                self.queue.pop(0)
                continue
            return descriptor
        return None

    def _pulse_upcast(self) -> None:
        candidate = self._next_candidate()
        if candidate is None:
            if self.children_done < set(self.children):
                # Lemma 5.3(a) violated: we ran dry while a child was
                # still streaming.
                self.output["pipelining_violations"] += 1
            self.terminated = True
            self.output["term_round"] = self.round
            self.send(self.parent, "TRM")
            return
        weight, fa, fb, a, b = candidate
        if self.last_weight_sent is not None and weight < self.last_weight_sent:
            self.output["order_violations"] += 1
        self.last_weight_sent = weight
        self.queue.pop(0)
        self.sent_up.add(candidate)
        self.union_find.union(fa, fb)
        self.output["upcast_count"] += 1
        self.send(self.parent, "EDG", weight, fa, fb, a, b)

    # -- root: collect, solve, broadcast ------------------------------------
    def _maybe_complete(self) -> None:
        if self.stream_complete or self.output.get("selected_edges") is not None:
            return
        if not self.started:
            return
        if self.children_done < set(self.children):
            return
        # Everything has arrived: solve the fragment-graph MST (Kruskal
        # over the surviving candidates — the red rule guarantees the
        # discarded edges are in no MST, Lemma 5.5).
        candidates = sorted(self.known)
        uf = UnionFind()
        selected: List[Tuple[Any, Any]] = []
        for weight, fa, fb, a, b in candidates:
            if uf.union(fa, fb):
                selected.append((a, b))
        self.output["selected_edges"] = list(selected)
        self.broadcast_queue = list(selected)
        self.stream_complete = True
        self._mark_incident(selected)

    def _pump_broadcast(self) -> None:
        """Relay the selection stream downward, one edge per round."""
        if self.broadcast_queue:
            a, b = self.broadcast_queue.pop(0)
            for child in self.children:
                self.send(child, "SEL", a, b)
        elif self.stream_complete:
            for child in self.children:
                self.send(child, "DON")
            self.output["incident_selected"] = list(self.selected_incident)
            self.halt()

    def _receive_selection(self, envelope: Envelope) -> None:
        _tag, a, b = envelope.payload
        self.broadcast_queue.append((a, b))
        self._mark_incident([(a, b)])

    def _mark_incident(self, selected: List[Tuple[Any, Any]]) -> None:
        for a, b in selected:
            if a == self.node or b == self.node:
                self.selected_incident.append((a, b))


def run_pipeline(
    graph: Graph,
    fragment_of: Dict[Any, Any],
    root: Any = None,
    eliminate_cycles: bool = True,
    word_limit: int = 8,
) -> Tuple[List[Tuple[Any, Any]], StagedRun, "Network"]:
    """Run Procedure ``Pipeline``: BFS stage + pipelined elimination.

    Returns (selected inter-fragment MST edges, staged rounds, the
    pipeline network for inspection).
    """
    from ..graphs.validation import is_connected

    if not is_connected(graph):
        raise ValueError(
            "Pipeline requires a connected graph (the BFS tree must span "
            "every fragment)"
        )
    if root is None:
        root = min(graph.nodes, key=str)
    staged = StagedRun()
    parents, _depths, bfs_network = build_bfs_tree(graph, root, word_limit)
    staged.record("bfs-tree", bfs_network.metrics)

    network = Network(graph, word_limit=word_limit)
    network.run(
        lambda ctx: PipelineProgram(
            ctx, root, parents, fragment_of[ctx.node], eliminate_cycles
        )
    )
    staged.record("pipeline", network.metrics)
    selected = network.programs[root].output["selected_edges"]
    return list(selected), staged, network
