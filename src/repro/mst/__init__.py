"""The MST application (§5): Procedure Pipeline, Fast-MST, baselines,
and sequential references."""

from .fast_mst import default_k, fast_mst
from .flood_collect import flood_collect_mst, pipeline_only_mst
from .ghs import ghs_mst
from .kruskal import kruskal_mst, mst_weight
from .pipeline import PipelineProgram, make_descriptor, run_pipeline
from .prim import prim_mst
from .unionfind import UnionFind

__all__ = [
    "PipelineProgram",
    "UnionFind",
    "default_k",
    "fast_mst",
    "flood_collect_mst",
    "ghs_mst",
    "kruskal_mst",
    "make_descriptor",
    "mst_weight",
    "pipeline_only_mst",
    "prim_mst",
    "run_pipeline",
]
