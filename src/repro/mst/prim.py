"""Sequential Prim MST — a second, independent correctness oracle
(tests cross-check Kruskal and Prim against each other)."""

from __future__ import annotations

import heapq
from typing import Any, Set, Tuple

from ..graphs.graph import Graph


def prim_mst(graph: Graph, start: Any = None) -> Set[Tuple[Any, Any]]:
    """The MST edge set via Prim's algorithm (unique MST assumed)."""
    if graph.num_nodes == 0:
        return set()
    if start is None:
        start = min(graph.nodes, key=str)
    visited = {start}
    frontier = [
        (graph.weight(start, u), str(start), str(u), start, u)
        for u in graph.neighbors(start)
    ]
    heapq.heapify(frontier)
    mst: Set[Tuple[Any, Any]] = set()
    while frontier and len(visited) < graph.num_nodes:
        w, _su, _sv, u, v = heapq.heappop(frontier)
        if v in visited:
            continue
        visited.add(v)
        mst.add(_canonical(u, v))
        for x in graph.neighbors(v):
            if x not in visited:
                heapq.heappush(
                    frontier, (graph.weight(v, x), str(v), str(x), v, x)
                )
    if len(visited) != graph.num_nodes:
        raise ValueError("graph is disconnected; no spanning tree exists")
    return mst


def _canonical(u: Any, v: Any) -> Tuple[Any, Any]:
    try:
        return (u, v) if u < v else (v, u)
    except TypeError:
        return (u, v) if str(u) < str(v) else (v, u)
