"""Union-find (disjoint sets) with path compression and union by rank.

Used by the sequential Kruskal reference and — crucially — by every
node of Procedure ``Pipeline`` to evaluate the paper's
``Cyc(U, Q)`` test: an edge closes a cycle with the already-upcast set
``U`` iff its fragment endpoints are already connected in ``U``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable


class UnionFind:
    """Disjoint-set forest over arbitrary hashable elements.

    Elements are created lazily on first touch.
    """

    def __init__(self, elements: Iterable[Any] = ()):
        self._parent: Dict[Any, Any] = {}
        self._rank: Dict[Any, int] = {}
        self._components = 0
        for element in elements:
            self.add(element)

    def add(self, element: Any) -> None:
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0
            self._components += 1

    def __contains__(self, element: Any) -> bool:
        return element in self._parent

    def find(self, element: Any) -> Any:
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def connected(self, a: Any, b: Any) -> bool:
        return self.find(a) == self.find(b)

    def union(self, a: Any, b: Any) -> bool:
        """Merge the two sets; returns False if already connected."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._components -= 1
        return True

    @property
    def component_count(self) -> int:
        return self._components

    def groups(self) -> Dict[Any, set]:
        out: Dict[Any, set] = {}
        for element in self._parent:
            out.setdefault(self.find(element), set()).add(element)
        return out
