"""Algorithm ``Fast-MST`` (§5.2, Theorem 5.6): distributed MST in
``O(sqrt(n) log* n + Diam(G))`` rounds.

Stage 1 — the first two stages of ``FastDOM_G`` with ``k = ceil(sqrt n)``
(the third, DiamDOM, "is not essential for the purposes of the current
section", footnote 2):

* ``SimpleMST`` builds a ``(k+1, n)`` spanning forest of MST fragments
  in O(k) rounds;
* ``DOM_Partition(k)`` splits each fragment into clusters of radius
  O(k) and size >= k + 1, every cluster still a subtree of the MST;
* a cluster-id wave (O(k) rounds) gives every node its cluster's
  identity — this is why the re-partition matters: SimpleMST fragments
  have bounded *size-count* but unbounded radius, so their stale ids
  (§4.2) could not be refreshed in O(k) time.

Stage 2 — Procedure ``Pipeline`` over the ``N = O(sqrt n)`` clusters:
O(N + Diam) rounds.  The MST is the union of the intra-cluster fragment
edges and the ``N - 1`` selected inter-cluster edges.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Set, Tuple

from ..core.partition_fast import dom_partition
from ..core.spanning_forest import simple_mst_forest
from ..graphs.graph import Graph
from ..sim.runner import StagedRun
from .kruskal import _canonical
from .pipeline import run_pipeline


def default_k(n: int) -> int:
    """The paper's parameter choice, k = ceil(sqrt(n))."""
    return max(1, math.ceil(math.sqrt(max(n, 1))))


def fast_mst(
    graph: Graph,
    k: Optional[int] = None,
    root: Any = None,
) -> Tuple[Set[Tuple[Any, Any]], StagedRun, Dict[str, Any]]:
    """Run ``Fast-MST`` on a connected graph with distinct edge weights.

    ``k`` defaults to ``ceil(sqrt(n))``.  Returns (MST edge set, staged
    round accounting, diagnostics: cluster count, pipelining/order
    violation counts).
    """
    n = graph.num_nodes
    if n == 0:
        return set(), StagedRun(), {"clusters": 0}
    if k is None:
        k = default_k(n)
    staged = StagedRun()

    # --- Stage 1a: SimpleMST -> (k+1, n) spanning forest of MST fragments.
    parents, fragments, forest_network = simple_mst_forest(graph, k)
    staged.record("simple-mst", forest_network.metrics)
    mst_edges: Set[Tuple[Any, Any]] = {
        _canonical(v, p) for v, p in parents.items() if p is not None
    }

    # --- Stage 1b: DOM_Partition(k) inside each fragment (parallel).
    cluster_of: Dict[Any, Any] = {}
    max_partition_rounds = 0
    max_cluster_radius = 0
    n_clusters = 0
    for fragment in fragments:
        fragment_parent = {
            v: (parents[v] if parents[v] in fragment else None)
            for v in fragment
        }
        fragment_root = next(
            v for v in sorted(fragment, key=str) if fragment_parent[v] is None
        )
        tree_edges = [(v, p) for v, p in fragment_parent.items() if p is not None]
        fragment_tree = graph.subgraph(fragment).edge_subgraph(tree_edges)
        if k >= 1 and fragment_tree.num_nodes >= k + 1:
            partition, part_staged = dom_partition(
                fragment_tree, fragment_root, fragment_parent, k
            )
            max_partition_rounds = max(
                max_partition_rounds, part_staged.total_rounds
            )
            for cluster in partition:
                n_clusters += 1
                max_cluster_radius = max(
                    max_cluster_radius, cluster.radius_in(fragment_tree)
                )
                for v in cluster.members:
                    cluster_of[v] = cluster.center
        else:
            # Whole (small) fragment is a single cluster.
            n_clusters += 1
            for v in fragment:
                cluster_of[v] = fragment_root
    staged.add_rounds("dom-partition", max_partition_rounds)
    # Cluster-id refresh wave: centre -> members, bounded by the radius.
    staged.add_rounds("cluster-id-wave", 2 * max_cluster_radius + 1)

    # --- Stage 2: Pipeline over the cluster (fragment) graph.
    selected, pipeline_staged, pipeline_network = run_pipeline(
        graph, cluster_of, root=root
    )
    for name, rounds in pipeline_staged.breakdown().items():
        staged.add_rounds(name, rounds)
    staged.total_messages += pipeline_staged.total_messages
    mst_edges |= {_canonical(a, b) for a, b in selected}

    outputs = pipeline_network.outputs()
    diagnostics = {
        "clusters": n_clusters,
        "fragments": len(fragments),
        "max_cluster_radius": max_cluster_radius,
        "pipelining_violations": sum(
            o.get("pipelining_violations", 0) for o in outputs.values()
        ),
        "order_violations": sum(
            o.get("order_violations", 0) for o in outputs.values()
        ),
        "k": k,
    }
    return mst_edges, staged, diagnostics
