"""Sequential Kruskal MST — the correctness oracle for every
distributed MST algorithm in this repository."""

from __future__ import annotations

from typing import Any, Set, Tuple

from ..graphs.graph import Graph
from .unionfind import UnionFind


def kruskal_mst(graph: Graph) -> Set[Tuple[Any, Any]]:
    """The MST edge set (endpoints sorted per edge).

    Requires weighted edges; with distinct weights the MST is unique.
    Raises on a disconnected graph.
    """
    uf = UnionFind(graph.nodes)
    edges = sorted(
        graph.weighted_edges(), key=lambda t: (t[2], str(t[0]), str(t[1]))
    )
    mst: Set[Tuple[Any, Any]] = set()
    for u, v, w in edges:
        if w is None:
            raise ValueError(f"edge ({u}, {v}) has no weight")
        if uf.union(u, v):
            mst.add(_canonical(u, v))
    if graph.num_nodes and len(mst) != graph.num_nodes - 1:
        raise ValueError("graph is disconnected; no spanning tree exists")
    return mst


def mst_weight(graph: Graph) -> float:
    return sum(graph.weight(u, v) for u, v in kruskal_mst(graph))


def _canonical(u: Any, v: Any) -> Tuple[Any, Any]:
    try:
        return (u, v) if u < v else (v, u)
    except TypeError:
        return (u, v) if str(u) < str(v) else (v, u)
