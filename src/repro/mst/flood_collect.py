"""Naive MST baselines built on Procedure ``Pipeline`` with singleton
fragments.

* :func:`pipeline_only_mst` — skip the k-dominating-set stage entirely:
  every node is its own fragment and the pipelined convergecast carries
  the per-subtree MST forests to the root.  Θ(n + Diam) rounds (the
  red rule caps each subtree's traffic at n - 1 edges).  This isolates
  the contribution of the paper's Part 1: Fast-MST improves the ``n``
  term to ``sqrt(n) log* n``.

* :func:`flood_collect_mst` — additionally disable the cycle
  elimination, so every edge of the graph is hauled to the root:
  Θ(m + Diam) rounds.  This is the "collect the entire topology"
  strawman of §1.2, made model-compliant (one edge per message).
"""

from __future__ import annotations

from typing import Any, Set, Tuple

from ..graphs.graph import Graph
from ..sim.runner import StagedRun
from .kruskal import _canonical
from .pipeline import run_pipeline


def pipeline_only_mst(
    graph: Graph, root: Any = None
) -> Tuple[Set[Tuple[Any, Any]], StagedRun]:
    """MST via Pipeline over singleton fragments — Θ(n + Diam)."""
    fragment_of = {v: v for v in graph.nodes}
    selected, staged, _network = run_pipeline(graph, fragment_of, root=root)
    return {_canonical(a, b) for a, b in selected}, staged


def flood_collect_mst(
    graph: Graph, root: Any = None
) -> Tuple[Set[Tuple[Any, Any]], StagedRun]:
    """MST by hauling every edge to the root — Θ(m + Diam)."""
    fragment_of = {v: v for v in graph.nodes}
    selected, staged, _network = run_pipeline(
        graph, fragment_of, root=root, eliminate_cycles=False
    )
    return {_canonical(a, b) for a, b in selected}, staged
