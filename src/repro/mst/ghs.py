"""Synchronous GHS-style MST baseline — the `[GHS]` comparator.

Runs the controlled-GHS machinery of
:mod:`repro.core.spanning_forest` with enough phases for the fragments
to swallow the whole graph (``k = n``), producing the full MST.  Phase
``i`` costs ``O(2^i)`` rounds, so the total is ``O(n)`` even on graphs
of small diameter — the behaviour the paper's ``Fast-MST`` beats with
its ``O(sqrt(n) log* n + Diam)`` bound (experiment E11).
"""

from __future__ import annotations

from typing import Any, Set, Tuple

from ..core.spanning_forest import simple_mst_forest
from ..graphs.graph import Graph
from ..sim.metrics import RunMetrics
from .kruskal import _canonical


def ghs_mst(graph: Graph) -> Tuple[Set[Tuple[Any, Any]], RunMetrics]:
    """Compute the MST with uncapped controlled GHS.

    Returns (MST edge set, run metrics).  Raises if the graph is
    disconnected (the process then stalls with several fragments).
    """
    n = graph.num_nodes
    if n == 0:
        return set(), RunMetrics()
    parents, fragments, network = simple_mst_forest(graph, max(n - 1, 0))
    if len(fragments) != 1:
        raise ValueError(
            f"GHS finished with {len(fragments)} fragments; graph "
            f"disconnected?"
        )
    edges = {_canonical(v, p) for v, p in parents.items() if p is not None}
    return edges, network.metrics
