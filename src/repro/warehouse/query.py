"""Cross-sweep aggregation queries with a byte-identity contract.

A query is ``(metric, where, group_by, aggregations)`` over result
rows.  The answer — the ``repro-query/1`` JSON document and the ASCII
table rendered from it — is pinned **byte-identical** whether the rows
come from the sqlite warehouse (:mod:`repro.warehouse.db`) or straight
from raw JSONL sweep stores.  Two rules make that unconditional:

* both sources funnel through the same pure-Python reduction in this
  module — SQL only *narrows* candidate rows, the authoritative
  predicate (:func:`match_where`) is re-applied here, and no aggregate
  is ever computed by sqlite;
* every aggregate is order-insensitive: values are sorted before
  reduction, so ingest order, shard order, and completion order cannot
  leak into a float sum or a quantile.

Grammar (docs/warehouse.md):

* **metric** — a numeric field of a row's ``result`` (``dominators``,
  ``rounds``, ``clusters``, ``n`` …) or of its nested ``metrics``
  (``messages``; ``words`` aliases ``total_words``).  Boolean fields
  (``ok``) are not metrics.
* **where** — equality filters on the provenance fields ``workload``,
  ``spec``, ``family`` (the spec kind before ``:``), ``seed``, ``k``;
  a comma list means membership (``k=2,3``).
* **group_by** — any subset of the same fields; groups are emitted in
  sorted key order.
* **aggregations** — ``count``, ``min``, ``max``, ``sum``, ``mean``
  (rounded to 6 places), and ``pNN`` nearest-rank quantiles
  (``p50``, ``p90``, …).

The same machinery answers **bench** queries (``repro query --bench``)
over perf-history samples: fields ``workload``/``mode``, metric
``best_seconds``.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..batch.store import SweepStore, canonical_line

#: Schema tag on every query answer document.
QUERY_SCHEMA = "repro-query/1"

#: Filter/group fields of a result row (provenance-derived).
RESULT_FIELDS = ("workload", "spec", "family", "seed", "k")

#: Filter/group fields of a bench-history sample.
BENCH_FIELDS = ("workload", "mode")

#: The metric every bench query aggregates.
BENCH_METRIC = "best_seconds"

#: Non-quantile aggregation names.
BASE_AGGS = ("count", "min", "max", "sum", "mean")

#: Default aggregation list when the caller names none.
DEFAULT_AGGS = ("count", "min", "max", "mean", "p50", "p90")


class QueryError(ValueError):
    """A malformed query: unknown field, bad aggregation, bad filter."""


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------
def parse_aggs(text: Optional[str]) -> Tuple[str, ...]:
    """Parse a ``count,mean,p90`` comma list; ``None`` means the default."""
    if not text:
        return DEFAULT_AGGS
    aggs = tuple(part.strip() for part in text.split(",") if part.strip())
    if not aggs:
        raise QueryError(f"bad aggregation list {text!r}: nothing named")
    for agg in aggs:
        if agg in BASE_AGGS:
            continue
        if _quantile_level(agg) is None:
            raise QueryError(
                f"unknown aggregation {agg!r}; available: "
                f"{', '.join(BASE_AGGS)}, pNN (e.g. p50, p90)"
            )
    return aggs


def _quantile_level(agg: str) -> Optional[int]:
    """``"p90"`` -> 90; ``None`` when ``agg`` is not a quantile name."""
    if len(agg) < 2 or agg[0] != "p" or not agg[1:].isdigit():
        return None
    level = int(agg[1:])
    return level if 0 <= level <= 100 else None


def parse_where(
    items: Optional[Iterable[str]], allowed: Sequence[str]
) -> Dict[str, List[str]]:
    """Parse repeated ``field=v1,v2`` filters into ``{field: values}``.

    Values stay strings — matching is string equality against
    ``str(field value)``, the one definition both the SQL narrowing and
    the raw-row reduction share.
    """
    where: Dict[str, List[str]] = {}
    for item in items or ():
        field, sep, text = item.partition("=")
        field = field.strip()
        if not sep or not field:
            raise QueryError(
                f"bad filter {item!r}: expected field=value[,value...]"
            )
        if field not in allowed:
            raise QueryError(
                f"unknown filter field {field!r}; available: "
                f"{', '.join(allowed)}"
            )
        values = [part.strip() for part in text.split(",") if part.strip()]
        if not values:
            raise QueryError(f"bad filter {item!r}: no values")
        merged = where.setdefault(field, [])
        merged.extend(value for value in values if value not in merged)
    return {field: sorted(values) for field, values in where.items()}


def parse_group_by(
    text: Optional[str], allowed: Sequence[str]
) -> Tuple[str, ...]:
    """Parse a ``family,k`` comma list of group fields (may be empty)."""
    if not text:
        return ()
    fields = tuple(part.strip() for part in text.split(",") if part.strip())
    for field in fields:
        if field not in allowed:
            raise QueryError(
                f"unknown group-by field {field!r}; available: "
                f"{', '.join(allowed)}"
            )
    if len(set(fields)) != len(fields):
        raise QueryError(f"duplicate group-by field in {text!r}")
    return fields


# ---------------------------------------------------------------------------
# Row access
# ---------------------------------------------------------------------------
def spec_family(spec: str) -> str:
    """The generator kind of a graph spec: ``tree:n=40`` -> ``tree``."""
    return spec.split(":", 1)[0]


def row_fields(row: Dict[str, Any]) -> Dict[str, Any]:
    """The filter/group fields of one store row (provenance only)."""
    cell = row.get("cell", {})
    spec = str(cell.get("spec", "?"))
    return {
        "workload": str(cell.get("workload", "?")),
        "spec": spec,
        "family": spec_family(spec),
        "seed": cell.get("seed"),
        "k": cell.get("k"),
    }


def extract_metric(row: Dict[str, Any], metric: str) -> Optional[Any]:
    """The numeric value of ``metric`` in one row, or ``None``.

    Quarantined rows (no ``result``) and rows whose workload does not
    record the metric yield ``None`` — the query counts them as
    *skipped* instead of failing.  Booleans are not numbers here.
    """
    result = row.get("result")
    if not isinstance(result, dict):
        return None
    value = result.get(metric)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    metrics = result.get("metrics")
    if isinstance(metrics, dict):
        name = "total_words" if metric == "words" else metric
        value = metrics.get(name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return value
    return None


def match_where(
    fields: Dict[str, Any], where: Dict[str, List[str]]
) -> bool:
    """The one authoritative filter predicate (string equality)."""
    return all(
        str(fields.get(field)) in values for field, values in where.items()
    )


# ---------------------------------------------------------------------------
# Reduction (pure, order-insensitive)
# ---------------------------------------------------------------------------
def quantile(sorted_values: Sequence[Any], level: int) -> Any:
    """Nearest-rank (inclusive) quantile of already-sorted values.

    ``p0`` is the minimum, ``p100`` the maximum; integer inputs stay
    integers (no interpolation), which keeps JSON output types stable.
    """
    count = len(sorted_values)
    if count == 0:
        return None
    rank = -(-level * count // 100)  # ceil(level/100 * count)
    index = max(0, min(count - 1, rank - 1))
    return sorted_values[index]


def reduce_values(values: Iterable[Any], aggs: Sequence[str]) -> Dict[str, Any]:
    """Apply ``aggs`` to ``values``; sorted first, so any input order
    (ingest, shard, completion) produces identical floats."""
    ordered = sorted(values)
    count = len(ordered)
    out: Dict[str, Any] = {}
    for agg in aggs:
        if agg == "count":
            out[agg] = count
        elif count == 0:
            out[agg] = None
        elif agg == "min":
            out[agg] = ordered[0]
        elif agg == "max":
            out[agg] = ordered[-1]
        elif agg == "sum":
            out[agg] = sum(ordered)
        elif agg == "mean":
            out[agg] = round(sum(ordered) / count, 6)
        else:
            out[agg] = quantile(ordered, _quantile_level(agg) or 0)
    return out


def _query_doc(
    records: Iterable[Dict[str, Any]],
    fields_fn: Callable[[Dict[str, Any]], Dict[str, Any]],
    value_fn: Callable[[Dict[str, Any]], Optional[Any]],
    table: str,
    metric: str,
    where: Dict[str, List[str]],
    group_by: Sequence[str],
    aggs: Sequence[str],
) -> Dict[str, Any]:
    matched = 0
    skipped = 0
    grouped: Dict[Tuple[str, ...], Tuple[Dict[str, Any], List[Any]]] = {}
    for record in records:
        fields = fields_fn(record)
        if not match_where(fields, where):
            continue
        matched += 1
        value = value_fn(record)
        if value is None:
            skipped += 1
            continue
        key_fields = {field: fields.get(field) for field in group_by}
        sort_key = tuple(str(key_fields[field]) for field in group_by)
        if sort_key not in grouped:
            grouped[sort_key] = (key_fields, [])
        grouped[sort_key][1].append(value)
    groups = [
        {"key": key_fields, **reduce_values(values, aggs)}
        for _sort, (key_fields, values) in sorted(grouped.items())
    ]
    return {
        "schema": QUERY_SCHEMA,
        "table": table,
        "metric": metric,
        "where": where,
        "group_by": list(group_by),
        "aggregations": list(aggs),
        "rows_matched": matched,
        "rows_skipped": skipped,
        "groups": groups,
    }


def results_query_doc(
    rows: Iterable[Dict[str, Any]],
    metric: str,
    where: Optional[Dict[str, List[str]]] = None,
    group_by: Sequence[str] = (),
    aggs: Sequence[str] = DEFAULT_AGGS,
) -> Dict[str, Any]:
    """The query answer over result rows (warehouse-fetched or raw)."""
    return _query_doc(
        rows,
        row_fields,
        lambda row: extract_metric(row, metric),
        "results",
        metric,
        where or {},
        group_by,
        aggs,
    )


def bench_query_doc(
    samples: Iterable[Dict[str, Any]],
    where: Optional[Dict[str, List[str]]] = None,
    group_by: Sequence[str] = (),
    aggs: Sequence[str] = DEFAULT_AGGS,
) -> Dict[str, Any]:
    """The query answer over bench-history samples.

    A sample is ``{"workload", "mode", "best_seconds"}`` — see
    :func:`bench_samples_from_entries`.
    """
    return _query_doc(
        samples,
        lambda s: {"workload": s.get("workload"), "mode": s.get("mode")},
        lambda s: (
            s.get(BENCH_METRIC)
            if isinstance(s.get(BENCH_METRIC), (int, float))
            and not isinstance(s.get(BENCH_METRIC), bool)
            else None
        ),
        "bench",
        BENCH_METRIC,
        where or {},
        group_by,
        aggs,
    )


def bench_samples_from_entries(
    entries: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Flatten ``repro-perf-history/1`` entries into per-workload samples."""
    samples = []
    for entry in entries:
        mode = str(entry.get("mode", "?"))
        for workload, best in sorted(
            (entry.get("workloads") or {}).items()
        ):
            if isinstance(best, (int, float)) and not isinstance(best, bool):
                samples.append(
                    {"workload": workload, "mode": mode, BENCH_METRIC: best}
                )
    return samples


def query_json(doc: Dict[str, Any]) -> str:
    """The canonical serialization of a query answer (what ``repro
    query --json`` prints) — the byte string the identity contract
    compares."""
    return json.dumps(doc, sort_keys=True, indent=2)


# ---------------------------------------------------------------------------
# Raw-store access (the reduction's JSONL source)
# ---------------------------------------------------------------------------
def load_store_rows(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """The union of rows across stores, in cell-key order.

    Duplicate cells across stores (a merged store next to its shards)
    must agree byte for byte — the same conflict rule the warehouse
    enforces at ingest (:class:`~repro.warehouse.db.WarehouseConflict`
    there, :class:`QueryError` here).  Corruption propagates from
    :meth:`~repro.batch.store.SweepStore.load` untouched.
    """
    merged: Dict[str, Tuple[str, str]] = {}
    for path in paths:
        meta, rows = SweepStore(path).load()
        if meta is None:
            raise QueryError(f"{path}: missing or empty store")
        for key, row in rows.items():
            line = canonical_line(row)
            previous = merged.get(key)
            if previous is not None and previous[0] != line:
                raise QueryError(
                    f"conflicting results for cell {key}: {path} "
                    f"disagrees with {previous[1]}"
                )
            merged[key] = (line, path)
    return [json.loads(merged[key][0]) for key in sorted(merged)]


# ---------------------------------------------------------------------------
# ASCII rendering
# ---------------------------------------------------------------------------
def _format_value(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    return json.dumps(value)


def render_query_table(doc: Dict[str, Any]) -> List[str]:
    """A deterministic ASCII table of a query answer document."""
    where = doc.get("where") or {}
    group_by = doc.get("group_by") or []
    aggs = doc.get("aggregations") or []
    head = (
        f"query {doc.get('metric')} [{doc.get('table')}]: "
        f"{doc.get('rows_matched', 0)} row(s) matched"
    )
    skipped = doc.get("rows_skipped", 0)
    if skipped:
        head += f", {skipped} without the metric"
    lines = [head]
    if where:
        lines.append(
            "where "
            + " ".join(
                f"{field}={','.join(values)}"
                for field, values in sorted(where.items())
            )
        )
    columns = list(group_by) + list(aggs)
    cells = [
        [_format_value(group["key"].get(field)) for field in group_by]
        + [_format_value(group.get(agg)) for agg in aggs]
        for group in doc.get("groups", [])
    ]
    widths = [
        max(len(name), *(len(row[i]) for row in cells)) if cells else len(name)
        for i, name in enumerate(columns)
    ]
    lines.append(
        "  ".join(name.ljust(widths[i]) for i, name in enumerate(columns))
    )
    for row in cells:
        lines.append(
            "  ".join(value.rjust(widths[i]) for i, value in enumerate(row))
        )
    if not cells:
        lines.append("(no matching rows)")
    return lines
