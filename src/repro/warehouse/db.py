"""The sqlite results warehouse: ingest-once storage over SweepStore.

``Warehouse`` turns a pile of JSONL sweep stores (shards, merged
stores, portfolio attempt stores) plus perf-history logs into one
queryable sqlite file, while keeping the JSONL as the source of truth:

* **Provenance-keyed rows.**  Each result row is stored under its
  ``cell_key`` with the canonical row JSON alongside decomposed filter
  columns (workload/spec/family/seed/k).  The stored JSON is exactly
  the finalized store line, so a warehouse answer can always be
  re-derived from — and byte-compared against — the raw JSONL
  (:mod:`repro.warehouse.query` does both sides of that comparison).
* **Idempotent ingest.**  A store is identified by the sha256 of its
  file bytes; ingesting the same bytes twice is a declared no-op that
  changes zero rows.  A *different* store contributing the *same*
  cell confirms it only if the row JSON matches byte for byte
  (shards vs. their merged store); a mismatch raises
  :class:`WarehouseConflict` and rolls the whole store back.
* **Lineage.**  Every ``(store, cell)`` contribution is recorded —
  status ``row`` for a stored result, ``hole`` for a cell the store
  was responsible for but could not supply (partial merges with a
  ``.holes.json`` manifest, incomplete sharded stores ingested with
  ``allow_partial``).  Holes are loud in sqlite just as they are loud
  on disk.
* **One transaction per store.**  Ingest either lands completely or
  not at all; a corrupt store (:class:`~repro.batch.store.StoreCorruption`)
  or a conflict leaves the warehouse untouched.

Portfolio verdicts (``repro portfolio``) and perf-history entries
(``repro report --bench --warehouse``) ingest through the same
hash-keyed idempotency rule.  Schema tag: ``repro-warehouse/1``.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..batch.store import (
    StoreError,
    SweepStore,
    canonical_line,
    expected_cell_keys,
)
from .query import spec_family

#: Schema tag recorded in ``warehouse_meta`` and checked on open.
WAREHOUSE_SCHEMA = "repro-warehouse/1"

#: Where ``repro ingest`` / ``repro query`` look by default.
DEFAULT_WAREHOUSE = "warehouse.sqlite"


class WarehouseError(StoreError):
    """The warehouse file is unusable (wrong schema, unreadable)."""


class WarehouseConflict(WarehouseError):
    """Two stores disagree about a cell's result bytes.

    The sweep fabric's byte-identity contract means a cell's finalized
    row is the same everywhere; a mismatch at ingest is data loss
    waiting to happen, so it rolls the store back instead of silently
    keeping either side.
    """


class IncompleteStoreError(StoreError):
    """A store is missing expected cells and ``allow_partial`` is off.

    The CLI maps this to exit code 3 (incomplete input), matching
    ``repro sweep`` / ``repro merge-stores``.
    """


_TABLES = """
CREATE TABLE IF NOT EXISTS warehouse_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS stores (
    store_id      INTEGER PRIMARY KEY,
    path          TEXT NOT NULL,
    store_hash    TEXT NOT NULL UNIQUE,
    meta_hash     TEXT NOT NULL,
    workload      TEXT,
    shard         TEXT,
    cells         INTEGER NOT NULL,
    ingested_rows INTEGER NOT NULL,
    holes         INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS rows (
    cell_key    TEXT PRIMARY KEY,
    workload    TEXT NOT NULL,
    spec        TEXT NOT NULL,
    family      TEXT NOT NULL,
    seed        INTEGER,
    k           INTEGER,
    quarantined INTEGER NOT NULL,
    row_json    TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS rows_by_slice ON rows (workload, family, k);
CREATE TABLE IF NOT EXISTS lineage (
    store_id INTEGER NOT NULL REFERENCES stores (store_id),
    cell_key TEXT NOT NULL,
    status   TEXT NOT NULL CHECK (status IN ('row', 'hole')),
    PRIMARY KEY (store_id, cell_key)
);
CREATE TABLE IF NOT EXISTS portfolios (
    verdict_hash TEXT PRIMARY KEY,
    workload     TEXT NOT NULL,
    spec         TEXT NOT NULL,
    k            INTEGER,
    reduce       TEXT NOT NULL,
    best_seed    INTEGER,
    best_value   REAL,
    attempts     INTEGER NOT NULL,
    quarantined  INTEGER NOT NULL,
    verdict_json TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS bench_entries (
    entry_hash    TEXT PRIMARY KEY,
    mode          TEXT,
    recorded_unix REAL,
    dense_speedup REAL,
    serve_qps     REAL,
    entry_json    TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS bench_samples (
    entry_hash    TEXT NOT NULL REFERENCES bench_entries (entry_hash),
    workload      TEXT NOT NULL,
    best_seconds  REAL NOT NULL,
    mode          TEXT,
    recorded_unix REAL,
    PRIMARY KEY (entry_hash, workload)
);
"""


@dataclass
class IngestReport:
    """What one ``ingest_store`` call did (CLI-printable)."""

    path: str
    store_hash: str
    noop: bool = False
    added: int = 0
    confirmed: int = 0
    holes: List[str] = field(default_factory=list)
    verdict_added: bool = False

    def describe(self) -> str:
        digest = self.store_hash[:8]
        if self.noop:
            return (
                f"no-op {self.path}: already ingested ({digest}), "
                f"0 row(s) changed"
            )
        text = (
            f"ingested {self.path}: +{self.added} row(s), "
            f"{self.confirmed} confirmed ({digest})"
        )
        if self.holes:
            text += f" PARTIAL: {len(self.holes)} hole(s) recorded"
        if self.verdict_added:
            text += " + portfolio verdict"
        return text


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class Warehouse:
    """A sqlite results warehouse (context manager; commits per store)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._db = sqlite3.connect(path)
        self._db.executescript(_TABLES)
        row = self._db.execute(
            "SELECT value FROM warehouse_meta WHERE key = 'schema'"
        ).fetchone()
        if row is None:
            self._db.execute(
                "INSERT INTO warehouse_meta (key, value) VALUES (?, ?)",
                ("schema", WAREHOUSE_SCHEMA),
            )
            self._db.commit()
        elif row[0] != WAREHOUSE_SCHEMA:
            self._db.close()
            raise WarehouseError(
                f"{path}: warehouse schema {row[0]!r} is not "
                f"{WAREHOUSE_SCHEMA!r}"
            )

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- ingest: sweep stores ---------------------------------------------
    def ingest_store(
        self, path: str, allow_partial: bool = False
    ) -> IngestReport:
        """Load one JSONL store into the warehouse, atomically.

        Raises :class:`IncompleteStoreError` when the store is missing
        cells it is responsible for (its grid slice, per the meta's
        ``shard`` field) unless ``allow_partial`` — in which case the
        missing cells are recorded as lineage holes instead.  A
        ``<path>.holes.json`` manifest (written by partial
        ``merge-stores``) contributes its ``missing_cells`` the same
        way.  Corruption from :meth:`SweepStore.load` propagates —
        ``allow_partial`` forgives *missing* data, never *damaged*
        data (``repro repair-store`` exists for that).
        """
        try:
            store_hash = _sha256_file(path)
        except OSError as exc:
            raise WarehouseError(f"{path}: unreadable store: {exc}") from exc
        report = IngestReport(path=path, store_hash=store_hash)
        known = self._db.execute(
            "SELECT store_id FROM stores WHERE store_hash = ?", (store_hash,)
        ).fetchone()
        if known is not None:
            report.noop = True
            return report

        meta, rows = SweepStore(path).load()
        if meta is None:
            raise WarehouseError(f"{path}: missing or empty store")
        missing = [
            key for key in expected_cell_keys(meta) if key not in rows
        ]
        for key in self._manifest_holes(path):
            if key not in rows and key not in missing:
                missing.append(key)
        missing.sort()
        if missing and not allow_partial:
            raise IncompleteStoreError(
                f"{path}: {len(missing)} expected cell(s) missing "
                f"(first: {missing[0]}); re-run the sweep, merge with "
                f"--allow-partial, or ingest with --allow-partial"
            )
        report.holes = missing

        try:
            with self._db:  # one transaction per store
                cursor = self._db.execute(
                    "INSERT INTO stores (path, store_hash, meta_hash, "
                    "workload, shard, cells, ingested_rows, holes) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        path,
                        store_hash,
                        _sha256_text(canonical_line(meta)),
                        meta.get("workload"),
                        meta.get("shard"),
                        len(rows),
                        0,  # patched below once conflicts are ruled out
                        len(missing),
                    ),
                )
                store_id = cursor.lastrowid
                for key in sorted(rows):
                    if self._upsert_row(key, rows[key], path):
                        report.added += 1
                    else:
                        report.confirmed += 1
                    self._db.execute(
                        "INSERT INTO lineage (store_id, cell_key, status) "
                        "VALUES (?, ?, 'row')",
                        (store_id, key),
                    )
                for key in missing:
                    self._db.execute(
                        "INSERT INTO lineage (store_id, cell_key, status) "
                        "VALUES (?, ?, 'hole')",
                        (store_id, key),
                    )
                self._db.execute(
                    "UPDATE stores SET ingested_rows = ? WHERE store_id = ?",
                    (report.added, store_id),
                )
        except sqlite3.IntegrityError as exc:  # pragma: no cover - races
            raise WarehouseError(f"{path}: ingest failed: {exc}") from exc

        verdict_path = path + ".verdict.json"
        if os.path.exists(verdict_path):
            report.verdict_added = self.ingest_verdict_file(verdict_path)
        return report

    def _manifest_holes(self, path: str) -> List[str]:
        """``missing_cells`` from a partial merge's holes manifest."""
        holes_path = path + ".holes.json"
        if not os.path.exists(holes_path):
            return []
        try:
            with open(holes_path) as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise WarehouseError(
                f"{holes_path}: unreadable holes manifest: {exc}"
            ) from exc
        cells = manifest.get("missing_cells", [])
        return [str(cell) for cell in cells]

    def _upsert_row(
        self, key: str, row: Dict[str, Any], source: str
    ) -> bool:
        """Insert a new cell row or confirm an identical existing one.

        Returns True when the row was new.  Raises
        :class:`WarehouseConflict` (rolling back the open transaction)
        when the cell exists with different bytes.
        """
        line = canonical_line(row)
        existing = self._db.execute(
            "SELECT row_json FROM rows WHERE cell_key = ?", (key,)
        ).fetchone()
        if existing is not None:
            if existing[0] != line:
                raise WarehouseConflict(
                    f"{source}: cell {key} conflicts with previously "
                    f"ingested bytes; the fabric's byte-identity contract "
                    f"is broken (did a verify flag or workload version "
                    f"change between sweeps?)"
                )
            return False
        cell = row.get("cell", {})
        spec = str(cell.get("spec", "?"))
        self._db.execute(
            "INSERT INTO rows (cell_key, workload, spec, family, seed, k, "
            "quarantined, row_json) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                key,
                str(cell.get("workload", "?")),
                spec,
                spec_family(spec),
                cell.get("seed"),
                cell.get("k"),
                1 if "error" in row else 0,
                line,
            ),
        )
        return True

    # -- ingest: portfolio verdicts ---------------------------------------
    def ingest_verdict(self, verdict: Dict[str, Any]) -> bool:
        """Record one portfolio verdict; hash-keyed no-op on repeats."""
        line = canonical_line(verdict)
        verdict_hash = _sha256_text(line)
        with self._db:
            known = self._db.execute(
                "SELECT 1 FROM portfolios WHERE verdict_hash = ?",
                (verdict_hash,),
            ).fetchone()
            if known is not None:
                return False
            self._db.execute(
                "INSERT INTO portfolios (verdict_hash, workload, spec, k, "
                "reduce, best_seed, best_value, attempts, quarantined, "
                "verdict_json) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    verdict_hash,
                    str(verdict.get("workload", "?")),
                    str(verdict.get("spec", "?")),
                    verdict.get("k"),
                    str(verdict.get("reduce", "?")),
                    verdict.get("best_seed"),
                    verdict.get("best_value"),
                    int(verdict.get("attempts", 0)),
                    int(verdict.get("quarantined", 0)),
                    line,
                ),
            )
        return True

    def ingest_verdict_file(self, path: str) -> bool:
        try:
            with open(path) as handle:
                verdict = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise WarehouseError(
                f"{path}: unreadable verdict sidecar: {exc}"
            ) from exc
        if not isinstance(verdict, dict):
            raise WarehouseError(f"{path}: verdict is not an object")
        return self.ingest_verdict(verdict)

    # -- ingest: perf history ---------------------------------------------
    def ingest_history(
        self, entries: Iterable[Dict[str, Any]]
    ) -> Tuple[int, int]:
        """Record perf-history entries; returns ``(added, skipped)``.

        Each entry is keyed by the sha256 of its canonical line, so
        re-ingesting a growing BENCH_history.jsonl only adds the new
        tail.
        """
        added = skipped = 0
        with self._db:
            for entry in entries:
                line = canonical_line(entry)
                entry_hash = _sha256_text(line)
                known = self._db.execute(
                    "SELECT 1 FROM bench_entries WHERE entry_hash = ?",
                    (entry_hash,),
                ).fetchone()
                if known is not None:
                    skipped += 1
                    continue
                self._db.execute(
                    "INSERT INTO bench_entries (entry_hash, mode, "
                    "recorded_unix, dense_speedup, serve_qps, entry_json) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        entry_hash,
                        entry.get("mode"),
                        entry.get("recorded_unix"),
                        entry.get("dense_speedup"),
                        entry.get("serve_qps"),
                        line,
                    ),
                )
                for workload, best in sorted(
                    (entry.get("workloads") or {}).items()
                ):
                    if isinstance(best, bool) or not isinstance(
                        best, (int, float)
                    ):
                        continue
                    self._db.execute(
                        "INSERT INTO bench_samples (entry_hash, workload, "
                        "best_seconds, mode, recorded_unix) "
                        "VALUES (?, ?, ?, ?, ?)",
                        (
                            entry_hash,
                            workload,
                            best,
                            entry.get("mode"),
                            entry.get("recorded_unix"),
                        ),
                    )
                added += 1
        return added, skipped

    # -- reading -----------------------------------------------------------
    def row_count(self) -> int:
        return self._db.execute("SELECT COUNT(*) FROM rows").fetchone()[0]

    def fetch_rows(
        self, where: Optional[Dict[str, List[str]]] = None
    ) -> List[Dict[str, Any]]:
        """Result rows (parsed row JSON) in cell-key order.

        ``where`` only *narrows* via indexed columns; the caller
        (:mod:`repro.warehouse.query`) re-applies the authoritative
        predicate, so SQL/Python matching differences (``seed="02"``)
        cannot change an answer.
        """
        sql = "SELECT row_json FROM rows"
        clauses: List[str] = []
        params: List[str] = []
        for column in ("workload", "spec", "family", "seed", "k"):
            values = (where or {}).get(column)
            if values:
                marks = ", ".join("?" for _ in values)
                clauses.append(
                    f"CAST({column} AS TEXT) IN ({marks})"
                )
                params.extend(values)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY cell_key"
        return [
            json.loads(row[0])
            for row in self._db.execute(sql, params).fetchall()
        ]

    def fetch_bench_samples(self) -> List[Dict[str, Any]]:
        """Per-workload bench samples in deterministic order."""
        return [
            {"workload": row[0], "mode": row[1], "best_seconds": row[2]}
            for row in self._db.execute(
                "SELECT workload, mode, best_seconds FROM bench_samples "
                "ORDER BY entry_hash, workload"
            ).fetchall()
        ]

    def fetch_lineage(self, cell_key: str) -> List[Tuple[str, str]]:
        """``(store path, status)`` contributions for one cell."""
        return [
            (row[0], row[1])
            for row in self._db.execute(
                "SELECT stores.path, lineage.status FROM lineage "
                "JOIN stores USING (store_id) WHERE lineage.cell_key = ? "
                "ORDER BY stores.store_id",
                (cell_key,),
            ).fetchall()
        ]

    def stores(self) -> List[Dict[str, Any]]:
        """Every ingested store's ledger row, ingest order."""
        return [
            {
                "store_id": row[0],
                "path": row[1],
                "store_hash": row[2],
                "meta_hash": row[3],
                "workload": row[4],
                "shard": row[5],
                "cells": row[6],
                "ingested_rows": row[7],
                "holes": row[8],
            }
            for row in self._db.execute(
                "SELECT store_id, path, store_hash, meta_hash, workload, "
                "shard, cells, ingested_rows, holes FROM stores "
                "ORDER BY store_id"
            ).fetchall()
        ]
