"""repro.warehouse — a queryable sqlite layer over the sweep fabric.

The sweep fabric's JSONL stores are the source of truth; the warehouse
is the *index*: ``repro ingest`` loads finalized (or declared-partial)
stores into one sqlite file with provenance-keyed rows and per-store
lineage, and ``repro query`` answers cross-sweep aggregations whose
``--json`` documents are byte-identical to a pure-Python reduction
over the raw JSONL rows (docs/warehouse.md).

Stdlib only (``sqlite3``) — no new dependencies.
"""

from .db import (
    DEFAULT_WAREHOUSE,
    IncompleteStoreError,
    IngestReport,
    Warehouse,
    WAREHOUSE_SCHEMA,
    WarehouseConflict,
    WarehouseError,
)
from .query import (
    BENCH_FIELDS,
    BENCH_METRIC,
    DEFAULT_AGGS,
    QUERY_SCHEMA,
    QueryError,
    RESULT_FIELDS,
    bench_query_doc,
    bench_samples_from_entries,
    extract_metric,
    load_store_rows,
    parse_aggs,
    parse_group_by,
    parse_where,
    quantile,
    query_json,
    reduce_values,
    render_query_table,
    results_query_doc,
    row_fields,
    spec_family,
)

__all__ = [
    "BENCH_FIELDS",
    "BENCH_METRIC",
    "DEFAULT_AGGS",
    "DEFAULT_WAREHOUSE",
    "IncompleteStoreError",
    "IngestReport",
    "QUERY_SCHEMA",
    "QueryError",
    "RESULT_FIELDS",
    "WAREHOUSE_SCHEMA",
    "Warehouse",
    "WarehouseConflict",
    "WarehouseError",
    "bench_query_doc",
    "bench_samples_from_entries",
    "extract_metric",
    "load_store_rows",
    "parse_aggs",
    "parse_group_by",
    "parse_where",
    "quantile",
    "query_json",
    "reduce_values",
    "render_query_table",
    "results_query_doc",
    "row_fields",
    "spec_family",
]
