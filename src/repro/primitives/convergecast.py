"""Tree convergecast: aggregate values from the leaves to the root.

The building block of the paper's Procedure ``Census`` (§2.2): each
node combines its children's contributions with its own and forwards
the result to its parent.  Cost: ``depth`` rounds (leaves start
immediately; a node fires as soon as all children have reported).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim.model import Envelope
from ..sim.network import Network
from ..sim.program import Context, NodeProgram

#: Combiner: (own local value, list of child aggregates) -> aggregate.
Combiner = Callable[[Any, List[Any]], Any]


def sum_combiner(own: Any, child_values: List[Any]) -> Any:
    return own + sum(child_values)


def max_combiner(own: Any, child_values: List[Any]) -> Any:
    return max([own] + child_values)


def min_combiner(own: Any, child_values: List[Any]) -> Any:
    return min([own] + child_values)


class ConvergecastProgram(NodeProgram):
    """Aggregate ``local_value`` over a known tree toward the root.

    Outputs at every node: ``aggregate`` (over its own subtree); the
    root's aggregate is the global answer.
    """

    # Message-driven: leaves fire at start, inner nodes fire on the
    # arrival of their last child's aggregate.
    TICK_EVERY_ROUND = False

    def __init__(
        self,
        ctx: Context,
        root: Any,
        parent_of: Dict[Any, Optional[Any]],
        local_value: Any,
        combiner: Combiner = sum_combiner,
    ):
        super().__init__(ctx)
        self.is_root = ctx.node == root
        self.parent = parent_of.get(ctx.node)
        self.children = tuple(
            nb for nb in ctx.neighbors if parent_of.get(nb) == ctx.node
        )
        self.local_value = local_value
        self.combiner = combiner
        self._child_values: List[Any] = []

    def _maybe_fire(self) -> None:
        if len(self._child_values) < len(self.children):
            return
        aggregate = self.combiner(self.local_value, self._child_values)
        self.output["aggregate"] = aggregate
        if not self.is_root:
            self.send(self.parent, "CC", aggregate)
        self.halt()

    def on_start(self) -> None:
        self._maybe_fire()

    def on_round(self, inbox: List[Envelope]) -> None:
        for envelope in inbox:
            if envelope.tag() == "CC":
                self._child_values.append(envelope.payload[1])
        self._maybe_fire()


#: Built-in combiners the dense backend can express as scatter-reduces.
#: Custom callables always run on the reference engine.
_DENSE_REDUCES = {}


def tree_convergecast(
    graph,
    root: Any,
    parent_of: Dict[Any, Optional[Any]],
    local_values: Dict[Any, Any],
    combiner: Combiner = sum_combiner,
    word_limit: int = 8,
    backend: str = "reference",
) -> Tuple[Any, "Network"]:
    """Run a convergecast; return (root aggregate, network).

    ``backend="dense"`` vectorizes the built-in ``sum``/``max``/``min``
    combiners over numeric values as per-height scatter-reduces; custom
    combiners, non-numeric values, and float sums (whose result depends
    on arrival order) fall back to the reference engine.
    """
    if backend == "dense":
        from ..sim.dense import (
            dense_convergecast,
            plan_convergecast,
            require_numpy,
        )

        require_numpy()
        reduce_kind = _DENSE_REDUCES.get(combiner)
        if reduce_kind is not None:
            plan = plan_convergecast(
                graph, root, parent_of, local_values, reduce_kind,
                word_limit,
            )
            if plan is not None:
                return dense_convergecast(graph, root, plan)
    elif backend != "reference":
        raise ValueError(f"unknown backend {backend!r}")
    network = Network(graph, word_limit=word_limit)
    network.run(
        lambda ctx: ConvergecastProgram(
            ctx, root, parent_of, local_values[ctx.node], combiner
        )
    )
    return network.programs[root].output["aggregate"], network


_DENSE_REDUCES[sum_combiner] = "sum"
_DENSE_REDUCES[max_combiner] = "max"
_DENSE_REDUCES[min_combiner] = "min"
