"""Broadcast-and-echo over a known tree, with optional hop limit.

The paper uses this pattern twice:

* Procedure ``Initialize`` step 3 learns the tree depth by a full
  broadcast-and-echo;
* Procedure ``SimpleMST`` performs "a process of 'broadcast and echo'
  *to depth k + 1* over the tree, namely, using a hop counter in the
  broadcast message" to test whether a fragment's depth exceeds a
  threshold (§4.2).

:class:`HopLimitedEchoProgram` implements the hop-limited variant: the
root learns (a) whether the tree extends beyond the hop limit and
(b) the aggregate of a value over the explored part.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..sim.model import Envelope
from ..sim.network import Network
from ..sim.program import Context, NodeProgram
from .convergecast import Combiner, sum_combiner


class HopLimitedEchoProgram(NodeProgram):
    """Broadcast-and-echo to a bounded depth over a known tree.

    The root sends a probe with a hop counter; a node receiving the
    probe with counter 0 while having children reports "too deep".
    Echoes carry (aggregate, too_deep) pairs upward.  Root outputs
    ``aggregate`` (over the explored region) and ``too_deep``.
    """

    # Message-driven: probes and echoes both fire on receipt; nodes
    # beyond the probe horizon hear nothing and correctly do nothing.
    TICK_EVERY_ROUND = False

    def __init__(
        self,
        ctx: Context,
        root: Any,
        parent_of: Dict[Any, Optional[Any]],
        hop_limit: int,
        local_value: Any = 1,
        combiner: Combiner = sum_combiner,
    ):
        super().__init__(ctx)
        self.is_root = ctx.node == root
        self.parent = parent_of.get(ctx.node)
        self.children = tuple(
            nb for nb in ctx.neighbors if parent_of.get(nb) == ctx.node
        )
        self.hop_limit = hop_limit
        self.local_value = local_value
        self.combiner = combiner
        self._expected_echoes = 0
        self._child_values: List[Any] = []
        self._too_deep = False

    def _probe_children(self, hops_left: int) -> None:
        if self.children and hops_left == 0:
            # The subtree continues below the probe horizon.
            self._too_deep = True
            self._fire()
            return
        self._expected_echoes = len(self.children)
        for child in self.children:
            self.send(child, "PROBE", hops_left - 1)
        if self._expected_echoes == 0:
            self._fire()

    def _fire(self) -> None:
        aggregate = self.combiner(self.local_value, self._child_values)
        self.output["aggregate"] = aggregate
        self.output["too_deep"] = self._too_deep
        if not self.is_root:
            self.send(self.parent, "ECHO", aggregate, self._too_deep)
        self.halt()

    def on_start(self) -> None:
        if self.is_root:
            self._probe_children(self.hop_limit)

    def on_round(self, inbox: List[Envelope]) -> None:
        for envelope in inbox:
            tag = envelope.tag()
            if tag == "PROBE":
                self._probe_children(envelope.payload[1])
            elif tag == "ECHO":
                self._child_values.append(envelope.payload[1])
                if envelope.payload[2]:
                    self._too_deep = True
                self._expected_echoes -= 1
                if self._expected_echoes == 0:
                    self._fire()


def hop_limited_echo(
    graph,
    root: Any,
    parent_of: Dict[Any, Optional[Any]],
    hop_limit: int,
    local_values: Optional[Dict[Any, Any]] = None,
    combiner: Combiner = sum_combiner,
    word_limit: int = 8,
) -> Tuple[Any, bool, "Network"]:
    """Run a hop-limited broadcast-and-echo from ``root``.

    Returns (aggregate over the explored region, too_deep flag, network).
    """
    network = Network(graph, word_limit=word_limit)
    # Nodes beyond the probe horizon never hear anything and so never
    # halt; the run is over once the root has its answer.
    network.run(
        lambda ctx: HopLimitedEchoProgram(
            ctx,
            root,
            parent_of,
            hop_limit,
            1 if local_values is None else local_values[ctx.node],
            combiner,
        ),
        until=lambda net: net.programs[root].halted,
    )
    root_output = network.programs[root].output
    return root_output["aggregate"], root_output["too_deep"], network
