"""Flooding: propagate a value to every node without a tree.

Each node forwards the first copy it receives to all other neighbours.
Cost: eccentricity of the source.  Used as a baseline primitive and in
tests of the simulator's delivery semantics.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..sim.model import Envelope
from ..sim.network import Network
from ..sim.program import Context, NodeProgram


class FloodProgram(NodeProgram):
    """Flood ``value`` from ``source``; output ``value`` and ``hops``."""

    # Message-driven: a node acts exactly once, on first receipt.
    TICK_EVERY_ROUND = False

    def __init__(self, ctx: Context, source: Any, value: Any = None):
        super().__init__(ctx)
        self.is_source = ctx.node == source
        self.value = value if self.is_source else None

    def on_start(self) -> None:
        if self.is_source:
            self.output["value"] = self.value
            self.output["hops"] = 0
            self.broadcast("FLOOD", self.value, 1)
            self.halt()

    def on_round(self, inbox: List[Envelope]) -> None:
        for envelope in inbox:
            if envelope.tag() == "FLOOD":
                _tag, value, hops = envelope.payload
                self.output["value"] = value
                self.output["hops"] = hops
                for neighbor in self.neighbors:
                    if neighbor != envelope.sender:
                        self.send(neighbor, "FLOOD", value, hops + 1)
                self.halt()
                return


def flood(
    graph,
    source: Any,
    value: Any,
    word_limit: int = 8,
    backend: str = "reference",
    faults: Any = None,
) -> Tuple[Dict[Any, Any], "Network"]:
    """Flood ``value`` from ``source``; return (value map, network).

    ``backend="dense"`` runs the vectorized kernel when it can
    reproduce the reference execution exactly (connected graph, payload
    within the word limit, no fault plan) and silently falls back to
    the reference engine otherwise; it raises
    :class:`~repro.sim.dense.DenseUnavailable` only when numpy itself
    is missing.
    """
    if backend == "dense":
        from ..sim.dense import dense_flood, plan_flood, require_numpy

        require_numpy()
        if faults is None:
            plan = plan_flood(graph, source, value, word_limit)
            if plan is not None:
                run = dense_flood(graph, source, value, plan)
                return run.output_field("value"), run
    elif backend != "reference":
        raise ValueError(f"unknown backend {backend!r}")
    network = Network(graph, word_limit=word_limit, faults=faults)
    network.run(lambda ctx: FloodProgram(ctx, source, value))
    return network.output_field("value"), network
