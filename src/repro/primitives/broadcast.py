"""Tree broadcast: push a value from the root down a known tree.

Used once a tree structure (parents/children) has been established by a
previous stage.  Cost: ``depth`` rounds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..sim.model import Envelope
from ..sim.network import Network
from ..sim.program import Context, NodeProgram


class BroadcastProgram(NodeProgram):
    """Broadcast ``value`` from ``root`` over a known tree.

    ``parent_of`` maps node -> parent (None at the root).  Output:
    ``value`` at every node.
    """

    # Message-driven: a node forwards once, on receipt from its parent.
    TICK_EVERY_ROUND = False

    def __init__(
        self,
        ctx: Context,
        root: Any,
        parent_of: Dict[Any, Optional[Any]],
        value: Any = None,
    ):
        super().__init__(ctx)
        self.is_root = ctx.node == root
        self.children = tuple(
            nb for nb in ctx.neighbors if parent_of.get(nb) == ctx.node
        )
        self.value = value if self.is_root else None

    def _forward(self) -> None:
        for child in self.children:
            self.send(child, "BC", self.value)
        self.output["value"] = self.value
        self.halt()

    def on_start(self) -> None:
        if self.is_root:
            self._forward()

    def on_round(self, inbox: List[Envelope]) -> None:
        for envelope in inbox:
            if envelope.tag() == "BC":
                self.value = envelope.payload[1]
                self._forward()
                return


def tree_broadcast(
    graph,
    root: Any,
    parent_of: Dict[Any, Optional[Any]],
    value: Any,
    word_limit: int = 8,
) -> Tuple[Dict[Any, Any], "Network"]:
    """Run :class:`BroadcastProgram`; return (values per node, network)."""
    network = Network(graph, word_limit=word_limit)
    network.run(lambda ctx: BroadcastProgram(ctx, root, parent_of, value))
    return network.output_field("value"), network
