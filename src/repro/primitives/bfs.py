"""Distributed BFS tree construction with full termination detection.

This is the engine of the paper's Procedure ``Initialize`` (Fig. 1):

1. a BFS wave from the root labels every node with its distance
   ``Depth(v)``;
2. an echo wave reports the maximum depth ``M`` back to the root;
3. the root broadcasts ``M`` down the tree.

Because execution is synchronous, when a node receives the ``M``
broadcast at round ``r`` it knows the broadcast started at
``r - Depth(v)`` and hence that *every* node will have received it by
round ``t1 = r - Depth(v) + M + 1`` — the paper's "at this point every
node can calculate the time t1" (proof of Lemma 2.3).  Subclasses (for
example :class:`repro.core.diam_dom.DiamDOMProgram`) override
:meth:`on_initialized` to continue at that common round.

The wave protocol: on adopting depth ``d`` a node replies ``ACCEPT`` to
its chosen parent (smallest id among same-round offers), ``REJECT`` to
other offerers, and forwards the wave to all remaining neighbours.  A
node that has forwarded and received a response from every neighbour
and an ``ECHO`` from every accepted child echoes the maximum subtree
depth to its parent.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..sim.model import Envelope
from ..sim.network import Network
from ..sim.program import Context, NodeProgram


class BFSTreeProgram(NodeProgram):
    """BFS tree + depth labels + tree depth ``M``, from a given root.

    Outputs: ``parent``, ``depth``, ``children``, ``tree_depth`` (M),
    ``t1`` (first round strictly after global completion).
    """

    # Message-driven: every transition reacts to an inbox message.  The
    # one timed action — a just-adopted node's deferred echo, whose
    # channel to the parent is occupied by this round's ACCEPT — is
    # scheduled with an explicit wakeup in on_round.  (DiamDOMProgram
    # reinstates every-round ticking: its censuses fire on round
    # numbers, not messages.)
    TICK_EVERY_ROUND = False

    def __init__(self, ctx: Context, root: Any):
        super().__init__(ctx)
        self.root = root
        self.is_root = ctx.node == root
        self.parent: Optional[Any] = None
        self.depth: Optional[int] = None
        self.children: Set[Any] = set()
        self._expecting_responses = 0
        self._echoes_received = 0
        self._echoed = False
        self._subtree_max_depth = 0
        self.tree_depth: Optional[int] = None
        self.t1: Optional[int] = None

    # -- wave ----------------------------------------------------------------
    def on_start(self) -> None:
        if self.is_root:
            self.depth = 0
            self._subtree_max_depth = 0
            self._expecting_responses = len(self.neighbors)
            for neighbor in self.neighbors:
                self.send(neighbor, "WAVE", 1)
            self._maybe_echo()

    def on_round(self, inbox: List[Envelope]) -> None:
        just_adopted = False
        offers = [e for e in inbox if e.tag() == "WAVE"]
        if self.depth is None and offers:
            self._adopt(offers)
            # The ACCEPT to the parent occupies this round's channel; a
            # leaf's ECHO to the same parent must wait for the next round
            # (one message per edge per direction per round) — which may
            # deliver us nothing, so ask the scheduler for it explicitly.
            just_adopted = True
            self.request_wakeup()
        elif offers:
            for envelope in offers:
                self.send(envelope.sender, "REJECT")
        for envelope in inbox:
            tag = envelope.tag()
            if tag == "ACCEPT":
                self.children.add(envelope.sender)
                self._expecting_responses -= 1
            elif tag == "REJECT":
                self._expecting_responses -= 1
            elif tag == "ECHO":
                self._echoes_received += 1
                self._subtree_max_depth = max(
                    self._subtree_max_depth, envelope.payload[1]
                )
            elif tag == "MFIN":
                self._handle_mfin(envelope)
        if self.depth is not None and not self._echoed and not just_adopted:
            self._maybe_echo()

    def _adopt(self, offers: List[Envelope]) -> None:
        offers.sort(key=lambda e: str(e.sender))
        chosen = offers[0]
        self.parent = chosen.sender
        self.depth = chosen.payload[1]
        self._subtree_max_depth = self.depth
        self.send(self.parent, "ACCEPT")
        for envelope in offers[1:]:
            self.send(envelope.sender, "REJECT")
        others = [
            nb
            for nb in self.neighbors
            if nb != self.parent and nb not in {e.sender for e in offers}
        ]
        self._expecting_responses = len(others)
        for neighbor in others:
            self.send(neighbor, "WAVE", self.depth + 1)

    # -- echo ------------------------------------------------------------------
    def _maybe_echo(self) -> None:
        if self._expecting_responses > 0:
            return
        if self._echoes_received < len(self.children):
            return
        self._echoed = True
        if self.is_root:
            self.tree_depth = self._subtree_max_depth
            self._broadcast_m()
        else:
            self.send(self.parent, "ECHO", self._subtree_max_depth)

    # -- M broadcast -------------------------------------------------------------
    def _broadcast_m(self) -> None:
        broadcast_start = self.round
        self.t1 = broadcast_start + self.tree_depth + 1
        for child in sorted(self.children, key=str):
            self.send(child, "MFIN", self.tree_depth)
        self._finish()

    def _handle_mfin(self, envelope: Envelope) -> None:
        self.tree_depth = envelope.payload[1]
        broadcast_start = self.round - self.depth
        self.t1 = broadcast_start + self.tree_depth + 1
        for child in sorted(self.children, key=str):
            self.send(child, "MFIN", self.tree_depth)
        self._finish()

    def _finish(self) -> None:
        self.output["parent"] = self.parent
        self.output["depth"] = self.depth
        self.output["children"] = tuple(sorted(self.children, key=str))
        self.output["tree_depth"] = self.tree_depth
        self.output["t1"] = self.t1
        self.on_initialized()

    # -- extension hook -------------------------------------------------------
    def on_initialized(self) -> None:
        """Called once ``M`` and ``t1`` are known; default: halt."""
        self.halt()


def build_bfs_tree(
    graph,
    root: Any,
    word_limit: int = 8,
    backend: str = "reference",
    faults: Any = None,
) -> Tuple[Dict[Any, Optional[Any]], Dict[Any, int], "Network"]:
    """Run the distributed BFS; return (parent map, depth map, network).

    ``backend="dense"`` computes the identical tree, outputs, round
    count, and metrics with array kernels.  The dense BFS has no event
    replay, so it defers to the reference engine whenever an
    observation session is active (or a fault plan is installed) —
    trace consumers always see genuine engine events.
    """
    if backend == "dense":
        from ..obs.session import current_observation
        from ..sim.dense import dense_bfs_tree, plan_bfs, require_numpy

        require_numpy()
        if faults is None and current_observation() is None:
            plan = plan_bfs(graph, root, word_limit)
            if plan is not None:
                run = dense_bfs_tree(graph, root, plan)
                return run.bfs_parents, run.bfs_depths, run
    elif backend != "reference":
        raise ValueError(f"unknown backend {backend!r}")
    network = Network(graph, word_limit=word_limit, faults=faults)
    network.run(lambda ctx: BFSTreeProgram(ctx, root))
    parents = network.output_field("parent")
    depths = network.output_field("depth")
    return parents, depths, network
