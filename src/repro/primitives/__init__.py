"""Distributed building blocks: BFS, broadcast, echo, convergecast, flood."""

from .bfs import BFSTreeProgram, build_bfs_tree
from .broadcast import BroadcastProgram, tree_broadcast
from .convergecast import (
    ConvergecastProgram,
    max_combiner,
    min_combiner,
    sum_combiner,
    tree_convergecast,
)
from .echo import HopLimitedEchoProgram, hop_limited_echo
from .flooding import FloodProgram, flood

__all__ = [
    "BFSTreeProgram",
    "BroadcastProgram",
    "ConvergecastProgram",
    "FloodProgram",
    "HopLimitedEchoProgram",
    "build_bfs_tree",
    "flood",
    "hop_limited_echo",
    "max_combiner",
    "min_combiner",
    "sum_combiner",
    "tree_broadcast",
    "tree_convergecast",
]
