"""Event model for the observability layer.

An **event** is a plain dictionary (JSON-ready, no custom classes on the
wire) with at least:

* ``"kind"`` — one of :data:`EVENT_KINDS`;
* ``"round"`` — the round in which the engine emitted it (local to the
  emitting network run);
* ``"run"`` — the integer id of the network run within the observation
  (0 for the first network constructed, 1 for the next, ...).

Kind-specific fields (see docs/observability.md for the full schema):

========== =========================================================
kind        fields
========== =========================================================
send        ``node`` (sender), ``peer`` (receiver), ``words``,
            ``payload`` (tuple of scalar fields)
deliver     ``node`` (receiver), ``peer`` (sender), ``words``,
            ``sent_round``, ``tag``
drop /      ``node`` (sender), ``peer`` (receiver), ``seq``,
duplicate / ``detail`` (delay amount, else 0), ``plan_index`` — the
delay       index of the matching :class:`~repro.sim.faults.FaultEvent`
            in the run's :class:`~repro.sim.faults.FaultPlan`
crash       ``node``, ``plan_index``
wakeup      ``node``, ``target`` (the round the wakeup matures)
halt        ``node``
========== =========================================================

**Fabric events** (:data:`FABRIC_KINDS`) describe the execution fabric
— the worker pools running sweeps (docs/robustness.md) — rather than
any simulated network, so they carry ``round=-1`` / ``run=-1``:

================ ====================================================
kind              fields
================ ====================================================
worker_killed     ``reason`` (``"hung"``/``"crashed"``), ``workers``
task_retried      ``task`` (submission index), ``attempt``, ``reason``
task_quarantined  ``task``, ``attempts``, ``reason``
================ ====================================================

Like everything else on the stream, fabric events are deterministic
per cause: no pids, no timestamps — the chaos harness
(:mod:`repro.batch.chaos`) compares them across replays.

**Span events** (:data:`SPAN_KINDS`) mark the fabric's hierarchical
work spans (sweep → shard → task → run → phase; see
:mod:`repro.obs.telemetry`).  They share the fabric plane
(``round=-1`` / ``run=-1``) and the same determinism rule: ids derive
from cell keys, never from clocks or pids.

=========== ===================================================
kind         fields
=========== ===================================================
span_start   ``span`` (id, ``level:key``), ``parent`` (id or
             ``""``), ``level``, ``name``
span_end     ``span``
=========== ===================================================

Every simulation event kind is **model-visible**: it reflects what
programs did (send, halt, request a wakeup) or what the environment
did to messages (deliver, fault), never *how* the engine scheduled the
work.  That is what makes a trace byte-identical between
``scheduling="full"`` and ``scheduling="active"`` — the property
``tests/obs/test_equivalence.py`` pins.  Fabric and span events are
the exception: they describe the execution layer.  Failure kinds never
appear unless the fabric actually failed (or chaos was injected);
span kinds appear whenever telemetry-instrumented drivers (sweeps,
``run_cell``) run under an observation.

Phase records (``phase-enter`` / ``phase-exit``) travel on a separate
subscriber channel (:meth:`Subscriber.on_phase`) because they describe
the *composite* timeline built by :class:`~repro.sim.runner.StagedRun`,
not a single network run.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Version tag written into every exported trace.  Bump on any change to
#: the record shapes above.
TRACE_SCHEMA = "repro-trace/1"

#: Execution-fabric event kinds (worker pools, not simulated networks);
#: emitted by :class:`repro.batch.pool.SharedPool` with round/run = -1.
FABRIC_KINDS = (
    "worker_killed",
    "task_retried",
    "task_quarantined",
)

#: Hierarchical work spans (repro.obs.telemetry); fabric-plane like
#: FABRIC_KINDS (round/run = -1) but emitted on healthy runs too.
SPAN_KINDS = (
    "span_start",
    "span_end",
)

#: Engine event kinds, in no particular order.
EVENT_KINDS = (
    "send",
    "deliver",
    "drop",
    "duplicate",
    "delay",
    "crash",
    "wakeup",
    "halt",
) + FABRIC_KINDS + SPAN_KINDS

#: The subset of kinds that mirror :class:`repro.sim.faults.FaultEvent`s.
FAULT_KINDS = ("drop", "duplicate", "delay", "crash")

Event = Dict[str, Any]


class Subscriber:
    """Base class for event-stream consumers.

    Subclasses override any subset of the hooks; the defaults are
    no-ops, so a subscriber only pays for what it listens to.  Events
    are **shared, not copied** — subscribers must not mutate them.
    """

    def on_event(self, event: Event) -> None:
        """One engine event (see the module docstring for shapes)."""

    def on_phase(self, record: Event) -> None:
        """A phase record: ``{"phase", "start", "end", "rounds"}``."""

    def on_close(self, run_records: List[Event]) -> None:
        """The observation ended; ``run_records`` summarises each run."""


class TraceBuffer(Subscriber):
    """Collects the full stream in memory (tests, views, analysis)."""

    def __init__(self) -> None:
        self.events: List[Event] = []
        self.phases: List[Event] = []
        self.runs: List[Event] = []

    def on_event(self, event: Event) -> None:
        self.events.append(event)

    def on_phase(self, record: Event) -> None:
        self.phases.append(record)

    def on_close(self, run_records: List[Event]) -> None:
        self.runs = list(run_records)

    def by_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e["kind"] == kind]


class CountingSubscriber(Subscriber):
    """Counts events by kind without retaining them.

    The cheapest non-trivial subscriber — the perf harness attaches one
    to measure the *subscribed* cost of the event stream
    (``repro perf --obs``).
    """

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.total = 0

    def on_event(self, event: Event) -> None:
        kind = event["kind"]
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.total += 1
