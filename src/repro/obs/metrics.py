"""Per-node and per-channel metrics built from the event stream.

:class:`~repro.sim.model.MessageStats` answers "how much traffic did
the run cost, per round?" with one global dict — and it books every
message at its **sent** round only, so a fault-delayed message is
invisible on the delivery side.  :class:`MetricsCollector` generalizes
that accounting into a drill-downable hierarchy:

* **global** — ``per_round_sent`` / ``per_round_delivered`` (the latter
  is where delayed deliveries show up: a message sent in round *t* and
  delayed by *d* is booked as sent at *t* and delivered at *t + 1 + d*);
* **per node** (:class:`NodeMetrics`) — sent/received message and word
  counts, first/last activity, halt/crash round, wakeups, and the
  node's stall intervals (rounds between its first and last send with
  no send — the quantity Lemma 5.3 proves is empty for Pipeline);
* **per directed channel** (:class:`ChannelMetrics`) — messages, words,
  sent-vs-delivered round profiles, fault counts, and link utilization.

The collector is an ordinary :class:`~repro.obs.events.Subscriber`:
attach it with :func:`repro.obs.observe` or
:meth:`repro.sim.network.Network.attach_subscriber`.  Node ids from
distinct runs of one observation are aggregated by id (sequential
stages of a composite algorithm reuse the same graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class NodeMetrics:
    """Traffic and lifecycle accounting for one node."""

    node: Any
    sent_messages: int = 0
    sent_words: int = 0
    recv_messages: int = 0
    recv_words: int = 0
    wakeups: int = 0
    halt_round: Optional[int] = None
    crash_round: Optional[int] = None
    first_activity: Optional[int] = None
    last_activity: Optional[int] = None
    send_rounds: set = field(default_factory=set)

    def _touch(self, round_number: int) -> None:
        if self.first_activity is None or round_number < self.first_activity:
            self.first_activity = round_number
        if self.last_activity is None or round_number > self.last_activity:
            self.last_activity = round_number

    def stall_intervals(self) -> List[Tuple[int, int]]:
        """Inclusive ``(start, end)`` gaps between consecutive sends.

        Empty for nodes that sent in every round between their first
        and last send — the "no waiting" shape of Lemma 5.3.
        """
        rounds = sorted(self.send_rounds)
        intervals = []
        for earlier, later in zip(rounds, rounds[1:]):
            if later > earlier + 1:
                intervals.append((earlier + 1, later - 1))
        return intervals

    def stalls(self) -> List[int]:
        """Flat list of stalled rounds (cf. ``TraceRecorder.stalls``)."""
        return [
            r
            for start, end in self.stall_intervals()
            for r in range(start, end + 1)
        ]


@dataclass
class ChannelMetrics:
    """Traffic accounting for one directed channel (sender -> receiver)."""

    sender: Any
    receiver: Any
    messages: int = 0
    words: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    per_round_sent: Dict[int, int] = field(default_factory=dict)
    per_round_delivered: Dict[int, int] = field(default_factory=dict)

    @property
    def first_sent(self) -> Optional[int]:
        return min(self.per_round_sent) if self.per_round_sent else None

    @property
    def last_sent(self) -> Optional[int]:
        return max(self.per_round_sent) if self.per_round_sent else None

    def utilization(self, rounds: Optional[int] = None) -> float:
        """Fraction of rounds this channel carried a message.

        Against ``rounds`` when given, else against the channel's own
        active window (first to last send, inclusive).
        """
        if not self.per_round_sent:
            return 0.0
        if rounds is None:
            rounds = self.last_sent - self.first_sent + 1
        if rounds <= 0:
            return 0.0
        return len(self.per_round_sent) / rounds


class MetricsCollector:
    """Event-stream subscriber building the node/channel hierarchy."""

    def __init__(self) -> None:
        self.nodes: Dict[Any, NodeMetrics] = {}
        self.channels: Dict[Tuple[Any, Any], ChannelMetrics] = {}
        self.per_round_sent: Dict[int, int] = {}
        self.per_round_delivered: Dict[int, int] = {}
        self.messages = 0
        self.total_words = 0
        self.events = 0

    # -- Subscriber interface ----------------------------------------------
    def on_phase(self, record: Dict[str, Any]) -> None:
        pass

    def on_close(self, run_records: List[Dict[str, Any]]) -> None:
        pass

    def on_event(self, event: Dict[str, Any]) -> None:
        self.events += 1
        kind = event["kind"]
        round_number = event["round"]
        if kind == "send":
            node = self._node(event["node"])
            words = event["words"]
            node.sent_messages += 1
            node.sent_words += words
            node.send_rounds.add(round_number)
            node._touch(round_number)
            channel = self._channel(event["node"], event["peer"])
            channel.messages += 1
            channel.words += words
            channel.per_round_sent[round_number] = (
                channel.per_round_sent.get(round_number, 0) + 1
            )
            self.per_round_sent[round_number] = (
                self.per_round_sent.get(round_number, 0) + 1
            )
            self.messages += 1
            self.total_words += words
        elif kind == "deliver":
            node = self._node(event["node"])
            node.recv_messages += 1
            node.recv_words += event["words"]
            node._touch(round_number)
            channel = self._channel(event["peer"], event["node"])
            channel.delivered += 1
            channel.per_round_delivered[round_number] = (
                channel.per_round_delivered.get(round_number, 0) + 1
            )
            self.per_round_delivered[round_number] = (
                self.per_round_delivered.get(round_number, 0) + 1
            )
        elif kind == "halt":
            node = self._node(event["node"])
            node.halt_round = round_number
            node._touch(round_number)
        elif kind == "wakeup":
            self._node(event["node"]).wakeups += 1
        elif kind == "crash":
            node = self._node(event["node"])
            node.crash_round = round_number
            node._touch(round_number)
        elif kind == "drop":
            self._channel(event["node"], event["peer"]).dropped += 1
        elif kind == "duplicate":
            self._channel(event["node"], event["peer"]).duplicated += 1
        elif kind == "delay":
            self._channel(event["node"], event["peer"]).delayed += 1

    # -- lookups --------------------------------------------------------------
    def _node(self, node: Any) -> NodeMetrics:
        metrics = self.nodes.get(node)
        if metrics is None:
            metrics = self.nodes[node] = NodeMetrics(node)
        return metrics

    def _channel(self, sender: Any, receiver: Any) -> ChannelMetrics:
        key = (sender, receiver)
        metrics = self.channels.get(key)
        if metrics is None:
            metrics = self.channels[key] = ChannelMetrics(sender, receiver)
        return metrics

    # -- drill-down conveniences ----------------------------------------------
    def node(self, node: Any) -> NodeMetrics:
        """Metrics for ``node`` (zeros if it never appeared)."""
        return self.nodes.get(node, NodeMetrics(node))

    def channel(self, sender: Any, receiver: Any) -> ChannelMetrics:
        return self.channels.get(
            (sender, receiver), ChannelMetrics(sender, receiver)
        )

    def top_channels(self, count: int = 10) -> List[ChannelMetrics]:
        """The busiest channels, by message count then stable key order."""
        ordered = sorted(
            self.channels.values(),
            key=lambda c: (-c.messages, str(c.sender), str(c.receiver)),
        )
        return ordered[:count]

    def busiest_round_sent(self) -> int:
        if not self.per_round_sent:
            return 0
        return max(
            self.per_round_sent, key=lambda r: (self.per_round_sent[r], -r)
        )

    def busiest_round_delivered(self) -> int:
        if not self.per_round_delivered:
            return 0
        return max(
            self.per_round_delivered,
            key=lambda r: (self.per_round_delivered[r], -r),
        )
