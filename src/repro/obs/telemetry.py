"""Fabric-wide telemetry: a metrics registry, sessions, and spans.

The obs event stream (:mod:`repro.obs.events`) answers *what happened
inside one simulated network*.  This module answers the questions the
batch fabric raises — how many cells ran, how many messages the whole
sweep moved, how long workers spent per task — with three pieces:

* :class:`MetricsRegistry` — counters, gauges, and histograms with
  labeled series.  Snapshots are deterministic (sorted series keys)
  and :meth:`MetricsRegistry.merge` is order-invariant, which is what
  lets worker-shipped snapshots collapse into a summary that does not
  depend on worker count or completion order.
* :class:`TelemetrySession` — an ambient registry, mirroring the
  ``observe()`` pattern: one list-append on entry, one truthiness
  check (:func:`current_telemetry`) at every instrumentation point, so
  the disabled cost stays within the same ≤1.05x discipline as the
  no-subscriber obs hooks.
* :func:`span` — hierarchical spans (sweep → shard → task → run →
  phase) with **deterministic ids derived from cell keys**, emitted
  onto the active obs observation as ``span_start`` / ``span_end``
  events in the ordinary ``repro-trace/1`` JSONL format (round/run =
  -1, like the other fabric kinds).  Span events never carry wall
  times — traces stay byte-identical across machines; durations go
  into the session registry as *volatile* histograms instead.

Determinism is handled by splitting every snapshot into two planes:

* the **deterministic plane** (``counters`` / ``gauges`` /
  ``histograms``) holds values derived purely from results — rounds,
  messages, set sizes.  Merged across any partition of the work it is
  byte-identical, and only this plane is written into sweep-store
  metas.
* the **volatile plane** (``volatile`` — same three sections) holds
  wall-clock facts: task latency, queue wait, span durations.  It is
  surfaced in live status files and summaries but never stored.

Instruments opt into the volatile plane with ``volatile=True``;
deterministic histograms must observe integers so merged sums never
see float-ordering noise.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from .session import current_observation

#: Version tag stamped on telemetry summaries (store metas, status
#: files).  Bump on any change to the snapshot shape.
TELEMETRY_SCHEMA = "repro-telemetry/1"

#: Span levels, outermost first.  ``span`` ids are ``level:key`` — e.g.
#: ``sweep:kdom``, ``shard:0/2``, ``task:kdom|tree:n=40|seed=0|k=2``.
SPAN_LEVELS = ("sweep", "shard", "task", "run", "phase")

#: Histogram bucket bounds: powers of two from 2^-20 up to 2^30, then
#: overflow.  A value lands in the smallest bucket whose bound covers
#: it; labels use ``format(bound, "g")`` so they are stable strings.
_BUCKET_BOUNDS = tuple(2.0**e for e in range(-20, 31))
_BUCKET_LABELS = tuple(format(b, "g") for b in _BUCKET_BOUNDS)
_OVERFLOW = "inf"


def series_key(name: str, labels: Optional[Dict[str, Any]] = None) -> str:
    """Canonical series key: ``name`` or ``name{k=v,...}``, labels sorted."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def _bucket_label(value: float) -> str:
    for bound, label in zip(_BUCKET_BOUNDS, _BUCKET_LABELS):
        if value <= bound:
            return label
    return _OVERFLOW


class _Instrument:
    """Shared handle state: a registry, a name, and a plane."""

    __slots__ = ("_registry", "name", "volatile")

    def __init__(self, registry: "MetricsRegistry", name: str, volatile: bool):
        self._registry = registry
        self.name = name
        self.volatile = volatile


class Counter(_Instrument):
    """A monotonically increasing sum per labeled series."""

    def inc(self, amount: int = 1, **labels: Any) -> None:
        table = self._registry._plane(self.volatile)["counters"]
        key = series_key(self.name, labels)
        table[key] = table.get(key, 0) + amount


class Gauge(_Instrument):
    """A last-written value per labeled series.

    Merging takes the max, which is the only order-invariant choice —
    use gauges for high-water marks (peak in-flight, workers seen).
    """

    def set(self, value: float, **labels: Any) -> None:
        table = self._registry._plane(self.volatile)["gauges"]
        table[series_key(self.name, labels)] = value

    def max(self, value: float, **labels: Any) -> None:
        table = self._registry._plane(self.volatile)["gauges"]
        key = series_key(self.name, labels)
        if key not in table or table[key] < value:
            table[key] = value


class Histogram(_Instrument):
    """Power-of-two buckets with count and sum per labeled series.

    Deterministic-plane histograms must observe integers (rounds,
    messages): integer sums merge order-invariantly, float sums do
    not.  Volatile histograms (latencies) take floats freely.
    """

    def observe(self, value: float, **labels: Any) -> None:
        if not self.volatile and not isinstance(value, int):
            raise TypeError(
                f"histogram {self.name!r} is deterministic; observe() "
                f"requires int values (got {value!r}) — pass volatile=True "
                f"for wall-clock data"
            )
        table = self._registry._plane(self.volatile)["histograms"]
        key = series_key(self.name, labels)
        series = table.get(key)
        if series is None:
            series = table[key] = {"count": 0, "sum": 0, "buckets": {}}
        series["count"] += 1
        series["sum"] += value
        label = _bucket_label(value)
        series["buckets"][label] = series["buckets"].get(label, 0) + 1


_EMPTY_PLANE = {"counters": {}, "gauges": {}, "histograms": {}}


def _new_plane() -> Dict[str, Dict[str, Any]]:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def _sorted_plane(plane: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    out["counters"] = {k: plane["counters"][k] for k in sorted(plane["counters"])}
    out["gauges"] = {k: plane["gauges"][k] for k in sorted(plane["gauges"])}
    out["histograms"] = {
        k: {
            "count": s["count"],
            "sum": s["sum"],
            "buckets": {b: s["buckets"][b] for b in sorted(s["buckets"])},
        }
        for k, s in sorted(plane["histograms"].items())
    }
    return out


def _merge_plane(
    into: Dict[str, Dict[str, Any]], plane: Dict[str, Dict[str, Any]]
) -> None:
    for key, value in plane.get("counters", {}).items():
        into["counters"][key] = into["counters"].get(key, 0) + value
    for key, value in plane.get("gauges", {}).items():
        if key not in into["gauges"] or into["gauges"][key] < value:
            into["gauges"][key] = value
    for key, series in plane.get("histograms", {}).items():
        target = into["histograms"].get(key)
        if target is None:
            target = into["histograms"][key] = {
                "count": 0,
                "sum": 0,
                "buckets": {},
            }
        target["count"] += series["count"]
        target["sum"] += series["sum"]
        for bucket, count in series.get("buckets", {}).items():
            target["buckets"][bucket] = target["buckets"].get(bucket, 0) + count


class MetricsRegistry:
    """Process-local metric state with deterministic snapshots.

    Instruments are cheap handles; all state lives in plain dicts here
    so a snapshot is a dict copy and a merge is dict arithmetic.
    """

    def __init__(self) -> None:
        self._det = _new_plane()
        self._vol = _new_plane()

    def _plane(self, volatile: bool) -> Dict[str, Dict[str, Any]]:
        return self._vol if volatile else self._det

    @property
    def volatile_counters(self) -> Dict[str, Any]:
        """Live view of the volatile counters table (read-only use —
        cheap status rendering without a full snapshot)."""
        return self._vol["counters"]

    # -- instrument constructors -------------------------------------------
    def counter(self, name: str, volatile: bool = False) -> Counter:
        return Counter(self, name, volatile)

    def gauge(self, name: str, volatile: bool = False) -> Gauge:
        return Gauge(self, name, volatile)

    def histogram(self, name: str, volatile: bool = False) -> Histogram:
        return Histogram(self, name, volatile)

    # -- snapshots ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready snapshot: the deterministic plane's three
        sections at the top level, the volatile plane under
        ``"volatile"`` (omitted when empty so stored summaries stay
        compact and fully deterministic)."""
        snap = _sorted_plane(self._det)
        if self._vol != _EMPTY_PLANE:
            snap["volatile"] = _sorted_plane(self._vol)
        return snap

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a snapshot produced by :meth:`snapshot` into this
        registry.  Counters and histogram counts/sums/buckets add,
        gauges take the max — all order-invariant, so any merge order
        over any partition of the work yields the same state."""
        _merge_plane(self._det, snapshot)
        if "volatile" in snapshot:
            _merge_plane(self._vol, snapshot["volatile"])

    @classmethod
    def merged(cls, snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
        """Merge many snapshots into one (convenience for summaries)."""
        registry = cls()
        for snap in snapshots:
            registry.merge(snap)
        return registry.snapshot()


# -- ambient sessions -------------------------------------------------------

_ACTIVE: List["TelemetrySession"] = []


def current_telemetry() -> Optional["TelemetrySession"]:
    """The innermost active session, or ``None``.

    This is the single check every instrumentation point performs; with
    no session active it is one list-truthiness test, mirroring the
    ``Network._obs is None`` discipline on the simulation hot path.
    """
    return _ACTIVE[-1] if _ACTIVE else None


class TelemetrySession:
    """An ambient :class:`MetricsRegistry` plus span-duration capture."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self._span_seconds = self.registry.histogram(
            "span_seconds", volatile=True
        )

    @contextmanager
    def activate(self) -> Iterator["TelemetrySession"]:
        _ACTIVE.append(self)
        try:
            yield self
        finally:
            _ACTIVE.remove(self)

    def snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot()

    def merge(self, snapshot: Dict[str, Any]) -> None:
        self.registry.merge(snapshot)


@contextmanager
def telemetry_session() -> Iterator[TelemetrySession]:
    """``with telemetry_session() as ses:`` — make ``ses`` ambient."""
    session = TelemetrySession()
    with session.activate():
        yield session


# -- spans ------------------------------------------------------------------

#: The ambient span stack (ids).  Module-level rather than per-session
#: so span parentage works whether or not a session is active.
_SPANS: List[str] = []


def current_span() -> Optional[str]:
    return _SPANS[-1] if _SPANS else None


def emit_span_event(kind: str, **fields: Any) -> None:
    """Emit a span event onto the active observation, if any.

    Span events ride the fabric plane: ``round=-1`` / ``run=-1``, no
    timestamps, ids derived from deterministic keys — so a trace that
    contains them is still byte-identical across replays.
    """
    observation = current_observation()
    if observation is None:
        return
    event: Dict[str, Any] = {"kind": kind, "round": -1, "run": -1}
    event.update(fields)
    observation.dispatch(event)


@contextmanager
def span(level: str, key: str, name: Optional[str] = None, **extra: Any):
    """Open a span ``level:key`` (e.g. ``task:<cell_key>``).

    Emits ``span_start`` / ``span_end`` onto the active observation
    (no-op without one) and records the duration into the active
    session's volatile ``span_seconds{level=...}`` histogram (no-op
    without one).  With neither active, the cost is two list ops and a
    perf_counter call.
    """
    span_id = f"{level}:{key}"
    parent = current_span() or ""
    session = current_telemetry()
    if current_observation() is not None:
        emit_span_event(
            "span_start",
            span=span_id,
            parent=parent,
            level=level,
            name=name or key,
            **extra,
        )
    _SPANS.append(span_id)
    started = perf_counter()
    try:
        yield span_id
    finally:
        elapsed = perf_counter() - started
        _SPANS.pop()
        if session is not None:
            session._span_seconds.observe(elapsed, level=level)
        if current_observation() is not None:
            emit_span_event("span_end", span=span_id)


def emit_phase_spans(
    cell_key: str, breakdown: Dict[str, int]
) -> None:
    """Emit retrospective phase spans for one task's staged breakdown.

    Phases are known only after a staged run completes, so the pairs
    are emitted back-to-back; ``rounds`` rides on the ``span_end`` so
    the trace still carries the per-phase cost.
    """
    if current_observation() is None or not breakdown:
        return
    parent = f"task:{cell_key}"
    for phase_name, rounds in breakdown.items():
        span_id = f"phase:{cell_key}/{phase_name}"
        emit_span_event(
            "span_start",
            span=span_id,
            parent=parent,
            level="phase",
            name=phase_name,
        )
        emit_span_event("span_end", span=span_id, rounds=rounds)


def histogram_quantile(series: Dict[str, Any], q: float) -> float:
    """Approximate quantile from a snapshot histogram series (upper
    bucket bound at the q-th observation; ``inf`` maps to the largest
    finite bound)."""
    count = series.get("count", 0)
    if count <= 0:
        return 0.0
    target = max(1, int(q * count + 0.9999999))
    seen = 0
    items: List[Tuple[float, int]] = []
    for label, n in series.get("buckets", {}).items():
        bound = _BUCKET_BOUNDS[-1] if label == _OVERFLOW else float(label)
        items.append((bound, n))
    for bound, n in sorted(items):
        seen += n
        if seen >= target:
            return bound
    return items[-1][0] if items else 0.0
