"""Streaming JSONL trace export, reading, and schema validation.

A trace file is one JSON object per line.  Every line has a
``"record"`` discriminator:

* ``header`` — first line; carries ``"schema"`` (:data:`TRACE_SCHEMA`)
  and a free-form deterministic ``"meta"`` dict (algo, graph spec, seed
  — never timestamps or platform info, so traces of seeded runs are
  byte-identical across machines and scheduling modes);
* ``event`` — one engine event (see :mod:`repro.obs.events`), streamed
  as it happens;
* ``phase`` — one composite-timeline span (written when the driver
  calls :meth:`Observation.record_phases`);
* ``run`` — per-network summary, written at observation close;
* ``summary`` — last line; event counts by kind (a cheap integrity
  check for the validator).

Serialization is canonical: ``sort_keys=True``, compact separators, and
tuples encode as JSON arrays.  Anything non-JSON (exotic node ids)
falls back to ``str``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Union

from .events import EVENT_KINDS, FABRIC_KINDS, TRACE_SCHEMA, Event, Subscriber

#: Required fields per event kind (beyond "record"/"kind"/"round"/"run").
_EVENT_FIELDS = {
    "send": ("node", "peer", "words", "payload"),
    "deliver": ("node", "peer", "words", "sent_round", "tag"),
    "drop": ("node", "peer", "seq", "plan_index"),
    "duplicate": ("node", "peer", "seq", "plan_index"),
    "delay": ("node", "peer", "seq", "detail", "plan_index"),
    "crash": ("node", "plan_index"),
    "wakeup": ("node", "target"),
    "halt": ("node",),
    "worker_killed": ("reason", "workers"),
    "task_retried": ("task", "attempt", "reason"),
    "task_quarantined": ("task", "attempts", "reason"),
}


class TraceValidationError(ValueError):
    """A trace failed schema validation; ``problems`` lists why."""

    def __init__(self, problems: List[str]):
        super().__init__(
            f"{len(problems)} schema problem(s): " + "; ".join(problems[:5])
        )
        self.problems = problems


def _encode(obj: Any) -> str:
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=str
    )


class JsonlTraceWriter(Subscriber):
    """Subscriber that streams the observation to a JSONL file.

    ``target`` is a path (the writer owns and closes the handle) or an
    open file-like object (left open; handy for in-memory buffers).
    The header is written immediately so even a crashed run leaves a
    parseable prefix.
    """

    def __init__(
        self,
        target: Union[str, IO[str]],
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.counts: Dict[str, int] = {}
        self.events = 0
        self.closed = False
        self._write(
            {"record": "header", "schema": TRACE_SCHEMA, "meta": meta or {}}
        )

    def _write(self, obj: Dict[str, Any]) -> None:
        self._handle.write(_encode(obj))
        self._handle.write("\n")

    # -- Subscriber interface ----------------------------------------------
    def on_event(self, event: Event) -> None:
        kind = event["kind"]
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.events += 1
        self._write({"record": "event", **event})

    def on_phase(self, record: Event) -> None:
        self._write({"record": "phase", **record})

    def on_close(self, run_records: List[Event]) -> None:
        if self.closed:
            return
        self.closed = True
        for record in run_records:
            self._write({"record": "run", **record})
        self._write(
            {
                "record": "summary",
                "events": self.events,
                "by_kind": dict(sorted(self.counts.items())),
            }
        )
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


class Trace:
    """A parsed trace: header plus record lists, with drill-down helpers."""

    def __init__(
        self,
        header: Dict[str, Any],
        events: List[Dict[str, Any]],
        phases: List[Dict[str, Any]],
        runs: List[Dict[str, Any]],
        summary: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.header = header
        self.events = events
        self.phases = phases
        self.runs = runs
        self.summary = summary

    @property
    def schema(self) -> Any:
        return self.header.get("schema")

    @property
    def meta(self) -> Dict[str, Any]:
        return self.header.get("meta", {})

    def by_kind(self, kind: str) -> List[Dict[str, Any]]:
        return [e for e in self.events if e.get("kind") == kind]

    def phase_breakdown(self) -> Dict[str, int]:
        """Per-phase round totals (matches ``PhaseBreakdown.phases``)."""
        totals: Dict[str, int] = {}
        for record in self.phases:
            name = record["phase"]
            totals[name] = totals.get(name, 0) + record["rounds"]
        return totals

    @property
    def total_rounds(self) -> int:
        """Composite rounds: phase total when phases were recorded,
        else the sum of per-run rounds (sequential composition)."""
        if self.phases:
            return sum(r["rounds"] for r in self.phases)
        return sum(r.get("rounds", 0) for r in self.runs)

    @classmethod
    def from_buffer(cls, buffer: Any, meta: Optional[Dict] = None) -> "Trace":
        """Build a Trace from an in-memory :class:`TraceBuffer`."""
        return cls(
            header={"schema": TRACE_SCHEMA, "meta": meta or {}},
            events=list(buffer.events),
            phases=list(buffer.phases),
            runs=list(buffer.runs),
        )


def read_trace(source: Union[str, IO[str]]) -> Trace:
    """Parse a JSONL trace file (path or handle) into a :class:`Trace`.

    Raises :class:`TraceValidationError` on structurally unreadable
    input (bad JSON, missing header); use :func:`validate_trace` for
    the full schema check.
    """
    if isinstance(source, str):
        with open(source) as handle:
            lines = handle.read().splitlines()
    else:
        lines = source.read().splitlines()
    header: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = []
    phases: List[Dict[str, Any]] = []
    runs: List[Dict[str, Any]] = []
    summary: Optional[Dict[str, Any]] = None
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceValidationError([f"line {index + 1}: bad JSON ({exc})"])
        record = obj.get("record")
        if index == 0 and record != "header":
            raise TraceValidationError(["first line is not a header record"])
        if record == "header":
            header = obj
        elif record == "event":
            events.append(obj)
        elif record == "phase":
            phases.append(obj)
        elif record == "run":
            runs.append(obj)
        elif record == "summary":
            summary = obj
        else:
            raise TraceValidationError(
                [f"line {index + 1}: unknown record type {record!r}"]
            )
    if header is None:
        raise TraceValidationError(["empty trace: no header record"])
    return Trace(header, events, phases, runs, summary)


def validate_trace(trace: Union[Trace, str, IO[str]]) -> List[str]:
    """Validate a trace against :data:`TRACE_SCHEMA`.

    Accepts a :class:`Trace`, a path, or a handle.  Returns the list of
    problems — empty means valid.
    """
    if not isinstance(trace, Trace):
        try:
            trace = read_trace(trace)
        except TraceValidationError as exc:
            return list(exc.problems)
    problems: List[str] = []
    if trace.schema != TRACE_SCHEMA:
        problems.append(
            f"unknown schema {trace.schema!r} (expected {TRACE_SCHEMA!r})"
        )
    for index, event in enumerate(trace.events):
        kind = event.get("kind")
        if kind not in EVENT_KINDS:
            problems.append(f"event {index}: unknown kind {kind!r}")
            continue
        # Fabric events describe the execution layer, not a simulated
        # round/run; they carry -1 in both fields by convention.
        floor = -1 if kind in FABRIC_KINDS else 0
        for key in ("round", "run"):
            value = event.get(key)
            if not isinstance(value, int) or value < floor:
                expected = (
                    "an integer >= -1"
                    if floor < 0
                    else "a non-negative integer"
                )
                problems.append(
                    f"event {index} ({kind}): {key}={value!r} is not "
                    f"{expected}"
                )
        for key in _EVENT_FIELDS[kind]:
            if key not in event:
                problems.append(f"event {index} ({kind}): missing {key!r}")
    for index, record in enumerate(trace.phases):
        for key in ("phase", "start", "end", "rounds"):
            if key not in record:
                problems.append(f"phase {index}: missing {key!r}")
        if (
            all(k in record for k in ("start", "end", "rounds"))
            and record["end"] - record["start"] != record["rounds"]
        ):
            problems.append(
                f"phase {index} ({record.get('phase')!r}): end - start != "
                f"rounds"
            )
    for index, record in enumerate(trace.runs):
        for key in ("run", "rounds", "messages", "nodes"):
            if key not in record:
                problems.append(f"run {index}: missing {key!r}")
    if trace.summary is not None:
        if trace.summary.get("events") != len(trace.events):
            problems.append(
                f"summary counts {trace.summary.get('events')} events, "
                f"trace has {len(trace.events)}"
            )
        by_kind: Dict[str, int] = {}
        for event in trace.events:
            kind = event.get("kind")
            by_kind[kind] = by_kind.get(kind, 0) + 1
        if trace.summary.get("by_kind") != by_kind:
            problems.append("summary by_kind does not match the events")
    return problems
