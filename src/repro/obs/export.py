"""Streaming JSONL trace export, reading, and schema validation.

A trace file is one JSON object per line.  Every line has a
``"record"`` discriminator:

* ``header`` — first line; carries ``"schema"`` (:data:`TRACE_SCHEMA`)
  and a free-form deterministic ``"meta"`` dict (algo, graph spec, seed
  — never timestamps or platform info, so traces of seeded runs are
  byte-identical across machines and scheduling modes);
* ``event`` — one engine event (see :mod:`repro.obs.events`), streamed
  as it happens;
* ``phase`` — one composite-timeline span (written when the driver
  calls :meth:`Observation.record_phases`);
* ``run`` — per-network summary, written at observation close;
* ``summary`` — last line; event counts by kind (a cheap integrity
  check for the validator).

Serialization is canonical: ``sort_keys=True``, compact separators, and
tuples encode as JSON arrays.  Anything non-JSON (exotic node ids)
falls back to ``str``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterator, List, Optional, Tuple, Union

from .events import (
    EVENT_KINDS,
    FABRIC_KINDS,
    SPAN_KINDS,
    TRACE_SCHEMA,
    Event,
    Subscriber,
)

#: Required fields per event kind (beyond "record"/"kind"/"round"/"run").
_EVENT_FIELDS = {
    "send": ("node", "peer", "words", "payload"),
    "deliver": ("node", "peer", "words", "sent_round", "tag"),
    "drop": ("node", "peer", "seq", "plan_index"),
    "duplicate": ("node", "peer", "seq", "plan_index"),
    "delay": ("node", "peer", "seq", "detail", "plan_index"),
    "crash": ("node", "plan_index"),
    "wakeup": ("node", "target"),
    "halt": ("node",),
    "worker_killed": ("reason", "workers"),
    "task_retried": ("task", "attempt", "reason"),
    "task_quarantined": ("task", "attempts", "reason"),
    "span_start": ("span", "parent", "level", "name"),
    "span_end": ("span",),
}

#: Kinds allowed to carry round/run = -1 (execution-layer events).
_FABRIC_PLANE = frozenset(FABRIC_KINDS) | frozenset(SPAN_KINDS)


class TraceValidationError(ValueError):
    """A trace failed schema validation; ``problems`` lists why."""

    def __init__(self, problems: List[str]):
        super().__init__(
            f"{len(problems)} schema problem(s): " + "; ".join(problems[:5])
        )
        self.problems = problems


def _encode(obj: Any) -> str:
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=str
    )


class JsonlTraceWriter(Subscriber):
    """Subscriber that streams the observation to a JSONL file.

    ``target`` is a path (the writer owns and closes the handle) or an
    open file-like object (left open; handy for in-memory buffers).
    The header is written immediately so even a crashed run leaves a
    parseable prefix.
    """

    def __init__(
        self,
        target: Union[str, IO[str]],
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.counts: Dict[str, int] = {}
        self.events = 0
        self.closed = False
        self._write(
            {"record": "header", "schema": TRACE_SCHEMA, "meta": meta or {}}
        )

    def _write(self, obj: Dict[str, Any]) -> None:
        self._handle.write(_encode(obj))
        self._handle.write("\n")

    # -- Subscriber interface ----------------------------------------------
    def on_event(self, event: Event) -> None:
        kind = event["kind"]
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.events += 1
        self._write({"record": "event", **event})

    def on_phase(self, record: Event) -> None:
        self._write({"record": "phase", **record})

    def on_close(self, run_records: List[Event]) -> None:
        if self.closed:
            return
        self.closed = True
        for record in run_records:
            self._write({"record": "run", **record})
        self._write(
            {
                "record": "summary",
                "events": self.events,
                "by_kind": dict(sorted(self.counts.items())),
            }
        )
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


class Trace:
    """A parsed trace: header plus record lists, with drill-down helpers."""

    def __init__(
        self,
        header: Dict[str, Any],
        events: List[Dict[str, Any]],
        phases: List[Dict[str, Any]],
        runs: List[Dict[str, Any]],
        summary: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.header = header
        self.events = events
        self.phases = phases
        self.runs = runs
        self.summary = summary

    @property
    def schema(self) -> Any:
        return self.header.get("schema")

    @property
    def meta(self) -> Dict[str, Any]:
        return self.header.get("meta", {})

    def by_kind(self, kind: str) -> List[Dict[str, Any]]:
        return [e for e in self.events if e.get("kind") == kind]

    def phase_breakdown(self) -> Dict[str, int]:
        """Per-phase round totals (matches ``PhaseBreakdown.phases``)."""
        totals: Dict[str, int] = {}
        for record in self.phases:
            name = record["phase"]
            totals[name] = totals.get(name, 0) + record["rounds"]
        return totals

    @property
    def total_rounds(self) -> int:
        """Composite rounds: phase total when phases were recorded,
        else the sum of per-run rounds (sequential composition)."""
        if self.phases:
            return sum(r["rounds"] for r in self.phases)
        return sum(r.get("rounds", 0) for r in self.runs)

    @classmethod
    def from_buffer(cls, buffer: Any, meta: Optional[Dict] = None) -> "Trace":
        """Build a Trace from an in-memory :class:`TraceBuffer`."""
        return cls(
            header={"schema": TRACE_SCHEMA, "meta": meta or {}},
            events=list(buffer.events),
            phases=list(buffer.phases),
            runs=list(buffer.runs),
        )


def iter_trace(source: Union[str, IO[str]]) -> Iterator[Dict[str, Any]]:
    """Lazily yield the records of a JSONL trace, one parsed dict per
    line, in file order.

    This is the streaming primitive behind :func:`read_trace` and
    :class:`TraceScan`: one line is held in memory at a time, so a
    multi-gigabyte sweep trace can be validated and summarised without
    materialising its event list.  Raises
    :class:`TraceValidationError` on structurally unreadable input
    (bad JSON, a non-header first line, unknown record types); schema
    problems *within* well-formed records are the validator's job.
    """
    if isinstance(source, str):
        handle: IO[str] = open(source)
        owns = True
    else:
        handle = source
        owns = False
    try:
        index = -1
        for raw in handle:
            index += 1
            line = raw.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceValidationError(
                    [f"line {index + 1}: bad JSON ({exc})"]
                )
            record = obj.get("record")
            if index == 0 and record != "header":
                raise TraceValidationError(
                    ["first line is not a header record"]
                )
            if record not in ("header", "event", "phase", "run", "summary"):
                raise TraceValidationError(
                    [f"line {index + 1}: unknown record type {record!r}"]
                )
            yield obj
        if index < 0:
            raise TraceValidationError(["empty trace: no header record"])
    finally:
        if owns:
            handle.close()


def read_trace(source: Union[str, IO[str]]) -> Trace:
    """Parse a JSONL trace file (path or handle) into a :class:`Trace`.

    Materialises every record — fine for single-run traces, but prefer
    :func:`iter_trace` / :class:`TraceScan` for sweep-scale files.
    Raises :class:`TraceValidationError` on structurally unreadable
    input (bad JSON, missing header); use :func:`validate_trace` for
    the full schema check.
    """
    header: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = []
    phases: List[Dict[str, Any]] = []
    runs: List[Dict[str, Any]] = []
    summary: Optional[Dict[str, Any]] = None
    for obj in iter_trace(source):
        record = obj.get("record")
        if record == "header":
            header = obj
        elif record == "event":
            events.append(obj)
        elif record == "phase":
            phases.append(obj)
        elif record == "run":
            runs.append(obj)
        else:
            summary = obj
    if header is None:
        raise TraceValidationError(["empty trace: no header record"])
    return Trace(header, events, phases, runs, summary)


def _event_problems(event: Dict[str, Any], index: int) -> List[str]:
    problems: List[str] = []
    kind = event.get("kind")
    if kind not in EVENT_KINDS:
        return [f"event {index}: unknown kind {kind!r}"]
    # Fabric/span events describe the execution layer, not a simulated
    # round/run; they carry -1 in both fields by convention.
    floor = -1 if kind in _FABRIC_PLANE else 0
    for key in ("round", "run"):
        value = event.get(key)
        if not isinstance(value, int) or value < floor:
            expected = (
                "an integer >= -1" if floor < 0 else "a non-negative integer"
            )
            problems.append(
                f"event {index} ({kind}): {key}={value!r} is not "
                f"{expected}"
            )
    for key in _EVENT_FIELDS[kind]:
        if key not in event:
            problems.append(f"event {index} ({kind}): missing {key!r}")
    return problems


def _phase_problems(record: Dict[str, Any], index: int) -> List[str]:
    problems: List[str] = []
    for key in ("phase", "start", "end", "rounds"):
        if key not in record:
            problems.append(f"phase {index}: missing {key!r}")
    if (
        all(k in record for k in ("start", "end", "rounds"))
        and record["end"] - record["start"] != record["rounds"]
    ):
        problems.append(
            f"phase {index} ({record.get('phase')!r}): end - start != "
            f"rounds"
        )
    return problems


def _run_problems(record: Dict[str, Any], index: int) -> List[str]:
    return [
        f"run {index}: missing {key!r}"
        for key in ("run", "rounds", "messages", "nodes")
        if key not in record
    ]


def _summary_problems(
    summary: Optional[Dict[str, Any]],
    events_total: int,
    by_kind: Dict[str, int],
) -> List[str]:
    if summary is None:
        return []
    problems: List[str] = []
    if summary.get("events") != events_total:
        problems.append(
            f"summary counts {summary.get('events')} events, "
            f"trace has {events_total}"
        )
    if summary.get("by_kind") != by_kind:
        problems.append("summary by_kind does not match the events")
    return problems


def validate_trace(trace: Union[Trace, str, IO[str]]) -> List[str]:
    """Validate a trace against :data:`TRACE_SCHEMA`.

    Accepts a :class:`Trace`, a path, or a handle.  Returns the list of
    problems — empty means valid.  For large files prefer
    :func:`scan_trace`, which validates in the same order while
    streaming.
    """
    if not isinstance(trace, Trace):
        try:
            trace = read_trace(trace)
        except TraceValidationError as exc:
            return list(exc.problems)
    problems: List[str] = []
    if trace.schema != TRACE_SCHEMA:
        problems.append(
            f"unknown schema {trace.schema!r} (expected {TRACE_SCHEMA!r})"
        )
    for index, event in enumerate(trace.events):
        problems.extend(_event_problems(event, index))
    for index, record in enumerate(trace.phases):
        problems.extend(_phase_problems(record, index))
    for index, record in enumerate(trace.runs):
        problems.extend(_run_problems(record, index))
    by_kind: Dict[str, int] = {}
    for event in trace.events:
        kind = event.get("kind")
        by_kind[kind] = by_kind.get(kind, 0) + 1
    problems.extend(
        _summary_problems(trace.summary, len(trace.events), by_kind)
    )
    return problems


class TraceScan:
    """A single streaming pass over a trace: counts, profiles, and
    validation — without retaining the event list.

    Holds O(runs x rounds + channels x rounds) state (the send
    profiles the ASCII views need) instead of O(events), so ``repro
    report`` works on sweep-scale traces.  The accumulated problems
    match :func:`validate_trace` exactly — same messages, same order
    (events, then phases, then runs, then the summary check).
    """

    def __init__(self, header: Dict[str, Any]) -> None:
        self.header = header
        self.events_total = 0
        self.by_kind: Dict[str, int] = {}
        self.fabric_by_kind: Dict[str, int] = {}
        self.send_profiles_by_run: Dict[int, Dict[int, int]] = {}
        self.channel_profiles: Dict[Tuple[str, str], Dict[int, int]] = {}
        self.total_sends = 0
        self.phases: List[Dict[str, Any]] = []
        self.runs: List[Dict[str, Any]] = []
        self.summary: Optional[Dict[str, Any]] = None
        self._event_problems: List[str] = []
        self._phase_problems: List[str] = []
        self._run_problems: List[str] = []

    # -- accessors mirroring Trace ------------------------------------------
    @property
    def schema(self) -> Any:
        return self.header.get("schema")

    @property
    def meta(self) -> Dict[str, Any]:
        return self.header.get("meta", {})

    def phase_breakdown(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for record in self.phases:
            name = record["phase"]
            totals[name] = totals.get(name, 0) + record["rounds"]
        return totals

    @property
    def total_rounds(self) -> int:
        if self.phases:
            return sum(r["rounds"] for r in self.phases)
        return sum(r.get("rounds", 0) for r in self.runs)

    # -- accumulation --------------------------------------------------------
    def _add_event(self, event: Dict[str, Any]) -> None:
        index = self.events_total
        self.events_total += 1
        kind = event.get("kind")
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        self._event_problems.extend(_event_problems(event, index))
        rnd = event.get("round")
        if isinstance(rnd, int) and rnd < 0:
            self.fabric_by_kind[kind] = self.fabric_by_kind.get(kind, 0) + 1
            return
        if kind == "send" and isinstance(rnd, int):
            self.total_sends += 1
            run_profile = self.send_profiles_by_run.setdefault(
                event.get("run", 0), {}
            )
            run_profile[rnd] = run_profile.get(rnd, 0) + 1
            channel = (str(event.get("node")), str(event.get("peer")))
            profile = self.channel_profiles.setdefault(channel, {})
            profile[rnd] = profile.get(rnd, 0) + 1

    def _add(self, obj: Dict[str, Any]) -> None:
        record = obj.get("record")
        if record == "event":
            self._add_event(obj)
        elif record == "phase":
            self._phase_problems.extend(
                _phase_problems(obj, len(self.phases))
            )
            self.phases.append(obj)
        elif record == "run":
            self._run_problems.extend(_run_problems(obj, len(self.runs)))
            self.runs.append(obj)
        elif record == "summary":
            self.summary = obj

    def problems(self) -> List[str]:
        """All validation problems, in :func:`validate_trace` order."""
        problems: List[str] = []
        if self.schema != TRACE_SCHEMA:
            problems.append(
                f"unknown schema {self.schema!r} (expected {TRACE_SCHEMA!r})"
            )
        problems.extend(self._event_problems)
        problems.extend(self._phase_problems)
        problems.extend(self._run_problems)
        problems.extend(
            _summary_problems(self.summary, self.events_total, self.by_kind)
        )
        return problems


def scan_trace(source: Union[str, IO[str]]) -> TraceScan:
    """Stream a trace once into a :class:`TraceScan` (the constant-ish
    memory counterpart of ``read_trace`` + ``validate_trace``)."""
    scan: Optional[TraceScan] = None
    for obj in iter_trace(source):
        if obj.get("record") == "header":
            scan = TraceScan(obj)
        elif scan is not None:
            scan._add(obj)
    if scan is None:
        raise TraceValidationError(["empty trace: no header record"])
    return scan
