"""Deterministic ASCII renderings of a trace.

All three views are pure functions of the trace contents — no
timestamps, no terminal queries, no locale dependence — so their output
is golden-file testable (``tests/obs/golden/``) and stable across
machines.

* :func:`ascii_timeline` — per-run sends-per-round sparkline, one row
  per network run, with the phase table appended when the trace has
  phase records;
* :func:`channel_heatmap` — the busiest directed channels as rows, the
  composite round axis bucketed into columns, message volume rendered
  on the :data:`_RAMP` intensity ramp;
* :func:`phase_table` — the :class:`~repro.sim.runner.StagedRun` spans
  as an aligned table (name, start, end, rounds, share).

Every view accepts either an events-carrying trace (a
:class:`~repro.obs.export.Trace` / :class:`~repro.obs.events.
TraceBuffer`) or a streaming :class:`~repro.obs.export.TraceScan`,
which carries the same send profiles precomputed.  Fabric-plane events
(``round=-1``: worker kills, retries, spans — see
:mod:`repro.obs.events`) have no place on the round axis, so the views
bucket them into a separate ``fabric:`` summary line instead of
folding them onto the simulated timeline.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Intensity ramp, blank to saturated.  Index 0 renders empty buckets.
_RAMP = " .:-=+*#%@"


def _bucketize(
    per_round: Dict[int, int], span: int, width: int
) -> List[int]:
    """Fold a ``{round: count}`` profile over ``span`` rounds into
    ``width`` buckets (bucket value = sum of its rounds' counts).
    Out-of-axis rounds clamp to the edge buckets rather than wrapping
    (a negative round must not land in the final bucket)."""
    buckets = [0] * width
    if span <= 0:
        return buckets
    for round_number, count in per_round.items():
        index = min(width - 1, max(0, round_number) * width // span)
        buckets[index] += count
    return buckets


def _fabric_counts(events: List[Dict[str, Any]]) -> Dict[str, int]:
    """Counts by kind of execution-layer events (``round < 0``)."""
    counts: Dict[str, int] = {}
    for event in events:
        rnd = event.get("round", 0)
        if isinstance(rnd, int) and rnd < 0:
            kind = event.get("kind")
            counts[kind] = counts.get(kind, 0) + 1
    return counts


def _fabric_line(counts: Dict[str, int]) -> str:
    parts = ", ".join(f"{k}={counts[k]}" for k in sorted(counts))
    total = sum(counts.values())
    return f"fabric: {total} event(s) off the round axis ({parts})"


def _ramp_row(buckets: List[int], peak: int) -> str:
    if peak <= 0:
        return " " * len(buckets)
    top = len(_RAMP) - 1
    row = []
    for value in buckets:
        if value <= 0:
            row.append(_RAMP[0])
        else:
            # Non-empty buckets always render at least the faintest mark.
            row.append(_RAMP[max(1, value * top // peak)])
    return "".join(row)


def _events_of(trace: Any) -> List[Dict[str, Any]]:
    return list(getattr(trace, "events", []) or [])


def _phases_of(trace: Any) -> List[Dict[str, Any]]:
    return list(getattr(trace, "phases", []) or [])


def _send_state(
    trace: Any,
) -> Tuple[Dict[int, Dict[int, int]], int, Dict[str, int]]:
    """(per-run send profiles, total sends, fabric counts) for any
    trace-like object — precomputed on a TraceScan, derived from the
    event list otherwise.  Fabric-plane sends (round < 0) are excluded
    from the profiles and reported in the fabric counts."""
    profiles = getattr(trace, "send_profiles_by_run", None)
    if profiles is not None:
        return (
            profiles,
            getattr(trace, "total_sends", 0),
            dict(getattr(trace, "fabric_by_kind", {}) or {}),
        )
    events = _events_of(trace)
    per_run: Dict[int, Dict[int, int]] = {}
    total = 0
    for event in events:
        if event.get("kind") != "send":
            continue
        rnd = event["round"]
        if isinstance(rnd, int) and rnd < 0:
            continue
        total += 1
        profile = per_run.setdefault(event.get("run", 0), {})
        profile[rnd] = profile.get(rnd, 0) + 1
    return per_run, total, _fabric_counts(events)


def _channel_state(
    trace: Any,
) -> Dict[Tuple[str, str], Dict[int, int]]:
    """Per-channel send profiles (fabric-plane sends excluded)."""
    profiles = getattr(trace, "channel_profiles", None)
    if profiles is not None:
        return profiles
    out: Dict[Tuple[str, str], Dict[int, int]] = {}
    for event in _events_of(trace):
        if event.get("kind") != "send":
            continue
        rnd = event["round"]
        if isinstance(rnd, int) and rnd < 0:
            continue
        key = (str(event["node"]), str(event["peer"]))
        profile = out.setdefault(key, {})
        profile[rnd] = profile.get(rnd, 0) + 1
    return out


def ascii_timeline(trace: Any, width: int = 60) -> str:
    """Render sends-per-round as one sparkline row per network run.

    ``trace`` is anything with ``.events`` / ``.phases`` lists of event
    dicts — a :class:`~repro.obs.export.Trace` or a
    :class:`~repro.obs.events.TraceBuffer` — or a streaming
    :class:`~repro.obs.export.TraceScan`.
    """
    per_run, total_sends, fabric = _send_state(trace)
    lines: List[str] = []
    if not total_sends:
        lines.append("(no send events)")
    else:
        run_rows: List[Tuple[int, List[int], int]] = []
        peak = 0
        for run in sorted(per_run):
            profile = per_run[run]
            span = max(profile) + 1
            buckets = _bucketize(profile, span, min(width, span))
            peak = max(peak, max(buckets))
            run_rows.append((run, buckets, span))
        lines.append(
            f"sends per round ({total_sends} total, peak bucket {peak})"
        )
        for run, buckets, span in run_rows:
            row = _ramp_row(buckets, peak)
            lines.append(f"run {run:>2} |{row}| rounds 0..{span - 1}")
    if fabric:
        lines.append(_fabric_line(fabric))
    phases = _phases_of(trace)
    if phases:
        lines.append("")
        lines.append(phase_table(trace))
    return "\n".join(lines)


def phase_table(trace: Any) -> str:
    """The composite phase spans as an aligned ASCII table."""
    phases = _phases_of(trace)
    if not phases:
        return "(no phase records)"
    total = sum(p["rounds"] for p in phases) or 1
    name_width = max(len("phase"), max(len(str(p["phase"])) for p in phases))
    lines = [
        f"{'phase':<{name_width}}  {'start':>6}  {'end':>6}  "
        f"{'rounds':>6}  share"
    ]
    for record in phases:
        share = 100.0 * record["rounds"] / total
        lines.append(
            f"{record['phase']:<{name_width}}  {record['start']:>6}  "
            f"{record['end']:>6}  {record['rounds']:>6}  {share:5.1f}%"
        )
    lines.append(
        f"{'total':<{name_width}}  {'':>6}  {'':>6}  "
        f"{sum(p['rounds'] for p in phases):>6}"
    )
    return "\n".join(lines)


def channel_heatmap(
    trace: Any, channels: int = 12, width: int = 60
) -> str:
    """Per-channel congestion heatmap over the round axis.

    Rows are the ``channels`` busiest directed channels (by sends, then
    stable key order); columns bucket the round axis of the busiest run
    window; cell intensity is message volume on the shared ramp
    ``{_RAMP!r}``.  Runs are overlaid on one axis — for composite
    algorithms each run restarts at round 0, which is the natural way
    to compare the same physical link across stages.
    """
    profiles = _channel_state(trace)
    if not profiles:
        return "(no send events)"
    span = max(max(p) for p in profiles.values()) + 1
    cols = min(width, span)
    ordered = sorted(
        profiles.items(), key=lambda kv: (-sum(kv[1].values()), kv[0])
    )
    shown = ordered[:channels]
    rows: List[Tuple[str, List[int], int]] = []
    peak = 0
    for (sender, receiver), profile in shown:
        buckets = _bucketize(profile, span, cols)
        peak = max(peak, max(buckets))
        rows.append((f"{sender}->{receiver}", buckets, sum(profile.values())))
    label_width = max(len(label) for label, _, _ in rows)
    lines = [
        f"channel congestion: top {len(rows)} of {len(profiles)} "
        f"channels, rounds 0..{span - 1}, ramp '{_RAMP}'"
    ]
    for label, buckets, total in rows:
        lines.append(
            f"{label:<{label_width}} |{_ramp_row(buckets, peak)}| "
            f"{total} msg"
        )
    if len(ordered) > len(shown):
        hidden = len(ordered) - len(shown)
        lines.append(f"... {hidden} more channel(s) not shown")
    return "\n".join(lines)


def summary_lines(
    trace: Any, collector: Optional[Any] = None
) -> List[str]:
    """Headline numbers for ``repro trace`` / ``repro report`` output."""
    precomputed = getattr(trace, "by_kind", None)
    if precomputed is not None and isinstance(precomputed, dict):
        by_kind: Dict[str, int] = dict(precomputed)
        total = getattr(trace, "events_total", sum(by_kind.values()))
    else:
        events = _events_of(trace)
        by_kind = {}
        for event in events:
            kind = event.get("kind")
            by_kind[kind] = by_kind.get(kind, 0) + 1
        total = len(events)
    lines = [f"events: {total}"]
    if by_kind:
        parts = ", ".join(f"{k}={by_kind[k]}" for k in sorted(by_kind))
        lines.append(f"by kind: {parts}")
    runs = list(getattr(trace, "runs", []) or [])
    for record in runs:
        lines.append(
            f"run {record.get('run')}: {record.get('nodes')} nodes, "
            f"{record.get('rounds')} rounds, "
            f"{record.get('messages')} messages"
        )
    if collector is not None and collector.channels:
        busiest = collector.top_channels(1)[0]
        lines.append(
            f"busiest channel: {busiest.sender}->{busiest.receiver} "
            f"({busiest.messages} messages, "
            f"utilization {busiest.utilization():.2f})"
        )
    return lines
