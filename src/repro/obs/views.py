"""Deterministic ASCII renderings of a trace.

All three views are pure functions of the trace contents — no
timestamps, no terminal queries, no locale dependence — so their output
is golden-file testable (``tests/obs/golden/``) and stable across
machines.

* :func:`ascii_timeline` — per-run sends-per-round sparkline, one row
  per network run, with the phase table appended when the trace has
  phase records;
* :func:`channel_heatmap` — the busiest directed channels as rows, the
  composite round axis bucketed into columns, message volume rendered
  on the :data:`_RAMP` intensity ramp;
* :func:`phase_table` — the :class:`~repro.sim.runner.StagedRun` spans
  as an aligned table (name, start, end, rounds, share).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Intensity ramp, blank to saturated.  Index 0 renders empty buckets.
_RAMP = " .:-=+*#%@"


def _bucketize(
    per_round: Dict[int, int], span: int, width: int
) -> List[int]:
    """Fold a ``{round: count}`` profile over ``span`` rounds into
    ``width`` buckets (bucket value = sum of its rounds' counts)."""
    buckets = [0] * width
    if span <= 0:
        return buckets
    for round_number, count in per_round.items():
        index = min(width - 1, round_number * width // span)
        buckets[index] += count
    return buckets


def _ramp_row(buckets: List[int], peak: int) -> str:
    if peak <= 0:
        return " " * len(buckets)
    top = len(_RAMP) - 1
    row = []
    for value in buckets:
        if value <= 0:
            row.append(_RAMP[0])
        else:
            # Non-empty buckets always render at least the faintest mark.
            row.append(_RAMP[max(1, value * top // peak)])
    return "".join(row)


def _events_of(trace: Any) -> List[Dict[str, Any]]:
    return list(getattr(trace, "events", []) or [])


def _phases_of(trace: Any) -> List[Dict[str, Any]]:
    return list(getattr(trace, "phases", []) or [])


def ascii_timeline(trace: Any, width: int = 60) -> str:
    """Render sends-per-round as one sparkline row per network run.

    ``trace`` is anything with ``.events`` / ``.phases`` lists of event
    dicts — a :class:`~repro.obs.export.Trace` or a
    :class:`~repro.obs.events.TraceBuffer`.
    """
    events = _events_of(trace)
    sends = [e for e in events if e.get("kind") == "send"]
    lines: List[str] = []
    if not sends:
        lines.append("(no send events)")
    else:
        per_run: Dict[int, Dict[int, int]] = {}
        for event in sends:
            profile = per_run.setdefault(event.get("run", 0), {})
            rnd = event["round"]
            profile[rnd] = profile.get(rnd, 0) + 1
        run_rows: List[Tuple[int, List[int], int]] = []
        peak = 0
        for run in sorted(per_run):
            profile = per_run[run]
            span = max(profile) + 1
            buckets = _bucketize(profile, span, min(width, span))
            peak = max(peak, max(buckets))
            run_rows.append((run, buckets, span))
        lines.append(
            f"sends per round ({len(sends)} total, peak bucket {peak})"
        )
        for run, buckets, span in run_rows:
            row = _ramp_row(buckets, peak)
            lines.append(f"run {run:>2} |{row}| rounds 0..{span - 1}")
    phases = _phases_of(trace)
    if phases:
        lines.append("")
        lines.append(phase_table(trace))
    return "\n".join(lines)


def phase_table(trace: Any) -> str:
    """The composite phase spans as an aligned ASCII table."""
    phases = _phases_of(trace)
    if not phases:
        return "(no phase records)"
    total = sum(p["rounds"] for p in phases) or 1
    name_width = max(len("phase"), max(len(str(p["phase"])) for p in phases))
    lines = [
        f"{'phase':<{name_width}}  {'start':>6}  {'end':>6}  "
        f"{'rounds':>6}  share"
    ]
    for record in phases:
        share = 100.0 * record["rounds"] / total
        lines.append(
            f"{record['phase']:<{name_width}}  {record['start']:>6}  "
            f"{record['end']:>6}  {record['rounds']:>6}  {share:5.1f}%"
        )
    lines.append(
        f"{'total':<{name_width}}  {'':>6}  {'':>6}  "
        f"{sum(p['rounds'] for p in phases):>6}"
    )
    return "\n".join(lines)


def channel_heatmap(
    trace: Any, channels: int = 12, width: int = 60
) -> str:
    """Per-channel congestion heatmap over the round axis.

    Rows are the ``channels`` busiest directed channels (by sends, then
    stable key order); columns bucket the round axis of the busiest run
    window; cell intensity is message volume on the shared ramp
    ``{_RAMP!r}``.  Runs are overlaid on one axis — for composite
    algorithms each run restarts at round 0, which is the natural way
    to compare the same physical link across stages.
    """
    events = _events_of(trace)
    sends = [e for e in events if e.get("kind") == "send"]
    if not sends:
        return "(no send events)"
    profiles: Dict[Tuple[str, str], Dict[int, int]] = {}
    for event in sends:
        key = (str(event["node"]), str(event["peer"]))
        profile = profiles.setdefault(key, {})
        rnd = event["round"]
        profile[rnd] = profile.get(rnd, 0) + 1
    span = max(e["round"] for e in sends) + 1
    cols = min(width, span)
    ordered = sorted(
        profiles.items(), key=lambda kv: (-sum(kv[1].values()), kv[0])
    )
    shown = ordered[:channels]
    rows: List[Tuple[str, List[int], int]] = []
    peak = 0
    for (sender, receiver), profile in shown:
        buckets = _bucketize(profile, span, cols)
        peak = max(peak, max(buckets))
        rows.append((f"{sender}->{receiver}", buckets, sum(profile.values())))
    label_width = max(len(label) for label, _, _ in rows)
    lines = [
        f"channel congestion: top {len(rows)} of {len(profiles)} "
        f"channels, rounds 0..{span - 1}, ramp '{_RAMP}'"
    ]
    for label, buckets, total in rows:
        lines.append(
            f"{label:<{label_width}} |{_ramp_row(buckets, peak)}| "
            f"{total} msg"
        )
    if len(ordered) > len(shown):
        hidden = len(ordered) - len(shown)
        lines.append(f"... {hidden} more channel(s) not shown")
    return "\n".join(lines)


def summary_lines(
    trace: Any, collector: Optional[Any] = None
) -> List[str]:
    """Headline numbers for ``repro trace`` / ``repro report`` output."""
    events = _events_of(trace)
    by_kind: Dict[str, int] = {}
    for event in events:
        kind = event.get("kind")
        by_kind[kind] = by_kind.get(kind, 0) + 1
    lines = [f"events: {len(events)}"]
    if by_kind:
        parts = ", ".join(f"{k}={by_kind[k]}" for k in sorted(by_kind))
        lines.append(f"by kind: {parts}")
    runs = list(getattr(trace, "runs", []) or [])
    for record in runs:
        lines.append(
            f"run {record.get('run')}: {record.get('nodes')} nodes, "
            f"{record.get('rounds')} rounds, "
            f"{record.get('messages')} messages"
        )
    if collector is not None and collector.channels:
        busiest = collector.top_channels(1)[0]
        lines.append(
            f"busiest channel: {busiest.sender}->{busiest.receiver} "
            f"({busiest.messages} messages, "
            f"utilization {busiest.utilization():.2f})"
        )
    return lines
