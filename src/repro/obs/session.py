"""Observation sessions: how subscribers reach the engine's hook points.

Composite algorithms (``fast_mst``, ``fastdom_graph``, ...) construct
their :class:`~repro.sim.network.Network`\\ s internally, so subscribers
cannot be threaded through every driver signature.  Instead an
:class:`Observation` is installed ambiently with :func:`observe`; every
network constructed while it is active registers itself and receives a
:class:`Tap` — the tiny emit handle the engine's hot path checks with a
single ``is not None`` test.

Networks outside any session get no tap (``Network._obs is None``) and
pay nothing beyond that check; that is the "compiled out to no-ops"
half of the overhead contract (docs/observability.md).

A single network can also be observed directly, without a session, via
:meth:`repro.sim.network.Network.attach_subscriber` — that creates a
session-less :class:`Tap` with run id 0.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional

from .events import Event, Subscriber

#: Stack of active observations; networks bind to the innermost.
_ACTIVE: List["Observation"] = []


def current_observation() -> Optional["Observation"]:
    """The innermost active observation, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


def bind(network: Any) -> Optional["Tap"]:
    """Register ``network`` with the active observation (engine hook)."""
    observation = current_observation()
    if observation is None:
        return None
    return observation.register(network)


class Tap:
    """Per-network emit handle; ``Network._obs`` is one of these.

    ``emit`` stamps the network's run id into the event and fans it out
    to the owning observation (if any) and to subscribers attached
    directly to the network.
    """

    __slots__ = ("observation", "run", "sinks")

    def __init__(
        self,
        observation: Optional["Observation"],
        run: int,
        sinks: Optional[List[Subscriber]] = None,
    ) -> None:
        self.observation = observation
        self.run = run
        self.sinks: List[Subscriber] = sinks if sinks is not None else []

    def emit(self, event: Event) -> None:
        event["run"] = self.run
        observation = self.observation
        if observation is not None:
            observation.dispatch(event)
        for sink in self.sinks:
            sink.on_event(event)


class Observation:
    """One observability session: subscribers plus run bookkeeping.

    Use as a context manager (or via :func:`observe`)::

        with Observation(writer, collector).activate() as obs:
            ...run algorithms...
            obs.record_phases(staged)

    ``close()`` (called automatically on context exit) finalises run
    records — one per registered network, with its final round and
    message counts — and forwards them to every subscriber's
    ``on_close``.
    """

    def __init__(self, *subscribers: Subscriber) -> None:
        self.subscribers: List[Subscriber] = list(subscribers)
        self._networks: List[Any] = []
        self.phases: List[Event] = []
        self.closed = False

    # -- subscriber plumbing ----------------------------------------------
    def add_subscriber(self, subscriber: Subscriber) -> Subscriber:
        self.subscribers.append(subscriber)
        return subscriber

    def dispatch(self, event: Event) -> None:
        for subscriber in self.subscribers:
            subscriber.on_event(event)

    # -- engine-side registration -----------------------------------------
    def register(self, network: Any) -> Tap:
        """Assign the next run id to ``network``; return its tap."""
        run = len(self._networks)
        self._networks.append(network)
        return Tap(self, run)

    @property
    def run_count(self) -> int:
        return len(self._networks)

    # -- phase spans --------------------------------------------------------
    def record_phase(self, name: str, start: int, end: int) -> None:
        """Record one phase span on the composite (global) timeline."""
        record: Event = {
            "phase": str(name),
            "start": int(start),
            "end": int(end),
            "rounds": int(end) - int(start),
        }
        self.phases.append(record)
        for subscriber in self.subscribers:
            subscriber.on_phase(record)

    def record_phases(self, staged: Any) -> None:
        """Record every span of a :class:`~repro.sim.runner.StagedRun`
        (or anything exposing ``spans()`` / an iterable of span dicts).

        Call this once, with the *top-level* staged accounting, after
        the composite algorithm finishes: the spans then reproduce its
        ``PhaseBreakdown`` exactly (nested drivers fold their stage
        rounds into the top-level object, so recording inner StagedRuns
        as well would double-count).
        """
        spans: Iterable[Dict[str, Any]]
        spans = staged.spans() if hasattr(staged, "spans") else staged
        for span in spans:
            self.record_phase(span["name"], span["start"], span["end"])

    def phase_breakdown(self) -> Dict[str, int]:
        """Per-phase round totals from the recorded spans."""
        totals: Dict[str, int] = {}
        for record in self.phases:
            name = record["phase"]
            totals[name] = totals.get(name, 0) + record["rounds"]
        return totals

    # -- lifecycle -----------------------------------------------------------
    def run_records(self) -> List[Event]:
        """One summary record per registered network run."""
        records: List[Event] = []
        for run, network in enumerate(self._networks):
            records.append(
                {
                    "run": run,
                    "rounds": network.current_round,
                    "messages": network.metrics.traffic.messages,
                    "nodes": network.n,
                }
            )
        return records

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        records = self.run_records()
        for subscriber in self.subscribers:
            subscriber.on_close(records)

    @contextmanager
    def activate(self) -> Iterator["Observation"]:
        """Install this observation for networks constructed inside."""
        _ACTIVE.append(self)
        try:
            yield self
        finally:
            _ACTIVE.pop()
            self.close()


@contextmanager
def observe(*subscribers: Subscriber) -> Iterator[Observation]:
    """``with observe(writer, collector) as obs: ...`` — the one-liner
    for :class:`Observation` construction plus activation."""
    observation = Observation(*subscribers)
    with observation.activate():
        yield observation
