"""Engine-native observability for the CONGEST simulator.

The paper's claims are statements about *where rounds and messages go*:
Lemma 5.3 is about when nodes send, the FastDOM theorems are per-phase
round budgets, and §1.2 explicitly sets message complexity aside — which
is exactly why it is worth measuring.  This package gives the simulator
first-class visibility into that accounting:

* a **structured event stream** (send / deliver / drop / duplicate /
  delay / crash / wakeup / halt / phase-enter / phase-exit) emitted from
  hook points inside :mod:`repro.sim.network`'s hot path — the hooks are
  single ``is not None`` checks that collapse to no-ops when no
  subscriber is attached, so ``repro perf`` numbers are unaffected (the
  contract is itself measured: see ``repro perf --obs``);
* **per-node and per-channel metrics** (:class:`MetricsCollector`) that
  generalize the global :class:`~repro.sim.model.MessageStats` into a
  drill-downable hierarchy, recording both *sent* and *delivered* rounds
  so fault delays show up on the delivery side;
* **phase-aware spans** integrated with
  :class:`~repro.sim.runner.StagedRun`, giving composite algorithms
  (``FastDOM_T``, ``Fast-MST``) an attributed timeline;
* a **streaming JSONL exporter** (:class:`JsonlTraceWriter`) with a
  deterministic, versioned schema, plus a reader/validator and ASCII
  timeline / congestion-heatmap views used by the ``repro trace`` and
  ``repro report`` CLI subcommands.

Attach subscribers either ambiently (every :class:`~repro.sim.network.
Network` constructed inside the block joins the observation)::

    from repro.obs import MetricsCollector, observe

    collector = MetricsCollector()
    with observe(collector) as obs:
        edges, staged, diag = fast_mst(graph)
        obs.record_phases(staged)

or directly on one network via
:meth:`~repro.sim.network.Network.attach_subscriber`.

See docs/observability.md for the full schema and the overhead contract.
"""

from .events import (
    EVENT_KINDS,
    FABRIC_KINDS,
    FAULT_KINDS,
    SPAN_KINDS,
    TRACE_SCHEMA,
    CountingSubscriber,
    Subscriber,
    TraceBuffer,
)
from .export import (
    JsonlTraceWriter,
    Trace,
    TraceScan,
    TraceValidationError,
    iter_trace,
    read_trace,
    scan_trace,
    validate_trace,
)
from .metrics import ChannelMetrics, MetricsCollector, NodeMetrics
from .session import Observation, current_observation, observe
from .telemetry import (
    TELEMETRY_SCHEMA,
    MetricsRegistry,
    TelemetrySession,
    current_telemetry,
    emit_phase_spans,
    span,
    telemetry_session,
)
from .views import ascii_timeline, channel_heatmap, phase_table, summary_lines

__all__ = [
    "ChannelMetrics",
    "CountingSubscriber",
    "EVENT_KINDS",
    "FABRIC_KINDS",
    "FAULT_KINDS",
    "JsonlTraceWriter",
    "MetricsCollector",
    "MetricsRegistry",
    "NodeMetrics",
    "Observation",
    "SPAN_KINDS",
    "Subscriber",
    "TELEMETRY_SCHEMA",
    "TelemetrySession",
    "Trace",
    "TraceBuffer",
    "TraceScan",
    "TraceValidationError",
    "TRACE_SCHEMA",
    "ascii_timeline",
    "channel_heatmap",
    "current_observation",
    "current_telemetry",
    "emit_phase_spans",
    "iter_trace",
    "observe",
    "phase_table",
    "read_trace",
    "scan_trace",
    "span",
    "summary_lines",
    "telemetry_session",
    "validate_trace",
]
