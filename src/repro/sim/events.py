"""Event-driven asynchronous network engine.

The paper works in the synchronous model but notes (§1.2) that this is
without loss of generality because communication cost is ignored: any
synchronous algorithm can run on an asynchronous network under
synchroniser α of Awerbuch [A1].  This module provides the asynchronous
substrate on which :mod:`repro.sim.synchronizer` demonstrates that
remark empirically (experiment E13).

Message delays are per-delivery, drawn deterministically from a seeded
RNG in ``(0, 1]`` — the standard normalisation that one time unit bounds
the delay of any single message.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import NotANeighbor, RoundLimitExceeded
from .model import measure_words
from .errors import MessageTooLarge


class AsyncContext:
    """Per-node view of the asynchronous network."""

    __slots__ = ("node", "neighbors", "edge_weights", "n", "_network")

    def __init__(self, node, neighbors, edge_weights, n, network):
        self.node = node
        self.neighbors = tuple(neighbors)
        self.edge_weights = dict(edge_weights)
        self.n = n
        self._network = network

    @property
    def time(self) -> float:
        return self._network.current_time


class AsyncNodeProgram:
    """Base class for asynchronous, message-driven node programs."""

    def __init__(self, ctx: AsyncContext):
        self.ctx = ctx
        self.halted = False
        self.output: Dict[str, Any] = {}

    @property
    def node(self):
        return self.ctx.node

    @property
    def neighbors(self):
        return self.ctx.neighbors

    def send(self, neighbor, *fields) -> None:
        self.ctx._network._enqueue(self.node, neighbor, tuple(fields))

    def halt(self) -> None:
        self.halted = True

    def on_start(self) -> None:
        """Called once at time 0."""

    def on_message(self, sender, payload: Tuple[Any, ...]) -> None:
        raise NotImplementedError


class AsyncNetwork:
    """An asynchronous network with bounded per-message delays."""

    def __init__(
        self,
        graph,
        seed: int = 0,
        min_delay: float = 0.1,
        max_delay: float = 1.0,
        word_limit: int = 8,
    ):
        self.graph = graph
        self.nodes = sorted(graph.nodes)
        self.n = len(self.nodes)
        self.word_limit = word_limit
        self._neighbors = {v: tuple(sorted(graph.neighbors(v))) for v in self.nodes}
        weight = getattr(graph, "weight", None)
        self._weights = {
            v: ({u: weight(v, u) for u in self._neighbors[v]} if weight else {})
            for v in self.nodes
        }
        self._rng = random.Random(seed)
        self._min_delay = min_delay
        self._max_delay = max_delay
        self._queue: List[Tuple[float, int, Any, Any, tuple]] = []
        self._seq = 0
        self.current_time = 0.0
        self.message_count = 0
        self.programs: Dict[Any, AsyncNodeProgram] = {}

    def _enqueue(self, sender, receiver, payload) -> None:
        if receiver not in self._neighbors[sender]:
            raise NotANeighbor(sender, receiver)
        words = measure_words(payload)
        if words > self.word_limit:
            raise MessageTooLarge(sender, receiver, payload, words, self.word_limit)
        delay = self._rng.uniform(self._min_delay, self._max_delay)
        self._seq += 1
        heapq.heappush(
            self._queue,
            (self.current_time + delay, self._seq, receiver, sender, payload),
        )
        self.message_count += 1

    def run(
        self,
        program_factory: Callable[[AsyncContext], AsyncNodeProgram],
        max_events: int = 10_000_000,
        stop_when: Optional[Callable[["AsyncNetwork"], bool]] = None,
    ) -> float:
        """Run the event loop; returns the virtual completion time."""
        self.programs = {}
        self.current_time = 0.0
        for v in self.nodes:
            ctx = AsyncContext(v, self._neighbors[v], self._weights[v], self.n, self)
            self.programs[v] = program_factory(ctx)
        for v in self.nodes:
            self.programs[v].on_start()
        events = 0
        completion_time = 0.0
        while self._queue:
            if stop_when is not None and stop_when(self):
                break
            if all(p.halted for p in self.programs.values()):
                break
            events += 1
            if events > max_events:
                raise RoundLimitExceeded(max_events)
            time, _seq, receiver, sender, payload = heapq.heappop(self._queue)
            self.current_time = time
            program = self.programs[receiver]
            if program.halted:
                continue
            completion_time = time
            program.on_message(sender, payload)
        return completion_time

    def outputs(self) -> Dict[Any, Dict[str, Any]]:
        return {v: self.programs[v].output for v in self.nodes}
