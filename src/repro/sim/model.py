"""Message model for the CONGEST simulator.

The paper assumes messages of ``O(log n)`` bits: a constant number of
"words", where one word holds a node identifier, an edge weight
(polynomial in ``n``, hence also ``O(log n)`` bits), a hop counter, or a
small protocol tag.  We measure payloads in words and enforce a constant
per-message word limit.

A payload is a flat or shallowly nested tuple of scalar fields.  Each
scalar field costs one word.  Short strings (protocol tags such as
``"BFS"`` or ``"ECHO"``) cost one word: a real implementation would encode
them as small integers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

from .errors import UnserializablePayload

#: Default per-message budget, in words.  An edge description is three
#: words (two endpoints and a weight); protocols also carry a tag and a
#: couple of counters.  Eight words is a generous constant that every
#: algorithm in this repository fits within.
DEFAULT_WORD_LIMIT = 8

#: Longest string accepted as a protocol tag.  Tags stand in for small
#: integer opcodes, so they must be short and drawn from a fixed set.
MAX_TAG_LENGTH = 24

_SCALAR_TYPES = (int, float, str, type(None))


def measure_words(payload: Any) -> int:
    """Return the size of ``payload`` in words.

    Raises :class:`UnserializablePayload` for fields that a real
    ``O(log n)``-bit encoding could not carry (long strings, arbitrary
    objects, deeply nested structures).
    """
    # Fast path: the overwhelmingly common payload is a flat tuple of
    # scalars (tag plus a couple of ids/counters).  Handle it without
    # recursing; anything unusual falls through to the general walk.
    if type(payload) is tuple:
        total = 0
        for item in payload:
            kind = type(item)
            if kind is str:
                if len(item) > MAX_TAG_LENGTH:
                    raise UnserializablePayload(item)
                total += 1
            elif kind is int or kind is float or item is None or kind is bool:
                total += 1
            else:
                total += _measure(item, depth=1)
        return total
    return _measure(payload, depth=0)


def _measure(value: Any, depth: int) -> int:
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 1
    if value is None:
        return 1
    if isinstance(value, str):
        if len(value) > MAX_TAG_LENGTH:
            raise UnserializablePayload(value)
        return 1
    if isinstance(value, tuple):
        if depth >= 2:
            raise UnserializablePayload(value)
        return sum(_measure(item, depth + 1) for item in value)
    raise UnserializablePayload(value)


@dataclass(frozen=True)
class Envelope:
    """A message in flight: sender, receiver, and payload.

    ``sent_round`` is the round in which the sender emitted the message;
    it is delivered at the start of round ``sent_round + 1``.

    ``words`` is measured once, at construction; the envelope is frozen,
    so the size can never go stale.  (Constructing an envelope therefore
    raises :class:`~repro.sim.errors.UnserializablePayload` for payloads
    no ``O(log n)``-bit encoding could carry.)
    """

    sender: int
    receiver: int
    payload: Tuple[Any, ...]
    sent_round: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "words", measure_words(self.payload))

    def tag(self) -> Any:
        """Return the first payload field, conventionally a protocol tag."""
        if not self.payload:
            return None
        return self.payload[0]


@dataclass
class MessageStats:
    """Aggregate message-traffic statistics for one run."""

    messages: int = 0
    total_words: int = 0
    max_words: int = 0
    per_round: dict = field(default_factory=dict)

    def record(self, envelope: Envelope) -> None:
        words = envelope.words
        self.messages += 1
        self.total_words += words
        if words > self.max_words:
            self.max_words = words
        self.per_round[envelope.sent_round] = (
            self.per_round.get(envelope.sent_round, 0) + 1
        )

    def busiest_round(self) -> int:
        """Round with the most messages sent (0 if no traffic)."""
        if not self.per_round:
            return 0
        return max(self.per_round, key=lambda r: (self.per_round[r], -r))
